"""CLAIM-BASE: CAPPED vs the PODC'16 leaky-bins GREEDY processes.

The paper's headline comparison: "for constant λ the waiting time is
reduced from O(log n) to O(log log n)" vs [Berenbrink et al., PODC'16],
and GREEDY[1] degrades like 1/(1−λ) while CAPPED only picks up
ln(1/(1−λ))/c. Shape targets: CAPPED's max wait beats GREEDY[1]
everywhere, and the gap widens as λ → 1.
"""

from conftest import run_and_report


def test_baseline_comparison(benchmark, profile_name):
    result = run_and_report(benchmark, "baseline_comparison", profile_name)
    assert result.all_checks_pass

    def max_wait(exponent, process_prefix):
        return next(
            r["max_wait"]
            for r in result.rows
            if r["lambda_exp"] == exponent and r["process"].startswith(process_prefix)
        )

    exponents = sorted({r["lambda_exp"] for r in result.rows})

    # GREEDY[1]'s max wait explodes with lambda; CAPPED's barely moves.
    greedy1_growth = max_wait(exponents[-1], "GREEDY[1]") / max_wait(exponents[0], "GREEDY[1]")
    capped_growth = max_wait(exponents[-1], "CAPPED") / max_wait(exponents[0], "CAPPED")
    assert greedy1_growth > 2 * capped_growth

    # GREEDY[2] is competitive but CAPPED still wins or ties at the top.
    assert max_wait(exponents[-1], "CAPPED") <= max_wait(exponents[-1], "GREEDY[2]") + 1
