"""Ablation: the mean-field solver against the simulator.

Not a paper artifact — validates this library's fluid-limit predictions
(used for warm starts and reference curves, DESIGN.md Section 6) against
direct simulation at every grid point.
"""

from conftest import run_and_report


def test_meanfield_validation(benchmark, profile_name):
    result = run_and_report(benchmark, "meanfield_validation", profile_name)
    assert result.all_checks_pass
    # c = 1 is exactly solvable; the agreement there should be tight.
    c1_errors = [r["rel_err"] for r in result.rows if r["c"] == 1]
    assert all(err < 0.05 for err in c1_errors), c1_errors
