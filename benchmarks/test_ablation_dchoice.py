"""Ablation: buffer capacity vs number of random choices.

The paper's design decision (Section I-B): buy the improvement with
capacity, keep one random choice per ball. Running CAPPED(c, λ) with a
second batch-semantics probe shows why: at c = 1 the probe reads empty
bins and is pure noise (the parallel d-choice weakness of [APPROX'12]
cited in the introduction), and even where it helps (persistent loads,
c ≥ 2) capacity alone dominates choices alone.
"""

from conftest import run_and_report


def test_ablation_dchoice(benchmark, profile_name):
    result = run_and_report(benchmark, "ablation_dchoice", profile_name)
    assert result.all_checks_pass

    def row(c, d):
        return next(r for r in result.rows if r["c"] == c and r["d"] == d)

    # At c=1 the second probe is signal-free: identical within noise.
    assert abs(row(1, 2)["avg_wait"] - row(1, 1)["avg_wait"]) < 0.3

    # With persistent loads (c >= 2) the probe helps and never hurts.
    for c in (2, 3):
        assert row(c, 2)["avg_wait"] <= row(c, 1)["avg_wait"] + 0.1

    # Capacity alone (c=3, d=1) beats choices alone (c=1, d=2) on both the
    # pool and the waiting time — CAPPED's core message.
    assert row(3, 1)["pool/n"] < row(1, 2)["pool/n"]
    assert row(3, 1)["avg_wait"] < row(1, 2)["avg_wait"]
