"""Extension: CAPPED under non-constant arrival models.

Footnote 2 of the paper claims its results carry over to probabilistic
ball generation with expected rate λ; this bench runs the same mean rate
through deterministic, Bernoulli, Poisson, and diurnal arrival models and
checks that the first three are statistically indistinguishable while the
oscillating load pays a peak-pool premium yet remains stable.
"""

from conftest import run_and_report


def test_robustness_workloads(benchmark, profile_name):
    result = run_and_report(benchmark, "robustness_workloads", profile_name)
    assert result.all_checks_pass

    rows = {r["workload"]: r for r in result.rows}
    base = rows["deterministic"]

    # Footnote 2: probabilistic generation does not change the steady state.
    for name in ("bernoulli", "poisson"):
        assert abs(rows[name]["avg_wait"] - base["avg_wait"]) < 0.3

    # The diurnal peaks show up in the peak pool, not in collapse.
    assert rows["diurnal"]["peak_pool/n"] >= base["pool/n"]
    assert rows["diurnal"]["max_wait"] <= 4 * base["max_wait"]
