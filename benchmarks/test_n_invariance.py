"""CLAIM-NSTAB: normalized results are insensitive to n.

The paper: "Extensive simulations have shown that the actual number of n
has negligible impact on the (normalized) simulation results. Hence we
only present the data for n = 2^15." This bench justifies our reduced-n
profiles: pool/n matches across an order of magnitude in n, while max
waits pick up only the log log n term.
"""

from conftest import run_and_report


def test_n_invariance(benchmark, profile_name):
    result = run_and_report(benchmark, "n_invariance", profile_name)
    assert result.all_checks_pass

    pools = [r["pool/n"] for r in result.rows]
    assert max(pools) - min(pools) < 0.15 * max(pools)

    # Waiting times may grow only by the loglog term across the n range.
    waits = [r["max_wait"] for r in result.rows]
    assert max(waits) - min(waits) <= 3
