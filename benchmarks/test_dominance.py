"""CLAIM-DOM: the coupling lemmas (Lemmas 1 and 6).

Under the paper's coupling the pool of CAPPED(c, λ) never exceeds the pool
of MODCAPPED(c, λ) — a sure (probability-1) inequality, so the bench
asserts exactly zero violations across every configuration.
"""

from conftest import run_and_report


def test_dominance(benchmark, profile_name):
    result = run_and_report(benchmark, "dominance", profile_name)
    assert result.all_checks_pass
    for row in result.rows:
        assert row["violations"] == 0
        # The gap is strictly negative in practice (MODCAPPED keeps its
        # pool near m* while CAPPED's pool stays near equilibrium).
        assert row["worst_gap"] < 0
