"""Robustness: recovery time after injected faults (self-stabilization).

The theorems cover the fault-free stationary regime; this artifact injects
a crash burst (25% of bins down for 20 rounds) and a capacity degradation
(c=2 → c=1 for 40 rounds) into warmed-up CAPPED(2, λ) runs at two loads and
measures how long the pool size and the per-round p99 waiting time take to
re-enter their pre-fault stationary bands. Recovery should exist at both
loads and stretch as λ → 1 (the backlog drains at ≈ (1 − λ)·n per round).
"""

from conftest import run_and_report


def test_fault_recovery(benchmark, profile_name):
    result = run_and_report(benchmark, "fault_recovery", profile_name)
    assert result.all_checks_pass

    rows = {(r["fault"], r["lambda_exp"]): r for r in result.rows}
    exps = sorted({exp for _, exp in rows})
    low, high = exps[0], exps[-1]

    # Every injected fault recovers within the simulated window.
    for row in result.rows:
        assert row["pool_recovery"] >= 0
        assert row["p99_recovery"] >= 0

    # 1/(1 − λ) scaling: the heavier load takes at least as long to drain
    # the crash-burst backlog as the lighter one.
    assert (
        rows[("crash_burst", high)]["pool_recovery"]
        >= rows[("crash_burst", low)]["pool_recovery"]
    )

    # The burst visibly perturbs the pool before it recovers.
    assert rows[("crash_burst", high)]["peak_pool/n"] > 0
