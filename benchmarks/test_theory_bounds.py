"""CLAIM-THM1/THM2: measurements respect the paper's theorems.

Theorem 1 (c = 1) and Theorem 2 (general c) are w.h.p. upper bounds on the
pool size and waiting time at any time. The bench reports the ratio of
measured peaks to the bounds — the paper observes its constants are
pessimistic (~4x), so ratios should be well below 1.
"""

from conftest import run_and_report


def test_theory_bounds(benchmark, profile_name):
    result = run_and_report(benchmark, "theory_bounds", profile_name)
    assert result.all_checks_pass

    # Bounds hold with room to spare: the paper's "constants are not
    # optimized" remark shows up as ratios below 1/2 everywhere.
    for row in result.rows:
        assert row["pool_ratio"] < 0.5, row
        assert row["wait_ratio"] < 0.75, row
