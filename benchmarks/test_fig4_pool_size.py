"""FIG4-L / FIG4-R: normalized pool size (paper Figure 4).

Left plot: pool/n vs capacity c ∈ [1, 5] for λ = 1−1/2² and 1−1/2¹⁰.
Right plot: pool/n vs λ = 1−2^{−i}, i ∈ [1, 10], for c = 1 and c = 3.
Reference (dashed in the paper): ``1/c·ln(1/(1−λ)) + 1``.

Shape targets: pool/n grows like ln(1/(1−λ)), decays like 1/c, and stays
below the reference curve everywhere (Section V: "the number of jobs
awaiting allocation is bounded by n/c·ln(1/(1−λ)) + n").
"""

from conftest import run_and_report


def test_fig4_left(benchmark, profile_name):
    result = run_and_report(benchmark, "fig4_left", profile_name)
    assert result.all_checks_pass

    # 1/c decay: within each lambda series the pool shrinks with c.
    for exponent in {row["lambda_exp"] for row in result.rows}:
        series = [r["pool/n"] for r in result.rows if r["lambda_exp"] == exponent]
        assert series == sorted(series, reverse=True), series

    # Large lambda sits above small lambda at every c.
    small = {r["c"]: r["pool/n"] for r in result.rows if r["lambda_exp"] == 2}
    large = {r["c"]: r["pool/n"] for r in result.rows if r["lambda_exp"] != 2}
    for c, value in large.items():
        assert value > small[c]


def test_fig4_right(benchmark, profile_name):
    result = run_and_report(benchmark, "fig4_right", profile_name)
    assert result.all_checks_pass

    # Growth in lambda: each capacity series increases with the exponent.
    for c in (1, 3):
        series = [r["pool/n"] for r in result.rows if r["c"] == c]
        assert all(a <= b + 0.05 for a, b in zip(series, series[1:])), series

    # c = 3 stays below c = 1 at every lambda (the 1/c effect).
    by_exp_c1 = {r["lambda_exp"]: r["pool/n"] for r in result.rows if r["c"] == 1}
    by_exp_c3 = {r["lambda_exp"]: r["pool/n"] for r in result.rows if r["c"] == 3}
    for exponent, value in by_exp_c3.items():
        assert value <= by_exp_c1[exponent]

    # For c = 1 and large lambda the asymptotic form is exact:
    # pool/n -> ln(1/(1-lambda)) - lambda (mean-field), well approximated
    # by the measured value.
    top = max(by_exp_c1)
    import math

    lam = 1 - 2.0**-top
    assert by_exp_c1[top] == type(by_exp_c1[top])(by_exp_c1[top])
    assert abs(by_exp_c1[top] - (math.log(1 / (1 - lam)) - lam)) < 0.5
