"""Compare a fresh BENCH_engine.json against the committed baseline.

CI regenerates the benchmark artifact on every push (the ``bench`` job)
and then runs this script. The comparison deliberately uses only
**machine-independent ratios** — fused-over-legacy speedups measured on
the *same* run of the *same* machine — so a slower CI runner does not
trip the gate, but a genuinely slower kernel does:

* every ``grid`` cell's ``fused_over_legacy`` ratio,
* the flagship ``kernel_phase.speedup`` (acceptance phase only), and
* the whole-round ``general_c.speedup`` at the c=4 cell.

The same script also gates the distributed-sweep artifact
(``BENCH_sweep.json`` vs ``benchmarks/baseline_sweep.json``, selected
with ``--baseline``): the ``fabric`` fleet-scaling and ``multislot``
slot-scaling speedups are measured on latency-bound tasks, so they are
core-count independent and gate like the kernel ratios. Which ratios
apply is driven by what the *baseline* contains, so one script serves
both artifact shapes.

Absolute rounds/sec and tasks/sec numbers, the ``scaling`` rows, and the
``compute`` sweep modes (all of which depend on the runner's core count)
are reported for context but never gated.

A cell fails when ``current < THRESHOLD * baseline`` (default 0.85x,
override with ``--threshold``). Refresh the baseline by copying a
freshly generated default-profile artifact over it::

    REPRO_BENCH_PROFILE=default python -m pytest benchmarks/test_kernel_speed.py \
        --bench-json BENCH_engine.json
    cp BENCH_engine.json benchmarks/baseline.json

Exit status: 0 when every gated ratio holds, 1 on regression, 2 on a
malformed or incomparable artifact. A cell present only in the *current*
artifact (newly added to the grid) is reported as an informational
``no baseline for cell`` note and never gates — the PR adding a grid cell
must not be blocked on the baseline it is about to create; a cell missing
from the current artifact remains a comparability error (exit 2).
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"
DEFAULT_THRESHOLD = 0.85


def _grid_index(rows):
    index = {}
    for row in rows:
        index[(row["n"], row["c"], row["lam"])] = row
    return index


def collect_checks(baseline: dict, current: dict) -> list[dict]:
    """Yield one comparison record per gated ratio.

    Each record carries the baseline and current values plus a ``ratio``
    of current over baseline; callers decide the pass threshold.
    """
    checks = []

    base_grid = _grid_index(baseline.get("grid", []))
    cur_grid = _grid_index(current.get("grid", []))
    for key in sorted(base_grid):
        if key not in cur_grid:
            # A removed cell is a comparability error, not a regression:
            # fail loudly so the baseline gets refreshed alongside the
            # grid change instead of silently shrinking coverage.
            checks.append(
                {
                    "name": f"grid n={key[0]} c={key[1]} lam={key[2]}",
                    "error": "cell missing from current artifact",
                }
            )
            continue
        base = base_grid[key]["fused_over_legacy"]
        cur = cur_grid[key]["fused_over_legacy"]
        checks.append(
            {
                "name": f"grid n={key[0]} c={key[1]} lam={key[2]}",
                "baseline": base,
                "current": cur,
                "ratio": cur / base,
            }
        )
    for key in sorted(cur_grid):
        if key not in base_grid:
            # The inverse case is informational: a freshly *added* grid
            # cell has no reference yet and must not block the PR that
            # introduces it — the next baseline refresh will pick it up.
            checks.append(
                {
                    "name": f"grid n={key[0]} c={key[1]} lam={key[2]}",
                    "note": "no baseline for cell",
                }
            )

    for section, field in (("kernel_phase", "speedup"), ("general_c", "speedup")):
        base_sec = baseline.get(section)
        cur_sec = current.get(section)
        if not base_sec:
            continue  # baseline predates the section; nothing to gate
        if not cur_sec:
            checks.append({"name": section, "error": "section missing from current artifact"})
            continue
        checks.append(
            {
                "name": section,
                "baseline": base_sec[field],
                "current": cur_sec[field],
                "ratio": cur_sec[field] / base_sec[field],
            }
        )

    for section, fields in (
        ("fabric", ("speedup_2w_over_1w", "speedup_4w_over_1w")),
        ("multislot", ("speedup_4s_over_1s",)),
    ):
        base_sec = baseline.get(section) or {}
        cur_sec = current.get(section) or {}
        for field in fields:
            if field not in base_sec:
                continue  # baseline predates the ratio; nothing to gate
            if field not in cur_sec:
                checks.append(
                    {
                        "name": f"{section}.{field}",
                        "error": "ratio missing from current artifact",
                    }
                )
                continue
            checks.append(
                {
                    "name": f"{section}.{field}",
                    "baseline": base_sec[field],
                    "current": cur_sec[field],
                    "ratio": cur_sec[field] / base_sec[field],
                }
            )

    return checks


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Gate benchmark speedup ratios against the committed baseline."
    )
    parser.add_argument("current", type=Path, help="freshly generated BENCH_engine.json")
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed reference artifact (default: benchmarks/baseline.json)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="fail when current/baseline drops below this (default: %(default)s)",
    )
    args = parser.parse_args(argv)

    try:
        baseline = json.loads(args.baseline.read_text())
        current = json.loads(args.current.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        print(f"check_regression: cannot read artifacts: {exc}", file=sys.stderr)
        return 2

    checks = collect_checks(baseline, current)
    errors = [c for c in checks if "error" in c]
    notes = [c for c in checks if "note" in c]
    gated = [c for c in checks if "ratio" in c]
    if not gated and not errors:
        print("check_regression: no comparable ratios found", file=sys.stderr)
        return 2

    failures = [c for c in gated if c["ratio"] < args.threshold]

    width = max(len(c["name"]) for c in checks)
    print(f"{'cell':<{width}}  {'baseline':>8}  {'current':>8}  {'ratio':>6}  status")
    for c in checks:
        if "error" in c:
            print(f"{c['name']:<{width}}  {'-':>8}  {'-':>8}  {'-':>6}  ERROR: {c['error']}")
            continue
        if "note" in c:
            print(f"{c['name']:<{width}}  {'-':>8}  {'-':>8}  {'-':>6}  note: {c['note']}")
            continue
        status = "FAIL" if c["ratio"] < args.threshold else "ok"
        print(
            f"{c['name']:<{width}}  {c['baseline']:>7.2f}x  {c['current']:>7.2f}x"
            f"  {c['ratio']:>5.2f}x  {status}"
        )

    if errors:
        print(
            f"\ncheck_regression: {len(errors)} cell(s) not comparable — regenerate "
            "the baseline when changing the benchmark grid.",
            file=sys.stderr,
        )
        return 2
    if failures:
        print(
            f"\ncheck_regression: {len(failures)} ratio(s) below "
            f"{args.threshold:.2f}x of baseline.",
            file=sys.stderr,
        )
        return 1
    suffix = f" ({len(notes)} new cell(s) without a baseline)" if notes else ""
    print(f"\ncheck_regression: all {len(gated)} ratios within {args.threshold:.2f}x.{suffix}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
