"""Shared configuration for the benchmark suite.

Every benchmark regenerates one paper artifact (DESIGN.md Section 2) and
prints the same rows/series the paper's figure shows. The scale profile is
selected with the ``REPRO_BENCH_PROFILE`` environment variable
(``quick`` | ``default`` | ``paper``; default ``quick`` so the whole suite
finishes in minutes on one core).
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments import PROFILES, ExperimentResult, run_experiment


@pytest.fixture(scope="session")
def profile_name() -> str:
    name = os.environ.get("REPRO_BENCH_PROFILE", "quick")
    if name not in PROFILES:
        raise ValueError(f"REPRO_BENCH_PROFILE must be one of {sorted(PROFILES)}")
    return name


def run_and_report(benchmark, experiment_id: str, profile_name: str) -> ExperimentResult:
    """Run an experiment under pytest-benchmark and print its table."""
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id, profile_name), rounds=1, iterations=1
    )
    print()
    print(result.table())
    return result
