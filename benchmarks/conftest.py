"""Shared configuration for the benchmark suite.

Every benchmark regenerates one paper artifact (DESIGN.md Section 2) and
prints the same rows/series the paper's figure shows. The scale profile is
selected with the ``REPRO_BENCH_PROFILE`` environment variable
(``quick`` | ``default`` | ``paper``; default ``quick`` so the whole suite
finishes in minutes on one core).
"""

from __future__ import annotations

import json
import os
import platform
from pathlib import Path

import pytest

from repro.analysis.experiments import PROFILES, ExperimentResult, run_experiment


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="PATH",
        help=(
            "write engine-speed benchmark results (rounds/sec per grid cell, "
            "kernel-phase speedup) to PATH as JSON, e.g. BENCH_engine.json"
        ),
    )
    parser.addoption(
        "--benchmark-quick",
        action="store_true",
        default=False,
        help=(
            "force the 'quick' scale profile regardless of "
            "REPRO_BENCH_PROFILE — the CI fast-matrix smoke switch"
        ),
    )


@pytest.fixture(scope="session")
def bench_json(request: pytest.FixtureRequest, profile_name: str):
    """Accumulator the engine-speed benchmarks append their rows to.

    Written to ``--bench-json PATH`` at session end (and skipped entirely
    when the option is absent, so ad-hoc runs stay side-effect free).
    """
    results: dict = {
        "profile": profile_name,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "grid": [],
        "kernel_phase": None,
    }
    yield results
    path = request.config.getoption("--bench-json")
    if path:
        Path(path).write_text(json.dumps(results, indent=2) + "\n")


@pytest.fixture(scope="session")
def sweep_json(request: pytest.FixtureRequest, profile_name: str):
    """Accumulator for the sweep-throughput benchmarks (BENCH_sweep.json).

    Same contract as :func:`bench_json`, but for the distributed-runner
    artifact: ``--bench-json`` names one artifact per invocation, so CI
    runs ``test_kernel_speed.py`` and ``test_sweep_throughput.py`` as
    separate pytest sessions. The write is skipped when no sweep section
    was populated, so a kernel-only session never clobbers its artifact.
    """
    results: dict = {
        "profile": profile_name,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpus": os.cpu_count() or 1,
        "fabric": None,
        "compute": None,
    }
    yield results
    path = request.config.getoption("--bench-json")
    if path and (results["fabric"] is not None or results["compute"] is not None):
        Path(path).write_text(json.dumps(results, indent=2) + "\n")


@pytest.fixture(scope="session")
def profile_name(request: pytest.FixtureRequest) -> str:
    if request.config.getoption("--benchmark-quick"):
        return "quick"
    name = os.environ.get("REPRO_BENCH_PROFILE", "quick")
    if name not in PROFILES:
        raise ValueError(f"REPRO_BENCH_PROFILE must be one of {sorted(PROFILES)}")
    return name


def run_and_report(benchmark, experiment_id: str, profile_name: str) -> ExperimentResult:
    """Run an experiment under pytest-benchmark and print its table."""
    result = benchmark.pedantic(
        run_experiment, args=(experiment_id, profile_name), rounds=1, iterations=1
    )
    print()
    print(result.table())
    return result
