"""Ablation: the oldest-first acceptance rule (paper Algorithm 1).

Bins accepting "the oldest balls among its requests" is the aging
mechanism behind Observation 1 and hence the waiting-time theorem.
Flipping acceptance to youngest-first is a surgical ablation: the
pool-size dynamics are *identical* (acceptance counts per bin depend only
on request counts), so any waiting-time change is attributable to aging
alone — and the tail explodes while the average stays put.
"""

from conftest import run_and_report


def test_ablation_aging(benchmark, profile_name):
    result = run_and_report(benchmark, "ablation_aging", profile_name)
    assert result.all_checks_pass

    def row(order, exp):
        return next(r for r in result.rows if r["order"] == order and r["lambda_exp"] == exp)

    for exp in sorted({r["lambda_exp"] for r in result.rows}):
        oldest, youngest = row("oldest", exp), row("youngest", exp)
        # Averages are statistically indistinguishable...
        assert abs(oldest["avg_wait"] - youngest["avg_wait"]) < 0.3
        # ...but starvation shows in every tail metric.
        assert youngest["p99_wait"] > oldest["p99_wait"]
        assert youngest["max_wait"] >= 3 * oldest["max_wait"]
        assert youngest["peak_pool_age"] >= 3 * oldest["peak_pool_age"]
