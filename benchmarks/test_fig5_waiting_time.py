"""FIG5-L / FIG5-R: average and maximum waiting time (paper Figure 5).

Left plot: waits vs capacity c ∈ [1, 5] for λ = 1−1/2², 1−1/2¹⁰, 1−1/2¹³.
Right plot: waits vs λ = 1−2^{−i}, i ∈ [1, 10], for c = 1 and c = 3.
Reference (dashed): ``ln(1/(1−λ))/c + log log n + c``.

Shape targets: max wait stays below the reference; for large λ the waits
first drop with c then rise again (the sweet spot, asserted in the
dedicated sweet-spot bench); waits grow only logarithmically in 1/(1−λ).
"""

from conftest import run_and_report


def test_fig5_left(benchmark, profile_name):
    result = run_and_report(benchmark, "fig5_left", profile_name)
    assert result.all_checks_pass

    for exponent in {row["lambda_exp"] for row in result.rows}:
        series = [r for r in result.rows if r["lambda_exp"] == exponent]
        # avg <= max everywhere.
        assert all(r["avg_wait"] <= r["max_wait"] for r in series)
        # Going from c=1 to c=2 helps whenever lambda is large.
        if exponent >= 10:
            c1 = next(r for r in series if r["c"] == 1)
            c2 = next(r for r in series if r["c"] == 2)
            assert c2["avg_wait"] < c1["avg_wait"]


def test_fig5_right(benchmark, profile_name):
    result = run_and_report(benchmark, "fig5_right", profile_name)
    assert result.all_checks_pass

    for c in (1, 3):
        series = [r["avg_wait"] for r in result.rows if r["c"] == c]
        # Monotone growth in lambda (tiny noise tolerance).
        assert all(a <= b + 0.3 for a, b in zip(series, series[1:])), series

    # Logarithmic growth: doubling 1/(1-lambda) adds roughly a constant,
    # so the increment between consecutive exponents stays bounded.
    c1 = [r["avg_wait"] for r in result.rows if r["c"] == 1]
    increments = [b - a for a, b in zip(c1, c1[1:])]
    assert max(increments) < 2.5, increments

    # c=3 beats c=1 on average wait at the largest lambda.
    top = max(r["lambda_exp"] for r in result.rows)
    avg_c1 = next(r["avg_wait"] for r in result.rows if r["c"] == 1 and r["lambda_exp"] == top)
    avg_c3 = next(r["avg_wait"] for r in result.rows if r["c"] == 3 and r["lambda_exp"] == top)
    assert avg_c3 < avg_c1
