"""Validation of the Lemma 3–5 drain pipeline (the waiting-time proof).

A spike of 6n balls with arrivals switched off realises the proof's
setting directly; each stage of the pool's collapse is clocked against
the corresponding lemma's bound: Δ = m/(n − n/e) rounds to 2n (Lemma 3),
19 rounds to n/(2e) (Lemma 4), log log n + O(1) to empty (Lemma 5), and
at most c extra rounds for the buffers to flush (Section IV-C).
"""

from conftest import run_and_report


def test_drain_stages(benchmark, profile_name):
    result = run_and_report(benchmark, "drain_stages", profile_name)
    assert result.all_checks_pass

    for row in result.rows:
        # The bounds are loose by design; the measured stages should be
        # comfortably inside them, not grazing them.
        assert row["stage1_rounds"] < row["lemma3_bound"]
        assert row["stage2_rounds"] < row["lemma4_bound"] / 2
        # Larger buffers can only speed up the drain (Observation 1).
        assert row["flush_rounds"] <= row["c"]

    stage1_by_c = {row["c"]: row["stage1_rounds"] for row in result.rows}
    assert stage1_by_c[3] <= stage1_by_c[1]
