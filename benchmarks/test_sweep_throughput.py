"""Sweep throughput: serial vs ``--jobs`` vs broker fleets (BENCH_sweep.json).

Two sections, separating the two ways a distributed sweep can be fast:

* **fabric** — dispatch scalability of the broker itself. The tasks are
  latency-bound stubs (each parks in ``time.sleep``), so throughput is
  limited by how many leases the broker keeps in flight, not by cores.
  Four workers must clear the queue ≥ 3x faster than one — on *any*
  machine, including a 1-CPU container — or the lease loop has grown a
  serialisation bottleneck. This is the gated, machine-independent ratio
  (``fabric.speedup_4w_over_1w`` in ``benchmarks/baseline_sweep.json``).
* **multislot** — dispatch scalability of a *single* worker process.
  ``repro worker --jobs 4`` runs one connection and one heartbeat but
  four compute slots, so on the same latency-bound stubs one wide
  worker must clear the queue ≥ 3x faster than the same worker with
  one slot (``multislot.speedup_4s_over_1s``, gated like ``fabric``).
* **compute** — real quick-profile sweeps end-to-end: serial
  ``run_experiment``, the local ``--jobs`` pool, and ``repro worker``
  subprocess fleets behind a broker. These tasks are core-bound, so the
  absolute tasks/sec and the broker-vs-serial ratio depend on the
  runner's core count (recorded as ``cpus``) and are informational, like
  the shard-``scaling`` rows in BENCH_engine.json. What *is* asserted is
  the correctness half of the acceptance bar: every mode's merged CSV is
  byte-identical to the serial run.

Run with ``--bench-json BENCH_sweep.json`` to write the artifact; the CI
bench job gates it against ``benchmarks/baseline_sweep.json`` via
``check_regression.py --baseline``.
"""

from __future__ import annotations

import asyncio
import contextlib
import os
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

import repro
from repro.analysis.experiments import PROFILES, Profile, run_experiment
from repro.distributed import Broker, BrokerClient, BrokerConfig, Worker
from repro.parallel.runner import run_experiments

pytestmark = pytest.mark.bench

TINY = Profile(name="bench-tiny", n=256, measure=30, replicates=2, seed=4242)


class _BrokerThread:
    """One live broker on a background event loop.

    Benchmarks cannot import the test-suite harness (``tests/`` is not a
    package on the benchmark path), so this is its minimal twin.
    """

    def __init__(self, **config_kwargs):
        config_kwargs.setdefault("host", "127.0.0.1")
        config_kwargs.setdefault("port", 0)
        self.broker = Broker(BrokerConfig(**config_kwargs))
        self.loop: asyncio.AbstractEventLoop | None = None
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        try:
            self.loop.run_until_complete(self.broker.serve())
        finally:
            self.loop.close()

    def __enter__(self) -> "_BrokerThread":
        self.thread.start()
        deadline = time.monotonic() + 5.0
        while self.broker.port is None:
            if time.monotonic() > deadline or not self.thread.is_alive():
                raise RuntimeError("broker failed to bind within 5s")
            time.sleep(0.01)
        return self

    @property
    def address(self) -> str:
        return f"127.0.0.1:{self.broker.port}"

    def __exit__(self, *exc) -> None:
        if self.loop is not None and self.thread.is_alive():
            self.loop.call_soon_threadsafe(self.broker.shutdown)
        self.thread.join(timeout=5.0)

    def wait_for_workers(self, count: int, timeout: float = 30.0) -> None:
        """Block until ``count`` workers hold live broker sessions.

        Keeps fleet spin-up (process fork + interpreter start) out of the
        measured window; the sweep clock starts on a ready fleet.
        """
        deadline = time.monotonic() + timeout
        while len(self.broker.workers) < count:
            if time.monotonic() > deadline:
                raise RuntimeError(f"{count} worker(s) not connected within {timeout}s")
            time.sleep(0.02)


@contextlib.contextmanager
def _stub_fleet(address: str, count: int, task_fn, jobs: int = 1):
    """``count`` in-thread Workers running ``task_fn`` instead of a simulation."""
    entries: list[tuple[Worker, threading.Thread]] = []
    for index in range(count):
        worker = Worker(
            address, worker_id=f"bench-{index}", task_fn=task_fn, poll=0.01, jobs=jobs
        )
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        entries.append((worker, thread))
    try:
        yield
    finally:
        for worker, _ in entries:
            worker._stop = True
        for _, thread in entries:
            thread.join(timeout=5.0)


def _spawn_cli_worker(address: str, worker_id: str) -> subprocess.Popen:
    """A real ``repro worker`` subprocess — the deployed execution path."""
    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = os.pathsep.join(p for p in (src, env.get("PYTHONPATH")) if p)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", address, "--id", worker_id, "--quiet"],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def _reap(*procs: subprocess.Popen) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
            proc.kill()
            proc.wait(timeout=10)


def test_fabric_dispatch_scaling(sweep_json, profile_name):
    """Broker dispatch throughput vs fleet size on latency-bound tasks."""
    quick = profile_name == "quick"
    tasks = 12 if quick else 32
    dwell = 0.05 if quick else 0.08

    def dwell_task(payload):
        time.sleep(dwell)
        return {
            "outcome": {"dwell": dwell},
            "elapsed": dwell,
            "pid": os.getpid(),
            "resumed_round": None,
        }

    payloads = [
        {"kind": "capped", "params": {"n": 64, "c": 2, "lam": 0.5, "cell": i}, "replicate": 0}
        for i in range(tasks)
    ]

    rates: dict[int, float] = {}
    for fleet_size in (1, 2, 4):
        # Fresh broker per fleet: no shared cache or in-memory dedup, so
        # every mode pays for the same full task set.
        with _BrokerThread() as harness, _stub_fleet(harness.address, fleet_size, dwell_task):
            harness.wait_for_workers(fleet_size)
            client = BrokerClient(harness.address)
            start = time.perf_counter()
            done = sum(1 for _ in client.run_tasks(payloads))
            elapsed = time.perf_counter() - start
        assert done == tasks
        rates[fleet_size] = tasks / elapsed

    speedup_2w = rates[2] / rates[1]
    speedup_4w = rates[4] / rates[1]
    print(
        f"\nfabric ({tasks} tasks x {dwell * 1e3:.0f}ms dwell): "
        + "  ".join(f"{k}w {v:.1f} task/s" for k, v in sorted(rates.items()))
        + f"  |  4w/1w {speedup_4w:.2f}x"
    )
    sweep_json["fabric"] = {
        "tasks": tasks,
        "dwell_seconds": dwell,
        "tasks_per_sec": {f"{k}w": v for k, v in sorted(rates.items())},
        "speedup_2w_over_1w": speedup_2w,
        "speedup_4w_over_1w": speedup_4w,
    }
    # Latency-bound tasks scale with lease concurrency regardless of core
    # count; the quick smoke keeps a looser bar (short dwells make the
    # constant per-task dispatch overhead proportionally larger).
    assert speedup_4w >= (2.0 if quick else 3.0)
    assert speedup_2w >= 1.3


def test_multislot_dispatch_scaling(sweep_json, profile_name):
    """One worker process, ``--jobs`` slots, latency-bound tasks.

    The acceptance bar for multi-slot workers: with four slots a single
    worker must clear a latency-bound queue ≥ 3x faster than with one —
    independent of core count, since every task parks in ``sleep``.
    """
    quick = profile_name == "quick"
    tasks = 12 if quick else 32
    # Dwells are longer than fabric's: a single connection serialises the
    # lease/upload roundtrips across its slots, so the task latency must
    # clearly dominate that fixed per-task cost for the ratio to measure
    # slot concurrency rather than dispatch overhead.
    dwell = 0.1 if quick else 0.15

    def dwell_task(payload):
        time.sleep(dwell)
        return {
            "outcome": {"dwell": dwell},
            "elapsed": dwell,
            "pid": os.getpid(),
            "resumed_round": None,
        }

    payloads = [
        {"kind": "capped", "params": {"n": 64, "c": 2, "lam": 0.5, "cell": i}, "replicate": 0}
        for i in range(tasks)
    ]

    rates: dict[int, float] = {}
    for slots in (1, 4):
        with _BrokerThread() as harness, _stub_fleet(
            harness.address, 1, dwell_task, jobs=slots
        ):
            harness.wait_for_workers(1)
            client = BrokerClient(harness.address)
            start = time.perf_counter()
            done = sum(1 for _ in client.run_tasks(payloads))
            elapsed = time.perf_counter() - start
        assert done == tasks
        rates[slots] = tasks / elapsed

    speedup_4s = rates[4] / rates[1]
    print(
        f"\nmultislot ({tasks} tasks x {dwell * 1e3:.0f}ms dwell, 1 worker): "
        + "  ".join(f"{k}s {v:.1f} task/s" for k, v in sorted(rates.items()))
        + f"  |  4s/1s {speedup_4s:.2f}x"
    )
    sweep_json["multislot"] = {
        "tasks": tasks,
        "dwell_seconds": dwell,
        "tasks_per_sec": {f"{k}s": v for k, v in sorted(rates.items())},
        "speedup_4s_over_1s": speedup_4s,
    }
    # Same machine-independence argument as the fabric gate: the quick
    # smoke keeps a looser bar for its proportionally larger overhead.
    assert speedup_4s >= (2.0 if quick else 3.0)


def test_compute_sweep_throughput(sweep_json, profile_name):
    """Real sweeps: serial vs local pool vs ``repro worker`` fleets."""
    quick = profile_name == "quick"
    profile = TINY if quick else PROFILES["quick"]
    experiment = "fig4_left"

    start = time.perf_counter()
    serial = run_experiment(experiment, profile)
    serial_elapsed = time.perf_counter() - start
    reference_csv = serial.csv()

    start = time.perf_counter()
    pool = run_experiments([experiment], profile=profile, jobs=4)
    pool_elapsed = time.perf_counter() - start
    assert pool.results[0].csv() == reference_csv
    tasks_total = pool.tasks_total

    modes = {
        "serial": tasks_total / serial_elapsed,
        "jobs_4": tasks_total / pool_elapsed,
    }
    for fleet_size in (1, 4):
        with _BrokerThread() as harness:
            procs = [
                _spawn_cli_worker(harness.address, f"cw-{fleet_size}-{i}")
                for i in range(fleet_size)
            ]
            try:
                harness.wait_for_workers(fleet_size)
                start = time.perf_counter()
                report = run_experiments([experiment], profile=profile, broker=harness.address)
                elapsed = time.perf_counter() - start
            finally:
                _reap(*procs)
        assert report.results[0].csv() == reference_csv
        assert report.tasks_remote == report.tasks_total == tasks_total
        modes[f"broker_{fleet_size}w"] = tasks_total / elapsed

    cpus = os.cpu_count() or 1
    print(
        f"\ncompute ({experiment}, profile {profile.name}, {tasks_total} tasks, "
        f"{cpus} cpu(s)): "
        + "  ".join(f"{mode} {rate:.2f} task/s" for mode, rate in modes.items())
    )
    sweep_json["compute"] = {
        "experiment": experiment,
        "sim_profile": profile.name,
        "tasks": tasks_total,
        "cpus": cpus,
        **modes,
    }
