"""The static allocation landscape — every baseline in one table.

Not a single paper artifact but the background the paper's introduction
paints: for m = n balls, one random choice costs ~ln n/ln ln n maximum
load, two sequential choices collapse it to ~log log n (Azar et al.),
asymmetry helps further (Vöcking), and the parallel protocols (THRESHOLD,
Stemann's collision game) buy the same league in O(log log n) rounds.
The bench regenerates the whole hierarchy and asserts its ordering.
"""

import math


from repro.processes.always_go_left import always_go_left
from repro.processes.sequential import max_load, sequential_greedy_d, sequential_one_choice
from repro.processes.stemann import stemann_collision
from repro.processes.threshold import threshold_allocate

N = 4096
SEEDS = (1, 2, 3)


def _collect():
    rows = []
    one = max(max_load(sequential_one_choice(N, N, rng=s)) for s in SEEDS)
    rows.append({"process": "one-choice (sequential)", "max_load": one, "rounds": "-"})
    two = max(max_load(sequential_greedy_d(N, N, 2, rng=s)) for s in SEEDS)
    rows.append({"process": "GREEDY[2] (sequential)", "max_load": two, "rounds": "-"})
    agl = max(max_load(always_go_left(N, N, 2, rng=s)) for s in SEEDS)
    rows.append({"process": "ALWAYS-GO-LEFT[2]", "max_load": agl, "rounds": "-"})
    thr = [threshold_allocate(N, N, 1, rng=s) for s in SEEDS]
    rows.append(
        {
            "process": "THRESHOLD[1] (parallel)",
            "max_load": max(r.max_load for r in thr),
            "rounds": max(r.rounds for r in thr),
        }
    )
    ste = [stemann_collision(N, N, rng=s) for s in SEEDS]
    rows.append(
        {
            "process": "Stemann collision (parallel)",
            "max_load": max(r.max_load for r in ste),
            "rounds": max(r.rounds for r in ste),
        }
    )
    return rows


def test_static_landscape(benchmark):
    rows = benchmark.pedantic(_collect, rounds=1, iterations=1)

    from repro.analysis.tables import format_table

    print()
    print(format_table(rows, title=f"static allocation of m = n = {N} balls"))

    by_name = {row["process"]: row for row in rows}
    one = by_name["one-choice (sequential)"]["max_load"]
    two = by_name["GREEDY[2] (sequential)"]["max_load"]
    agl = by_name["ALWAYS-GO-LEFT[2]"]["max_load"]

    # The power-of-two-choices hierarchy.
    assert two < one
    assert agl <= two

    # One-choice sits at the ln n/lnln n scale.
    scale = math.log(N) / math.log(math.log(N))
    assert 0.5 * scale <= one <= 3 * scale

    # Two choices sit at the loglog n scale.
    assert two <= math.log(math.log(N)) / math.log(2) + 3

    # The parallel protocols terminate in O(log log n) rounds with
    # comparable loads.
    for name in ("THRESHOLD[1] (parallel)", "Stemann collision (parallel)"):
        row = by_name[name]
        assert row["rounds"] <= math.log(math.log(N)) + 5
        assert row["max_load"] <= row["rounds"]
