"""Fused-kernel engine benchmarks: the PR's perf acceptance metric.

Two measurements, both over the CAPPED(c, λ) grid the paper sweeps:

* **End-to-end rounds/sec** for the fused kernel, the legacy per-bucket
  reference, and the batched-replicate engine, from a mean-field warm
  start (so the pool is at its stationary size and the timing reflects
  the regime the figures actually run in).
* **Kernel-phase speedup** at the flagship cell (n = 2¹⁵, λ = 0.99,
  c = 1): the acceptance-resolution phase alone — both kernels replay
  the *same* injected choices on the *same* captured equilibrium state,
  so the comparison excludes the shared RNG draw and FIFO deletion and
  is deterministic up to timer noise. This is the ``>= 5x`` gate.

Run with ``--bench-json BENCH_engine.json`` (see ``conftest.py``) to
write the measured rows as a machine-readable artifact; CI uploads it on
every push. ``REPRO_BENCH_PROFILE=quick`` (the default) keeps round
counts small enough for the fast-matrix smoke; the artifact job runs the
``default`` profile, which also arms the full 5x assertion.
"""

from __future__ import annotations

import statistics
import time

import numpy as np
import pytest

import os

from repro.core.capped import CappedProcess
from repro.core.meanfield import equilibrium
from repro.kernels import BatchedCappedProcess
from repro.kernels.sharded import ShardedCappedProcess
from repro.rng import RngFactory

pytestmark = pytest.mark.bench

GRID = [(n, c, lam) for n in (2**12, 2**15) for c in (1, 2, 4, 8) for lam in (0.7, 0.95, 0.99)]


def _lam_eff(n: int, lam: float) -> float:
    """Nearest λ with integral λn (DeterministicArrivals requires it)."""
    return round(lam * n) / n


def _warm_process(n, c, lam, kernel, seed=0, warm=60):
    lam_eff = _lam_eff(n, lam)
    process = CappedProcess(
        n=n,
        capacity=c,
        lam=lam_eff,
        rng=seed,
        initial_pool=equilibrium(c, lam_eff).pool_size(n),
        kernel=kernel,
    )
    for _ in range(warm):
        process.step()
    return process


def _rounds_per_sec(step, rounds: int) -> float:
    start = time.perf_counter()
    for _ in range(rounds):
        step()
    return rounds / (time.perf_counter() - start)


@pytest.mark.parametrize(
    ("n", "c", "lam"), GRID, ids=[f"n={n}-c={c}-lam={lam}" for n, c, lam in GRID]
)
def test_engine_rounds_per_sec(benchmark, bench_json, profile_name, n, c, lam):
    """Fused vs legacy vs batched throughput at one grid cell."""
    quick = profile_name == "quick"
    rounds = (8 if quick else 40) if n >= 2**15 else (30 if quick else 150)
    replicates = 4

    legacy = _warm_process(n, c, lam, "legacy", warm=rounds // 2 + 5)
    fused = _warm_process(n, c, lam, "fused", warm=rounds // 2 + 5)
    batched = BatchedCappedProcess(
        n=n,
        capacity=c,
        lam=_lam_eff(n, lam),
        rngs=[RngFactory(0).child(r).generator("capped") for r in range(replicates)],
        initial_pool=equilibrium(c, _lam_eff(n, lam)).pool_size(n),
    )
    for _ in range(rounds // 2 + 5):
        batched.step()

    legacy_rps = _rounds_per_sec(legacy.step, rounds)
    fused_rps = benchmark.pedantic(
        _rounds_per_sec, args=(fused.step, rounds), rounds=1, iterations=1
    )
    # Batched advances all replicates per step; credit replicate-rounds.
    batched_rps = replicates * _rounds_per_sec(batched.step, max(2, rounds // 2))

    speedup = fused_rps / legacy_rps
    print(
        f"\nn={n} c={c} lam={lam}: legacy {legacy_rps:,.0f} r/s, "
        f"fused {fused_rps:,.0f} r/s ({speedup:.2f}x), "
        f"batched {batched_rps:,.0f} replicate-r/s"
    )
    bench_json["grid"].append(
        {
            "n": n,
            "c": c,
            "lam": lam,
            "lam_eff": _lam_eff(n, lam),
            "rounds": rounds,
            "legacy_rounds_per_sec": legacy_rps,
            "fused_rounds_per_sec": fused_rps,
            "batched_replicate_rounds_per_sec": batched_rps,
            "fused_over_legacy": speedup,
        }
    )


def test_general_c_speedup_gate(benchmark, bench_json, profile_name):
    """Whole-round fused/legacy ratio at the general-c cell (n=2^12, c=4).

    Interleaved best-of measurement: alternate short legacy/fused blocks
    and take the best (minimum) per-round time of each across all blocks.
    Ambient load inflates both sides of a pair together, so the ratio of
    bests is far more stable than one long timing of each — the same
    drift-cancelling idea as the flagship kernel-phase gate, but over
    *whole rounds* (RNG draw + acceptance + deletion), which is what the
    sweep actually pays.
    """
    n, c, lam = 2**12, 4, 0.99
    quick = profile_name == "quick"
    blocks, rounds = (5, 60) if quick else (9, 120)

    legacy = _warm_process(n, c, lam, "legacy", warm=80)
    fused = _warm_process(n, c, lam, "fused", warm=80)

    def best_block(process):
        start = time.perf_counter()
        for _ in range(rounds):
            process.step()
        return (time.perf_counter() - start) / rounds

    legacy_best = min(best_block(legacy) for _ in range(blocks))
    fused_best = benchmark.pedantic(
        lambda: min(best_block(fused) for _ in range(blocks)), rounds=1, iterations=1
    )
    speedup = legacy_best / fused_best
    print(
        f"\ngeneral-c gate (n={n}, c={c}, lam={lam}): "
        f"legacy {legacy_best * 1e6:.0f} us/round, fused {fused_best * 1e6:.0f} us/round, "
        f"speedup {speedup:.2f}x"
    )
    bench_json["general_c"] = {
        "n": n,
        "c": c,
        "lam": lam,
        "blocks": blocks,
        "rounds_per_block": rounds,
        "legacy_us_per_round": legacy_best * 1e6,
        "fused_us_per_round": fused_best * 1e6,
        "speedup": speedup,
    }
    # The serial whole-round kernel lands ~2.6-2.8x end-to-end at this
    # cell on an unloaded core (see the README performance table); the
    # gate sits below that so only a real kernel regression fails CI, not
    # runner contention.
    assert speedup >= (2.0 if quick else 2.3)


def test_sharded_scaling(bench_json, profile_name):
    """Shard-scaling rows at large n: one simulation across worker processes.

    ``shards=1`` is the single-process fused engine; ``shards>=2`` run the
    shared-memory process backend. Speedup over the 1-shard row requires
    real cores — the row records ``cpus`` so the artifact is
    interpretable on any runner, and the scaling assertion only arms on
    multicore machines (single-core boxes pay the IPC barriers with
    nothing to parallelise onto).
    """
    n = 2**18 if profile_name == "quick" else 2**20
    c, lam = 4, 0.95
    rounds = 4 if profile_name == "quick" else 8
    warm = 3 if profile_name == "quick" else 6
    lam_eff = _lam_eff(n, lam)
    initial_pool = equilibrium(c, lam_eff).pool_size(n)
    cpus = os.cpu_count() or 1

    rows = []
    baseline = _warm_process(n, c, lam, "fused", warm=warm)
    rps = _rounds_per_sec(baseline.step, rounds)
    rows.append({"shards": 1, "rounds_per_sec": rps, "backend": "fused"})
    for shards in (2, 4):
        with ShardedCappedProcess(
            n=n,
            capacity=c,
            lam=lam_eff,
            seed=0,
            shards=shards,
            backend="process",
            initial_pool=initial_pool,
        ) as engine:
            for _ in range(warm):
                engine.step()
            rps = _rounds_per_sec(engine.step, rounds)
        rows.append({"shards": shards, "rounds_per_sec": rps, "backend": "process"})

    print(f"\nshard scaling (n={n}, c={c}, lam={lam}, cpus={cpus}):")
    for row in rows:
        print(f"  shards={row['shards']}: {row['rounds_per_sec']:.2f} rounds/s")
    bench_json["scaling"] = {"n": n, "c": c, "lam": lam, "cpus": cpus, "rows": rows}

    by_shards = {row["shards"]: row["rounds_per_sec"] for row in rows}
    # Sanity on any machine: the worker barriers must not eat the round.
    assert by_shards[2] > 0.2 * by_shards[1]
    if cpus >= 2:
        # Real cores available: sharding must beat the single process.
        assert by_shards[max(s for s in by_shards if s <= cpus)] > by_shards[1]


def test_kernel_phase_speedup_flagship(benchmark, bench_json, profile_name):
    """Acceptance-phase fused/legacy ratio at n=2^15, λ=0.99, c=1.

    Both kernels resolve the *same* captured equilibrium round with the
    *same* injected choices; state is restored outside the timed region
    after every repetition, so each sample times exactly one acceptance
    resolution (scatter/count + commit), nothing else.
    """
    n, c, lam = 2**15, 1, 0.99
    quick = profile_name == "quick"
    blocks, inner = (4, 4) if quick else (8, 8)

    fused = _warm_process(n, c, lam, "fused", warm=100 if quick else 300)
    legacy = CappedProcess(n=n, capacity=c, lam=fused.lam, rng=1, kernel="legacy")

    t = fused.round
    pool_state = fused.pool.get_state()
    saved_loads = fused.bins.loads.copy()
    thrown = fused.pool.size
    choices = np.random.default_rng(7).integers(0, n, size=thrown)

    def restore(process):
        process.round = t
        process.pool.set_state(pool_state)
        process.bins.loads[:] = saved_loads
        process.bins.free_slots()[:] = c - saved_loads

    def block_min(process, resolve):
        # Min over consecutive repetitions: the least-perturbed sample of
        # the code's actual cost (pytest-benchmark's recommended statistic
        # for sub-ms kernels).
        best = float("inf")
        for _ in range(inner):
            restore(process)
            start = time.perf_counter()
            resolve()
            best = min(best, time.perf_counter() - start)
        return best

    # Alternate legacy/fused blocks and take the median of per-block
    # ratios: ambient machine load inflates both kernels of a pair
    # together, so drift cancels out of the ratio instead of landing on
    # whichever kernel happened to run during the busy window.
    ratios, legacy_times, fused_times = [], [], []
    for _ in range(blocks):
        legacy_s = block_min(legacy, lambda: legacy._resolve_legacy(t, choices))
        fused_s = block_min(fused, lambda: fused._resolve_fused(t, thrown, choices))
        ratios.append(legacy_s / fused_s)
        legacy_times.append(legacy_s)
        fused_times.append(fused_s)
    legacy_ms = statistics.median(legacy_times) * 1e3
    fused_ms = statistics.median(fused_times) * 1e3
    speedup = statistics.median(ratios)
    restore(fused)
    benchmark.pedantic(lambda: fused._resolve_fused(t, thrown, choices), rounds=1, iterations=1)

    print(
        f"\nkernel phase (n={n}, c={c}, lam={lam}): "
        f"legacy {legacy_ms:.3f} ms, fused {fused_ms:.3f} ms, speedup {speedup:.2f}x"
    )
    bench_json["kernel_phase"] = {
        "n": n,
        "c": c,
        "lam": lam,
        "blocks": blocks,
        "inner": inner,
        "legacy_ms": legacy_ms,
        "fused_ms": fused_ms,
        "speedup": speedup,
    }
    # Regression gate. The acceptance target is 5x, which an unloaded
    # machine reaches (see the README performance table); the gate leaves
    # headroom below it so that a real kernel regression — not runner
    # contention, which hits the bandwidth-bound fused path hardest —
    # is what fails CI.
    assert speedup >= (2.5 if quick else 4.0)
