"""CLAIM-SWEET: the waiting-time sweet spot (paper Abstract + Section V).

The paper: waiting times show "a minimum for both the average and the
maximum waiting times around c = 2 and c = 3 for the specified values of
λ", matching the theoretical ``c* = Θ(√ln(1/(1−λ)))``.
"""

from conftest import run_and_report

from repro.core import theory


def test_sweet_spot(benchmark, profile_name):
    result = run_and_report(benchmark, "sweet_spot", profile_name)
    assert result.all_checks_pass

    rows = result.rows
    avg = {r["c"]: r["avg_wait"] for r in rows}
    # Interior minimum: the avg wait at the best c beats both ends of the
    # sweep (c=1 suffers pool delay, c=8 suffers buffer delay).
    best_c = min(avg, key=avg.get)
    assert avg[best_c] < avg[1]
    assert avg[best_c] <= avg[8]

    # The measured optimum is within one of the theory prediction.
    lam_exp = 10 if "substituted" not in " ".join(result.notes) else None
    if lam_exp is not None:
        predicted = theory.sweet_spot_c(1 - 2.0**-lam_exp)
        assert abs(best_c - predicted) <= 1, (best_c, predicted)

    # Pool keeps shrinking with c even past the wait optimum — the O(c)
    # term is a waiting-time phenomenon, not a pool-size one.
    pools = [r["pool/n"] for r in rows]
    assert pools == sorted(pools, reverse=True)
