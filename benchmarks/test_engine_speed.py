"""Engine micro-benchmarks (DESIGN.md Section 6, ablation 1).

Times a single round of each simulator and quantifies the speedup of the
age-bucketed vectorised CAPPED implementation over the per-ball reference
— the substitution that makes the paper-scale figures tractable in Python.
"""

import pytest

from repro.core.capped import CappedProcess, ExactCappedSimulator
from repro.core.modcapped import ModCappedProcess
from repro.processes.greedy import GreedyBatchProcess


@pytest.mark.parametrize("n", [1024, 8192])
def test_capped_round_speed(benchmark, n):
    process = CappedProcess(n=n, capacity=2, lam=1 - 2**-6, rng=0)
    for _ in range(50):  # reach steady state before timing
        process.step()
    benchmark(process.step)


def test_exact_round_speed(benchmark):
    process = ExactCappedSimulator(n=256, capacity=2, lam=1 - 2**-6, rng=0)
    for _ in range(50):
        process.step()
    benchmark(process.step)


def test_fast_beats_exact_per_ball(benchmark):
    # The ablation claim: at equal n the vectorised simulator wins by a
    # wide margin (the gap grows with n; ~8x already at n=512, orders of
    # magnitude at the paper's 2^15).
    import time

    n, c, lam = 512, 2, 0.875
    fast = CappedProcess(n=n, capacity=c, lam=lam, rng=1)
    exact = ExactCappedSimulator(n=n, capacity=c, lam=lam, rng=1)
    for _ in range(30):
        fast.step()
        exact.step()

    def time_per_round(process, rounds=30):
        start = time.perf_counter()
        for _ in range(rounds):
            process.step()
        return (time.perf_counter() - start) / rounds

    fast_time = benchmark.pedantic(time_per_round, args=(fast,), rounds=1, iterations=1)
    exact_time = time_per_round(exact)
    print(f"\nfast: {fast_time * 1e3:.3f} ms/round, exact: {exact_time * 1e3:.3f} ms/round, "
          f"speedup {exact_time / fast_time:.0f}x")
    assert exact_time > 5 * fast_time


def test_modcapped_round_speed(benchmark):
    process = ModCappedProcess(n=1024, c=3, lam=0.75, rng=0)
    for _ in range(20):
        process.step()
    benchmark(process.step)


def test_greedy_round_speed(benchmark):
    process = GreedyBatchProcess(n=8192, d=2, lam=1 - 2**-6, rng=0)
    for _ in range(50):
        process.step()
    benchmark(process.step)
