"""Extension: layouts of a fixed total buffer budget.

The paper assumes identical bins; the non-uniform-bins work it cites
(Berenbrink et al., JPDC'14) motivates asking how a fixed budget of
buffer slots should be distributed. The fluid limit says the accept rate
is concave in c, so a uniform layout maximises throughput — and the
simulation agrees, with the mixture mean-field matching every layout.
"""

from conftest import run_and_report


def test_heterogeneous_capacity(benchmark, profile_name):
    result = run_and_report(benchmark, "heterogeneous_capacity", profile_name)
    assert result.all_checks_pass

    by_layout = {r["layout"]: r for r in result.rows}
    uniform = by_layout["uniform c=2"]
    skewed = by_layout["skewed 1/9"]
    # The more skewed the layout, the worse every metric gets.
    assert uniform["pool/n"] < by_layout["split 1/3"]["pool/n"] < skewed["pool/n"]
    assert uniform["avg_wait"] < skewed["avg_wait"]
    assert uniform["max_wait"] <= skewed["max_wait"]
