"""Unit tests for the exception hierarchy."""

import pytest

from repro.errors import (
    CapacityExceeded,
    ConfigurationError,
    ExperimentError,
    InvariantViolation,
    ReproError,
    SimulationError,
)


@pytest.mark.parametrize(
    "exc",
    [ConfigurationError, InvariantViolation, CapacityExceeded, SimulationError, ExperimentError],
)
def test_all_derive_from_repro_error(exc):
    assert issubclass(exc, ReproError)


def test_configuration_error_is_value_error():
    # Callers using plain `except ValueError` still catch misconfiguration.
    assert issubclass(ConfigurationError, ValueError)


def test_invariant_violation_is_assertion_error():
    assert issubclass(InvariantViolation, AssertionError)


def test_capacity_exceeded_is_invariant_violation():
    assert issubclass(CapacityExceeded, InvariantViolation)


def test_simulation_and_experiment_are_runtime_errors():
    assert issubclass(SimulationError, RuntimeError)
    assert issubclass(ExperimentError, RuntimeError)


def test_single_except_catches_everything():
    for exc in (ConfigurationError, CapacityExceeded, ExperimentError):
        with pytest.raises(ReproError):
            raise exc("boom")
