"""Fault behaviour of Server/ServerFarm: outages, degraded capacity, and the
observer pipeline — including the edge cases the fault subsystem leans on.

The load-bearing conservation property: during an all-servers-down window
the pending pool absorbs every arrival and no request is ever lost or
duplicated (checked by request-id accounting).
"""

from __future__ import annotations

import pytest

from repro.cluster.farm import ServerFarm
from repro.cluster.policies import RandomPolicy
from repro.cluster.server import Request, Server
from repro.engine.observers import InvariantChecker, TraceRecorder
from repro.errors import InvariantViolation
from repro.faults import CrashBurst, FaultInjector, FaultSchedule


def make_farm(servers=8, capacity=2, rate=0.5, observers=(), rng=0):
    return ServerFarm(
        num_servers=servers,
        capacity=capacity,
        policy=RandomPolicy(),
        rate=rate,
        rng=rng,
        observers=observers,
    )


def conserved(farm):
    """Every generated request is completed, queued, or pending — once."""
    queued = sum(s.queue_length for s in farm.servers)
    return farm._next_id == farm.completed + queued + len(farm.pending)


class TestServerOutage:
    def test_down_server_admits_nothing_without_counting_rejections(self):
        server = Server(capacity=2)
        server.fail()
        returned = server.admit([Request(0, 0), Request(0, 1)])
        assert len(returned) == 2
        assert server.rejected == 0  # outage, not capacity pressure
        assert server.serve() is None
        assert server.free_slots == 0

    def test_preserved_buffer_resumes_fifo_after_recovery(self):
        server = Server(capacity=3)
        server.admit([Request(0, i) for i in range(3)])
        evicted = server.fail()
        assert evicted == []
        server.recover()
        assert server.serve().request_id == 0

    def test_wiped_buffer_returns_evicted_requests(self):
        server = Server(capacity=3)
        server.admit([Request(0, i) for i in range(3)])
        evicted = server.fail(wipe=True)
        assert [r.request_id for r in evicted] == [0, 1, 2]
        assert server.queue_length == 0

    def test_unbounded_server_survives_fail_recover(self):
        server = Server(capacity=None)
        server.admit([Request(0, i) for i in range(10)])
        server.fail()
        assert server.free_slots == 0
        server.recover()
        assert server.free_slots > 0
        server.check_invariants()

    def test_degraded_capacity_never_truncates_queue(self):
        server = Server(capacity=4)
        server.admit([Request(0, i) for i in range(4)])
        server.set_capacity(1)
        assert server.queue_length == 4  # over the new bound, legally
        assert server.free_slots == 0
        server.check_invariants()  # high-water capacity keeps this valid
        server.set_capacity(4)


class TestAllServersDownWindow:
    def test_pending_absorbs_arrivals_no_loss_no_duplication(self):
        schedule = FaultSchedule(
            events=(CrashBurst(at_round=5, fraction=1.0, duration=10),), seed=2
        )
        injector = FaultInjector(schedule)
        trace = TraceRecorder()
        farm = make_farm(observers=[trace, injector, InvariantChecker()])
        for _ in range(40):
            farm.step()
            assert conserved(farm)
        # During the outage window nothing is accepted and nothing completes.
        window = trace.records[5:15]
        assert all(r.accepted == 0 and r.deleted == 0 for r in window)
        # Pending grows by exactly the arrivals each outage tick.
        for before, after in zip(trace.records[5:14], trace.records[6:15]):
            assert after.pool_size == before.pool_size + after.arrivals
        # After recovery the backlog drains again.
        assert injector.all_clear
        assert trace.records[-1].pool_size < trace.records[14].pool_size
        # No request id appears twice anywhere.
        ids = [r.request_id for r in farm.pending]
        for server in farm.servers:
            ids.extend(r.request_id for r in server._queue)
        assert len(ids) == len(set(ids))

    def test_wiped_outage_loses_only_queued_requests(self):
        schedule = FaultSchedule(
            events=(CrashBurst(at_round=5, fraction=1.0, duration=5, buffer_policy="wiped"),),
            seed=2,
        )
        injector = FaultInjector(schedule)
        farm = make_farm(observers=[injector])
        for _ in range(30):
            farm.step()
        # Conservation now includes the wiped requests.
        queued = sum(s.queue_length for s in farm.servers)
        assert farm._next_id == farm.completed + queued + len(farm.pending) + injector.balls_lost


class TestFarmEdgeCapacities:
    def test_unbounded_farm_with_injector_outage(self):
        schedule = FaultSchedule(events=(CrashBurst(at_round=3, fraction=0.5, duration=5),), seed=1)
        injector = FaultInjector(schedule)
        farm = make_farm(capacity=None, observers=[injector])
        for _ in range(20):
            farm.step()
            assert conserved(farm)
        farm.check_invariants()

    def test_zero_capacity_farm_never_accepts(self):
        farm = make_farm(capacity=0, servers=4, rate=0.5)
        for _ in range(10):
            record = farm.step()
            assert record.accepted == 0
        assert len(farm.pending) == farm._next_id
        farm.check_invariants()


class TestFarmObserverPipeline:
    def test_step_returns_round_record_and_notifies(self):
        trace = TraceRecorder()
        farm = make_farm(observers=[trace])
        record = farm.step()
        assert record.round == 1
        assert trace.records == [record]
        assert record.pool_size == len(farm.pending)
        assert record.total_load == sum(s.queue_length for s in farm.servers)

    def test_invariant_checker_reports_farm_context(self):
        farm = make_farm(servers=2, capacity=2)
        record = farm.step()
        # Corrupt the farm: duplicate a pending request.
        farm.pending = [Request(0, 7), Request(0, 7)]
        checker = InvariantChecker()
        with pytest.raises(InvariantViolation) as excinfo:
            checker.on_round(record, farm)
        message = str(excinfo.value)
        assert "round 1" in message and "ServerFarm" in message
        assert "duplicate request" in message

    def test_n_property_matches_num_servers(self):
        farm = make_farm(servers=8)
        assert farm.n == farm.num_servers == 8
