"""ServerFarm / Server checkpoint round-trips, including FIFO request ages
and mid-outage FaultInjector masks."""

from repro.checkpoint import read_checkpoint, write_checkpoint
from repro.cluster.farm import ServerFarm
from repro.cluster.policies import LeastLoadedPolicy, RandomPolicy
from repro.cluster.server import Request, Server
from repro.faults.injector import FaultInjector
from repro.faults.schedule import CapacityDegradation, CrashBurst, FaultSchedule

N_SERVERS = 16


def make_farm(policy=None, rate=0.75, observers=()):
    return ServerFarm(
        num_servers=N_SERVERS,
        capacity=2,
        policy=policy if policy is not None else RandomPolicy(),
        rate=rate,
        rng=0,
        observers=observers,
    )


def record_key(record):
    return (
        record.round,
        record.arrivals,
        record.thrown,
        record.accepted,
        record.deleted,
        record.pool_size,
        record.total_load,
        record.max_load,
        record.wait_values.tolist(),
        record.wait_counts.tolist(),
    )


def run_ticks(farm, ticks):
    return [record_key(farm.step()) for _ in range(ticks)]


class TestFarmRoundTrip:
    def test_restored_farm_continues_identically(self):
        reference = make_farm()
        run_ticks(reference, 30)
        state = reference.get_state()
        tail = run_ticks(reference, 20)

        restored = make_farm()
        restored.set_state(state)
        assert run_ticks(restored, 20) == tail
        assert restored.stats() == reference.stats()

    def test_state_survives_checkpoint_serialisation(self, tmp_path):
        # The state must survive the canonical-JSON checkpoint format, not
        # just an in-memory dict hand-off (tuples→lists, numpy→plain ints).
        reference = make_farm(policy=LeastLoadedPolicy(d=2))
        run_ticks(reference, 25)
        path = tmp_path / "farm.json"
        write_checkpoint(path, reference.get_state())
        tail = run_ticks(reference, 15)

        restored = make_farm(policy=LeastLoadedPolicy(d=2))
        restored.set_state(read_checkpoint(path)["payload"])
        assert run_ticks(restored, 15) == tail

    def test_request_ages_survive(self):
        # A request queued at tick 3 and completed at tick T after a restore
        # must still report latency T - 3: queue order and created_tick both
        # come back from the snapshot.
        server = Server(capacity=3)
        server.admit([Request(created_tick=3, request_id=0), Request(created_tick=5, request_id=1)])
        restored = Server(capacity=3)
        restored.set_state(server.get_state())
        assert restored.serve().latency(10) == 7
        assert restored.serve().latency(10) == 5
        assert restored.completed == 2

    def test_mismatched_server_count_adopts_snapshot_size(self):
        # Elastic membership: a restore may land on a farm built at a
        # different size (the snapshot predates a resize), so set_state
        # rebuilds the server list at the snapshot's size.
        farm = make_farm()
        state = farm.get_state()
        other = ServerFarm(num_servers=2 * N_SERVERS, capacity=2, policy=RandomPolicy(), rng=0)
        other.set_state(state)
        assert other.num_servers == N_SERVERS
        assert other.get_state() == state


class TestFaultMaskRoundTrip:
    SCHEDULE = FaultSchedule(
        events=(
            CrashBurst(at_round=10, fraction=0.25, duration=25),
            CapacityDegradation(at_round=15, duration=25, capacity=1, fraction=0.5),
        ),
        seed=7,
    )

    def test_mid_outage_snapshot_restores_masks(self):
        # Snapshot at tick 20: inside both the crash window (10..35) and the
        # degradation window (15..40). Down flags and degraded capacities
        # live in the farm state; the injector state carries the schedule
        # position (recovery rounds, pending capacity restorations, RNG).
        injector = FaultInjector(self.SCHEDULE)
        reference = make_farm(observers=[injector])
        run_ticks(reference, 20)
        assert injector.down_count > 0

        farm_state = reference.get_state()
        injector_state = injector.get_state()
        tail = run_ticks(reference, 30)
        assert injector.all_clear  # both windows closed by tick 50

        resumed_injector = FaultInjector(self.SCHEDULE)
        resumed_injector.set_state(injector_state)
        restored = make_farm(observers=[resumed_injector])
        restored.set_state(farm_state)

        # The injector's view of who is down matches the snapshot.
        assert resumed_injector.down_count == len(injector_state["down"])
        assert run_ticks(restored, 30) == tail
        assert resumed_injector.all_clear
        assert resumed_injector.crashes == injector.crashes
        assert resumed_injector.recoveries == injector.recoveries
        assert resumed_injector.events_log == injector.events_log

    def test_down_and_degraded_flags_in_server_state(self):
        injector = FaultInjector(self.SCHEDULE)
        farm = make_farm(observers=[injector])
        run_ticks(farm, 16)  # past both event rounds

        restored = make_farm()
        restored.set_state(farm.get_state())
        assert [s.down for s in restored.servers] == [s.down for s in farm.servers]
        assert [s.capacity for s in restored.servers] == [s.capacity for s in farm.servers]
        assert any(s.down for s in restored.servers)
        assert any(s.capacity == 1 for s in restored.servers)
