"""Unit tests for routing policies."""

import numpy as np
import pytest

from repro.cluster.policies import LeastLoadedPolicy, RandomPolicy, RoundRobinPolicy
from repro.cluster.server import Request, Server
from repro.errors import ConfigurationError


def requests(count: int) -> list[Request]:
    return [Request(created_tick=0, request_id=i) for i in range(count)]


def servers(count: int, capacity=None) -> list[Server]:
    return [Server(capacity) for _ in range(count)]


class TestRandomPolicy:
    def test_one_index_per_request(self, rng):
        routed = RandomPolicy().route(requests(10), servers(4), rng)
        assert len(routed) == 10
        assert routed.min() >= 0 and routed.max() < 4

    def test_roughly_uniform(self, rng):
        routed = RandomPolicy().route(requests(40_000), servers(4), rng)
        counts = np.bincount(routed, minlength=4)
        assert counts.min() > 0.9 * counts.max()


class TestLeastLoadedPolicy:
    def test_rejects_zero_probes(self):
        with pytest.raises(ConfigurationError):
            LeastLoadedPolicy(0)

    def test_prefers_empty_server(self, rng):
        farm = servers(2)
        farm[0].admit(requests(50))
        routed = LeastLoadedPolicy(2).route(requests(200), farm, rng)
        assert np.count_nonzero(routed == 1) > np.count_nonzero(routed == 0)

    def test_empty_pending(self, rng):
        routed = LeastLoadedPolicy(2).route([], servers(3), rng)
        assert routed.size == 0


class TestRoundRobinPolicy:
    def test_cycles(self, rng):
        policy = RoundRobinPolicy()
        first = policy.route(requests(3), servers(4), rng)
        second = policy.route(requests(3), servers(4), rng)
        assert first.tolist() == [0, 1, 2]
        assert second.tolist() == [3, 0, 1]

    def test_cursor_wraps(self, rng):
        policy = RoundRobinPolicy()
        policy.route(requests(10), servers(4), rng)
        routed = policy.route(requests(2), servers(4), rng)
        assert routed.tolist() == [2, 3]
