"""Unit tests for the server farm."""

import pytest

from repro.cluster.farm import ServerFarm
from repro.cluster.policies import LeastLoadedPolicy, RandomPolicy, RoundRobinPolicy
from repro.errors import ConfigurationError
from repro.workloads.arrivals import AdversarialArrivals


def make_farm(policy=None, capacity=2, rate=0.5, servers=16, **kwargs):
    return ServerFarm(
        num_servers=servers,
        capacity=capacity,
        policy=policy if policy is not None else RandomPolicy(),
        rate=rate,
        rng=0,
        **kwargs,
    )


class TestConstruction:
    def test_rejects_zero_servers(self):
        with pytest.raises(ConfigurationError):
            ServerFarm(num_servers=0, capacity=1, policy=RandomPolicy())

    def test_default_workload_rate(self):
        farm = make_farm(rate=0.5)
        farm.step()
        assert farm._next_id == 8  # 0.5 * 16 arrivals


class TestDynamics:
    def test_request_conservation(self):
        farm = make_farm()
        for _ in range(100):
            farm.step()
        queued = sum(s.queue_length for s in farm.servers)
        assert farm._next_id == farm.completed + queued + len(farm.pending)
        farm.check_invariants()

    def test_rejects_return_to_pending(self):
        # One server of capacity 1, three requests per tick: overflow pends.
        workload = AdversarialArrivals(n=1, schedule=lambda t: 3 if t == 1 else 0)
        farm = ServerFarm(
            num_servers=1, capacity=1, policy=RandomPolicy(), workload=workload, rng=0
        )
        farm.step()
        assert len(farm.pending) == 2

    def test_pending_drains_when_arrivals_stop(self):
        workload = AdversarialArrivals(n=4, schedule=lambda t: 20 if t <= 2 else 0)
        farm = ServerFarm(
            num_servers=4, capacity=2, policy=RandomPolicy(), workload=workload, rng=1
        )
        for _ in range(100):
            farm.step()
        assert len(farm.pending) == 0
        assert farm.completed == 40

    def test_latency_statistics(self):
        farm = make_farm(rate=0.75)
        stats = farm.run(300)
        assert stats.completed > 0
        assert 0 <= stats.mean_latency <= stats.max_latency
        assert stats.p99_latency <= stats.max_latency

    def test_run_rejects_zero_ticks(self):
        with pytest.raises(ConfigurationError):
            make_farm().run(0)

    def test_round_robin_zero_latency_under_smooth_load(self):
        farm = make_farm(policy=RoundRobinPolicy(), rate=0.5)
        stats = farm.run(100)
        assert stats.mean_latency == 0.0

    def test_least_loaded_beats_random_on_latency(self):
        random_stats = make_farm(policy=RandomPolicy(), capacity=None, rate=0.75, servers=64).run(
            400
        )
        balanced_stats = make_farm(
            policy=LeastLoadedPolicy(2), capacity=None, rate=0.75, servers=64
        ).run(400)
        assert balanced_stats.mean_latency <= random_stats.mean_latency

    def test_capacity_respected(self):
        farm = make_farm(capacity=2, rate=0.9375)
        farm.run(200)
        assert farm.stats().peak_queue <= 2

    def test_throughput_matches_rate_in_steady_state(self):
        farm = make_farm(rate=0.75, servers=64)
        stats = farm.run(500)
        assert stats.throughput == pytest.approx(0.75 * 64, rel=0.05)
