"""Unit tests for Request and Server."""

import pytest

from repro.cluster.server import Request, Server
from repro.errors import ConfigurationError


class TestRequest:
    def test_latency(self):
        assert Request(created_tick=3, request_id=0).latency(10) == 7

    def test_latency_zero_same_tick(self):
        assert Request(created_tick=3, request_id=0).latency(3) == 0

    def test_latency_before_creation_rejected(self):
        with pytest.raises(ValueError):
            Request(created_tick=3, request_id=0).latency(2)

    def test_ordering_oldest_first(self):
        older = Request(created_tick=1, request_id=9)
        newer = Request(created_tick=2, request_id=0)
        assert older < newer


class TestServer:
    def test_rejects_negative_capacity(self):
        with pytest.raises(ConfigurationError):
            Server(capacity=-1)

    def test_zero_capacity_admits_nothing(self):
        # capacity=0 is legal: a cordoned server that rejects every request.
        server = Server(capacity=0)
        requests = [Request(0, i) for i in range(3)]
        assert server.admit(requests) == sorted(requests)
        assert server.queue_length == 0
        assert server.rejected == 3
        assert server.serve() is None
        server.check_invariants()

    def test_admit_up_to_capacity(self):
        server = Server(capacity=2)
        rejects = server.admit([Request(0, i) for i in range(4)])
        assert server.queue_length == 2
        assert len(rejects) == 2
        assert server.rejected == 2

    def test_admit_prefers_oldest(self):
        server = Server(capacity=1)
        rejects = server.admit([Request(5, 0), Request(1, 1)])
        assert server.serve().created_tick == 1
        assert rejects[0].created_tick == 5

    def test_unbounded_accepts_all(self):
        server = Server(capacity=None)
        assert server.admit([Request(0, i) for i in range(100)]) == []

    def test_fifo_service(self):
        server = Server(capacity=3)
        server.admit([Request(0, 0)])
        server.admit([Request(1, 1)])
        assert server.serve().request_id == 0
        assert server.serve().request_id == 1
        assert server.serve() is None

    def test_peak_queue(self):
        server = Server(capacity=5)
        server.admit([Request(0, i) for i in range(4)])
        server.serve()
        assert server.peak_queue == 4

    def test_counters(self):
        server = Server(capacity=2)
        server.admit([Request(0, i) for i in range(3)])
        server.serve()
        assert server.completed == 1
        assert server.rejected == 1
