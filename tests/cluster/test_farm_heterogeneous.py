"""Tests for heterogeneous per-server capacities in the farm."""

import pytest

from repro.cluster.farm import ServerFarm
from repro.cluster.policies import RandomPolicy
from repro.errors import ConfigurationError


class TestHeterogeneousFarm:
    def test_per_server_capacities_applied(self):
        farm = ServerFarm(
            num_servers=3,
            capacity=[1, 2, None],
            policy=RandomPolicy(),
            rate=0.0,
        )
        assert farm.servers[0].capacity == 1
        assert farm.servers[1].capacity == 2
        assert farm.servers[2].capacity is None

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            ServerFarm(num_servers=4, capacity=[1, 2], policy=RandomPolicy())

    def test_mixed_farm_respects_individual_bounds(self):
        capacities = [1] * 16 + [4] * 16
        farm = ServerFarm(
            num_servers=32, capacity=capacities, policy=RandomPolicy(), rate=0.875, rng=0
        )
        farm.run(200)
        for server, cap in zip(farm.servers, capacities):
            assert server.peak_queue <= cap
        farm.check_invariants()

    def test_small_servers_reject_more(self):
        capacities = [1] * 16 + [4] * 16
        farm = ServerFarm(
            num_servers=32, capacity=capacities, policy=RandomPolicy(), rate=0.875, rng=1
        )
        farm.run(300)
        small_rejects = sum(s.rejected for s in farm.servers[:16])
        big_rejects = sum(s.rejected for s in farm.servers[16:])
        assert small_rejects > big_rejects

    def test_scalar_capacity_still_works(self):
        farm = ServerFarm(num_servers=4, capacity=2, policy=RandomPolicy(), rate=0.5, rng=2)
        farm.run(50)
        assert all(s.capacity == 2 for s in farm.servers)
