"""Stress and workload-variation tests for the server farm."""

import pytest

from repro.cluster.farm import ServerFarm
from repro.cluster.policies import LeastLoadedPolicy, RandomPolicy
from repro.workloads.arrivals import (
    AdversarialArrivals,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)


def farm_with(workload, policy=None, capacity=3, servers=64, rng=0):
    return ServerFarm(
        num_servers=servers,
        capacity=capacity,
        policy=policy if policy is not None else RandomPolicy(),
        workload=workload,
        rng=rng,
    )


class TestWorkloadVariants:
    def test_poisson_workload_conserves_requests(self):
        farm = farm_with(PoissonArrivals(n=64, lam=0.5))
        farm.run(300)
        queued = sum(s.queue_length for s in farm.servers)
        assert farm._next_id == farm.completed + queued + len(farm.pending)
        farm.check_invariants()

    def test_diurnal_farm_latency_tracks_the_wave(self):
        workload = DiurnalArrivals(n=64, base=0.625, amplitude=0.375, period=64)
        farm = farm_with(workload)
        stats = farm.run(640)
        assert stats.completed > 0
        # Peaks push pending up, but the long-run rate < 1 keeps it bounded.
        assert stats.peak_pending < 64 * 30

    def test_burst_recovery_empties_pending(self):
        workload = BurstyArrivals(n=64, lam_high=1.0, lam_low=0.0, on_rounds=16, off_rounds=48)
        farm = farm_with(workload)
        farm.run(64 * 4)
        # At the end of a full off-phase the backlog is gone.
        assert len(farm.pending) == 0

    def test_overload_spike_sheds_into_pending_not_queues(self):
        spike = AdversarialArrivals(n=64, schedule=lambda t: 64 * 10 if t == 1 else 0)
        farm = farm_with(spike, capacity=2)
        farm.step()
        assert farm.stats().peak_queue <= 2
        assert len(farm.pending) > 0


class TestPolicyContrasts:
    def test_two_probes_cut_rejections(self):
        workload = BurstyArrivals(n=64, lam_high=1.0, lam_low=0.5, on_rounds=8, off_rounds=8)
        random_farm = farm_with(workload, RandomPolicy(), rng=3)
        balanced_farm = farm_with(workload, LeastLoadedPolicy(2), rng=3)
        random_farm.run(400)
        balanced_farm.run(400)
        random_rejects = sum(s.rejected for s in random_farm.servers)
        balanced_rejects = sum(s.rejected for s in balanced_farm.servers)
        assert balanced_rejects < random_rejects

    def test_throughputs_match_across_policies(self):
        workload = DiurnalArrivals(n=64, base=0.5, amplitude=0.25, period=32)
        for policy in (RandomPolicy(), LeastLoadedPolicy(2)):
            farm = farm_with(workload, policy, rng=4)
            stats = farm.run(320)
            assert stats.throughput == pytest.approx(0.5 * 64, rel=0.1)
