"""Elastic-membership tests for :class:`repro.cluster.farm.ServerFarm`."""

import pytest

from repro.cluster.farm import ServerFarm
from repro.cluster.policies import LeastLoadedPolicy, RandomPolicy
from repro.errors import ConfigurationError


def make_farm(policy=None, capacity=2, rate=0.5, servers=8, **kwargs):
    return ServerFarm(
        num_servers=servers,
        capacity=capacity,
        policy=policy if policy is not None else RandomPolicy(),
        rate=rate,
        rng=0,
        **kwargs,
    )


class TestAddServers:
    def test_appends_empty_servers(self):
        farm = make_farm()
        new = farm.add_servers(3)
        assert new.tolist() == [8, 9, 10]
        assert farm.num_servers == 11
        assert all(farm.servers[i].queue_length == 0 for i in new)
        farm.check_invariants()

    def test_inherits_largest_capacity(self):
        farm = make_farm(capacity=[2, 4, 3, 2], servers=4)
        farm.add_servers(1)
        assert farm.servers[4].capacity == 4

    def test_inherits_unbounded_if_any_unbounded(self):
        farm = make_farm(capacity=None)
        farm.add_servers(1)
        assert farm.servers[-1].capacity is None

    def test_explicit_capacity(self):
        farm = make_farm(capacity=2)
        farm.add_servers(2, capacity=7)
        assert farm.servers[-1].capacity == 7

    def test_rejects_zero_count(self):
        with pytest.raises(ConfigurationError):
            make_farm().add_servers(0)

    def test_workload_rate_untouched(self):
        # Traffic is exogenous: joining servers must not raise arrivals.
        farm = make_farm(rate=0.5)
        farm.step()
        before = farm._next_id
        farm.add_servers(8)
        farm.step()
        assert farm._next_id - before == before  # still 0.5 * 8 per tick


class TestRemoveServers:
    def _loaded_farm(self):
        farm = make_farm(policy=LeastLoadedPolicy(2), capacity=4, rate=0.875)
        for _ in range(6):
            farm.step()
        return farm

    def test_rehash_returns_queued_to_pending(self):
        farm = self._loaded_farm()
        pending_before = len(farm.pending)
        queued = sum(farm.servers[i].queue_length for i in (1, 5))
        displaced = farm.remove_servers([1, 5], policy="rehash")
        assert displaced == queued
        assert farm.num_servers == 6
        assert len(farm.pending) == pending_before + queued
        farm.check_invariants()

    def test_rehash_preserves_admission_order(self):
        farm = self._loaded_farm()
        farm.remove_servers([0], policy="rehash")
        ids = [r.request_id for r in farm.pending]
        assert ids == sorted(ids)

    def test_drop_discards_queued(self):
        farm = self._loaded_farm()
        pending_before = len(farm.pending)
        queued = sum(farm.servers[i].queue_length for i in (2, 3))
        displaced = farm.remove_servers([2, 3], policy="drop")
        assert displaced == queued
        assert len(farm.pending) == pending_before
        assert farm.num_servers == 6
        farm.check_invariants()

    def test_drain_requires_empty_queues(self):
        farm = self._loaded_farm()
        loaded = max(range(farm.num_servers), key=lambda i: farm.servers[i].queue_length)
        assert farm.servers[loaded].queue_length > 0
        with pytest.raises(ConfigurationError, match="empty queues"):
            farm.remove_servers([loaded], policy="drain")

    def test_validation(self):
        farm = make_farm()
        with pytest.raises(ConfigurationError):
            farm.remove_servers([8])
        with pytest.raises(ConfigurationError):
            farm.remove_servers(list(range(8)))
        with pytest.raises(ConfigurationError):
            farm.remove_servers([0], policy="explode")


class TestSealDrain:
    def test_sealed_server_serves_but_never_admits(self):
        farm = make_farm(policy=LeastLoadedPolicy(2), capacity=4, rate=0.875)
        for _ in range(6):
            farm.step()
        victim = max(range(farm.num_servers), key=lambda i: farm.servers[i].queue_length)
        depth = farm.servers[victim].queue_length
        assert depth > 0
        farm.seal_servers([victim])
        # One departure per tick, no admissions: empties in <= depth ticks.
        for _ in range(depth):
            farm.step()
        assert farm.servers[victim].queue_length == 0
        assert farm.remove_servers([victim], policy="drain") == 0
        assert farm.num_servers == 7
        farm.check_invariants()

    def test_unseal_reopens_admissions(self):
        farm = make_farm()
        farm.seal_servers([0])
        assert farm.servers[0].free_slots == 0
        farm.unseal_servers([0])
        assert farm.servers[0].free_slots == 2


class TestElasticState:
    def test_set_state_rebuilds_at_snapshot_size(self):
        farm = make_farm(policy=LeastLoadedPolicy(2), capacity=3, rate=0.75)
        for _ in range(4):
            farm.step()
        farm.add_servers(4, capacity=5)
        farm.remove_servers([0, 1], policy="rehash")
        for _ in range(3):
            farm.step()
        state = farm.get_state()
        reference = [(s.queue_length, s.capacity) for s in farm.servers]

        restored = make_farm(policy=LeastLoadedPolicy(2), capacity=3, rate=0.75)
        restored.set_state(state)
        assert restored.num_servers == 10
        assert [(s.queue_length, s.capacity) for s in restored.servers] == reference
        assert [r.request_id for r in restored.pending] == [
            r.request_id for r in farm.pending
        ]
        restored.check_invariants()

    def test_restored_farm_steps_identically(self):
        farm = make_farm(policy=LeastLoadedPolicy(2), capacity=3, rate=0.75)
        for _ in range(4):
            farm.step()
        farm.add_servers(2)
        state = farm.get_state()

        restored = make_farm(policy=LeastLoadedPolicy(2), capacity=3, rate=0.75)
        restored.set_state(state)
        for _ in range(5):
            a = farm.step()
            b = restored.step()
            assert (a.pool_size, a.total_load) == (b.pool_size, b.total_load)
        assert farm.completed == restored.completed
