"""Property-based tests for BinBuffer (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given

from repro.balls.ball import Ball
from repro.balls.buffer import BinBuffer

ball_lists = st.lists(
    st.tuples(st.integers(min_value=0, max_value=20), st.integers(min_value=0, max_value=10**6)),
    max_size=40,
).map(lambda pairs: [Ball(label, serial) for serial, (label, _) in enumerate(pairs)])

capacities = st.integers(min_value=1, max_value=8)


@given(capacities, ball_lists)
def test_load_never_exceeds_capacity(capacity, offered):
    buffer = BinBuffer(capacity=capacity)
    accepted = buffer.accept(offered)
    assert accepted == min(capacity, len(offered))
    assert buffer.load <= capacity
    buffer.check_invariants()


@given(capacities, ball_lists)
def test_accepted_are_the_oldest(capacity, offered):
    buffer = BinBuffer(capacity=capacity)
    buffer.accept(offered)
    stored = sorted(buffer)
    expected = sorted(offered)[: min(capacity, len(offered))]
    assert stored == expected


@given(capacities, ball_lists, ball_lists)
def test_fifo_deletion_order_respects_acceptance_rounds(capacity, first, second):
    buffer = BinBuffer(capacity=capacity)
    # Disjoint serial ranges so batch membership is identifiable.
    second = [Ball(b.label, b.serial + 10**7) for b in second]
    took_first = buffer.accept(first)
    buffer.delete_first()
    buffer.accept(second)
    drained = []
    while (ball := buffer.delete_first()) is not None:
        drained.append(ball)
    # FIFO across rounds: every surviving first-batch ball leaves before
    # any second-batch ball.
    batch_tags = [0 if b.serial < 10**7 else 1 for b in drained]
    assert batch_tags == sorted(batch_tags)
    assert took_first <= capacity


@given(capacities, st.lists(ball_lists, max_size=6))
def test_conservation_accepted_equals_deleted_plus_stored(capacity, batches):
    buffer = BinBuffer(capacity=capacity)
    deleted = 0
    for batch in batches:
        buffer.accept(batch)
        if buffer.delete_first() is not None:
            deleted += 1
    assert buffer.total_accepted == deleted + buffer.load
