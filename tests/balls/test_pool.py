"""Unit tests for the age-bucketed pool."""

import pytest

from repro.balls.pool import AgePool
from repro.errors import InvariantViolation


class TestBasics:
    def test_new_pool_is_empty(self):
        pool = AgePool()
        assert pool.size == 0
        assert not pool
        assert pool.oldest_label is None

    def test_add_and_size(self):
        pool = AgePool()
        pool.add(1, 5)
        pool.add(2, 3)
        assert pool.size == 8
        assert len(pool) == 8

    def test_add_zero_is_noop(self):
        pool = AgePool()
        pool.add(1, 0)
        assert pool.num_buckets == 0

    def test_add_negative_rejected(self):
        with pytest.raises(ValueError):
            AgePool().add(1, -1)

    def test_add_merges_same_label(self):
        pool = AgePool()
        pool.add(3, 2)
        pool.add(3, 4)
        assert pool.count(3) == 6
        assert pool.num_buckets == 1

    def test_count_of_missing_label(self):
        assert AgePool().count(7) == 0


class TestOrdering:
    def test_buckets_oldest_first(self):
        pool = AgePool()
        pool.add(1, 1)
        pool.add(5, 2)
        pool.add(9, 3)
        assert list(pool.buckets()) == [(1, 1), (5, 2), (9, 3)]

    def test_out_of_order_insert_keeps_sorted(self):
        pool = AgePool()
        pool.add(5, 1)
        pool.add(2, 1)
        pool.add(3, 1)
        assert pool.labels() == [2, 3, 5]
        pool.check_invariants()

    def test_oldest_label(self):
        pool = AgePool()
        pool.add(4, 1)
        pool.add(2, 1)
        assert pool.oldest_label == 2

    def test_max_age(self):
        pool = AgePool()
        pool.add(3, 1)
        assert pool.max_age(10) == 7

    def test_max_age_empty_pool(self):
        assert AgePool().max_age(10) == 0


class TestRemoval:
    def test_remove_from_bucket(self):
        pool = AgePool()
        pool.add(1, 5)
        pool.remove(1, 3)
        assert pool.count(1) == 2

    def test_remove_exhausts_bucket(self):
        pool = AgePool()
        pool.add(1, 2)
        pool.add(2, 2)
        pool.remove(1, 2)
        assert pool.labels() == [2]

    def test_remove_more_than_present_raises(self):
        pool = AgePool()
        pool.add(1, 2)
        with pytest.raises(InvariantViolation):
            pool.remove(1, 3)

    def test_remove_missing_label_raises(self):
        with pytest.raises(InvariantViolation):
            AgePool().remove(1, 1)

    def test_remove_oldest_spans_buckets(self):
        pool = AgePool()
        pool.add(1, 2)
        pool.add(2, 2)
        pool.remove_oldest(3)
        assert list(pool.buckets()) == [(2, 1)]

    def test_remove_oldest_entire_pool(self):
        pool = AgePool()
        pool.add(1, 4)
        pool.remove_oldest(4)
        assert pool.size == 0
        assert pool.num_buckets == 0

    def test_remove_oldest_overflow_raises(self):
        pool = AgePool()
        pool.add(1, 1)
        with pytest.raises(InvariantViolation):
            pool.remove_oldest(2)

    def test_clear(self):
        pool = AgePool()
        pool.add(1, 3)
        pool.clear()
        assert pool.size == 0


class TestInvariants:
    def test_check_invariants_on_valid_pool(self):
        pool = AgePool()
        pool.add(1, 2)
        pool.add(4, 1)
        pool.check_invariants()

    def test_size_cache_detects_corruption(self):
        pool = AgePool()
        pool.add(1, 2)
        pool._size = 99  # simulate corruption
        with pytest.raises(InvariantViolation):
            pool.check_invariants()
