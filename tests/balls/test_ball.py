"""Unit tests for Ball and BallIdAllocator."""

import pytest

from repro.balls.ball import Ball, BallIdAllocator


class TestBall:
    def test_age_is_round_minus_label(self):
        assert Ball(label=3, serial=0).age(10) == 7

    def test_age_zero_in_generation_round(self):
        assert Ball(label=5, serial=1).age(5) == 0

    def test_age_before_generation_rejected(self):
        with pytest.raises(ValueError):
            Ball(label=5, serial=0).age(4)

    def test_ordering_prefers_older_balls(self):
        older = Ball(label=1, serial=9)
        newer = Ball(label=2, serial=0)
        assert older < newer

    def test_ordering_ties_broken_by_serial(self):
        first = Ball(label=1, serial=0)
        second = Ball(label=1, serial=1)
        assert first < second

    def test_sorted_is_oldest_first(self):
        balls = [Ball(3, 0), Ball(1, 5), Ball(2, 2), Ball(1, 1)]
        ordered = sorted(balls)
        assert [(b.label, b.serial) for b in ordered] == [(1, 1), (1, 5), (2, 2), (3, 0)]

    def test_hashable_and_frozen(self):
        ball = Ball(label=1, serial=2)
        assert ball in {ball}
        with pytest.raises(AttributeError):
            ball.label = 9  # type: ignore[misc]


class TestBallIdAllocator:
    def test_serials_unique_and_increasing(self):
        alloc = BallIdAllocator()
        serials = [alloc.make(label=0).serial for _ in range(10)]
        assert serials == sorted(set(serials))

    def test_make_batch_size(self):
        alloc = BallIdAllocator()
        batch = alloc.make_batch(label=4, size=7)
        assert len(batch) == 7
        assert all(b.label == 4 for b in batch)

    def test_make_batch_continues_serials(self):
        alloc = BallIdAllocator()
        first = alloc.make_batch(label=0, size=3)
        second = alloc.make_batch(label=1, size=3)
        assert {b.serial for b in first}.isdisjoint(b.serial for b in second)

    def test_make_batch_rejects_negative_size(self):
        with pytest.raises(ValueError):
            BallIdAllocator().make_batch(label=0, size=-1)

    def test_empty_batch(self):
        assert BallIdAllocator().make_batch(label=0, size=0) == []
