"""Unit tests for the bounded FIFO BinBuffer."""

import math

import pytest

from repro.balls.ball import Ball
from repro.balls.buffer import BinBuffer
from repro.errors import CapacityExceeded, ConfigurationError


def balls(*labels: int) -> list[Ball]:
    return [Ball(label=label, serial=i) for i, label in enumerate(labels)]


class TestConstruction:
    def test_default_capacity_is_infinite(self):
        assert BinBuffer().capacity == math.inf

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            BinBuffer(capacity=0)

    def test_rejects_fractional_capacity(self):
        with pytest.raises(ConfigurationError):
            BinBuffer(capacity=1.5)

    def test_rejects_bool_capacity(self):
        with pytest.raises(ConfigurationError):
            BinBuffer(capacity=True)


class TestAccept:
    def test_accepts_up_to_capacity(self):
        buffer = BinBuffer(capacity=2)
        assert buffer.accept(balls(1, 1, 1)) == 2
        assert buffer.load == 2

    def test_accepts_all_when_room(self):
        buffer = BinBuffer(capacity=5)
        assert buffer.accept(balls(1, 2)) == 2

    def test_prefers_oldest_requests(self):
        buffer = BinBuffer(capacity=1)
        buffer.accept([Ball(5, 0), Ball(2, 1), Ball(7, 2)])
        assert buffer.peek().label == 2

    def test_full_buffer_accepts_nothing(self):
        buffer = BinBuffer(capacity=1)
        buffer.accept(balls(1))
        assert buffer.accept(balls(2)) == 0

    def test_infinite_capacity_accepts_everything(self):
        buffer = BinBuffer()
        assert buffer.accept(balls(*range(100))) == 100

    def test_accept_empty_request_set(self):
        buffer = BinBuffer(capacity=2)
        assert buffer.accept([]) == 0


class TestFifo:
    def test_delete_first_returns_oldest_inserted(self):
        buffer = BinBuffer(capacity=3)
        buffer.accept([Ball(1, 0)])
        buffer.accept([Ball(2, 1)])
        assert buffer.delete_first().label == 1
        assert buffer.delete_first().label == 2

    def test_delete_from_empty_returns_none(self):
        assert BinBuffer(capacity=1).delete_first() is None

    def test_iteration_in_fifo_order(self):
        buffer = BinBuffer(capacity=3)
        buffer.accept(balls(3, 1, 2))
        assert [b.label for b in buffer] == [1, 2, 3]

    def test_within_round_acceptance_is_oldest_first_in_queue(self):
        buffer = BinBuffer(capacity=3)
        buffer.accept([Ball(9, 0), Ball(4, 1), Ball(6, 2)])
        assert [b.label for b in buffer] == [4, 6, 9]


class TestPush:
    def test_push_appends(self):
        buffer = BinBuffer(capacity=2)
        buffer.push(Ball(1, 0))
        assert buffer.load == 1

    def test_push_full_raises(self):
        buffer = BinBuffer(capacity=1)
        buffer.push(Ball(1, 0))
        with pytest.raises(CapacityExceeded):
            buffer.push(Ball(1, 1))


class TestAccounting:
    def test_free_slots(self):
        buffer = BinBuffer(capacity=3)
        buffer.accept(balls(1))
        assert buffer.free_slots == 2

    def test_peak_load_tracks_maximum(self):
        buffer = BinBuffer(capacity=3)
        buffer.accept(balls(1, 1, 1))
        buffer.delete_first()
        buffer.delete_first()
        assert buffer.peak_load == 3
        assert buffer.load == 1

    def test_totals(self):
        buffer = BinBuffer(capacity=2)
        buffer.accept(balls(1, 1, 1))  # one rejected
        buffer.delete_first()
        assert buffer.total_accepted == 2
        assert buffer.total_deleted == 1

    def test_clear_empties(self):
        buffer = BinBuffer(capacity=2)
        buffer.accept(balls(1, 2))
        buffer.clear()
        assert buffer.load == 0

    def test_len_matches_load(self):
        buffer = BinBuffer(capacity=4)
        buffer.accept(balls(1, 2, 3))
        assert len(buffer) == buffer.load == 3

    def test_check_invariants_passes_on_valid_state(self):
        buffer = BinBuffer(capacity=2)
        buffer.accept(balls(1, 2))
        buffer.check_invariants()
