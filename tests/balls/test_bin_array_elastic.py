"""Elastic-membership tests for :class:`repro.balls.bin_array.BinArray`.

Covers grow (capacity inheritance rules), shrink (all three removal
policies and their validation), seal/unseal draining semantics, the
serial-kernel eligibility view of draining/frozen bins, and checkpoint
restore across a membership change.
"""

import numpy as np
import pytest

from repro.balls.bin_array import BinArray
from repro.errors import ConfigurationError


def fill(bins, loads):
    """Force exact per-bin loads through the public accept path."""
    requests = np.asarray(loads, dtype=np.int64)
    accepted = bins.accept(requests)
    assert np.array_equal(accepted, requests)


class TestGrow:
    def test_appends_trailing_empty_bins(self):
        bins = BinArray(4, capacity=3)
        fill(bins, [1, 2, 3, 0])
        new = bins.grow(2)
        assert new.tolist() == [4, 5]
        assert bins.n == 6
        assert bins.loads.tolist() == [1, 2, 3, 0, 0, 0]
        bins.check_invariants()

    def test_scalar_capacity_stays_scalar_on_inherit(self):
        bins = BinArray(4, capacity=3)
        bins.grow(2)
        assert np.isscalar(bins.capacity) and bins.capacity == 3
        assert bins.free_slots().tolist() == [3] * 6

    def test_different_capacity_goes_per_bin(self):
        bins = BinArray(4, capacity=3)
        bins.grow(2, capacity=5)
        assert not np.isscalar(bins.capacity)
        assert bins.capacity.tolist() == [3, 3, 3, 3, 5, 5]

    def test_per_bin_array_inherits_max(self):
        bins = BinArray(3, capacity=np.array([2, 4, 3]))
        bins.grow(1)
        assert bins.capacity.tolist() == [2, 4, 3, 4]

    def test_unbounded_stays_unbounded(self):
        bins = BinArray(3, capacity=None)
        bins.grow(2)
        assert bins.capacity is None
        assert bins.n == 5

    def test_explicit_capacity_on_unbounded_rejected(self):
        bins = BinArray(3, capacity=None)
        with pytest.raises(ConfigurationError):
            bins.grow(2, capacity=4)

    def test_rejects_zero_count_and_bad_capacity(self):
        bins = BinArray(3, capacity=2)
        with pytest.raises(ConfigurationError):
            bins.grow(0)
        with pytest.raises(ConfigurationError):
            bins.grow(1, capacity=0)


class TestShrink:
    def test_rehash_reports_displaced_and_compacts(self):
        bins = BinArray(5, capacity=4)
        fill(bins, [1, 2, 3, 4, 0])
        displaced = bins.shrink(np.array([1, 3]), policy="rehash")
        assert displaced == 6
        assert bins.n == 3
        assert bins.loads.tolist() == [1, 3, 0]
        assert bins.total_load == 4
        bins.check_invariants()

    def test_drop_reports_displaced_too(self):
        bins = BinArray(4, capacity=4)
        fill(bins, [2, 2, 0, 0])
        assert bins.shrink(np.array([0]), policy="drop") == 2
        assert bins.loads.tolist() == [2, 0, 0]

    def test_duplicate_indices_collapse(self):
        bins = BinArray(4, capacity=2)
        assert bins.shrink(np.array([2, 2, 2]), policy="drop") == 0
        assert bins.n == 3

    def test_rejects_out_of_range(self):
        bins = BinArray(4, capacity=2)
        with pytest.raises(ConfigurationError):
            bins.shrink(np.array([4]))
        with pytest.raises(ConfigurationError):
            bins.shrink(np.array([-1]))

    def test_rejects_removing_every_bin(self):
        bins = BinArray(3, capacity=2)
        with pytest.raises(ConfigurationError):
            bins.shrink(np.array([0, 1, 2]))

    def test_rejects_unknown_policy(self):
        bins = BinArray(3, capacity=2)
        with pytest.raises(ConfigurationError):
            bins.shrink(np.array([0]), policy="explode")

    def test_per_bin_capacity_compacts_with_membership(self):
        bins = BinArray(4, capacity=np.array([2, 3, 4, 5]))
        bins.shrink(np.array([1]), policy="drop")
        assert bins.capacity.tolist() == [2, 4, 5]
        bins.check_invariants()


class TestDrain:
    def test_drain_requires_empty_bins(self):
        bins = BinArray(4, capacity=3)
        fill(bins, [0, 2, 0, 0])
        with pytest.raises(ConfigurationError, match="requires empty bins"):
            bins.shrink(np.array([1]), policy="drain")

    def test_seal_blocks_acceptance_but_service_continues(self):
        bins = BinArray(4, capacity=3)
        fill(bins, [1, 2, 0, 0])
        bins.seal([1])
        assert bins.draining.tolist() == [False, True, False, False]
        assert bins.free_slots()[1] == 0
        assert bins.free_slots()[2] == 3
        # FIFO service still drains the sealed queue.
        bins.delete_one_each()
        bins.delete_one_each()
        assert bins.loads[1] == 0
        bins.shrink(np.array([1]), policy="drain")
        assert bins.n == 3
        assert not bins.draining.any()
        bins.check_invariants()

    def test_unseal_restores_free_slots(self):
        bins = BinArray(3, capacity=2)
        bins.seal([0, 2])
        bins.unseal([0, 2])
        assert not bins.draining.any()
        assert bins.free_slots().tolist() == [2, 2, 2]


class TestSerialRoundLimit:
    def test_plain_scalar_case(self):
        bins = BinArray(4, capacity=3)
        limit, hist_size = bins.serial_round_limit()
        assert limit == 3 and hist_size == 4

    def test_draining_bins_clamp_to_current_load(self):
        bins = BinArray(4, capacity=3)
        fill(bins, [0, 2, 1, 0])
        bins.seal([1, 2])
        limit, hist_size = bins.serial_round_limit()
        assert limit.tolist() == [3, 2, 1, 3]
        assert hist_size == 4

    def test_down_bins_bail_without_freeze(self):
        bins = BinArray(4, capacity=3)
        bins.set_down([1])
        assert bins.serial_round_limit() is None

    def test_freeze_down_clamps_down_bins(self):
        bins = BinArray(4, capacity=3)
        fill(bins, [0, 2, 0, 0])
        bins.set_down([1])
        limit, _ = bins.serial_round_limit(freeze_down=True)
        assert limit.tolist() == [3, 2, 3, 3]

    def test_unit_capacity_gate(self):
        bins = BinArray(4, capacity=1)
        assert bins.serial_round_limit() is None
        assert bins.serial_round_limit(allow_unit_capacity=True) == (1, 2)

    def test_unbounded_never_eligible(self):
        assert BinArray(4, capacity=None).serial_round_limit() is None


class TestElasticState:
    def test_snapshot_after_grow_restores_into_smaller_array(self):
        bins = BinArray(4, capacity=2)
        fill(bins, [1, 0, 2, 0])
        bins.grow(3)
        bins.seal([5])
        state = bins.get_state()

        fresh = BinArray(4, capacity=2)
        fresh.set_state(state)
        assert fresh.n == 7
        assert fresh.loads.tolist() == bins.loads.tolist()
        assert fresh.draining.tolist() == bins.draining.tolist()
        assert fresh.free_slots().tolist() == bins.free_slots().tolist()
        fresh.check_invariants()

    def test_snapshot_after_shrink_restores_into_larger_array(self):
        bins = BinArray(6, capacity=np.array([2, 2, 3, 3, 4, 4]))
        fill(bins, [1, 1, 2, 0, 3, 0])
        bins.shrink(np.array([0, 4]), policy="drop")
        state = bins.get_state()

        fresh = BinArray(6, capacity=2)
        fresh.set_state(state)
        assert fresh.n == 4
        assert fresh.loads.tolist() == [1, 2, 0, 0]
        assert fresh.capacity.tolist() == [2, 3, 3, 4]
        fresh.check_invariants()
