"""Unit tests for the vectorised BinArray."""

import numpy as np
import pytest

from repro.balls.bin_array import BinArray
from repro.errors import ConfigurationError, InvariantViolation


class TestConstruction:
    def test_starts_empty(self):
        bins = BinArray(n=4, capacity=2)
        assert bins.total_load == 0
        assert bins.loads.tolist() == [0, 0, 0, 0]

    def test_rejects_zero_bins(self):
        with pytest.raises(ConfigurationError):
            BinArray(n=0, capacity=1)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            BinArray(n=4, capacity=0)

    def test_none_capacity_is_unbounded(self):
        bins = BinArray(n=2, capacity=None)
        accepted = bins.accept(np.array([10**6, 0]))
        assert accepted[0] == 10**6


class TestAccept:
    def test_caps_at_capacity(self):
        bins = BinArray(n=3, capacity=2)
        accepted = bins.accept(np.array([5, 1, 0]))
        assert accepted.tolist() == [2, 1, 0]
        assert bins.loads.tolist() == [2, 1, 0]

    def test_respects_existing_load(self):
        bins = BinArray(n=2, capacity=3)
        bins.accept(np.array([2, 0]))
        accepted = bins.accept(np.array([5, 5]))
        assert accepted.tolist() == [1, 3]

    def test_shape_mismatch_rejected(self):
        bins = BinArray(n=3, capacity=1)
        with pytest.raises(ValueError):
            bins.accept(np.array([1, 2]))

    def test_free_slots(self):
        bins = BinArray(n=2, capacity=3)
        bins.accept(np.array([1, 3]))
        assert bins.free_slots().tolist() == [2, 0]


class TestDeletion:
    def test_delete_one_each_decrements_nonempty(self):
        bins = BinArray(n=3, capacity=2)
        bins.accept(np.array([2, 1, 0]))
        deleted = bins.delete_one_each()
        assert deleted == 2
        assert bins.loads.tolist() == [1, 0, 0]

    def test_delete_on_empty_bins_is_zero(self):
        bins = BinArray(n=3, capacity=2)
        assert bins.delete_one_each() == 0

    def test_loads_never_negative(self):
        bins = BinArray(n=2, capacity=1)
        bins.accept(np.array([1, 0]))
        bins.delete_one_each()
        bins.delete_one_each()
        assert bins.loads.min() == 0


class TestAccounting:
    def test_peak_load(self):
        bins = BinArray(n=2, capacity=5)
        bins.accept(np.array([4, 1]))
        bins.delete_one_each()
        assert bins.peak_load == 4

    def test_totals(self):
        bins = BinArray(n=2, capacity=2)
        bins.accept(np.array([3, 1]))  # one rejected
        bins.delete_one_each()
        assert bins.total_accepted == 3
        assert bins.total_deleted == 2

    def test_reset(self):
        bins = BinArray(n=2, capacity=2)
        bins.accept(np.array([1, 1]))
        bins.reset()
        assert bins.total_load == 0

    def test_check_invariants_detects_overload(self):
        bins = BinArray(n=2, capacity=1)
        bins.loads[0] = 5  # simulate corruption
        with pytest.raises(InvariantViolation):
            bins.check_invariants()

    def test_check_invariants_detects_negative(self):
        bins = BinArray(n=2, capacity=1)
        bins.loads[1] = -1
        with pytest.raises(InvariantViolation):
            bins.check_invariants()


class TestFreeSlotsCache:
    """The incremental free-slots cache and O(1) total-load counter."""

    def test_cache_tracks_accept_and_delete(self):
        bins = BinArray(n=4, capacity=3)
        bins.accept(np.array([5, 2, 0, 1]))
        assert bins.free_slots().tolist() == [0, 1, 3, 2]
        bins.check_invariants()  # verifies cache == capacity - loads
        bins.delete_one_each()
        assert bins.free_slots().tolist() == [1, 2, 3, 3]
        bins.check_invariants()

    def test_unbounded_cache_is_sentinel(self):
        bins = BinArray(n=3, capacity=None)
        bins.accept(np.array([10, 0, 4]))
        assert (bins.free_slots() >= 2**61).all()
        bins.check_invariants()

    def test_degradation_clamps_free_at_zero(self):
        # Shrinking capacity below the load must report 0 free slots (not
        # negative), and deletions must keep reporting 0 until the bin
        # drains back under its new capacity.
        bins = BinArray(n=2, capacity=3)
        bins.accept(np.array([3, 1]))
        bins.set_capacity(1)
        assert bins.free_slots().tolist() == [0, 0]
        bins.check_invariants()
        bins.delete_one_each()  # loads 2, 0 — bin 0 still over capacity
        assert bins.free_slots().tolist() == [0, 1]
        bins.check_invariants()
        bins.delete_one_each()  # loads 1, 0 — exactly at capacity
        assert bins.free_slots().tolist() == [0, 1]
        bins.check_invariants()

    def test_down_bins_masked_without_corrupting_cache(self):
        bins = BinArray(n=3, capacity=2)
        bins.accept(np.array([1, 1, 1]))
        bins.set_down([1])
        assert bins.free_slots().tolist() == [1, 0, 1]
        bins.set_up([1])
        assert bins.free_slots().tolist() == [1, 1, 1]
        bins.check_invariants()

    def test_wipe_refreshes_cache_and_counter(self):
        bins = BinArray(n=2, capacity=2)
        bins.accept(np.array([2, 1]))
        wiped = bins.set_down([0], wipe=True)
        assert wiped == 2
        assert bins.total_load == 1
        bins.set_up([0])
        assert bins.free_slots().tolist() == [2, 1]
        bins.check_invariants()

    def test_total_load_counter_is_exact(self):
        rng = np.random.default_rng(0)
        bins = BinArray(n=8, capacity=3)
        for _ in range(50):
            bins.accept(rng.integers(0, 4, size=8))
            bins.delete_one_each()
            assert bins.total_load == int(bins.loads.sum())
        bins.check_invariants()

    def test_state_roundtrip_rebuilds_cache(self):
        bins = BinArray(n=4, capacity=2)
        bins.accept(np.array([2, 1, 0, 2]))
        state = bins.get_state()
        restored = BinArray(n=4, capacity=2)
        restored.set_state(state)
        assert restored.free_slots().tolist() == bins.free_slots().tolist()
        assert restored.total_load == bins.total_load

    def test_invariants_detect_stale_cache(self):
        bins = BinArray(n=2, capacity=2)
        bins.accept(np.array([1, 0]))
        bins._free[0] = 2  # simulate corruption
        with pytest.raises(InvariantViolation):
            bins.check_invariants()

    def test_invariants_detect_stale_total(self):
        bins = BinArray(n=2, capacity=2)
        bins.accept(np.array([1, 0]))
        bins._total_load = 7
        with pytest.raises(InvariantViolation):
            bins.check_invariants()
