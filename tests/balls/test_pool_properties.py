"""Property-based tests for AgePool (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.balls.pool import AgePool

# A pool operation script: add (label, count) or remove-oldest count.
adds = st.lists(
    st.tuples(st.integers(min_value=0, max_value=30), st.integers(min_value=0, max_value=20)),
    max_size=30,
)


@given(adds)
def test_size_equals_sum_of_adds(operations):
    pool = AgePool()
    total = 0
    for label, count in operations:
        pool.add(label, count)
        total += count
    assert pool.size == total
    pool.check_invariants()


@given(adds)
def test_labels_always_sorted_unique(operations):
    pool = AgePool()
    for label, count in operations:
        pool.add(label, count)
    labels = pool.labels()
    assert labels == sorted(set(labels))
    pool.check_invariants()


@given(adds, st.integers(min_value=0, max_value=200))
def test_remove_oldest_removes_exactly_the_oldest(operations, to_remove):
    pool = AgePool()
    reference: list[int] = []
    for label, count in operations:
        pool.add(label, count)
        reference.extend([label] * count)
    reference.sort()
    to_remove = min(to_remove, len(reference))
    pool.remove_oldest(to_remove)
    survivors = reference[to_remove:]
    assert pool.size == len(survivors)
    expected: dict[int, int] = {}
    for label in survivors:
        expected[label] = expected.get(label, 0) + 1
    assert dict(pool.buckets()) == expected
    pool.check_invariants()


@given(adds)
@settings(max_examples=50)
def test_remove_is_inverse_of_add(operations):
    pool = AgePool()
    for label, count in operations:
        pool.add(label, count)
    for label, count in list(pool.buckets()):
        pool.remove(label, count)
    assert pool.size == 0
    assert pool.num_buckets == 0


@given(adds)
def test_buckets_iteration_consistent_with_counts(operations):
    pool = AgePool()
    for label, count in operations:
        pool.add(label, count)
    for label, count in pool.buckets():
        assert pool.count(label) == count
        assert count > 0
