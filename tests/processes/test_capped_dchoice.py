"""Unit tests for the d-choice CAPPED ablation process."""

import pytest

from repro.engine.driver import SimulationDriver
from repro.errors import ConfigurationError
from repro.processes.capped_dchoice import CappedDChoiceProcess


class TestConfiguration:
    def test_rejects_unbounded_capacity(self):
        with pytest.raises(ConfigurationError):
            CappedDChoiceProcess(n=8, capacity=None, lam=0.5)  # type: ignore[arg-type]

    def test_rejects_zero_probes(self):
        with pytest.raises(ConfigurationError):
            CappedDChoiceProcess(n=8, capacity=1, lam=0.5, d=0)

    def test_rejects_negative_initial_pool(self):
        with pytest.raises(ConfigurationError):
            CappedDChoiceProcess(n=8, capacity=1, lam=0.5, initial_pool=-1)


class TestDynamics:
    def test_conservation(self):
        process = CappedDChoiceProcess(n=64, capacity=2, lam=0.75, d=2, rng=0)
        generated = deleted = 0
        for _ in range(80):
            record = process.step()
            generated += record.arrivals
            deleted += record.deleted
            assert record.thrown == record.accepted + record.pool_size
        assert generated == deleted + record.pool_size + record.total_load

    def test_capacity_respected(self):
        process = CappedDChoiceProcess(n=32, capacity=3, lam=0.875, d=2, rng=1)
        for _ in range(60):
            record = process.step()
            assert record.max_load <= 3
        process.check_invariants()

    def test_d1_matches_capped_distributionally(self):
        from repro.core.capped import CappedProcess

        driver = SimulationDriver(burn_in=300, measure=400)
        plain = driver.run(CappedProcess(n=512, capacity=2, lam=0.875, rng=2))
        dchoice = driver.run(CappedDChoiceProcess(n=512, capacity=2, lam=0.875, d=1, rng=3))
        assert dchoice.normalized_pool == pytest.approx(plain.normalized_pool, rel=0.1)
        assert dchoice.avg_wait == pytest.approx(plain.avg_wait, rel=0.1)

    def test_second_choice_noop_at_unit_capacity(self):
        # c=1 bins start every round empty: start-of-round loads carry no
        # signal, so the second probe changes nothing beyond noise (the
        # APPROX'12 parallel d-choice weakness).
        driver = SimulationDriver(burn_in=400, measure=400)
        one = driver.run(CappedDChoiceProcess(n=512, capacity=1, lam=0.9375, d=1, rng=4))
        two = driver.run(CappedDChoiceProcess(n=512, capacity=1, lam=0.9375, d=2, rng=4))
        assert two.normalized_pool == pytest.approx(one.normalized_pool, rel=0.1)

    def test_second_choice_reduces_pool_with_persistent_loads(self):
        driver = SimulationDriver(burn_in=400, measure=400)
        one = driver.run(CappedDChoiceProcess(n=512, capacity=2, lam=0.9375, d=1, rng=4))
        two = driver.run(CappedDChoiceProcess(n=512, capacity=2, lam=0.9375, d=2, rng=4))
        assert two.normalized_pool < one.normalized_pool
        assert two.avg_wait < one.avg_wait

    def test_warm_start(self):
        process = CappedDChoiceProcess(n=64, capacity=2, lam=0.75, d=2, rng=5, initial_pool=40)
        assert process.pool_size == 40
