"""Unit tests for the Adler et al. parallel d-copy process."""

import math

import pytest

from repro.engine.driver import SimulationDriver
from repro.errors import ConfigurationError
from repro.processes.adler_parallel import AdlerParallelProcess


class TestConfiguration:
    def test_rate_bound_enforced(self):
        n, d = 100, 2
        bound = n / (3 * d * math.e)
        with pytest.raises(ConfigurationError):
            AdlerParallelProcess(n=n, d=d, arrivals_per_round=int(bound) + 1)

    def test_rate_bound_override(self):
        process = AdlerParallelProcess(n=100, d=2, arrivals_per_round=30, enforce_rate_bound=False)
        process.step()

    def test_basic_validation(self):
        with pytest.raises(ConfigurationError):
            AdlerParallelProcess(n=0, d=2, arrivals_per_round=1)
        with pytest.raises(ConfigurationError):
            AdlerParallelProcess(n=10, d=0, arrivals_per_round=1)


class TestDynamics:
    def test_conservation(self):
        process = AdlerParallelProcess(n=200, d=2, arrivals_per_round=10, rng=0)
        arrived = served = 0
        for _ in range(100):
            record = process.step()
            arrived += record.arrivals
            served += record.deleted
        assert arrived == served + process.live_balls
        process.check_invariants()

    def test_copies_thrown(self):
        process = AdlerParallelProcess(n=200, d=3, arrivals_per_round=8, rng=1)
        record = process.step()
        assert record.thrown == 8 * 3

    def test_served_ball_counted_once(self):
        # Each ball is served exactly once despite d copies.
        process = AdlerParallelProcess(n=100, d=2, arrivals_per_round=6, rng=2)
        total_served = sum(process.step().deleted for _ in range(300))
        assert total_served + process.live_balls == 6 * 300

    def test_waits_are_small_in_supported_regime(self):
        # Adler et al.: constant expected wait, max lnln n/ln d + O(1).
        n, d = 512, 2
        process = AdlerParallelProcess(n=n, d=d, arrivals_per_round=20, rng=3)
        result = SimulationDriver(burn_in=100, measure=200).run(process)
        assert result.avg_wait <= 3.0
        assert result.max_wait <= math.log(math.log(n)) / math.log(d) + 6

    def test_stale_copies_do_not_block_service(self):
        process = AdlerParallelProcess(n=50, d=2, arrivals_per_round=3, rng=4)
        for _ in range(200):
            process.step()
        # System stays small: stale copies are skipped, not served.
        assert process.live_balls <= 30
