"""Unit tests for ALWAYS-GO-LEFT[d]."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.processes.always_go_left import always_go_left
from repro.processes.sequential import max_load, sequential_greedy_d


class TestBasics:
    def test_conserves_balls(self):
        loads = always_go_left(m=300, n=30, d=2, rng=0)
        assert int(loads.sum()) == 300

    def test_zero_balls(self):
        loads = always_go_left(m=0, n=10, d=2, rng=0)
        assert int(loads.sum()) == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            always_go_left(m=10, n=10, d=1)  # needs d >= 2
        with pytest.raises(ConfigurationError):
            always_go_left(m=10, n=10, d=3)  # 10 not divisible by 3
        with pytest.raises(ConfigurationError):
            always_go_left(m=-1, n=10, d=2)

    def test_leftmost_tie_break(self):
        # With all loads equal the committed bin is always in group 0.
        loads = always_go_left(m=1, n=4, d=2, rng=1)
        assert int(loads[:2].sum()) == 1
        assert int(loads[2:].sum()) == 0


class TestQuality:
    def test_max_load_near_theory(self):
        n = 4096
        peak = max(max_load(always_go_left(n, n, 2, rng=s)) for s in range(3))
        # Voecking: lnln n/(2 ln phi_2) + O(1), phi_2 = golden ratio.
        phi = (1 + math.sqrt(5)) / 2
        bound = math.log(math.log(n)) / (2 * math.log(phi)) + 4
        assert peak <= bound

    def test_not_worse_than_symmetric_greedy(self):
        n = 4096
        agl = max(max_load(always_go_left(n, n, 2, rng=s)) for s in range(3))
        sym = max(max_load(sequential_greedy_d(n, n, 2, rng=s)) for s in range(3))
        assert agl <= sym + 1
