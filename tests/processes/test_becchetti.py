"""Unit tests for self-stabilizing repeated balls-into-bins."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.processes.becchetti import RepeatedBallsProcess


class TestConstruction:
    def test_default_adversarial_start(self):
        process = RepeatedBallsProcess(n=10)
        assert process.loads[0] == 10
        assert int(process.loads.sum()) == 10

    def test_custom_initial_loads(self):
        process = RepeatedBallsProcess(n=3, initial_loads=np.array([1, 1, 1]))
        assert process.total_balls == 3

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            RepeatedBallsProcess(n=0)
        with pytest.raises(ConfigurationError):
            RepeatedBallsProcess(n=3, initial_loads=np.array([1, 1]))
        with pytest.raises(ConfigurationError):
            RepeatedBallsProcess(n=2, initial_loads=np.array([-1, 3]))


class TestDynamics:
    def test_ball_conservation(self):
        process = RepeatedBallsProcess(n=32, rng=0)
        for _ in range(100):
            record = process.step()
            assert record.total_load == 32
        process.check_invariants()

    def test_thrown_equals_nonempty_bins(self):
        process = RepeatedBallsProcess(n=16, rng=1)
        record = process.step()
        # Initially only bin 0 is non-empty, so exactly one ball moves.
        assert record.thrown == 1

    def test_self_stabilises_to_log_load(self):
        n = 256
        process = RepeatedBallsProcess(n=n, rng=2)
        target = int(3 * math.log(n))
        reached = process.run_until_balanced(target_max_load=target, max_rounds=10 * n)
        assert reached is not None

    def test_run_until_balanced_immediate(self):
        process = RepeatedBallsProcess(n=4, initial_loads=np.array([1, 1, 1, 1]), rng=3)
        assert process.run_until_balanced(target_max_load=1, max_rounds=1) == 0

    def test_run_until_balanced_gives_up(self):
        process = RepeatedBallsProcess(n=64, rng=4)
        assert process.run_until_balanced(target_max_load=0, max_rounds=5) is None

    def test_stays_balanced_once_there(self):
        n = 128
        process = RepeatedBallsProcess(n=n, rng=5)
        process.run_until_balanced(target_max_load=int(3 * math.log(n)), max_rounds=20 * n)
        peaks = [process.step().max_load for _ in range(200)]
        assert max(peaks) <= 6 * math.log(n)
