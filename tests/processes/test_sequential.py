"""Unit tests for sequential static allocations."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.processes.sequential import max_load, sequential_greedy_d, sequential_one_choice


class TestOneChoice:
    def test_conserves_balls(self):
        loads = sequential_one_choice(m=500, n=50, rng=0)
        assert int(loads.sum()) == 500

    def test_zero_balls(self):
        loads = sequential_one_choice(m=0, n=5, rng=0)
        assert loads.tolist() == [0] * 5

    def test_roughly_uniform(self, rng):
        loads = sequential_one_choice(m=100_000, n=10, rng=rng)
        assert loads.min() > 0.9 * loads.max()

    def test_max_load_scale_for_m_equals_n(self):
        # Raab-Steger: ~ln n/lnln n for m=n; generous two-sided sanity band.
        n = 10_000
        peak = max(max_load(sequential_one_choice(n, n, rng=s)) for s in range(5))
        scale = math.log(n) / math.log(math.log(n))
        assert 1.0 <= peak <= 4 * scale

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            sequential_one_choice(m=-1, n=5)
        with pytest.raises(ConfigurationError):
            sequential_one_choice(m=5, n=0)


class TestGreedyD:
    def test_conserves_balls(self):
        loads = sequential_greedy_d(m=300, n=30, d=2, rng=0)
        assert int(loads.sum()) == 300

    def test_d1_equals_one_choice_distributionally(self):
        loads = sequential_greedy_d(m=200, n=20, d=1, rng=1)
        assert int(loads.sum()) == 200

    def test_rejects_bad_d(self):
        with pytest.raises(ConfigurationError):
            sequential_greedy_d(m=10, n=5, d=0)

    def test_power_of_two_choices(self):
        # The headline effect: two choices beat one by a wide margin.
        n = 4096
        one = max(max_load(sequential_one_choice(n, n, rng=s)) for s in range(3))
        two = max(max_load(sequential_greedy_d(n, n, 2, rng=s)) for s in range(3))
        assert two < one

    def test_two_choice_max_load_loglog_scale(self):
        # Azar et al.: lnln n/ln 2 + O(1); check a generous ceiling.
        n = 4096
        peak = max(max_load(sequential_greedy_d(n, n, 2, rng=s)) for s in range(3))
        assert peak <= math.log(math.log(n)) / math.log(2) + 4

    def test_chunking_preserves_count(self):
        loads = sequential_greedy_d(m=10_000, n=64, d=2, rng=2, chunk=100)
        assert int(loads.sum()) == 10_000


class TestMaxLoad:
    def test_empty_vector(self):
        assert max_load(np.zeros(0, dtype=np.int64)) == 0

    def test_regular_vector(self):
        assert max_load(np.array([1, 5, 2])) == 5
