"""Unit tests for the heavily-loaded threshold allocator."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.processes.lenzen import heavily_loaded_threshold


class TestBasics:
    def test_all_balls_placed(self):
        result = heavily_loaded_threshold(m=10_000, n=100, rng=0)
        assert int(result.loads.sum()) == 10_000

    def test_max_load_within_threshold(self):
        m, n, slack = 5_000, 100, 2
        result = heavily_loaded_threshold(m=m, n=n, slack=slack, rng=1)
        assert result.max_load <= -(-m // n) + slack

    def test_overhead_is_additive_constant(self):
        # The SPAA'19 guarantee shape: m/n + O(1), independent of m/n.
        for ratio in (10, 100, 1000):
            result = heavily_loaded_threshold(m=ratio * 64, n=64, slack=2, rng=2)
            assert result.overhead <= 3.0

    def test_round_count_grows_sublinearly_in_load(self):
        # The simplified variant is not round-optimal (see module docs),
        # but rounds must stay tiny relative to m/n and grow slowly in it.
        light = heavily_loaded_threshold(m=256 * 40, n=256, rng=3)
        heavy = heavily_loaded_threshold(m=256 * 400, n=256, rng=3)
        assert heavy.rounds < 400 / 8  # far below m/n
        assert heavy.rounds <= 4 * light.rounds

    def test_zero_balls(self):
        result = heavily_loaded_threshold(m=0, n=10, rng=4)
        assert result.rounds == 0


class TestValidation:
    def test_capacity_always_covers_m(self):
        # threshold = ceil(m/n) + slack implies n*threshold >= m for any
        # slack >= 0, so zero-slack runs are always feasible.
        result = heavily_loaded_threshold(m=100, n=10, slack=0, rng=0)
        assert result.max_load == 10

    def test_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            heavily_loaded_threshold(m=-1, n=10)
        with pytest.raises(ConfigurationError):
            heavily_loaded_threshold(m=10, n=0)
        with pytest.raises(ConfigurationError):
            heavily_loaded_threshold(m=10, n=10, slack=-1)

    def test_max_rounds_guard(self):
        with pytest.raises(SimulationError):
            heavily_loaded_threshold(m=10_000, n=100, rng=0, max_rounds=1)
