"""Unit tests for THRESHOLD[T]."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.processes.threshold import threshold_allocate


class TestBasics:
    def test_all_balls_allocated(self):
        result = threshold_allocate(m=100, n=100, threshold=1, rng=0)
        assert int(result.loads.sum()) == 100

    def test_zero_balls(self):
        result = threshold_allocate(m=0, n=10, rng=0)
        assert result.rounds == 0
        assert result.max_load == 0

    def test_max_load_bounded_by_rounds_times_threshold(self):
        result = threshold_allocate(m=200, n=100, threshold=2, rng=1)
        assert result.max_load <= result.rounds * 2

    def test_trace_strictly_decreasing_to_zero(self):
        result = threshold_allocate(m=500, n=200, threshold=1, rng=2)
        trace = result.unallocated_trace
        assert all(a > b for a, b in zip(trace, trace[1:]))
        assert trace[-1] == 0

    def test_single_bin(self):
        result = threshold_allocate(m=5, n=1, threshold=1, rng=3)
        assert result.rounds == 5
        assert result.max_load == 5


class TestTermination:
    def test_threshold1_terminates_in_loglog_like_rounds(self):
        # Adler et al.: THRESHOLD[1] with m=n ends in <= lnln n + O(1)
        # rounds w.h.p. For n=4096 lnln n ~ 2.1; allow generous headroom.
        rounds = [threshold_allocate(m=4096, n=4096, threshold=1, rng=s).rounds for s in range(5)]
        assert max(rounds) <= math.ceil(math.log(math.log(4096))) + 6

    def test_higher_threshold_fewer_rounds(self):
        slow = np.mean([threshold_allocate(4096, 4096, 1, rng=s).rounds for s in range(3)])
        fast = np.mean([threshold_allocate(4096, 4096, 4, rng=s).rounds for s in range(3)])
        assert fast <= slow

    def test_max_rounds_guard(self):
        with pytest.raises(SimulationError):
            threshold_allocate(m=100, n=1, threshold=1, rng=0, max_rounds=3)


class TestValidation:
    def test_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            threshold_allocate(m=-1, n=10)
        with pytest.raises(ConfigurationError):
            threshold_allocate(m=1, n=0)
        with pytest.raises(ConfigurationError):
            threshold_allocate(m=1, n=1, threshold=0)
