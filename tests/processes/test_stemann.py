"""Unit tests for the Stemann collision protocol."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.processes.stemann import stemann_collision


class TestBasics:
    def test_all_balls_committed(self):
        result = stemann_collision(m=500, n=500, rng=0)
        assert np.all(result.assignment >= 0)
        assert int(result.loads.sum()) == 500

    def test_zero_balls(self):
        result = stemann_collision(m=0, n=10, rng=0)
        assert result.rounds == 0
        assert result.max_load == 0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            stemann_collision(m=-1, n=10)
        with pytest.raises(ConfigurationError):
            stemann_collision(m=5, n=1)


class TestStructure:
    def test_every_ball_lands_on_a_fixed_candidate(self):
        # The protocol's defining property vs THRESHOLD[T]: candidates are
        # fixed before round one; every commitment must be one of them.
        result = stemann_collision(m=2000, n=2000, rng=1)
        matches_first = result.assignment == result.candidates[:, 0]
        matches_second = result.assignment == result.candidates[:, 1]
        assert np.all(matches_first | matches_second)

    def test_candidates_distinct(self):
        result = stemann_collision(m=300, n=50, rng=2)
        assert np.all(result.candidates[:, 0] != result.candidates[:, 1])

    def test_max_load_bounded_by_final_threshold(self):
        result = stemann_collision(m=4096, n=4096, rng=3)
        assert result.max_load <= result.rounds  # τ_r = r


class TestQuality:
    def test_terminates_in_loglog_like_rounds(self):
        n = 4096
        rounds = [stemann_collision(m=n, n=n, rng=s).rounds for s in range(5)]
        assert max(rounds) <= math.ceil(math.log2(max(2.0, math.log2(n)))) + 5

    def test_two_choices_beat_one_choice_max_load(self):
        from repro.processes.sequential import max_load, sequential_one_choice

        n = 4096
        collision = max(stemann_collision(m=n, n=n, rng=s).max_load for s in range(3))
        one_choice = max(max_load(sequential_one_choice(n, n, rng=s)) for s in range(3))
        assert collision < one_choice

    def test_heavier_load_needs_more_rounds(self):
        light = stemann_collision(m=1024, n=1024, rng=4).rounds
        heavy = stemann_collision(m=4096, n=1024, rng=4).rounds
        assert heavy >= light
        # Heavy case still terminates with max load near m/n + O(1)·rounds.
        result = stemann_collision(m=4096, n=1024, rng=5)
        assert result.max_load <= result.rounds
