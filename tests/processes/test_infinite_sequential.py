"""Unit tests for infinite sequential GREEDY[d] with deletions."""

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.processes.infinite_sequential import InfiniteSequentialGreedy


class TestConstruction:
    def test_default_adversarial_start(self):
        process = InfiniteSequentialGreedy(n=16, d=2)
        assert process.max_load == 16
        process.check_invariants()

    def test_custom_assignment(self):
        process = InfiniteSequentialGreedy(n=4, d=2, initial_assignment=np.arange(4))
        assert process.max_load == 1

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            InfiniteSequentialGreedy(n=0, d=2)
        with pytest.raises(ConfigurationError):
            InfiniteSequentialGreedy(n=4, d=0)
        with pytest.raises(ConfigurationError):
            InfiniteSequentialGreedy(n=4, d=2, initial_assignment=np.array([0, 1, 2, 9]))


class TestDynamics:
    def test_ball_conservation(self):
        process = InfiniteSequentialGreedy(n=64, d=2, rng=0)
        process.run(500)
        process.check_invariants()

    def test_negative_steps_rejected(self):
        with pytest.raises(ConfigurationError):
            InfiniteSequentialGreedy(n=4, d=2).run(-1)

    def test_recovers_from_pile_up(self):
        n = 512
        process = InfiniteSequentialGreedy(n=n, d=2, rng=1)
        target = int(math.log(math.log(n)) / math.log(2)) + 3
        reached = process.run_until_max_load(target=target, max_steps=40 * n)
        assert reached is not None

    def test_run_until_immediate_when_balanced(self):
        process = InfiniteSequentialGreedy(n=8, d=2, initial_assignment=np.arange(8), rng=2)
        assert process.run_until_max_load(target=1, max_steps=1) == 0

    def test_stays_balanced_after_recovery(self):
        n = 256
        process = InfiniteSequentialGreedy(n=n, d=2, rng=3)
        process.run(40 * n)
        peaks = [process.run(50) for _ in range(20)]
        bound = math.log(math.log(n)) / math.log(2) + 4
        assert max(peaks) <= bound

    def test_two_choices_beat_one_in_steady_state(self):
        n = 512
        one = InfiniteSequentialGreedy(n=n, d=1, rng=4)
        two = InfiniteSequentialGreedy(n=n, d=2, rng=4)
        one.run(40 * n)
        two.run(40 * n)
        assert two.max_load < one.max_load
