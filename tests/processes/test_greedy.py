"""Unit tests for batch GREEDY[d] with leaky bins."""

import numpy as np
import pytest

from repro.engine.driver import SimulationDriver
from repro.errors import ConfigurationError
from repro.processes.greedy import GreedyBatchProcess, _ranks_within_groups


class TestRanks:
    def test_single_group(self):
        ranks = _ranks_within_groups(np.array([2, 2, 2]))
        assert ranks.tolist() == [0, 1, 2]

    def test_interleaved_groups(self):
        ranks = _ranks_within_groups(np.array([0, 1, 0, 1, 0]))
        assert ranks.tolist() == [0, 0, 1, 1, 2]

    def test_empty(self):
        assert _ranks_within_groups(np.zeros(0, dtype=np.int64)).size == 0

    def test_stable_order_within_group(self):
        # Ball order is preserved within a bin (the batch tie-break).
        groups = np.array([3, 1, 3, 3, 1])
        ranks = _ranks_within_groups(groups)
        assert ranks.tolist() == [0, 0, 1, 2, 1]


class TestConfiguration:
    def test_rejects_bad_d(self):
        with pytest.raises(ConfigurationError):
            GreedyBatchProcess(n=8, d=0, lam=0.5)

    def test_rejects_bad_n(self):
        with pytest.raises(ConfigurationError):
            GreedyBatchProcess(n=0, d=1, lam=0.5)

    def test_rejects_non_integral_rate(self):
        with pytest.raises(ConfigurationError):
            GreedyBatchProcess(n=10, d=1, lam=0.123)


class TestDynamics:
    def test_never_rejects_balls(self):
        process = GreedyBatchProcess(n=32, d=2, lam=0.75, rng=0)
        for _ in range(50):
            record = process.step()
            assert record.accepted == record.arrivals
            assert record.pool_size == 0

    def test_conservation(self):
        process = GreedyBatchProcess(n=32, d=2, lam=0.75, rng=1)
        arrived = deleted = 0
        for _ in range(60):
            record = process.step()
            arrived += record.arrivals
            deleted += record.deleted
        assert arrived == deleted + record.total_load

    def test_wait_counts_match_arrivals(self):
        process = GreedyBatchProcess(n=32, d=1, lam=0.5, rng=2)
        for _ in range(30):
            record = process.step()
            assert record.wait_total == record.arrivals

    def test_two_choices_balance_better(self):
        driver = SimulationDriver(burn_in=300, measure=300)
        one = driver.run(GreedyBatchProcess(n=256, d=1, lam=0.9375, rng=3))
        two = driver.run(GreedyBatchProcess(n=256, d=2, lam=0.9375, rng=3))
        assert two.max_wait < one.max_wait

    def test_d1_commit_is_uniform(self, rng):
        process = GreedyBatchProcess(n=4, d=1, lam=0.75, rng=4)
        counts = np.zeros(4)
        for _ in range(500):
            counts += np.bincount(process.commit_bins(3), minlength=4)
        assert counts.min() > 0.7 * counts.max()

    def test_commit_prefers_less_loaded(self):
        process = GreedyBatchProcess(n=2, d=2, lam=0.5, rng=5)
        process.loads[:] = [10, 0]
        committed = process.commit_bins(100)
        # With d=2, a ball only lands in bin 0 if both probes hit bin 0.
        assert np.count_nonzero(committed == 1) > np.count_nonzero(committed == 0)

    def test_empty_round(self):
        process = GreedyBatchProcess(n=8, d=2, lam=0.0, rng=6)
        record = process.step()
        assert record.arrivals == 0
        assert record.wait_total == 0

    def test_check_invariants(self):
        process = GreedyBatchProcess(n=16, d=2, lam=0.5, rng=7)
        for _ in range(20):
            process.step()
        process.check_invariants()


class TestWaitingTimeIdentity:
    def test_wait_equals_queue_position(self):
        # Deterministic single-bin check: positions accumulate across the
        # batch and drain one per round.
        process = GreedyBatchProcess(n=1, d=1, lam=0.0, rng=8)
        process.loads[0] = 2
        record = process.step()
        assert record.deleted == 1
        process2 = GreedyBatchProcess(n=1, d=1, lam=0.0, rng=9)

        # inject three balls manually via commit path
        class ThreeArrivals:
            mean_rate = 0.0

            def arrivals(self, t, rng):
                return 3 if t == 1 else 0

        process2.arrivals = ThreeArrivals()
        record = process2.step()
        assert sorted(np.repeat(record.wait_values, record.wait_counts)) == [0, 1, 2]
