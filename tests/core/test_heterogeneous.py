"""Unit tests for heterogeneous (per-bin) capacities."""

import numpy as np
import pytest

from repro.balls.bin_array import BinArray
from repro.core.capped import CappedProcess
from repro.core.meanfield import equilibrium, mixture_equilibrium_pool
from repro.engine.driver import SimulationDriver
from repro.errors import ConfigurationError


class TestBinArrayPerBinCapacity:
    def test_accept_respects_per_bin_caps(self):
        bins = BinArray(n=3, capacity=np.array([1, 2, 3]))
        accepted = bins.accept(np.array([5, 5, 5]))
        assert accepted.tolist() == [1, 2, 3]

    def test_free_slots_per_bin(self):
        bins = BinArray(n=2, capacity=np.array([2, 4]))
        bins.accept(np.array([1, 1]))
        assert bins.free_slots().tolist() == [1, 3]

    def test_shape_validation(self):
        with pytest.raises(ConfigurationError):
            BinArray(n=3, capacity=np.array([1, 2]))

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigurationError):
            BinArray(n=2, capacity=np.array([1, 0]))

    def test_invariant_check_elementwise(self):
        bins = BinArray(n=2, capacity=np.array([1, 5]))
        bins.loads[0] = 3
        with pytest.raises(Exception):
            bins.check_invariants()

    def test_capacity_array_copied(self):
        caps = np.array([2, 2])
        bins = BinArray(n=2, capacity=caps)
        caps[0] = 99
        assert bins.capacity[0] == 2


class TestCappedHeterogeneous:
    def test_runs_with_capacity_array(self):
        caps = np.concatenate([np.full(16, 1), np.full(16, 3)])
        process = CappedProcess(n=32, capacity=caps, lam=0.75, rng=0)
        for _ in range(60):
            record = process.step()
            assert record.thrown == record.accepted + record.pool_size
        process.check_invariants()

    def test_loads_respect_per_bin_caps(self):
        caps = np.concatenate([np.full(16, 1), np.full(16, 4)])
        process = CappedProcess(n=32, capacity=caps, lam=0.875, rng=1)
        for _ in range(80):
            process.step()
            assert np.all(process.bins.loads <= caps)

    def test_uniform_array_equals_scalar_distributionally(self):
        driver = SimulationDriver(burn_in=300, measure=300)
        scalar = driver.run(CappedProcess(n=512, capacity=2, lam=0.875, rng=2))
        array = driver.run(CappedProcess(n=512, capacity=np.full(512, 2), lam=0.875, rng=3))
        assert array.normalized_pool == pytest.approx(scalar.normalized_pool, rel=0.1)


class TestMixtureMeanField:
    def test_single_class_matches_plain_equilibrium(self):
        lam = 0.875
        mixture = mixture_equilibrium_pool({2: 1.0}, lam)
        plain = equilibrium(2, lam).normalized_pool
        assert mixture == pytest.approx(plain, rel=1e-4)

    def test_zero_lambda(self):
        assert mixture_equilibrium_pool({1: 0.5, 3: 0.5}, 0.0) == 0.0

    def test_uniform_beats_split_budget(self):
        # Concavity of the accept rate in c: equal budget, uniform wins.
        lam = 1 - 2**-8
        uniform = mixture_equilibrium_pool({2: 1.0}, lam)
        split = mixture_equilibrium_pool({1: 0.5, 3: 0.5}, lam)
        assert uniform < split

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            mixture_equilibrium_pool({}, 0.5)
        with pytest.raises(ConfigurationError):
            mixture_equilibrium_pool({1: 0.4, 3: 0.4}, 0.5)  # shares != 1
        with pytest.raises(ConfigurationError):
            mixture_equilibrium_pool({0: 1.0}, 0.5)

    def test_matches_simulation(self):
        lam = 1 - 2**-6
        n = 1024
        caps = np.concatenate([np.full(n // 2, 1), np.full(n // 2, 3)])
        predicted = mixture_equilibrium_pool({1: 0.5, 3: 0.5}, lam)
        process = CappedProcess(n=n, capacity=caps, lam=lam, rng=4, initial_pool=int(predicted * n))
        result = SimulationDriver(burn_in=400, measure=400).run(process)
        assert result.normalized_pool == pytest.approx(predicted, rel=0.1)
