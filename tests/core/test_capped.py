"""Unit tests for the CAPPED(c, λ) simulators."""

import numpy as np
import pytest

from repro.core.capped import CappedProcess, ExactCappedSimulator
from repro.errors import ConfigurationError


class TestConfiguration:
    def test_rejects_zero_bins(self):
        with pytest.raises(ConfigurationError):
            CappedProcess(n=0, capacity=1, lam=0.5)

    def test_rejects_non_integral_lambda_n(self):
        with pytest.raises(ConfigurationError):
            CappedProcess(n=10, capacity=1, lam=0.55)

    def test_rejects_negative_initial_pool(self):
        with pytest.raises(ConfigurationError):
            CappedProcess(n=10, capacity=1, lam=0.5, initial_pool=-1)

    def test_initial_pool_preloaded(self):
        process = CappedProcess(n=10, capacity=1, lam=0.5, initial_pool=7)
        assert process.pool_size == 7


class TestRoundMechanics:
    def test_round_counter_advances(self):
        process = CappedProcess(n=8, capacity=1, lam=0.5, rng=0)
        process.step()
        process.step()
        assert process.round == 2

    def test_arrivals_match_lambda_n(self):
        process = CappedProcess(n=8, capacity=1, lam=0.5, rng=0)
        record = process.step()
        assert record.arrivals == 4

    def test_ball_conservation(self):
        # thrown = accepted + leftover pool, every round.
        process = CappedProcess(n=64, capacity=2, lam=0.75, rng=1)
        for _ in range(50):
            record = process.step()
            assert record.thrown == record.accepted + record.pool_size

    def test_loads_bounded_by_capacity(self):
        process = CappedProcess(n=32, capacity=3, lam=0.875, rng=2)
        for _ in range(100):
            record = process.step()
            assert record.max_load <= 3
        process.check_invariants()

    def test_single_bin_deterministic(self):
        # n=1: every ball lands in bin 0; acceptance and deletion are exact.
        process = CappedProcess(n=1, capacity=2, lam=0.0, rng=0, initial_pool=5)
        record = process.step()
        assert record.accepted == 2
        assert record.deleted == 1
        assert record.pool_size == 3
        assert record.total_load == 1

    def test_lambda_zero_drains_system(self):
        process = CappedProcess(n=16, capacity=2, lam=0.0, rng=3, initial_pool=30)
        for _ in range(200):
            record = process.step()
        assert record.pool_size == 0
        assert record.total_load == 0

    def test_deleted_at_most_nonempty_bins(self):
        process = CappedProcess(n=16, capacity=2, lam=0.5, rng=4)
        for _ in range(30):
            record = process.step()
            assert record.deleted <= 16

    def test_infinite_capacity_accepts_everything(self):
        process = CappedProcess(n=16, capacity=None, lam=0.75, rng=5)
        for _ in range(50):
            record = process.step()
            assert record.pool_size == 0
            assert record.accepted == record.thrown


class TestInjectedChoices:
    def test_deterministic_allocation(self):
        # 4 balls all aimed at bin 0 with capacity 2: accept 2, 2 left over.
        process = CappedProcess(n=4, capacity=2, lam=1 - 1 / 4, rng=0, initial_pool=1)
        choices = np.zeros(4, dtype=np.int64)
        record = process.step(choices=choices)
        assert record.accepted == 2
        assert record.pool_size == 2

    def test_oldest_first_acceptance(self):
        # Pool ball (label 0) and new balls (label 1) compete for one slot.
        process = CappedProcess(n=2, capacity=1, lam=0.5, rng=0, initial_pool=1)
        record = process.step(choices=np.zeros(2, dtype=np.int64))
        # The accepted ball is the initial-pool ball (age 1 at deletion...
        # recorded at acceptance as wait = t - 0 + 0 = 1).
        assert record.accepted == 1
        assert record.wait_values.tolist() == [1]

    def test_wrong_choice_count_rejected(self):
        process = CappedProcess(n=4, capacity=1, lam=0.5, rng=0)
        with pytest.raises(ConfigurationError):
            process.step(choices=np.zeros(99, dtype=np.int64))

    def test_positional_waits(self):
        # Two balls into an empty capacity-2 bin: positions 0 and 1 ->
        # waits 0 and 1 (both new this round).
        process = CappedProcess(n=2, capacity=2, lam=1.0 - 0.5, rng=0, initial_pool=1)
        # pool ball label 0 -> bin 1; new ball label 1 -> bin 1.
        record = process.step(choices=np.array([1, 1]))
        # pool ball: wait = (1-0)+0 = 1; new ball: wait = (1-1)+1 = 1.
        assert record.wait_values.tolist() == [1]
        assert record.wait_counts.tolist() == [2]


class TestWaitingTimes:
    def test_waits_nonnegative(self):
        process = CappedProcess(n=32, capacity=2, lam=0.75, rng=6)
        for _ in range(50):
            record = process.step()
            if len(record.wait_values):
                assert record.wait_values.min() >= 0

    def test_wait_counts_match_accepted(self):
        process = CappedProcess(n=32, capacity=2, lam=0.75, rng=7)
        for _ in range(50):
            record = process.step()
            assert record.wait_total == record.accepted


class TestExactSimulator:
    def test_matches_interface(self):
        exact = ExactCappedSimulator(n=8, capacity=1, lam=0.5, rng=0)
        record = exact.step()
        assert record.thrown == record.accepted + record.pool_size

    def test_records_waits_at_deletion(self):
        # One bin, capacity 2: the first round's accepted ball is deleted
        # the same round (wait 0); a ball accepted at position 1 waits 1.
        exact = ExactCappedSimulator(n=1, capacity=2, lam=0.0, rng=0)
        exact.pool.extend(exact._ids.make_batch(0, 2))
        record = exact.step(choices=np.zeros(2, dtype=np.int64))
        assert record.deleted == 1
        assert record.wait_values.tolist() == [1]
        record = exact.step(choices=np.zeros(0, dtype=np.int64))
        assert record.wait_values.tolist() == [2]

    def test_conservation_over_run(self):
        exact = ExactCappedSimulator(n=16, capacity=2, lam=0.75, rng=8)
        generated = 0
        deleted = 0
        for _ in range(40):
            record = exact.step()
            generated += record.arrivals
            deleted += record.deleted
        in_system = record.pool_size + record.total_load
        assert generated == deleted + in_system

    def test_drain_returns_all_waits(self):
        exact = ExactCappedSimulator(n=8, capacity=2, lam=0.75, rng=9)
        generated = 0
        for _ in range(10):
            generated += exact.step().arrivals
        already_deleted = sum(b.total_deleted for b in exact.bin_buffers)
        drained = exact.drain()
        assert len(drained) == generated - already_deleted

    def test_check_invariants(self):
        exact = ExactCappedSimulator(n=8, capacity=2, lam=0.5, rng=10)
        for _ in range(20):
            exact.step()
            exact.check_invariants()


class TestExactSimulatorInitialPool:
    def test_initial_pool_unsupported_gracefully(self):
        # ExactCappedSimulator has no initial_pool parameter by design (it
        # is the faithful cold-start reference); this documents that.
        with pytest.raises(TypeError):
            ExactCappedSimulator(n=8, capacity=1, lam=0.5, initial_pool=5)  # type: ignore[call-arg]
