"""Unit tests for MODCAPPED(c, λ) and the Eq. (5) buffer schedule."""

import numpy as np
import pytest

from repro.core.modcapped import ModCappedProcess, buffer_capacity
from repro.core.theory import m_star
from repro.errors import ConfigurationError


class TestBufferCapacity:
    def test_ramps_up_during_fill_phase(self):
        # Buffer j=2, c=4: fill phase I_1 = [4, 7].
        assert [buffer_capacity(2, t, 4) for t in range(4, 8)] == [0, 1, 2, 3]

    def test_full_at_phase_start(self):
        assert buffer_capacity(2, 8, 4) == 4

    def test_ramps_down_during_drain_phase(self):
        # Drain phase I_2 = [8, 11].
        assert [buffer_capacity(2, t, 4) for t in range(8, 12)] == [4, 3, 2, 1]

    def test_zero_outside_window(self):
        assert buffer_capacity(2, 3, 4) == 0
        assert buffer_capacity(2, 12, 4) == 0

    def test_active_capacities_sum_to_c(self):
        # Paper: in any round the active buffers' capacities sum to c.
        for c in (1, 2, 3, 5):
            for t in range(1, 6 * c):
                total = sum(buffer_capacity(j, t, c) for j in range(0, t // c + 3))
                assert total == c, (c, t)

    def test_unit_capacity_single_buffer_per_round(self):
        for t in range(1, 10):
            active = [j for j in range(0, 12) if buffer_capacity(j, t, 1) > 0]
            assert active == [t]

    def test_rejects_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            buffer_capacity(0, 0, 0)


class TestIndices:
    def test_drain_and_fill_indices(self):
        process = ModCappedProcess(n=8, c=4, lam=0.5)
        assert process.drain_index(5) == 1
        assert process.fill_index(5) == 2

    def test_single_buffer_at_phase_starts(self):
        process = ModCappedProcess(n=8, c=4, lam=0.5)
        assert process.fill_index(8) is None
        assert process.drain_index(8) == 2

    def test_unit_capacity_always_single_buffer(self):
        process = ModCappedProcess(n=8, c=1, lam=0.5)
        for t in range(1, 6):
            assert process.fill_index(t) is None
            assert process.drain_index(t) == t


class TestConfiguration:
    def test_rejects_invalid(self):
        with pytest.raises(ConfigurationError):
            ModCappedProcess(n=0, c=1, lam=0.5)
        with pytest.raises(ConfigurationError):
            ModCappedProcess(n=8, c=0, lam=0.5)
        with pytest.raises(ConfigurationError):
            ModCappedProcess(n=8, c=1, lam=0.3)  # 2.4 balls per round

    def test_default_m_star_matches_theory(self):
        process = ModCappedProcess(n=64, c=3, lam=0.75)
        assert process.m_star == pytest.approx(m_star(3, 0.75, 64))

    def test_m_star_override(self):
        process = ModCappedProcess(n=64, c=2, lam=0.75, m_star_value=500.0)
        assert process.m_star == 500.0


class TestGeneration:
    def test_at_least_m_star_thrown(self):
        process = ModCappedProcess(n=32, c=2, lam=0.5, rng=0)
        for _ in range(20):
            record = process.step()
            assert record.thrown >= process.m_star

    def test_generation_tops_up_deficit(self):
        process = ModCappedProcess(n=32, c=1, lam=0.5, rng=0)
        assert process.pool_size == 0
        assert process.generation_count() == int(np.ceil(process.m_star))

    def test_generation_at_least_lambda_n(self):
        process = ModCappedProcess(n=32, c=1, lam=0.5, m_star_value=1.0, rng=0)
        assert process.generation_count() == 16


class TestDynamics:
    def test_invariants_over_long_run(self):
        for c in (1, 2, 3, 4):
            process = ModCappedProcess(n=64, c=c, lam=0.75, rng=c)
            for _ in range(10 * c + 50):
                process.step()
                process.check_invariants()

    def test_total_load_never_exceeds_c(self):
        process = ModCappedProcess(n=32, c=3, lam=0.875, rng=1)
        for _ in range(60):
            process.step()
            assert int(process.total_loads().max()) <= 3

    def test_conservation_within_round(self):
        process = ModCappedProcess(n=32, c=2, lam=0.5, rng=2)
        for _ in range(30):
            record = process.step()
            assert record.pool_size == record.thrown - record.accepted

    def test_buffers_retire_empty(self):
        # _retire_drained_buffers raises if a buffer retires non-empty; a
        # long run across many phase boundaries exercises it.
        process = ModCappedProcess(n=16, c=4, lam=0.75, rng=3)
        for _ in range(100):
            process.step()
        # only the (at most two) active buffers remain tracked
        assert len(process.buffer_loads) <= 2

    def test_unit_capacity_bins_start_rounds_empty(self):
        # Section III: for c=1 every round starts with empty bins.
        process = ModCappedProcess(n=16, c=1, lam=0.5, rng=4)
        for _ in range(30):
            record = process.step()
            assert record.total_load == 0

    def test_injected_choices_deterministic(self):
        process = ModCappedProcess(n=4, c=1, lam=0.5, m_star_value=4.0, rng=0)
        # 4 balls (m* deficit), all to bin 0, capacity 1: accept 1.
        record = process.step(choices=np.zeros(4, dtype=np.int64))
        assert record.accepted == 1
        assert record.deleted == 1
        assert record.pool_size == 3

    def test_wrong_choice_count_rejected(self):
        process = ModCappedProcess(n=4, c=1, lam=0.5, rng=0)
        with pytest.raises(ConfigurationError):
            process.step(choices=np.zeros(1, dtype=np.int64))

    def test_preference_mask_respected(self):
        # c=2, t=1: drain buffer cap 1, fill buffer cap 1. Two balls to the
        # same bin, both preferring the drain buffer: one satisfied, the
        # other cross-fills; total accepted 2.
        process = ModCappedProcess(n=4, c=2, lam=0.5, m_star_value=2.0, rng=0)
        record = process.step(
            choices=np.zeros(2, dtype=np.int64),
            drain_preference=np.array([True, True]),
        )
        assert record.accepted == 2
        assert record.deleted == 1

    def test_preference_mask_length_checked(self):
        process = ModCappedProcess(n=4, c=2, lam=0.5, m_star_value=2.0, rng=0)
        with pytest.raises(ConfigurationError):
            process.step(
                choices=np.zeros(2, dtype=np.int64),
                drain_preference=np.array([True]),
            )


class TestPoolStaysBounded:
    def test_pool_hovers_near_m_star(self):
        # MODCAPPED is built to keep the pool near m*: generation tops it
        # up to m*, and Lemma 7 says it rarely exceeds 2m*.
        process = ModCappedProcess(n=256, c=2, lam=0.75, rng=5)
        for _ in range(100):
            process.step()
        pools = [process.step().pool_size for _ in range(100)]
        assert min(pools) >= 0
        assert max(pools) < 2 * process.m_star
