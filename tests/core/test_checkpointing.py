"""Unit tests for checkpoint/restore of the CAPPED process."""

import numpy as np

from repro.core.capped import CappedProcess


def run_and_record(process, rounds):
    return [
        (r.pool_size, r.accepted, r.deleted, r.max_load)
        for r in (process.step() for _ in range(rounds))
    ]


class TestCheckpointing:
    def test_restore_resumes_identical_trajectory(self):
        process = CappedProcess(n=64, capacity=2, lam=0.75, rng=1)
        run_and_record(process, 20)
        snapshot = process.get_state()
        original = run_and_record(process, 30)

        fresh = CappedProcess(n=64, capacity=2, lam=0.75, rng=999)
        fresh.set_state(snapshot)
        replayed = run_and_record(fresh, 30)
        assert replayed == original

    def test_restore_same_process_rewinds(self):
        process = CappedProcess(n=32, capacity=1, lam=0.5, rng=2)
        run_and_record(process, 10)
        snapshot = process.get_state()
        first = run_and_record(process, 15)
        process.set_state(snapshot)
        second = run_and_record(process, 15)
        assert first == second

    def test_snapshot_is_deep(self):
        process = CappedProcess(n=16, capacity=2, lam=0.5, rng=3)
        run_and_record(process, 5)
        snapshot = process.get_state()
        before = list(snapshot["bins"]["loads"])
        run_and_record(process, 5)
        assert snapshot["bins"]["loads"] == before

    def test_round_counter_restored(self):
        process = CappedProcess(n=16, capacity=1, lam=0.5, rng=4)
        run_and_record(process, 7)
        snapshot = process.get_state()
        run_and_record(process, 5)
        process.set_state(snapshot)
        assert process.round == 7

    def test_mismatched_n_adopts_snapshot_membership(self):
        # Elastic membership: snapshots taken after churn resized the bins
        # restore into a process built at a different size, adopting the
        # snapshot's n (initial-n compatibility is the checkpoint layer's
        # job, not set_state's).
        small = CappedProcess(n=8, capacity=1, lam=0.5, rng=5)
        small.step()
        big = CappedProcess(n=16, capacity=1, lam=0.5, rng=5)
        big.set_state(small.get_state())
        assert big.n == 8
        assert big.get_state() == small.get_state()

    def test_pool_ages_survive_roundtrip(self):
        process = CappedProcess(n=8, capacity=1, lam=0.5, rng=6, initial_pool=12)
        run_and_record(process, 3)
        snapshot = process.get_state()
        restored = CappedProcess(n=8, capacity=1, lam=0.5, rng=0)
        restored.set_state(snapshot)
        assert list(restored.pool.buckets()) == list(process.pool.buckets())


class TestFaultedStateRoundtrip:
    """Regression: snapshots taken inside a fault window must restore the
    faulted state, not the constructed one."""

    def test_degraded_capacity_survives_roundtrip(self):
        # A snapshot mid-degradation used to restore the constructed
        # capacity, silently resuming with the wrong free-slot budget.
        process = CappedProcess(n=32, capacity=4, lam=0.75, rng=7)
        run_and_record(process, 10)
        process.bins.set_capacity(1, indices=np.arange(8))
        run_and_record(process, 5)
        original = process.bins.capacity_of(np.arange(32)).tolist()

        restored = CappedProcess(n=32, capacity=4, lam=0.75, rng=0)
        restored.set_state(process.get_state())
        assert restored.bins.capacity_of(np.arange(32)).tolist() == original
        assert run_and_record(restored, 20) == run_and_record(process, 20)

    def test_down_mask_survives_roundtrip(self):
        process = CappedProcess(n=32, capacity=2, lam=0.75, rng=8)
        run_and_record(process, 10)
        process.bins.set_down(np.asarray([1, 4, 9]))
        run_and_record(process, 5)

        restored = CappedProcess(n=32, capacity=2, lam=0.75, rng=0)
        restored.set_state(process.get_state())
        assert restored.bins.down.tolist() == process.bins.down.tolist()
        assert run_and_record(restored, 20) == run_and_record(process, 20)
