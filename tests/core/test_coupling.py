"""Unit tests for the CAPPED/MODCAPPED coupling (Lemmas 1 and 6)."""

import pytest

from repro.core.coupling import CoupledRun, run_coupled
from repro.errors import InvariantViolation


class TestLemma1UnitCapacity:
    def test_pool_dominance_holds_every_round(self):
        report = run_coupled(n=128, c=1, lam=0.75, rounds=300, rng=0)
        assert report.holds
        assert report.violations == 0

    def test_dominance_at_low_rate(self):
        report = run_coupled(n=64, c=1, lam=0.5, rounds=200, rng=1)
        assert report.holds

    def test_dominance_at_extreme_rate(self):
        n = 128
        report = run_coupled(n=n, c=1, lam=1 - 1 / n, rounds=200, rng=2)
        assert report.holds


class TestLemma6GeneralCapacity:
    @pytest.mark.parametrize("c", [2, 3, 4, 5])
    def test_pool_dominance_holds(self, c):
        report = run_coupled(n=64, c=c, lam=0.75, rounds=150, rng=c)
        assert report.holds

    def test_load_dominance_recorded(self):
        run = CoupledRun(n=64, c=3, lam=0.75, rng=3)
        for _ in range(100):
            result = run.step()
            assert result.loads_dominated
            assert result.pool_dominated


class TestMechanics:
    def test_history_accumulates(self):
        run = CoupledRun(n=32, c=2, lam=0.5, rng=4)
        run.run(50)
        assert len(run.history) == 50
        assert len(run.capped_pools) == 50

    def test_round_counter(self):
        run = CoupledRun(n=32, c=2, lam=0.5, rng=5)
        run.run(10)
        assert run.round == 10

    def test_strict_mode_raises_on_injected_violation(self):
        run = CoupledRun(n=32, c=1, lam=0.5, rng=6)
        run.step()
        # Corrupt the CAPPED pool to force a violation at the next check.
        run.capped.pool.add(run.capped.round, 10**6)
        with pytest.raises(InvariantViolation):
            run.step()

    def test_non_strict_mode_records_violation(self):
        run = CoupledRun(n=32, c=1, lam=0.5, rng=7, strict=False)
        run.step()
        run.capped.pool.add(run.capped.round, 10**6)
        result = run.step()
        assert not result.pool_dominated
        assert not run.report().holds

    def test_modcapped_pool_stays_near_m_star(self):
        run = CoupledRun(n=128, c=2, lam=0.75, rng=8)
        run.run(100)
        # MODCAPPED throws >= m* every round, so its pool never collapses
        # to the CAPPED level — the dominance is strict in practice.
        assert run.modcapped_pools[-1] > run.capped_pools[-1]
