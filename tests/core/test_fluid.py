"""Unit tests for the transient fluid trajectories."""

import numpy as np
import pytest

from repro.core import fluid
from repro.core.meanfield import equilibrium
from repro.errors import ConfigurationError


class TestIntegrate:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            fluid.integrate(c=0, lam=0.5, rounds=10)
        with pytest.raises(ConfigurationError):
            fluid.integrate(c=1, lam=1.0, rounds=10)
        with pytest.raises(ConfigurationError):
            fluid.integrate(c=1, lam=0.5, rounds=0)
        with pytest.raises(ConfigurationError):
            fluid.integrate(c=1, lam=0.5, rounds=5, initial_pool=-1.0)
        with pytest.raises(ConfigurationError):
            fluid.integrate(c=1, lam=0.5, rounds=5, initial_loads=np.array([0.5, 0.6]))

    def test_lengths(self):
        trajectory = fluid.integrate(c=2, lam=0.5, rounds=25)
        assert trajectory.rounds == 25
        assert len(trajectory.pool) == 26
        assert len(trajectory.accept_rate) == 25

    def test_cold_start_monotone_fill(self):
        trajectory = fluid.integrate(c=1, lam=0.75, rounds=100)
        diffs = np.diff(trajectory.pool)
        assert np.all(diffs >= -1e-12)

    def test_converges_to_equilibrium(self):
        for c, lam in ((1, 0.75), (3, 0.9375)):
            trajectory = fluid.integrate(c=c, lam=lam, rounds=2000)
            assert trajectory.pool[-1] == pytest.approx(
                equilibrium(c, lam).normalized_pool, rel=1e-3
            )

    def test_spike_drains_at_lemma3_rate(self):
        # Large pool: balls accepted per bin ≈ 1 − e^{−ν/n} ≈ 1, so the
        # pool should shed ≈ (1 − λ) per round initially.
        trajectory = fluid.integrate(c=1, lam=0.5, rounds=5, initial_pool=6.0)
        first_drop = trajectory.pool[0] - trajectory.pool[1]
        assert first_drop == pytest.approx(0.5, abs=0.01)

    def test_zero_lambda_empties(self):
        trajectory = fluid.integrate(c=2, lam=0.0, rounds=50, initial_pool=3.0)
        assert trajectory.pool[-1] == pytest.approx(0.0, abs=1e-6)

    def test_rounds_to_reach(self):
        trajectory = fluid.integrate(c=1, lam=0.75, rounds=100)
        hit = trajectory.rounds_to_reach(0.5, from_above=False)
        assert hit is not None
        assert trajectory.pool[hit] >= 0.5
        assert trajectory.pool[hit - 1] < 0.5

    def test_rounds_to_reach_never(self):
        trajectory = fluid.integrate(c=1, lam=0.25, rounds=20)
        assert trajectory.rounds_to_reach(10.0, from_above=False) is None


class TestRelaxation:
    def test_scales_with_inverse_gap(self):
        fast = fluid.relaxation_rounds(2, 1 - 2**-4)
        slow = fluid.relaxation_rounds(2, 1 - 2**-8)
        ratio = slow / fast
        assert 4 <= ratio <= 40  # ~16x expected from the 1/(1-lam) scaling

    def test_zero_lambda_instant(self):
        assert fluid.relaxation_rounds(1, 0.0) == 0

    def test_fraction_validation(self):
        with pytest.raises(ConfigurationError):
            fluid.relaxation_rounds(1, 0.5, fraction=1.5)

    def test_burn_in_heuristic_covers_fluid_relaxation(self):
        # The engine's cold-start burn-in must dominate the fluid fill time.
        from repro.engine.stability import default_burn_in

        for exponent in (4, 6, 8):
            lam = 1 - 2**-exponent
            needed = fluid.relaxation_rounds(2, lam)
            assert default_burn_in(4096, 2, lam, warm_start=False) >= needed


class TestAgainstSimulation:
    def test_cold_start_trajectory_matches_simulation(self):
        # The fluid transient should track the (averaged) stochastic
        # trajectory of a cold-started simulation round for round.
        from repro.core.capped import CappedProcess

        c, lam, n, rounds = 2, 0.875, 4096, 60
        trajectory = fluid.integrate(c=c, lam=lam, rounds=rounds)
        process = CappedProcess(n=n, capacity=c, lam=lam, rng=7)
        simulated = [process.step().pool_size / n for _ in range(rounds)]
        errors = [abs(s - f) for s, f in zip(simulated, trajectory.pool[1:])]
        assert max(errors) < 0.05
