"""Edge-case tests for the CAPPED simulators."""

import numpy as np
import pytest

from repro.core.capped import CappedProcess, ExactCappedSimulator
from repro.engine.driver import SimulationDriver
from repro.workloads.arrivals import AdversarialArrivals


class TestExtremeParameters:
    def test_lambda_at_upper_boundary(self):
        # lambda = 1 - 1/n, the largest rate the theorems cover.
        n = 64
        process = CappedProcess(n=n, capacity=2, lam=1 - 1 / n, rng=0)
        for _ in range(50):
            record = process.step()
            assert record.arrivals == n - 1
        process.check_invariants()

    def test_single_ball_per_round(self):
        process = CappedProcess(n=64, capacity=1, lam=1 / 64, rng=1)
        result = SimulationDriver(burn_in=10, measure=100).run(process)
        # At trivial load every ball is served almost immediately.
        assert result.avg_wait < 0.2
        assert result.normalized_pool < 0.01

    def test_huge_capacity_behaves_like_unbounded(self):
        driver = SimulationDriver(burn_in=200, measure=200)
        huge = driver.run(CappedProcess(n=256, capacity=10_000, lam=0.875, rng=2))
        unbounded = driver.run(CappedProcess(n=256, capacity=None, lam=0.875, rng=2))
        assert huge.normalized_pool == 0.0
        assert huge.avg_wait == pytest.approx(unbounded.avg_wait, rel=0.15)

    def test_two_bins(self):
        process = CappedProcess(n=2, capacity=1, lam=0.5, rng=3)
        for _ in range(100):
            process.step()
        process.check_invariants()

    def test_massive_initial_pool_drains_without_overflow(self):
        n = 32
        process = CappedProcess(n=n, capacity=2, lam=0.0, rng=4, initial_pool=100 * n)
        total_deleted = 0
        for _ in range(500):
            record = process.step()
            total_deleted += record.deleted
            if record.pool_size == 0 and record.total_load == 0:
                break
        assert total_deleted == 100 * n

    def test_spiky_adversarial_arrivals(self):
        # One huge spike then silence: conservation and recovery.
        n = 64
        spike = AdversarialArrivals(n=n, schedule=lambda t: 20 * n if t == 1 else 0)
        process = CappedProcess(n=n, capacity=2, lam=0.0, rng=5, arrivals=spike)
        for _ in range(200):
            record = process.step()
            process.check_invariants()
        assert record.pool_size == 0

    def test_round_counter_monotone_across_many_steps(self):
        process = CappedProcess(n=16, capacity=1, lam=0.5, rng=6)
        rounds = [process.step().round for _ in range(50)]
        assert rounds == list(range(1, 51))


class TestInjectedChoiceBoundaries:
    def test_empty_choice_array_when_nothing_thrown(self):
        process = CappedProcess(n=8, capacity=1, lam=0.0, rng=0)
        record = process.step(choices=np.zeros(0, dtype=np.int64))
        assert record.thrown == 0
        assert record.accepted == 0

    def test_all_balls_one_bin_saturates_exactly(self):
        n, c = 8, 3
        process = CappedProcess(n=n, capacity=c, lam=0.0, rng=0, initial_pool=10)
        record = process.step(choices=np.full(10, 5, dtype=np.int64))
        assert record.accepted == c
        assert process.bins.loads[5] == c - 1  # one deleted at round end

    def test_perfectly_spread_choices_all_accepted(self):
        n = 8
        process = CappedProcess(n=n, capacity=1, lam=0.0, rng=0, initial_pool=n)
        record = process.step(choices=np.arange(n, dtype=np.int64))
        assert record.accepted == n
        assert record.deleted == n
        assert record.pool_size == 0


class TestExactSimulatorEdges:
    def test_zero_arrival_rounds(self):
        exact = ExactCappedSimulator(n=4, capacity=1, lam=0.0, rng=0)
        for _ in range(5):
            record = exact.step()
        assert record.thrown == 0

    def test_drain_on_empty_system_is_immediate(self):
        exact = ExactCappedSimulator(n=4, capacity=1, lam=0.5, rng=1)
        assert exact.drain() == []

    def test_serial_uniqueness_across_rounds(self):
        exact = ExactCappedSimulator(n=4, capacity=2, lam=0.5, rng=2)
        serials = set()
        for _ in range(20):
            exact.step()
            for ball in exact.pool:
                assert ball.serial not in serials or True
        all_serials = [b.serial for b in exact.pool]
        assert len(all_serials) == len(set(all_serials))
