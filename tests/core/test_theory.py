"""Unit tests for the closed-form bounds of Theorems 1 and 2."""

import math

import pytest

from repro.core import theory
from repro.errors import ConfigurationError


class TestLogInverseGap:
    def test_zero_at_lambda_zero(self):
        assert theory.log_inverse_gap(0.0) == 0.0

    def test_known_value(self):
        assert theory.log_inverse_gap(0.75) == pytest.approx(math.log(4))

    def test_reaches_ln_n_at_extreme(self):
        n = 1024
        assert theory.log_inverse_gap(1 - 1 / n) == pytest.approx(math.log(n))

    def test_rejects_lambda_one(self):
        with pytest.raises(ConfigurationError):
            theory.log_inverse_gap(1.0)


class TestLogLog:
    def test_known_value(self):
        assert theory.loglog(2**16) == pytest.approx(4.0)

    def test_small_n(self):
        assert theory.loglog(2) == 0.0

    def test_rejects_n_one(self):
        with pytest.raises(ConfigurationError):
            theory.loglog(1)


class TestMStar:
    def test_warmup_value(self):
        # Section III: m* = ln(1/(1-lam))*n + 2n.
        n, lam = 1000, 0.75
        assert theory.m_star(1, lam, n) == pytest.approx(math.log(4) * n + 2 * n)

    def test_general_value(self):
        # Section IV-A: m* = 2/c*ln(1/(1-lam))*n + 6cn.
        n, lam, c = 1000, 0.75, 3
        expected = 2 / 3 * math.log(4) * n + 18 * n
        assert theory.m_star(c, lam, n) == pytest.approx(expected)

    def test_auto_picks_warmup_for_unit_capacity(self):
        n, lam = 512, 0.5
        assert theory.m_star(1, lam, n) == theory.m_star(1, lam, n, variant="warmup")

    def test_general_for_unit_capacity_differs(self):
        n, lam = 512, 0.5
        general = theory.m_star(1, lam, n, variant="general")
        warmup = theory.m_star(1, lam, n, variant="warmup")
        assert general > warmup

    def test_warmup_rejected_for_larger_c(self):
        with pytest.raises(ConfigurationError):
            theory.m_star(2, 0.5, 512, variant="warmup")

    def test_unknown_variant(self):
        with pytest.raises(ConfigurationError):
            theory.m_star(1, 0.5, 512, variant="bogus")

    def test_m_star_at_least_2n(self):
        # The proofs use m* >= 2n (end of Lemma 2 / Lemma 7).
        for c in (1, 2, 5):
            for lam in (0.0, 0.5, 1 - 2**-8):
                assert theory.m_star(c, lam, 1024) >= 2 * 1024


class TestTheoremBounds:
    def test_thm1_pool_is_twice_warmup_mstar(self):
        n, lam = 2048, 0.9375
        assert theory.thm1_pool_bound(lam, n) == pytest.approx(
            2 * theory.m_star(1, lam, n, variant="warmup")
        )

    def test_thm2_pool_is_twice_general_mstar(self):
        n, lam, c = 2048, 0.9375, 3
        assert theory.thm2_pool_bound(c, lam, n) == pytest.approx(
            2 * theory.m_star(c, lam, n, variant="general")
        )

    def test_thm1_wait_structure(self):
        # (2 ln(1/(1-lam)) + 4)/(1 - 1/e) + loglog n + O(1)
        n, lam = 2**16, 0.75
        lead = (2 * math.log(4) + 4) / (1 - 1 / math.e)
        assert theory.thm1_wait_bound(lam, n, additive_constant=0.0) == pytest.approx(lead + 4.0)

    def test_thm2_wait_decreases_then_increases_in_c(self):
        # L/c + c shape: for large lambda the bound has an interior optimum.
        n, lam = 2**15, 1 - 2**-12
        waits = [theory.thm2_wait_bound(c, lam, n) for c in range(1, 12)]
        best = waits.index(min(waits))
        assert 0 < best < len(waits) - 1

    def test_pool_bound_decreases_in_c_initially(self):
        n, lam = 2**15, 1 - 2**-12
        assert theory.thm2_pool_bound(2, lam, n) < theory.thm2_pool_bound(1, lam, n)

    def test_bounds_increase_in_lambda(self):
        n = 4096
        for fn in (
            lambda lam: theory.thm1_pool_bound(lam, n),
            lambda lam: theory.thm1_wait_bound(lam, n),
            lambda lam: theory.thm2_pool_bound(2, lam, n),
            lambda lam: theory.thm2_wait_bound(2, lam, n),
        ):
            assert fn(0.9) > fn(0.5)


class TestEmpiricalCurves:
    def test_fig4_reference(self):
        assert theory.empirical_pool_curve(2, 0.75) == pytest.approx(math.log(4) / 2 + 1)

    def test_fig5_reference(self):
        n = 2**15
        expected = math.log(4) / 2 + math.log2(math.log2(n)) + 2
        assert theory.empirical_wait_curve(2, 0.75, n) == pytest.approx(expected)

    def test_references_far_below_theorem_bounds(self):
        # Section V: the proven bounds are ~4x the observed behaviour.
        n, lam, c = 2**15, 1 - 2**-10, 2
        assert theory.empirical_pool_curve(c, lam) * n < theory.thm2_pool_bound(c, lam, n)
        assert theory.empirical_wait_curve(c, lam, n) < theory.thm2_wait_bound(c, lam, n)


class TestSweetSpot:
    def test_continuous_value(self):
        lam = 1 - math.exp(-9.0)  # ln gap = 9
        assert theory.sweet_spot_c(lam, integer=False) == pytest.approx(3.0)

    def test_integer_rounds_to_best(self):
        lam = 1 - math.exp(-9.0)
        assert theory.sweet_spot_c(lam) == 3

    def test_at_least_one(self):
        assert theory.sweet_spot_c(0.1) == 1

    def test_paper_window(self):
        # Section V observes minima around c = 2..3 for lambda up to 1-2^-13.
        for exponent in (10, 13):
            assert 2 <= theory.sweet_spot_c(1 - 2.0**-exponent) <= 3

    def test_grows_with_lambda(self):
        assert theory.sweet_spot_c(1 - 2.0**-20) >= theory.sweet_spot_c(0.5)


class TestBaselineScales:
    def test_greedy_one_choice_blows_up(self):
        n = 4096
        moderate = theory.greedy_one_choice_wait_bound(0.5, n)
        extreme = theory.greedy_one_choice_wait_bound(1 - 2**-10, n)
        assert extreme > 100 * moderate

    def test_greedy_two_choice_grows_slowly(self):
        n = 4096
        moderate = theory.greedy_two_choice_wait_bound(0.5, n)
        extreme = theory.greedy_two_choice_wait_bound(1 - 2**-10, n)
        assert extreme < 3 * moderate

    def test_capped_beats_greedy_scales_at_high_lambda(self):
        n, lam = 2**15, 1 - 2**-10
        capped = theory.thm2_wait_bound(3, lam, n)
        assert capped < theory.greedy_one_choice_wait_bound(lam, n)
