"""Unit tests for the mean-field equilibrium solver."""

import math

import numpy as np
import pytest

from repro.core.meanfield import (
    accept_rate,
    equilibrium,
    equilibrium_throw_intensity,
    poisson_pmf,
    stationary_loads,
)
from repro.errors import ConfigurationError


class TestPoissonPmf:
    def test_sums_to_one(self):
        assert poisson_pmf(3.0, 50).sum() == pytest.approx(1.0)

    def test_matches_closed_form(self):
        pmf = poisson_pmf(2.0, 20)
        for k in (0, 1, 5):
            expected = math.exp(-2.0) * 2.0**k / math.factorial(k)
            assert pmf[k] == pytest.approx(expected)

    def test_zero_rate(self):
        pmf = poisson_pmf(0.0, 5)
        assert pmf[0] == 1.0
        assert pmf[1:].sum() == 0.0

    def test_tail_folded_into_last_bin(self):
        pmf = poisson_pmf(10.0, 5)
        assert pmf.sum() == pytest.approx(1.0)
        assert pmf[5] > math.exp(-10.0) * 10.0**5 / math.factorial(5)

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            poisson_pmf(-1.0, 5)
        with pytest.raises(ConfigurationError):
            poisson_pmf(1.0, -1)


class TestStationaryLoads:
    def test_unit_capacity_always_empty(self):
        # c=1 bins delete everything they accept each round.
        dist = stationary_loads(2.0, c=1)
        assert dist[0] == pytest.approx(1.0)
        assert dist[1] == pytest.approx(0.0)

    def test_distribution_normalised(self):
        for c in (1, 2, 4):
            dist = stationary_loads(1.5, c)
            assert dist.sum() == pytest.approx(1.0)
            assert np.all(dist >= -1e-12)

    def test_high_intensity_saturates(self):
        # Huge intensity: bin always fills to c, deletes one -> load c-1.
        dist = stationary_loads(50.0, c=3)
        assert dist[2] == pytest.approx(1.0, abs=1e-6)

    def test_zero_intensity_stays_empty(self):
        dist = stationary_loads(0.0, c=3)
        assert dist[0] == pytest.approx(1.0)


class TestAcceptRate:
    def test_unit_capacity_closed_form(self):
        # c=1: accept rate = P(A >= 1) = 1 - e^{-intensity}.
        for intensity in (0.5, 1.0, 2.5):
            assert accept_rate(intensity, 1) == pytest.approx(1 - math.exp(-intensity), abs=1e-6)

    def test_monotone_in_intensity(self):
        rates = [accept_rate(x, 2) for x in (0.5, 1.0, 2.0, 4.0)]
        assert rates == sorted(rates)

    def test_bounded_by_one(self):
        # At most one deletion per bin per round in equilibrium.
        assert accept_rate(30.0, 2) <= 1.0 + 1e-9


class TestEquilibrium:
    def test_unit_capacity_matches_ln_form(self):
        # For c=1 the equilibrium intensity is exactly ln(1/(1-lam)).
        for lam in (0.5, 0.75, 1 - 2**-8):
            intensity = equilibrium_throw_intensity(1, lam)
            assert intensity == pytest.approx(math.log(1 / (1 - lam)), rel=1e-5)

    def test_zero_lambda(self):
        eq = equilibrium(2, 0.0)
        assert eq.normalized_pool == 0.0
        assert eq.mean_wait == 0.0

    def test_pool_decreases_in_capacity(self):
        lam = 1 - 2**-8
        pools = [equilibrium(c, lam).normalized_pool for c in (1, 2, 3, 4)]
        assert pools == sorted(pools, reverse=True)

    def test_pool_increases_in_lambda(self):
        pools = [equilibrium(2, lam).normalized_pool for lam in (0.5, 0.75, 0.9375)]
        assert pools == sorted(pools)

    def test_little_law_consistency(self):
        eq = equilibrium(2, 0.75)
        assert eq.mean_wait == pytest.approx((eq.normalized_pool + eq.mean_load) / 0.75)

    def test_pool_size_helper(self):
        eq = equilibrium(1, 0.75)
        assert eq.pool_size(1000) == round(eq.normalized_pool * 1000)

    def test_matches_simulation(self):
        # The headline validation: fluid limit vs the actual process.
        from repro.analysis.sweep import measure_capped

        for c, lam in ((1, 0.75), (2, 1 - 2**-6)):
            predicted = equilibrium(c, lam).normalized_pool
            point = measure_capped(n=2048, c=c, lam=lam, measure=300, seed=1)
            assert point.normalized_pool == pytest.approx(predicted, rel=0.1)

    def test_wait_prediction_matches_simulation(self):
        from repro.analysis.sweep import measure_capped

        c, lam = 2, 0.875
        predicted = equilibrium(c, lam).mean_wait
        point = measure_capped(n=2048, c=c, lam=lam, measure=300, seed=2)
        assert point.avg_wait == pytest.approx(predicted, rel=0.1)
