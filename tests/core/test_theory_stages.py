"""Unit tests for failure probabilities and the wait-bound decomposition."""

import math

import pytest

from repro.core import theory
from repro.errors import ConfigurationError


class TestFailureProbabilities:
    def test_pool_probability_value(self):
        assert theory.pool_bound_failure_probability(4) == pytest.approx(2.0**-8)

    def test_pool_probability_underflows_to_zero(self):
        assert theory.pool_bound_failure_probability(2**15) == 0.0

    def test_wait_probability_value(self):
        assert theory.wait_bound_failure_probability(100) == pytest.approx(1e-4)

    def test_wait_probability_decreases_in_n(self):
        assert theory.wait_bound_failure_probability(
            2048
        ) < theory.wait_bound_failure_probability(1024)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            theory.pool_bound_failure_probability(0)
        with pytest.raises(ConfigurationError):
            theory.wait_bound_failure_probability(0)


class TestDrainStage:
    def test_lemma3_formula(self):
        # Delta = m / (n - n/e)
        n, pool = 1000, 5000
        assert theory.drain_stage_rounds(pool, n) == pytest.approx(pool / (n * (1 - 1 / math.e)))

    def test_empty_pool_drains_instantly(self):
        assert theory.drain_stage_rounds(0, 100) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            theory.drain_stage_rounds(-1, 100)


class TestFinalStage:
    def test_lemma5_scale(self):
        assert theory.final_stage_rounds(2**16) == pytest.approx(4.0 + 1.0)

    def test_additive_constant(self):
        assert theory.final_stage_rounds(2**16, additive_constant=0.0) == pytest.approx(4.0)


class TestDecomposition:
    def test_stages_sum_to_thm2_bound(self):
        c, lam, n = 3, 1 - 2**-8, 2**12
        stages = theory.wait_bound_decomposition(c, lam, n)
        assert sum(stages.values()) == pytest.approx(theory.thm2_wait_bound(c, lam, n))

    def test_stage_names(self):
        stages = theory.wait_bound_decomposition(2, 0.75, 1024)
        assert set(stages) == {"drain", "bridge", "final", "buffer"}

    def test_bridge_is_lemma4_constant(self):
        stages = theory.wait_bound_decomposition(2, 0.75, 1024)
        assert stages["bridge"] == theory.LEMMA4_ROUNDS == 19

    def test_drain_dominates_at_high_lambda_unit_capacity(self):
        stages = theory.wait_bound_decomposition(1, 1 - 2**-12, 2**15)
        assert stages["drain"] > stages["final"]
        assert stages["drain"] > stages["buffer"]

    def test_buffer_term_grows_with_c(self):
        small = theory.wait_bound_decomposition(1, 0.75, 1024)["buffer"]
        large = theory.wait_bound_decomposition(8, 0.75, 1024)["buffer"]
        assert large == 8.0 > small
