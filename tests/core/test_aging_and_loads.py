"""Tests for the acceptance-order ablation and load-distribution validation."""

import numpy as np
import pytest

from repro.core.capped import CappedProcess
from repro.core.meanfield import equilibrium, stationary_loads
from repro.engine.driver import SimulationDriver
from repro.engine.observers import AgeProfiler, LoadDistributionObserver
from repro.errors import ConfigurationError


class TestAcceptanceOrder:
    def test_invalid_order_rejected(self):
        with pytest.raises(ConfigurationError):
            CappedProcess(n=8, capacity=1, lam=0.5, acceptance_order="fifo")

    def test_youngest_first_deterministic_case(self):
        # One pool ball (label 0) and one new ball (label 1) compete for a
        # single slot: youngest-first accepts the *new* ball.
        process = CappedProcess(
            n=2, capacity=1, lam=0.5, rng=0, initial_pool=1, acceptance_order="youngest"
        )
        record = process.step(choices=np.zeros(2, dtype=np.int64))
        assert record.accepted == 1
        # Accepted ball is the fresh one: wait = (1-1) + 0 = 0.
        assert record.wait_values.tolist() == [0]
        # The old ball stays in the pool.
        assert process.pool.oldest_label == 0

    def test_pool_dynamics_identical_under_flip(self):
        # Acceptance counts per bin depend only on request counts, so with
        # shared choices the pool-size trajectory is identical.
        n, c, lam = 32, 2, 0.75
        oldest = CappedProcess(n=n, capacity=c, lam=lam, rng=0)
        youngest = CappedProcess(n=n, capacity=c, lam=lam, rng=0, acceptance_order="youngest")
        choice_rng = np.random.default_rng(11)
        for _ in range(100):
            thrown = oldest.pool.size + round(lam * n)
            choices = choice_rng.integers(0, n, size=thrown)
            a = oldest.step(choices=choices)
            b = youngest.step(choices=choices)
            assert a.pool_size == b.pool_size
            assert a.accepted == b.accepted
            assert a.max_load == b.max_load

    def test_youngest_first_starves_the_tail(self):
        driver_kwargs = dict(burn_in=600, measure=600)
        lam = 1 - 2**-8
        results = {}
        for order in ("oldest", "youngest"):
            profiler = AgeProfiler()
            process = CappedProcess(n=512, capacity=2, lam=lam, rng=5, acceptance_order=order)
            result = SimulationDriver(**driver_kwargs, observers=[profiler]).run(process)
            results[order] = (result, profiler)
        oldest_result, _ = results["oldest"]
        youngest_result, youngest_prof = results["youngest"]
        assert youngest_result.max_wait >= 3 * oldest_result.max_wait
        assert youngest_prof.peak_age > 3 * oldest_result.max_wait
        # The averages stay close (same pool dynamics).
        assert youngest_result.avg_wait == pytest.approx(oldest_result.avg_wait, rel=0.15)


class TestLoadDistribution:
    def test_empty_observer(self):
        observer = LoadDistributionObserver()
        assert observer.distribution().size == 0

    def test_ignores_processes_without_bins(self):
        from repro.processes.becchetti import RepeatedBallsProcess

        observer = LoadDistributionObserver()
        process = RepeatedBallsProcess(n=16, rng=0)
        SimulationDriver(burn_in=0, measure=5, observers=[observer]).run(process)
        # Becchetti exposes `loads` but not `bins`, so nothing is recorded.
        assert observer.rounds_observed == 0

    def test_distribution_sums_to_one(self):
        observer = LoadDistributionObserver()
        process = CappedProcess(n=64, capacity=2, lam=0.75, rng=1)
        SimulationDriver(burn_in=50, measure=100, observers=[observer]).run(process)
        dist = observer.distribution()
        assert dist.sum() == pytest.approx(1.0)
        assert len(dist) <= 3  # loads 0..c

    @pytest.mark.parametrize("c,lam", [(1, 0.75), (2, 0.875), (3, 1 - 2**-6)])
    def test_matches_meanfield_stationary_loads(self, c, lam):
        # The strongest mean-field check: the whole load *distribution*,
        # not just its mean, matches the fluid-limit chain.
        observer = LoadDistributionObserver()
        eq = equilibrium(c, lam)
        process = CappedProcess(n=2048, capacity=c, lam=lam, rng=2, initial_pool=eq.pool_size(2048))
        SimulationDriver(burn_in=300, measure=400, observers=[observer]).run(process)
        empirical = observer.distribution()
        predicted = stationary_loads(eq.throw_intensity, c)
        assert len(empirical) <= len(predicted)
        padded = np.zeros(len(predicted))
        padded[: len(empirical)] = empirical
        assert np.abs(padded - predicted).max() < 0.05
