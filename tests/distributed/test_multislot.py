"""Multi-slot workers: ``--jobs K`` drives K concurrent leases.

One process, one connection, one heartbeat thread — K compute threads.
The broker sees K independent leases from the same worker id; slot
results upload in completion order and SIGTERM drains finished results
before the process exits.
"""

from __future__ import annotations

import threading
import time

from repro.distributed import BrokerClient
from repro.distributed.store import read_events
from repro.parallel.tasks import TaskSpec

from .test_broker import collect, payload_for, stub_result
from .test_recovery import wait_for


class TestConcurrentSlots:
    def test_four_slots_overlap_execution(self, make_broker, stub_worker):
        broker = make_broker()
        gauge = {"now": 0, "peak": 0}
        lock = threading.Lock()

        def latency_bound(payload: dict) -> dict:
            with lock:
                gauge["now"] += 1
                gauge["peak"] = max(gauge["peak"], gauge["now"])
            time.sleep(0.15)
            with lock:
                gauge["now"] -= 1
            return stub_result(payload)

        worker = stub_worker(
            broker.address, task_fn=latency_bound, worker_id="multi", jobs=4
        )
        payloads = [payload_for(i) for i in range(8)]
        results = collect(BrokerClient(broker.address), payloads)
        assert len(results) == 8
        assert all(bundle["worker"] == "multi" for bundle in results.values())
        # The slots genuinely overlapped; a serial worker would peak at 1.
        assert gauge["peak"] >= 3
        assert worker.stats.completed == 8

    def test_broker_advertises_slot_count(self, make_broker, stub_worker, tmp_path):
        state_dir = tmp_path / "state"
        broker = make_broker(state_dir=state_dir)
        stub_worker(broker.address, task_fn=stub_result, worker_id="wide", jobs=3)
        collect(BrokerClient(broker.address), [payload_for(0)])
        joins = [e for e in read_events(state_dir) if e["event"] == "worker-join"]
        assert joins and joins[0]["worker"] == "wide"
        assert joins[0]["slots"] == 3

    def test_each_slot_gets_its_own_trace_origin(self, make_broker, stub_worker):
        """Distinct slots must mint spans under distinct origins, so span
        ids from concurrent executions of one worker can never collide."""
        broker = make_broker()
        seen_origins: set[str] = set()
        lock = threading.Lock()

        def spanning(payload: dict) -> dict:
            result = stub_result(payload)
            time.sleep(0.05)
            return result

        worker = stub_worker(
            broker.address, task_fn=spanning, worker_id="traced", jobs=2
        )
        # Trace origins are minted per slot launch: drive enough tasks
        # through that both slots fire, then inspect the serial counter.
        collect(BrokerClient(broker.address), [payload_for(i) for i in range(6)])
        assert worker._slot_serial == 6  # one fresh origin per leased task


class TestSigtermDrain:
    def test_stop_mid_task_still_uploads_the_finished_result(
        self, make_broker, stub_worker
    ):
        broker = make_broker()
        started = threading.Event()

        def slowish(payload: dict) -> dict:
            started.set()
            time.sleep(0.3)
            return stub_result(payload)

        worker = stub_worker(
            broker.address,
            task_fn=slowish,
            worker_id="draining",
            exit_when_idle=False,
            final_upload_window=5.0,
        )
        payloads = [payload_for(0)]
        results: dict[str, object] = {}
        driver = threading.Thread(
            target=lambda: results.update(collect(BrokerClient(broker.address), payloads)),
            daemon=True,
        )
        driver.start()
        started.wait(timeout=10.0)
        # What SIGTERM's handler does: request a stop. The in-flight task
        # finishes inside the final-upload window and must still land.
        worker._stop = True
        driver.join(timeout=15.0)
        assert not driver.is_alive()
        key = TaskSpec.from_payload(payloads[0]).digest
        bundle = results[key]
        assert not hasattr(bundle, "error")
        assert bundle["worker"] == "draining"
        assert bundle["releases"] == 0  # uploaded, not re-leased elsewhere
        wait_for(lambda: worker.stats.completed == 1)
