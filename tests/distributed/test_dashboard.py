"""``repro dashboard`` rendering: sweep panel, perf panel, error paths."""

from __future__ import annotations

import json

import pytest

from repro.distributed.dashboard import render_bench_panel, render_dashboard, render_sweep_panel
from repro.distributed.store import SweepStateStore
from repro.errors import ConfigurationError


def write_state_dir(tmp_path, events=()):
    store = SweepStateStore(tmp_path)
    store.state.tasks_total = 4
    store.state.tasks_done = 3
    store.state.tasks_failed = 1
    store.state.releases_total = 2
    store.state.retries_total = 1
    for event in events:
        store.record(event.pop("event"), **event)
    store.close()
    return tmp_path


class TestSweepPanel:
    def test_progress_and_fleet_lines(self, tmp_path):
        write_state_dir(
            tmp_path,
            [
                {"event": "complete", "key": "a", "worker": "vm-1", "resumed_round": None},
                {"event": "complete", "key": "b", "worker": "vm-1", "resumed_round": 20},
                {"event": "complete", "key": "c", "worker": "vm-2", "resumed_round": None},
                {"event": "re-lease", "key": "b", "worker": "vm-2", "reason": "lease expired"},
                {"event": "cache-hit", "key": "d", "source": "remote-cache"},
            ],
        )
        lines = render_sweep_panel(tmp_path)
        text = "\n".join(lines)
        assert "4/4" in text
        assert "(1 failed)" in text
        assert "re-leases 2" in text
        assert "retries 1" in text
        # Per-worker tallies, including checkpoint-resume provenance.
        assert any("vm-1" in line and "completed    2" in line for line in lines)
        assert any("vm-1" in line and "resumed-from-checkpoint 1" in line for line in lines)
        assert any("vm-2" in line and "re-leased 1" in line for line in lines)
        assert "remote-cache 1" in text

    def test_missing_state_dir_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="state.json"):
            render_sweep_panel(tmp_path / "nope")


class TestBenchPanel:
    def test_recognises_sweep_and_kernel_artifacts(self, tmp_path):
        sweep = tmp_path / "BENCH_sweep.json"
        sweep.write_text(
            json.dumps(
                {
                    "profile": "quick",
                    "fabric": {"speedup_4w_over_1w": 3.4},
                    "compute": {"serial": 2.0, "broker_4w": 6.1},
                }
            ),
            encoding="utf-8",
        )
        kernel = tmp_path / "BENCH_kernel.json"
        kernel.write_text(
            json.dumps({"profile": "full", "kernel_phase": {"speedup": 2.5}}), encoding="utf-8"
        )
        lines = render_bench_panel([sweep, kernel])
        text = "\n".join(lines)
        assert "fabric 4w/1w 3.40x" in text
        assert "broker-4w 6.10 task/s" in text
        assert "kernel-phase 2.50x" in text

    def test_unreadable_artifact_is_reported_not_fatal(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{torn", encoding="utf-8")
        lines = render_bench_panel([bad, tmp_path / "BENCH_missing.json"])
        assert sum("unreadable" in line for line in lines) == 2

    def test_unknown_sections_fall_back_to_note(self, tmp_path):
        weird = tmp_path / "BENCH_weird.json"
        weird.write_text(json.dumps({"profile": "quick", "something": 1}), encoding="utf-8")
        assert any("no recognised sections" in line for line in render_bench_panel([weird]))


class TestDashboard:
    def test_needs_at_least_one_input(self):
        with pytest.raises(ConfigurationError, match="dashboard needs"):
            render_dashboard(None, [])

    def test_combines_both_panels(self, tmp_path):
        state_dir = write_state_dir(tmp_path / "state")
        bench = tmp_path / "BENCH_sweep.json"
        bench.write_text(json.dumps({"profile": "quick"}), encoding="utf-8")
        lines = render_dashboard(state_dir, [bench])
        text = "\n".join(lines)
        assert "sweep state" in text
        assert "perf trajectory" in text


class TestFleetPanel:
    def write_fleet_prom(self, state_dir, workers=("vm-1", "vm-2")):
        from repro.telemetry.fleet import merge_fleet_snapshots
        from repro.telemetry.registry import MetricsRegistry
        from repro.telemetry.sinks import write_prometheus

        broker = MetricsRegistry()
        broker.gauge("fleet_queue_depth", "Queue depth.").set(0)
        for value in (0.5, 1.0, 2.0):
            broker.histogram("fleet_task_seconds", "Fleet latency.").observe(value)
        per_worker = {}
        for index, worker in enumerate(workers):
            reg = MetricsRegistry()
            reg.counter("worker_tasks_total", "Tasks.").inc(2 + index, status="ok")
            reg.histogram("worker_task_seconds", "Seconds.").observe(0.5, kind="capped")
            per_worker[worker] = reg.snapshot()
        state_dir.mkdir(parents=True, exist_ok=True)
        write_prometheus(
            merge_fleet_snapshots(per_worker, base=broker.snapshot()),
            state_dir / "fleet.prom",
        )

    def test_absent_fleet_prom_renders_no_panel(self, tmp_path):
        from repro.distributed.dashboard import render_fleet_panel

        assert render_fleet_panel(tmp_path) == []

    def test_fleet_summary_and_per_worker_blocks(self, tmp_path):
        from repro.distributed.dashboard import render_fleet_panel

        self.write_fleet_prom(tmp_path)
        lines = render_fleet_panel(tmp_path)
        text = "\n".join(lines)
        assert lines[0] == "fleet telemetry:"
        assert any("fleet" in line and "tasks    3" in line for line in lines)
        assert "p99" in text
        assert any(line.strip() == "vm-1:" for line in lines)
        assert any(line.strip() == "vm-2:" for line in lines)
        assert "worker_tasks_total status=ok" in text

    def test_unparseable_prom_degrades_to_note(self, tmp_path):
        from repro.distributed.dashboard import render_fleet_panel

        (tmp_path / "fleet.prom").write_text('broken{quantile=0.5 1\n', encoding="utf-8")
        lines = render_fleet_panel(tmp_path)
        assert len(lines) == 1 and "unparseable" in lines[0]

    def test_dashboard_includes_fleet_panel(self, tmp_path):
        state_dir = write_state_dir(tmp_path / "state")
        self.write_fleet_prom(state_dir)
        text = "\n".join(render_dashboard(state_dir, []))
        assert "sweep state" in text
        assert "fleet telemetry:" in text


class TestBenchPanelMalformed:
    def test_non_object_json_is_skipped_with_note(self, tmp_path):
        listy = tmp_path / "BENCH_list.json"
        listy.write_text("[1, 2, 3]", encoding="utf-8")
        lines = render_bench_panel([listy])
        assert any("malformed: not a JSON object; skipped" in line for line in lines)


class TestBenchHistory:
    def test_sparkline_scales_to_sample(self):
        from repro.distributed.dashboard import _sparkline

        assert _sparkline([]) == ""
        assert _sparkline([1.0, 1.0]) == "▁▁"
        line = _sparkline([1.0, 2.0, 3.0])
        assert len(line) == 3
        assert line[0] == "▁" and line[-1] == "█"

    def test_headline_scalar_prefers_kernel_speedup(self):
        from repro.distributed.dashboard import _headline_scalar

        assert _headline_scalar({"kernel_phase": {"speedup": 2.5}}) == 2.5
        assert _headline_scalar({"compute": {"broker_4w": 6.0}}) == 6.0
        assert _headline_scalar({"profile": "quick"}) is None
        assert _headline_scalar("not a dict") is None

    def test_history_walks_committed_versions(self, tmp_path):
        import subprocess

        from repro.distributed.dashboard import render_bench_history

        repo = tmp_path / "repo"
        repo.mkdir()
        env_git = [
            "git",
            "-C",
            str(repo),
            "-c",
            "user.email=t@example.com",
            "-c",
            "user.name=t",
        ]
        subprocess.run([*env_git, "init", "-q"], check=True)
        bench = repo / "BENCH_kernel.json"
        for speedup in (1.0, 2.0):
            bench.write_text(
                json.dumps({"profile": "quick", "kernel_phase": {"speedup": speedup}}),
                encoding="utf-8",
            )
            subprocess.run([*env_git, "add", "BENCH_kernel.json"], check=True)
            subprocess.run([*env_git, "commit", "-q", "-m", f"bench {speedup}"], check=True)
        bench.write_text(
            json.dumps({"profile": "quick", "kernel_phase": {"speedup": 3.0}}),
            encoding="utf-8",
        )
        lines = render_bench_history([bench])
        (entry,) = [line for line in lines if "BENCH_kernel.json" in line]
        assert "1.00 -> 3.00 over 3 point(s)" in entry

    def test_no_history_degrades_to_note(self, tmp_path):
        from repro.distributed.dashboard import render_bench_history

        loose = tmp_path / "BENCH_loose.json"
        loose.write_text(json.dumps({"profile": "quick"}), encoding="utf-8")
        lines = render_bench_history([loose])
        assert any("no git history" in line for line in lines)
