"""``repro dashboard`` rendering: sweep panel, perf panel, error paths."""

from __future__ import annotations

import json

import pytest

from repro.distributed.dashboard import render_bench_panel, render_dashboard, render_sweep_panel
from repro.distributed.store import SweepStateStore
from repro.errors import ConfigurationError


def write_state_dir(tmp_path, events=()):
    store = SweepStateStore(tmp_path)
    store.state.tasks_total = 4
    store.state.tasks_done = 3
    store.state.tasks_failed = 1
    store.state.releases_total = 2
    store.state.retries_total = 1
    for event in events:
        store.record(event.pop("event"), **event)
    store.close()
    return tmp_path


class TestSweepPanel:
    def test_progress_and_fleet_lines(self, tmp_path):
        write_state_dir(
            tmp_path,
            [
                {"event": "complete", "key": "a", "worker": "vm-1", "resumed_round": None},
                {"event": "complete", "key": "b", "worker": "vm-1", "resumed_round": 20},
                {"event": "complete", "key": "c", "worker": "vm-2", "resumed_round": None},
                {"event": "re-lease", "key": "b", "worker": "vm-2", "reason": "lease expired"},
                {"event": "cache-hit", "key": "d", "source": "remote-cache"},
            ],
        )
        lines = render_sweep_panel(tmp_path)
        text = "\n".join(lines)
        assert "4/4" in text
        assert "(1 failed)" in text
        assert "re-leases 2" in text
        assert "retries 1" in text
        # Per-worker tallies, including checkpoint-resume provenance.
        assert any("vm-1" in line and "completed    2" in line for line in lines)
        assert any("vm-1" in line and "resumed-from-checkpoint 1" in line for line in lines)
        assert any("vm-2" in line and "re-leased 1" in line for line in lines)
        assert "remote-cache 1" in text

    def test_missing_state_dir_raises(self, tmp_path):
        with pytest.raises(ConfigurationError, match="state.json"):
            render_sweep_panel(tmp_path / "nope")


class TestBenchPanel:
    def test_recognises_sweep_and_kernel_artifacts(self, tmp_path):
        sweep = tmp_path / "BENCH_sweep.json"
        sweep.write_text(
            json.dumps(
                {
                    "profile": "quick",
                    "fabric": {"speedup_4w_over_1w": 3.4},
                    "compute": {"serial": 2.0, "broker_4w": 6.1},
                }
            ),
            encoding="utf-8",
        )
        kernel = tmp_path / "BENCH_kernel.json"
        kernel.write_text(
            json.dumps({"profile": "full", "kernel_phase": {"speedup": 2.5}}), encoding="utf-8"
        )
        lines = render_bench_panel([sweep, kernel])
        text = "\n".join(lines)
        assert "fabric 4w/1w 3.40x" in text
        assert "broker-4w 6.10 task/s" in text
        assert "kernel-phase 2.50x" in text

    def test_unreadable_artifact_is_reported_not_fatal(self, tmp_path):
        bad = tmp_path / "BENCH_bad.json"
        bad.write_text("{torn", encoding="utf-8")
        lines = render_bench_panel([bad, tmp_path / "BENCH_missing.json"])
        assert sum("unreadable" in line for line in lines) == 2

    def test_unknown_sections_fall_back_to_note(self, tmp_path):
        weird = tmp_path / "BENCH_weird.json"
        weird.write_text(json.dumps({"profile": "quick", "something": 1}), encoding="utf-8")
        assert any("no recognised sections" in line for line in render_bench_panel([weird]))


class TestDashboard:
    def test_needs_at_least_one_input(self):
        with pytest.raises(ConfigurationError, match="dashboard needs"):
            render_dashboard(None, [])

    def test_combines_both_panels(self, tmp_path):
        state_dir = write_state_dir(tmp_path / "state")
        bench = tmp_path / "BENCH_sweep.json"
        bench.write_text(json.dumps({"profile": "quick"}), encoding="utf-8")
        lines = render_dashboard(state_dir, [bench])
        text = "\n".join(lines)
        assert "sweep state" in text
        assert "perf trajectory" in text
