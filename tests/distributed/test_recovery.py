"""Broker restart recovery: durable leases, reattach, and resubmission.

A broker bound to a ``--state-dir`` must be killable at any point and a
successor started on the same directory must carry on: queued tasks come
back in order, in-flight leases are re-adopted when their worker's
heartbeat re-appears, and a resubmitting client is served the remainder
without anything executing twice to completion.

These tests restart the in-process broker harness on a *fixed* port so
workers and clients reconnect to "the same" broker; the SIGKILL-a-real-
broker-subprocess variant lives in ``tests/integration``.
"""

from __future__ import annotations

import threading
import time

from repro.distributed import BrokerClient
from repro.distributed.store import SweepStateStore, read_events
from repro.parallel.tasks import TaskSpec

from .test_broker import collect, payload_for, stub_result


def wait_for(predicate, timeout: float = 10.0, interval: float = 0.02) -> None:
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    raise AssertionError("condition not reached within timeout")


def events_of(state_dir, kind: str) -> list[dict]:
    return [e for e in read_events(state_dir) if e["event"] == kind]


class TestQueuedTasksSurviveRestart:
    def test_pending_queue_recovers_in_order_and_client_reconnects(
        self, make_broker, stub_worker, tmp_path
    ):
        state_dir = tmp_path / "state"
        first = make_broker(state_dir=state_dir)
        port = first.broker.port

        payloads = [payload_for(i) for i in range(5)]
        fleet_events: list[dict] = []
        client = BrokerClient(
            first.address, on_event=fleet_events.append, reconnect_backoff=0.05
        )
        results: dict[str, object] = {}

        def drive() -> None:
            results.update(collect(client, payloads))

        driver = threading.Thread(target=drive, daemon=True)
        driver.start()
        # No worker yet: all five tasks land in the durable queue.
        wait_for(lambda: len(events_of(state_dir, "task")) == 5)
        first.stop()

        second = make_broker(state_dir=state_dir, port=port)
        assert second.broker.generation == 2
        # Recovery rebuilt the queue in original submit order.
        recovered = SweepStateStore.load_state(state_dir)
        assert recovered is not None and recovered.generation == 2
        keys = [TaskSpec.from_payload(p).digest for p in payloads]
        assert recovered.queue == keys

        stub_worker(second.address, task_fn=stub_result, worker_id="after-restart")
        driver.join(timeout=20.0)
        assert not driver.is_alive()
        assert len(results) == 5
        assert all(
            not hasattr(bundle, "error") and bundle["worker"] == "after-restart"
            for bundle in results.values()
        )
        # The client surfaced its ride through the outage.
        assert any(e.get("kind") == "client-reconnect" for e in fleet_events)
        # Nothing executed twice to completion.
        completes = events_of(state_dir, "complete")
        assert sorted(e["key"] for e in completes) == sorted(keys)


class TestInflightLeaseSurvivesRestart:
    def test_lease_is_readopted_without_double_execution(
        self, make_broker, stub_worker, tmp_path
    ):
        state_dir = tmp_path / "state"
        first = make_broker(state_dir=state_dir, lease_timeout=10.0)
        port = first.broker.port

        executions: list[str] = []
        release = threading.Event()

        def slow_task(payload: dict) -> dict:
            executions.append(TaskSpec.from_payload(payload).digest)
            release.wait(timeout=15.0)
            return stub_result(payload)

        worker = stub_worker(
            first.address, task_fn=slow_task, worker_id="survivor", reconnect_backoff=0.05
        )
        client = BrokerClient(first.address, reconnect_backoff=0.05)
        payloads = [payload_for(0)]
        results: dict[str, object] = {}
        driver = threading.Thread(
            target=lambda: results.update(collect(client, payloads)), daemon=True
        )
        driver.start()
        # The worker is mid-computation when the broker dies.
        wait_for(lambda: len(executions) == 1)
        first.stop()
        second = make_broker(state_dir=state_dir, port=port, lease_timeout=10.0)
        assert second.broker.generation == 2

        # The worker's reattach (or first heartbeat) re-adopts the lease.
        wait_for(lambda: len(events_of(state_dir, "reattach")) >= 1)
        release.set()
        driver.join(timeout=20.0)
        assert not driver.is_alive()

        key = TaskSpec.from_payload(payloads[0]).digest
        bundle = results[key]
        assert not hasattr(bundle, "error")
        assert bundle["worker"] == "survivor"
        # One execution, one completion — the restart did not fork the task.
        assert executions == [key]
        assert [e["key"] for e in events_of(state_dir, "complete")] == [key]
        adopted = events_of(state_dir, "reattach")
        assert any(e["worker"] == "survivor" for e in adopted)
        assert worker.stats.reattached >= 1

    def test_recovered_lease_expires_to_queue_when_worker_never_returns(
        self, make_broker, stub_worker, tmp_path
    ):
        state_dir = tmp_path / "state"
        first = make_broker(state_dir=state_dir, lease_timeout=0.5)
        port = first.broker.port

        hang_forever = threading.Event()

        def black_hole(payload: dict) -> dict:
            hang_forever.wait(timeout=30.0)
            return stub_result(payload)

        doomed = stub_worker(
            first.address,
            task_fn=black_hole,
            worker_id="doomed",
            max_reconnects=0,
            exit_when_idle=False,
        )
        client = BrokerClient(first.address, reconnect_backoff=0.05)
        payloads = [payload_for(7)]
        results: dict[str, object] = {}
        driver = threading.Thread(
            target=lambda: results.update(collect(client, payloads)), daemon=True
        )
        driver.start()
        wait_for(lambda: len(events_of(state_dir, "lease")) == 1)
        first.stop()
        # The doomed worker gives up instead of reconnecting; its adopted
        # lease must expire after one grace deadline and re-queue.
        doomed._stop = True
        hang_forever.set()

        second = make_broker(state_dir=state_dir, port=port, lease_timeout=0.5)
        assert second.broker.generation == 2
        stub_worker(second.address, task_fn=stub_result, worker_id="fresh")
        driver.join(timeout=20.0)
        assert not driver.is_alive()
        key = TaskSpec.from_payload(payloads[0]).digest
        bundle = results[key]
        assert not hasattr(bundle, "error")
        assert bundle["worker"] == "fresh"
        assert any(e["worker"] == "doomed" for e in events_of(state_dir, "re-lease"))
        # The poison counter outlives the broker that recorded it: a third
        # generation still sees the release, so a task cannot launder its
        # max_releases history by crashing the broker.
        second.stop()
        make_broker(state_dir=state_dir, port=port, lease_timeout=0.5)
        state = SweepStateStore.load_state(state_dir)
        assert state is not None and state.generation == 3
        assert state.tasks[key]["releases"] >= 1
        assert state.releases_total >= 1


class TestRecoveredTerminalState:
    def test_done_and_poison_counters_survive_restart(
        self, make_broker, stub_worker, tmp_path
    ):
        state_dir = tmp_path / "state"
        cache_dir = tmp_path / "cache"
        first = make_broker(state_dir=state_dir, cache_dir=cache_dir)
        port = first.broker.port
        stub_worker(first.address, task_fn=stub_result, worker_id="one")
        payloads = [payload_for(i) for i in range(3)]
        assert len(collect(BrokerClient(first.address), payloads)) == 3
        first.stop()

        second = make_broker(state_dir=state_dir, cache_dir=cache_dir, port=port)
        state = SweepStateStore.load_state(state_dir)
        assert state is not None
        assert state.generation == 2
        assert state.tasks_done == 3
        for key in (TaskSpec.from_payload(p).digest for p in payloads):
            assert state.tasks[key]["status"] == "done"
        # A resubmission against the restarted broker is served from the
        # shared cache — no worker attached, nothing recomputed — and the
        # original computing worker's provenance survives the restart.
        results = collect(BrokerClient(second.address), payloads)
        assert len(results) == 3
        assert all(bundle["source"] == "remote-cache" for bundle in results.values())
        assert all(bundle["worker"] == "one" for bundle in results.values())
        assert len(events_of(state_dir, "complete")) == 3

    def test_recovery_compacts_the_event_log(self, make_broker, stub_worker, tmp_path):
        state_dir = tmp_path / "state"
        first = make_broker(state_dir=state_dir)
        port = first.broker.port
        stub_worker(first.address, task_fn=stub_result, worker_id="one")
        collect(BrokerClient(first.address), [payload_for(i) for i in range(3)])
        first.stop()

        make_broker(state_dir=state_dir, port=port)
        # Recovery folded the old log into state.json and rotated it, so a
        # third generation replays O(state), not the full history.
        assert (state_dir / "events.jsonl.1").exists()
        recover_events = events_of(state_dir, "broker-recover")
        assert recover_events and recover_events[-1]["generation"] == 2
