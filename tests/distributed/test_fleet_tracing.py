"""Fleet tracing + telemetry through a real broker: spans, fleet.prom.

Same harness as ``test_broker.py`` (real broker, stub task functions):
these tests assert the observability contract — every lifecycle hop
lands as a span in the broker's durable ``events.jsonl`` and streams to
the client as ``event`` frames, and piggybacked worker metrics merge
into the ``fleet.prom`` textfile.
"""

from __future__ import annotations

import os
import socket
import threading
import time

from repro.distributed import BrokerClient, RemoteTaskFailure
from repro.distributed.broker import FLEET_PROM_FILENAME
from repro.distributed.protocol import PROTOCOL, recv_frame, send_frame
from repro.parallel.keys import measurement_fingerprint
from repro.parallel.tasks import TaskSpec
from repro.telemetry.sinks import parse_prometheus
from repro.telemetry.tracing import read_spans, trace_id_for


def payload_for(index: int) -> dict:
    return {"kind": "capped", "params": {"n": 64, "c": 2, "lam": 0.5, "x": index}, "replicate": 0}


def traced_payload(index: int) -> dict:
    """A task payload carrying client-minted trace context."""
    payload = payload_for(index)
    digest = TaskSpec.from_payload(payload).digest
    payload["trace"] = {"trace": trace_id_for(digest), "parent": f"c:{index + 1}"}
    return payload


def stub_result(payload: dict) -> dict:
    return {
        "outcome": {"echo": payload["params"]},
        "elapsed": 0.001,
        "pid": os.getpid(),
        "resumed_round": None,
    }


def collect(client: BrokerClient, payloads: list[dict]) -> dict[str, object]:
    results = {}
    for payload, bundle in client.run_tasks(payloads):
        results[TaskSpec.from_payload(payload).digest] = bundle
    return results


def spans_by_name(spans: list[dict], trace: str) -> dict[str, list[dict]]:
    grouped: dict[str, list[dict]] = {}
    for span in spans:
        if span["trace"] == trace:
            grouped.setdefault(span["name"], []).append(span)
    return grouped


class TestBrokerSpans:
    def test_lifecycle_spans_land_in_events_jsonl(self, make_broker, stub_worker, tmp_path):
        broker = make_broker(state_dir=tmp_path / "state")
        stub_worker(broker.address, task_fn=stub_result, worker_id="stub-t")
        payload = traced_payload(0)
        trace = payload["trace"]["trace"]
        results = collect(BrokerClient(broker.address), [payload])
        assert not isinstance(next(iter(results.values())), RemoteTaskFailure)
        broker.stop()

        spans = read_spans(tmp_path / "state" / "events.jsonl")
        named = spans_by_name(spans, trace)
        assert set(named) >= {"submitted", "queued", "leased", "upload"}
        (lease,) = named["leased"]
        assert lease["attrs"]["status"] == "ok"
        assert lease["attrs"]["seq"] == 1
        assert lease["attrs"]["worker"] == "stub-t"
        # queued/leased hang off the client's root span; upload hangs off
        # the lease attempt that actually carried the result home.
        assert named["queued"][0]["parent"] == "c:1"
        assert lease["parent"] == "c:1"
        assert named["upload"][0]["parent"] == lease["span"]
        assert named["upload"][0]["end"] >= named["upload"][0]["start"]

    def test_span_events_stream_to_the_client(self, make_broker, stub_worker):
        broker = make_broker()
        stub_worker(broker.address, task_fn=stub_result, worker_id="stub-s")
        events = []
        payload = traced_payload(1)
        collect(BrokerClient(broker.address, on_event=events.append), [payload])
        span_events = [e for e in events if e.get("kind") == "span"]
        names = {e["span"]["name"] for e in span_events}
        assert {"submitted", "queued", "leased", "upload"} <= names
        assert all(e["span"]["trace"] == payload["trace"]["trace"] for e in span_events)

    def test_fleet_stats_events_reach_the_client(self, make_broker, stub_worker):
        broker = make_broker()
        stub_worker(broker.address, task_fn=stub_result, worker_id="stub-f")
        events = []
        collect(
            BrokerClient(broker.address, on_event=events.append),
            [payload_for(2), payload_for(3)],
        )
        stats = [e for e in events if e.get("kind") == "fleet-stats"]
        # The final digest is broadcast after this client's "done" frame,
        # so the last one *observed* may predate the final completion.
        assert stats
        last = stats[-1]
        assert last["tasks_total"] == 2
        assert last["tasks_done"] >= 1
        assert "queue_depth" in last
        assert isinstance(last.get("p50"), float)

    def test_untraced_submit_emits_no_spans(self, make_broker, stub_worker, tmp_path):
        broker = make_broker(state_dir=tmp_path / "state")
        stub_worker(broker.address, task_fn=stub_result, worker_id="stub-u")
        events = []
        collect(BrokerClient(broker.address, on_event=events.append), [payload_for(4)])
        broker.stop()
        assert not [e for e in events if e.get("kind") == "span"]
        assert read_spans(tmp_path / "state" / "events.jsonl") == []

    def test_cache_hit_closes_the_chain_with_zero_length_queue(
        self, make_broker, stub_worker, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        first = make_broker(cache_dir=cache_dir)
        stub_worker(first.address, task_fn=stub_result, worker_id="stub-c1")
        collect(BrokerClient(first.address), [payload_for(5)])

        # A fresh broker sharing the cache serves the traced re-submit
        # without a worker — the chain must still show submitted → queued.
        second = make_broker(cache_dir=cache_dir, state_dir=tmp_path / "state2")
        payload = traced_payload(5)
        results = collect(BrokerClient(second.address), [payload])
        bundle = next(iter(results.values()))
        assert bundle["source"] == "remote-cache"  # origin-stamped cache entry
        second.stop()
        named = spans_by_name(
            read_spans(tmp_path / "state2" / "events.jsonl"), payload["trace"]["trace"]
        )
        assert set(named) == {"submitted", "queued"}
        (queued,) = named["queued"]
        assert queued["start"] == queued["end"]
        assert queued["attrs"]["source"] == "remote-cache"


class TestReLeaseSpans:
    def raw_worker_hello(self, address: str, worker_id: str) -> socket.socket:
        host, port = address.split(":")
        sock = socket.create_connection((host, int(port)), timeout=5.0)
        send_frame(
            sock,
            {
                "type": "hello",
                "role": "worker",
                "protocol": PROTOCOL,
                "worker": worker_id,
                "code": measurement_fingerprint(),
            },
        )
        welcome = recv_frame(sock)
        assert welcome["type"] == "welcome"
        return sock

    def poll_for_task(self, sock: socket.socket) -> dict:
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            send_frame(sock, {"type": "lease"})
            frame = recv_frame(sock)
            if frame["type"] == "task":
                return frame
            time.sleep(0.02)
        raise AssertionError("no task leased within 5s")

    def test_dead_worker_leaves_a_released_lease_span(
        self, make_broker, stub_worker, tmp_path
    ):
        broker = make_broker(state_dir=tmp_path / "state")
        payload = traced_payload(6)
        trace = payload["trace"]["trace"]
        client = BrokerClient(broker.address)
        results: dict[str, object] = {}

        def drive():
            results.update(collect(client, [payload]))

        driver = threading.Thread(target=drive, daemon=True)
        driver.start()

        doomed = self.raw_worker_hello(broker.address, "doomed")
        leased = self.poll_for_task(doomed)
        assert leased.get("trace", {}).get("trace") == trace
        doomed.close()  # protocol-level SIGKILL
        stub_worker(broker.address, task_fn=stub_result, worker_id="rescuer")
        driver.join(timeout=10.0)
        assert not driver.is_alive()
        (bundle,) = results.values()
        assert not isinstance(bundle, RemoteTaskFailure)
        assert bundle["releases"] == 1
        broker.stop()

        named = spans_by_name(read_spans(tmp_path / "state" / "events.jsonl"), trace)
        leases = sorted(named["leased"], key=lambda s: s["attrs"]["seq"])
        assert [lease["attrs"]["status"] for lease in leases] == ["released", "ok"]
        assert [lease["attrs"]["seq"] for lease in leases] == [1, 2]
        assert leases[0]["attrs"]["worker"] == "doomed"
        assert leases[1]["attrs"]["worker"] == "rescuer"
        # The task re-queued after the death: two queue-wait spans.
        assert len(named["queued"]) == 2


class TestFleetProm:
    def test_worker_metrics_merge_into_fleet_prom(self, make_broker, stub_worker, tmp_path):
        broker = make_broker(state_dir=tmp_path / "state")
        stub_worker(
            broker.address, task_fn=stub_result, worker_id="stub-m", telemetry=True
        )
        collect(BrokerClient(broker.address), [payload_for(i) for i in range(3)])
        broker.stop()

        prom = tmp_path / "state" / FLEET_PROM_FILENAME
        assert prom.exists()
        families = parse_prometheus(prom.read_text(encoding="utf-8"))

        # Broker-side families: queue depth gauge + latency summary.
        assert families["fleet_queue_depth"]["samples"][-1]["value"] == 0.0
        fleet_counts = [
            s
            for s in families["fleet_task_seconds"]["samples"]
            if s["name"] == "fleet_task_seconds_count" and "worker" not in s["labels"]
        ]
        assert fleet_counts and fleet_counts[0]["value"] == 3.0

        # Piggybacked worker registry, re-labelled per worker.
        worker_counts = [
            s
            for s in families["worker_task_seconds"]["samples"]
            if s["name"] == "worker_task_seconds_count"
            and s["labels"].get("worker") == "stub-m"
        ]
        assert worker_counts and worker_counts[0]["labels"]["kind"] == "capped"
        totals = [
            s
            for s in families["worker_tasks_total"]["samples"]
            if s["labels"] == {"status": "ok", "worker": "stub-m"}
        ]
        assert totals and totals[0]["value"] >= 1.0

    def test_torn_events_tail_does_not_break_span_reads(
        self, make_broker, stub_worker, tmp_path
    ):
        broker = make_broker(state_dir=tmp_path / "state")
        stub_worker(broker.address, task_fn=stub_result, worker_id="stub-z")
        collect(BrokerClient(broker.address), [traced_payload(7)])
        broker.stop()
        events = tmp_path / "state" / "events.jsonl"
        with events.open("a", encoding="utf-8") as handle:
            handle.write('{"ts": 1.0, "event": "span", "trace": "torn-mid-wri')
        spans = read_spans(events)
        assert spans and all("span" in record for record in spans)
