"""``ExperimentRunner`` broker mode: identical results, honest accounting.

The broker is just another execution fabric under the runner's
journaling/caching/replay machinery, so a broker sweep must produce
byte-identical CSV output, and every task must be accounted to exactly
one source (remote / remote-cache / cache / journal).
"""

from __future__ import annotations

import io
import json

import pytest

from repro.analysis.experiments import Profile, run_experiment
from repro.errors import DistributedError
from repro.parallel.runner import ExperimentRunner, run_experiments

TINY = Profile(name="tiny", n=256, measure=30, replicates=2, seed=4242)


def journal_entries(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


@pytest.fixture
def fleet(make_broker, stub_worker):
    """A broker with two real (execute_task) workers attached."""
    broker = make_broker()
    stub_worker(broker.address, worker_id="fleet-a")
    stub_worker(broker.address, worker_id="fleet-b")
    return broker


class TestBrokerMode:
    def test_results_identical_to_serial(self, fleet):
        serial = run_experiment("fig4_left", TINY)
        report = run_experiments(["fig4_left"], profile=TINY, broker=fleet.address)
        assert report.results[0].csv() == serial.csv()
        assert report.tasks_remote == report.tasks_total
        assert report.tasks_computed == report.tasks_total
        assert sum(report.remote_workers.values()) == report.tasks_total
        assert set(report.remote_workers) <= {"fleet-a", "fleet-b"}

    def test_summary_lines_show_the_fleet(self, fleet):
        report = run_experiments(["fig4_left"], profile=TINY, broker=fleet.address)
        text = "\n".join(report.summary_lines())
        assert "broker:" in text
        assert "re-leases 0" in text
        # The CI grep contract on the tasks line is preserved.
        assert "remote-cache 0" in text

    def test_invalid_broker_address_fails_fast(self):
        with pytest.raises(DistributedError):
            ExperimentRunner(profile=TINY, broker="nonsense:notaport")

    def test_unreachable_broker_raises_with_hint(self):
        runner = ExperimentRunner(profile=TINY, broker="127.0.0.1:1")
        with pytest.raises(DistributedError, match="repro broker"):
            runner.run(["fig4_left"])


class TestRemoteCacheAccounting:
    def test_local_hit_on_remote_upload_is_journaled_as_remote_cache(self, fleet, tmp_path):
        # Run 1: broker sweep, shared cache. The runner stores each remote
        # result with its origin (which worker computed it).
        cache_dir = tmp_path / "shared-cache"
        first = run_experiments(
            ["fig4_left"], profile=TINY, broker=fleet.address, cache_dir=cache_dir
        )
        assert first.tasks_remote == first.tasks_total

        # Drop the whole-experiment entries so the rerun has to rediscover
        # and pull every measurement from the task-level cache.
        for path in cache_dir.glob("*.json"):
            if "experiment_id" in json.loads(path.read_text()):
                path.unlink()

        # Run 2: plain local run over the same cache (a fresh journal is
        # written). Every hit was a remote worker's upload, and the journal
        # must say so.
        second = run_experiments(["fig4_left"], profile=TINY, cache_dir=cache_dir)
        assert second.tasks_from_remote_cache == second.tasks_total
        assert second.tasks_from_cache == 0
        assert second.cache_hits == second.tasks_total
        assert second.results[0].csv() == first.results[0].csv()

        task_entries = [
            entry
            for entry in journal_entries(cache_dir / "journal.jsonl")
            if entry.get("type") == "task" and entry.get("provenance")
        ]
        assert len(task_entries) == second.tasks_total
        for entry in task_entries:
            assert entry["provenance"]["source"] == "remote-cache"
            assert entry["provenance"]["worker"] in ("fleet-a", "fleet-b")

        text = "\n".join(second.summary_lines())
        assert f"remote-cache {second.tasks_total}" in text

    def test_remote_journal_provenance_records_worker(self, fleet, tmp_path):
        cache_dir = tmp_path / "cache"
        report = run_experiments(
            ["fig4_left"], profile=TINY, broker=fleet.address, cache_dir=cache_dir
        )
        task_entries = [
            entry
            for entry in journal_entries(cache_dir / "journal.jsonl")
            if entry.get("type") == "task" and entry.get("provenance")
        ]
        assert len(task_entries) == report.tasks_total
        for entry in task_entries:
            assert entry["provenance"]["source"] == "remote"
            assert entry["provenance"]["worker"] in ("fleet-a", "fleet-b")

    def test_plain_local_cache_hits_stay_plain(self, tmp_path):
        # Guard the other side of the contract: a hit on a locally
        # computed entry must NOT be promoted to remote-cache.
        cache_dir = tmp_path / "cache"
        run_experiments(["fig4_left"], profile=TINY, cache_dir=cache_dir)
        for path in cache_dir.glob("*.json"):
            if "experiment_id" in json.loads(path.read_text()):
                path.unlink()
        second = run_experiments(["fig4_left"], profile=TINY, cache_dir=cache_dir)
        assert second.tasks_from_cache == second.tasks_total > 0
        assert second.tasks_from_remote_cache == 0


class TestBrokerProgress:
    def test_live_status_reports_fleet_throughput(self, fleet):
        stream = io.StringIO()
        report = run_experiments(
            ["fig4_left"],
            profile=TINY,
            broker=fleet.address,
            live_status=True,
            progress_stream=stream,
        )
        text = stream.getvalue()
        assert report.tasks_remote == report.tasks_total
        # Worker ids (not pids) appear in the per-worker tallies, and the
        # fleet line shows live membership.
        assert "workers" in text
        assert "fleet" in text
