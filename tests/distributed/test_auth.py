"""Authenticated transport: HMAC challenge/response and TLS.

The broker with ``--auth-token`` must challenge every connection before
it is allowed a session: a wrong or missing token is refused with a
clear diagnostic (exit 2 through the CLI), and no unauthenticated frame
may ever reach the lease queue. The token itself never crosses the wire
— only an HMAC over the broker's one-time nonce, bound to the peer's
role.
"""

from __future__ import annotations

import socket
import threading

import pytest

from repro.distributed import BrokerClient
from repro.distributed.protocol import PROTOCOL, auth_response, recv_frame, send_frame
from repro.distributed.store import read_events
from repro.errors import DistributedError

from .test_broker import collect, payload_for, stub_result

TOKEN = "fleet-shared-secret"


class TestAuthedFleet:
    def test_matching_tokens_run_a_sweep_end_to_end(self, make_broker, stub_worker):
        broker = make_broker(auth_token=TOKEN)
        stub_worker(broker.address, task_fn=stub_result, worker_id="authed", auth_token=TOKEN)
        payloads = [payload_for(i) for i in range(4)]
        results = collect(BrokerClient(broker.address, auth_token=TOKEN), payloads)
        assert len(results) == 4
        assert all(bundle["worker"] == "authed" for bundle in results.values())

    def test_wrong_client_token_fails_fast_without_retrying(self, make_broker):
        broker = make_broker(auth_token=TOKEN)
        client = BrokerClient(broker.address, auth_token="not-the-token")
        with pytest.raises(DistributedError, match="auth"):
            list(client.run_tasks([payload_for(0)]))

    def test_missing_client_token_names_the_flag(self, make_broker):
        broker = make_broker(auth_token=TOKEN)
        client = BrokerClient(broker.address)
        with pytest.raises(DistributedError, match="--auth-token"):
            list(client.run_tasks([payload_for(0)]))

    def test_wrong_worker_token_exits_2_via_cli(self, make_broker, capsys):
        from repro.cli import main

        broker = make_broker(auth_token=TOKEN)
        status = main(
            ["worker", broker.address, "--auth-token", "wrong", "--quiet", "--exit-when-idle"]
        )
        assert status == 2
        assert "auth" in capsys.readouterr().out

    def test_missing_worker_token_exits_2_via_cli(self, make_broker, capsys):
        from repro.cli import main

        broker = make_broker(auth_token=TOKEN)
        status = main(["worker", broker.address, "--quiet", "--exit-when-idle"])
        assert status == 2
        assert "--auth-token" in capsys.readouterr().out


class TestNoUnauthenticatedFrames:
    def test_lease_instead_of_auth_is_refused_before_the_queue(
        self, make_broker, stub_worker, tmp_path
    ):
        state_dir = tmp_path / "state"
        broker = make_broker(auth_token=TOKEN, state_dir=state_dir)
        # Park one task in the queue so there is something to steal.
        driver = threading.Thread(
            target=lambda: collect(
                BrokerClient(broker.address, auth_token=TOKEN), [payload_for(0)]
            ),
            daemon=True,
        )
        driver.start()
        import time

        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            if any(e["event"] == "task" for e in read_events(state_dir)):
                break
            time.sleep(0.02)

        # An impostor answers the challenge with a lease frame instead of
        # a valid MAC. The broker must refuse and close — never lease.
        sock = socket.create_connection(("127.0.0.1", broker.broker.port), timeout=5.0)
        try:
            send_frame(
                sock,
                {
                    "type": "hello",
                    "role": "worker",
                    "protocol": PROTOCOL,
                    "worker": "impostor",
                    "code": "whatever",
                },
            )
            challenge = recv_frame(sock)
            assert challenge is not None and challenge["type"] == "challenge"
            send_frame(sock, {"type": "lease"})
            reply = recv_frame(sock)
            assert reply is not None and reply["type"] == "error"
            assert "auth" in reply["error"]
            assert recv_frame(sock) is None  # connection closed
        finally:
            sock.close()

        events = list(read_events(state_dir))
        assert not any(e["event"] == "lease" for e in events)
        assert any(e["event"] == "auth-reject" for e in events)

        # A legitimate worker still drains the queue afterwards.
        stub_worker(broker.address, task_fn=stub_result, worker_id="real", auth_token=TOKEN)
        driver.join(timeout=15.0)
        assert not driver.is_alive()
        leases = [e for e in read_events(state_dir) if e["event"] == "lease"]
        assert leases and all(e["worker"] == "real" for e in leases)

    def test_worker_mac_cannot_be_replayed_as_client(self, make_broker):
        # The MAC binds the declared role: answering a client challenge
        # with a worker-role MAC (same token, same nonce) must fail.
        broker = make_broker(auth_token=TOKEN)
        sock = socket.create_connection(("127.0.0.1", broker.broker.port), timeout=5.0)
        try:
            send_frame(
                sock,
                {"type": "hello", "role": "client", "protocol": PROTOCOL, "run": "r",
                 "code": "whatever"},
            )
            challenge = recv_frame(sock)
            assert challenge is not None and challenge["type"] == "challenge"
            mac = auth_response(TOKEN, str(challenge["nonce"]), "worker")
            send_frame(sock, {"type": "auth", "mac": mac})
            reply = recv_frame(sock)
            assert reply is not None and reply["type"] == "error"
        finally:
            sock.close()


class TestTlsTransport:
    @pytest.fixture(scope="class")
    def certs(self, tmp_path_factory):
        """Self-signed cert via the stdlib-adjacent openssl binary.

        Skips when no openssl is available — the TLS path is optional and
        the HMAC tests above cover the auth logic itself.
        """
        import shutil
        import subprocess

        if shutil.which("openssl") is None:
            pytest.skip("openssl binary not available")
        directory = tmp_path_factory.mktemp("tls")
        cert, key = directory / "cert.pem", directory / "key.pem"
        proc = subprocess.run(
            [
                "openssl", "req", "-x509", "-newkey", "rsa:2048", "-nodes",
                "-keyout", str(key), "-out", str(cert), "-days", "1",
                "-subj", "/CN=repro-broker",
            ],
            capture_output=True,
        )
        if proc.returncode != 0:
            pytest.skip(f"openssl could not mint a cert: {proc.stderr.decode()[:200]}")
        return cert, key

    def test_tls_fleet_completes_a_sweep(self, make_broker, stub_worker, certs):
        cert, key = certs
        broker = make_broker(auth_token=TOKEN, tls_cert=cert, tls_key=key)
        stub_worker(
            broker.address,
            task_fn=stub_result,
            worker_id="tls-worker",
            auth_token=TOKEN,
            tls_ca=cert,
        )
        results = collect(
            BrokerClient(broker.address, auth_token=TOKEN, tls_ca=cert),
            [payload_for(i) for i in range(3)],
        )
        assert len(results) == 3
        assert all(bundle["worker"] == "tls-worker" for bundle in results.values())

    def test_plaintext_peer_cannot_talk_to_tls_broker(self, make_broker, certs):
        cert, key = certs
        broker = make_broker(auth_token=TOKEN, tls_cert=cert, tls_key=key)
        client = BrokerClient(broker.address, auth_token=TOKEN, timeout=2.0)
        # The TLS server kills the plaintext handshake: seen client-side as
        # a closed/reset stream or an unparseable frame, never a session.
        from repro.errors import ProtocolError

        with pytest.raises((DistributedError, ProtocolError, OSError)):
            list(client.run_tasks([payload_for(0)]))
