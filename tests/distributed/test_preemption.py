"""Preemption: SIGKILL a worker mid-task and mid-upload, lose nothing.

Real worker *subprocesses* (the ``repro worker`` CLI path) against an
in-process broker. The chaos hooks arm the kill inside the worker:

* ``at_round`` — the worker SIGKILLs itself mid-simulation, after that
  round's checkpoint write;
* ``match="upload"`` — the worker SIGKILLs itself in the window between
  computing a result and sending the ``complete`` frame.

Either way the broker must re-lease, a surviving worker must finish the
sweep (resuming from the newest checkpoint when one exists), and the
merged CSV must be byte-identical to a run that was never touched.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import time

import pytest

from repro.analysis.experiments import Profile, run_experiment
from repro.distributed.store import read_events
from repro.faults.chaos import CHAOS_ENV
from repro.parallel.runner import run_experiments

TINY = Profile(name="tiny", n=256, measure=30, replicates=2, seed=4242)


def spawn_worker(address: str, worker_id: str, chaos: dict | None = None) -> subprocess.Popen:
    env = dict(os.environ)
    src = str((os.path.dirname(__file__) + "/../../src").replace("\\", "/"))
    env["PYTHONPATH"] = os.pathsep.join(p for p in (src, env.get("PYTHONPATH")) if p)
    if chaos is not None:
        env[CHAOS_ENV] = json.dumps(chaos)
    else:
        env.pop(CHAOS_ENV, None)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "worker", address, "--id", worker_id, "--quiet"],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def reap(*procs: subprocess.Popen) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
            proc.kill()
            proc.wait(timeout=10)


@pytest.fixture
def serial_csv():
    return run_experiment("fig4_left", TINY).csv()


class TestSigkillMidTask:
    def test_killed_worker_releases_and_checkpoint_resumes(
        self, make_broker, tmp_path, serial_csv
    ):
        # Broker owns checkpoints: every lease carries a snapshot dir, so
        # the re-leased task can resume where the dead worker left off.
        broker = make_broker(
            state_dir=tmp_path / "state",
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_every=10,
            lease_timeout=10.0,
        )
        # Victim kills itself (SIGKILL, no cleanup) after round 20 of its
        # first task — after the round-20 snapshot hit disk.
        victim = spawn_worker(
            broker.address,
            "victim",
            chaos={
                "action": "kill",
                "at_round": 20,
                "times": 1,
                "marker_dir": str(tmp_path / "markers"),
            },
        )
        survivor = spawn_worker(broker.address, "survivor")
        try:
            cache_dir = tmp_path / "cache"
            report = run_experiments(
                ["fig4_left"], profile=TINY, broker=broker.address, cache_dir=cache_dir
            )
            assert report.results[0].csv() == serial_csv
            assert report.tasks_releases >= 1
            assert report.tasks_quarantined == 0
            assert report.remote_workers.get("survivor", 0) > 0

            # The journal carries the full story: the re-leased task was
            # computed remotely AND resumed from the victim's snapshot.
            entries = [
                json.loads(line)
                for line in (cache_dir / "journal.jsonl").read_text().splitlines()
            ]
            resumed = [
                e
                for e in entries
                if e.get("provenance", {}).get("resumed_round") is not None
            ]
            assert len(resumed) >= 1
            assert resumed[0]["provenance"]["source"] == "remote"
            assert resumed[0]["provenance"]["resumed_round"] == 20
            assert resumed[0]["provenance"]["releases"] >= 1
        finally:
            reap(victim, survivor)

        # The victim really died by SIGKILL.
        assert victim.wait(timeout=10) == -9

        # The broker's event log shows the re-lease and the resume.
        events = list(read_events(tmp_path / "state"))
        releases = [e for e in events if e["event"] == "re-lease"]
        assert any(e["worker"] == "victim" for e in releases)
        resumed_completes = [
            e
            for e in events
            if e["event"] == "complete" and e.get("resumed_round") is not None
        ]
        assert any(e["worker"] == "survivor" for e in resumed_completes)

        # Durable outcomes mean every snapshot dir was cleaned up.
        assert not any((tmp_path / "ckpt").iterdir())


class TestSigkillMidUpload:
    def test_killed_upload_is_recomputed_losslessly(self, make_broker, tmp_path, serial_csv):
        broker = make_broker(state_dir=tmp_path / "state", lease_timeout=10.0)
        # Victim computes its first task fully, then dies in the window
        # between the result existing in memory and the complete frame.
        victim = spawn_worker(
            broker.address,
            "victim",
            chaos={
                "action": "kill",
                "match": "upload",
                "times": 1,
                "marker_dir": str(tmp_path / "markers"),
            },
        )
        survivor = spawn_worker(broker.address, "survivor")
        try:
            report = run_experiments(["fig4_left"], profile=TINY, broker=broker.address)
            assert report.results[0].csv() == serial_csv
            assert report.tasks_releases >= 1
            assert report.tasks_quarantined == 0
            assert report.tasks_remote == report.tasks_total
        finally:
            reap(victim, survivor)
        assert victim.wait(timeout=10) == -9

        # Exactly one task was torn mid-upload; it completed elsewhere and
        # no duplicate outcome leaked into the results store.
        events = list(read_events(tmp_path / "state"))
        assert any(e["event"] == "re-lease" and e["worker"] == "victim" for e in events)
        completes = [e for e in events if e["event"] == "complete"]
        assert len(completes) == report.tasks_total
        assert len({e["key"] for e in completes}) == report.tasks_total


class TestWorkerRestartAfterKill:
    def test_single_worker_fleet_recovers_when_worker_is_replaced(
        self, make_broker, tmp_path, serial_csv
    ):
        # Harsher variant: the ONLY worker dies; the sweep stalls until a
        # replacement joins, then finishes correctly.
        broker = make_broker(state_dir=tmp_path / "state", lease_timeout=10.0)
        victim = spawn_worker(
            broker.address,
            "victim",
            chaos={
                "action": "kill",
                "match": "upload",
                "times": 1,
                "marker_dir": str(tmp_path / "markers"),
            },
        )
        replacement: list[subprocess.Popen] = []
        try:
            import threading

            def replace_when_dead():
                victim.wait()
                time.sleep(0.2)
                replacement.append(spawn_worker(broker.address, "replacement"))

            watcher = threading.Thread(target=replace_when_dead, daemon=True)
            watcher.start()
            report = run_experiments(["fig4_left"], profile=TINY, broker=broker.address)
            watcher.join(timeout=10)
            assert report.results[0].csv() == serial_csv
            assert report.tasks_releases >= 1
            assert report.remote_workers.get("replacement", 0) > 0
        finally:
            reap(victim, *replacement)


class TestTracedPreemption:
    def test_trace_reconstructs_the_kill_and_resume_chain(
        self, make_broker, tmp_path, serial_csv
    ):
        """Acceptance bar for fleet tracing: a SIGKILLed worker's task must
        show its full story in ``trace.jsonl`` — the original lease
        (released on death), the re-lease, and the checkpoint resume —
        while every other journaled task shows a complete span chain and
        the merged CSV stays byte-identical to the untouched serial run.
        """
        from repro.telemetry import runtime
        from repro.telemetry.tracing import Tracer, assemble_traces, read_spans, trace_gaps

        broker = make_broker(
            state_dir=tmp_path / "state",
            checkpoint_dir=tmp_path / "ckpt",
            checkpoint_every=10,
            lease_timeout=10.0,
        )
        victim = spawn_worker(
            broker.address,
            "victim",
            chaos={
                "action": "kill",
                "at_round": 20,
                "times": 1,
                "marker_dir": str(tmp_path / "markers"),
            },
        )
        survivor = spawn_worker(broker.address, "survivor")
        trace_path = tmp_path / "trace.jsonl"
        runtime.disable()
        try:
            with runtime.session(tracer=Tracer(trace_path)):
                report = run_experiments(["fig4_left"], profile=TINY, broker=broker.address)
            assert report.results[0].csv() == serial_csv
            assert report.tasks_releases >= 1
        finally:
            reap(victim, survivor)
        assert victim.wait(timeout=10) == -9

        traces = assemble_traces(read_spans(trace_path))
        assert len(traces) == report.tasks_total
        for trace in traces:
            assert trace_gaps(trace) == [], f"incomplete chain for {trace.label}"

        def lease_status(span):
            return (span.get("attrs") or {}).get("status")

        killed = [
            t
            for t in traces
            if any(lease_status(s) == "released" for s in t.named("leased"))
        ]
        assert killed, "no trace shows the victim's released lease"
        story = killed[0]
        leases = sorted(story.named("leased"), key=lambda s: s["attrs"]["seq"])
        assert lease_status(leases[0]) == "released"
        assert leases[0]["attrs"]["worker"] == "victim"
        assert lease_status(leases[-1]) == "ok"
        assert leases[-1]["attrs"]["worker"] == "survivor"
        # The re-leased attempt resumed from the victim's round-20 snapshot.
        (checkpoint,) = story.named("checkpoint")
        assert checkpoint["attrs"]["resumed_round"] == 20
        # The resume's running span sits under the surviving lease.
        assert any(s["parent"] == leases[-1]["span"] for s in story.named("running"))
        # Each lease attempt re-queued the task first.
        assert len(story.named("queued")) == len(leases)
        assert story.root["attrs"]["releases"] >= 1
