"""Fixtures for the distributed-runner suite.

``make_broker`` runs a real :class:`~repro.distributed.broker.Broker` on
its own asyncio loop in a background thread, bound to an ephemeral
localhost port; ``stub_worker`` attaches an in-thread worker whose task
function the test controls, so broker semantics (leases, retries,
dedup, re-leases) can be exercised without paying for real simulations.
"""

from __future__ import annotations

import asyncio
import threading
import time

import pytest

from repro.distributed import Broker, BrokerConfig, Worker


class BrokerHarness:
    """One live broker on a background event loop."""

    def __init__(self, **config_kwargs):
        config_kwargs.setdefault("host", "127.0.0.1")
        config_kwargs.setdefault("port", 0)
        self.broker = Broker(BrokerConfig(**config_kwargs))
        self.loop: asyncio.AbstractEventLoop | None = None
        self._ready = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        self.loop = asyncio.new_event_loop()
        asyncio.set_event_loop(self.loop)
        self._ready.set()
        try:
            self.loop.run_until_complete(self.broker.serve())
        finally:
            self.loop.close()

    def start(self) -> "BrokerHarness":
        self.thread.start()
        self._ready.wait(timeout=5.0)
        deadline = time.monotonic() + 5.0
        while self.broker.port is None:
            if time.monotonic() > deadline or not self.thread.is_alive():
                raise RuntimeError("broker failed to bind within 5s")
            time.sleep(0.01)
        return self

    @property
    def address(self) -> str:
        return f"127.0.0.1:{self.broker.port}"

    def stop(self) -> None:
        if self.loop is not None and self.thread.is_alive():
            self.loop.call_soon_threadsafe(self.broker.shutdown)
        self.thread.join(timeout=5.0)


@pytest.fixture
def make_broker():
    """Factory fixture: start brokers, stop them all on teardown."""
    harnesses: list[BrokerHarness] = []

    def factory(**config_kwargs) -> BrokerHarness:
        harness = BrokerHarness(**config_kwargs).start()
        harnesses.append(harness)
        return harness

    yield factory
    for harness in harnesses:
        harness.stop()


@pytest.fixture
def stub_worker():
    """Factory fixture: run Workers with a stubbed task function in threads."""
    entries: list[tuple[Worker, threading.Thread]] = []

    def factory(address: str, task_fn=None, **worker_kwargs) -> Worker:
        worker_kwargs.setdefault("exit_when_idle", True)
        worker_kwargs.setdefault("poll", 0.02)
        worker = Worker(address, task_fn=task_fn, **worker_kwargs)
        thread = threading.Thread(target=worker.run, daemon=True)
        thread.start()
        entries.append((worker, thread))
        return worker

    yield factory
    for worker, thread in entries:
        worker._stop = True
        thread.join(timeout=5.0)
