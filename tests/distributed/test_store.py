"""Durable sweep state: append-only events, atomic snapshots, torn tails."""

from __future__ import annotations

import json

from repro.distributed.store import (
    SweepState,
    SweepStateStore,
    read_events,
    read_live_events,
    replay_events,
)


class TestEventLog:
    def test_events_roundtrip_in_order(self, tmp_path):
        store = SweepStateStore(tmp_path)
        store.record("broker-start", broker="b-1", port=1234)
        store.record("lease", key="abc", worker="w-1")
        store.record("complete", key="abc", worker="w-1", source="computed")
        store.close()
        events = list(read_events(tmp_path))
        assert [e["event"] for e in events] == ["broker-start", "lease", "complete"]
        assert events[1]["worker"] == "w-1"
        assert all("ts" in e for e in events)

    def test_torn_tail_is_skipped(self, tmp_path):
        store = SweepStateStore(tmp_path)
        store.record("lease", key="abc", worker="w-1")
        store.close()
        events_path = tmp_path / "events.jsonl"
        with open(events_path, "ab") as fh:
            fh.write(b'{"event": "complete", "key": "ab')  # SIGKILL mid-write
        events = list(read_events(tmp_path))
        assert [e["event"] for e in events] == ["lease"]

    def test_malformed_and_blank_lines_are_skipped(self, tmp_path):
        events_path = tmp_path / "events.jsonl"
        events_path.write_text(
            '{"event": "a"}\n\nnot json\n["no", "type"]\n{"event": "b"}\n', encoding="utf-8"
        )
        assert [e["event"] for e in read_events(tmp_path)] == ["a", "b"]

    def test_missing_log_yields_nothing(self, tmp_path):
        assert list(read_events(tmp_path / "never-created")) == []

    def test_record_after_close_is_a_noop(self, tmp_path):
        # Worker sessions unwinding after shutdown race the store close;
        # their leave events are droppable, not a crash.
        store = SweepStateStore(tmp_path)
        store.record("lease", key="abc")
        store.close()
        store.record("worker-leave", worker="w-1")
        assert [e["event"] for e in read_events(tmp_path)] == ["lease"]

    def test_reopening_appends(self, tmp_path):
        first = SweepStateStore(tmp_path)
        first.record("broker-start", broker="b-1")
        first.close()
        second = SweepStateStore(tmp_path)
        second.record("broker-start", broker="b-2")
        second.close()
        brokers = [e["broker"] for e in read_events(tmp_path)]
        assert brokers == ["b-1", "b-2"]


class TestStateSnapshot:
    def test_state_roundtrip(self, tmp_path):
        store = SweepStateStore(tmp_path)
        store.state.tasks_total = 10
        store.state.tasks_done = 7
        store.state.releases_total = 2
        store.state.workers["w-1"] = {"completed": 7}
        store.write_state()
        loaded = SweepStateStore.load_state(tmp_path)
        assert loaded is not None
        assert loaded.tasks_total == 10
        assert loaded.tasks_done == 7
        assert loaded.releases_total == 2
        assert loaded.workers == {"w-1": {"completed": 7}}
        assert loaded.updated_unix > 0

    def test_write_state_is_atomic_replace(self, tmp_path):
        store = SweepStateStore(tmp_path)
        store.write_state()
        store.state.tasks_done = 3
        store.write_state()
        # No temp files left behind; the visible file is always complete.
        leftovers = [p.name for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == []
        assert SweepStateStore.load_state(tmp_path).tasks_done == 3

    def test_load_state_absent_or_torn_returns_none(self, tmp_path):
        assert SweepStateStore.load_state(tmp_path) is None
        (tmp_path / "state.json").write_text('{"tasks_total": ', encoding="utf-8")
        assert SweepStateStore.load_state(tmp_path) is None

    def test_to_dict_is_json_serialisable(self):
        state = SweepState(tasks_total=4, by_source={"computed": 4})
        payload = json.loads(json.dumps(state.to_dict()))
        assert SweepState.from_dict(payload).tasks_total == 4

    def test_torn_snapshot_falls_back_to_previous_generation(self, tmp_path):
        store = SweepStateStore(tmp_path)
        store.state.tasks_done = 1
        store.write_state()
        store.state.tasks_done = 2
        store.write_state()
        # SIGKILL mid-replace: the live snapshot is torn, .prev is whole.
        (tmp_path / "state.json").write_text('{"tasks_done": 2, "tr', encoding="utf-8")
        loaded = SweepStateStore.load_state(tmp_path)
        assert loaded is not None
        assert loaded.tasks_done == 1

    def test_snapshot_deleted_entirely_falls_back_to_previous(self, tmp_path):
        store = SweepStateStore(tmp_path)
        store.state.tasks_done = 5
        store.write_state()
        store.write_state()
        (tmp_path / "state.json").unlink()
        loaded = SweepStateStore.load_state(tmp_path)
        assert loaded is not None
        assert loaded.tasks_done == 5


class TestCompactionAndReplay:
    def test_compact_rotates_live_log_and_preserves_history(self, tmp_path):
        store = SweepStateStore(tmp_path)
        store.record("task", key="k1")
        store.record("lease", key="k1", worker="w")
        archive = store.compact(keep_archives=2)
        assert archive is not None and archive.name == "events.jsonl.1"
        store.record("complete", key="k1", worker="w")
        store.close()
        # Full history reads archives first, then the live log.
        kinds = [e["event"] for e in read_events(tmp_path)]
        assert kinds == ["task", "lease", "compact", "complete"]
        # The live log alone starts at the compact marker.
        live = [e["event"] for e in read_live_events(tmp_path)]
        assert live == ["compact", "complete"]

    def test_retention_deletes_oldest_segments(self, tmp_path):
        store = SweepStateStore(tmp_path)
        for index in range(3):
            store.record("task", key=f"k{index}")
            store.compact(keep_archives=1)
        store.close()
        archives = sorted(p.name for p in tmp_path.glob("events.jsonl.*"))
        assert archives == ["events.jsonl.3"]

    def test_replay_events_skips_everything_folded_into_the_snapshot(self, tmp_path):
        store = SweepStateStore(tmp_path)
        store.record("task", key="k1")
        store.record("task", key="k2")
        store.write_state()  # snapshot now carries seq=2
        folded_seq = store.state.seq
        store.record("lease", key="k1", worker="w")
        store.close()
        tail = list(replay_events(tmp_path, after_seq=folded_seq))
        assert [e["event"] for e in tail] == ["lease"]

    def test_replay_past_a_torn_tail(self, tmp_path):
        store = SweepStateStore(tmp_path)
        store.record("task", key="k1")
        store.close()
        with open(tmp_path / "events.jsonl", "ab") as fh:
            fh.write(b'{"event": "lease", "seq": 2, "key": "to')  # torn mid-write
        tail = list(replay_events(tmp_path, after_seq=0))
        assert [e["event"] for e in tail] == ["task"]
        # A store reopened on this dir continues the sequence monotonically.
        reopened = SweepStateStore(tmp_path)
        seq = reopened.record("complete", key="k1")
        reopened.close()
        assert seq >= 2

    def test_deferred_sync_is_flushed_by_sync(self, tmp_path):
        store = SweepStateStore(tmp_path)
        for index in range(5):
            store.record("task", sync=False, key=f"k{index}")
        store.sync()
        assert len([e for e in read_live_events(tmp_path)]) == 5
        store.close()
