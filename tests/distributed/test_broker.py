"""Broker semantics with stub workers: leases, dedup, retries, re-leases.

These tests run a real broker (background event loop) and real worker
protocol sessions, but the task function is stubbed so nothing here pays
for a simulation — this file is about the queue's delivery contract.
"""

from __future__ import annotations

import os
import socket
import time

import pytest

from repro.distributed import BrokerClient, RemoteTaskFailure
from repro.distributed.protocol import PROTOCOL, recv_frame, send_frame
from repro.distributed.store import read_events
from repro.errors import DistributedError
from repro.parallel.keys import measurement_fingerprint, task_digest
from repro.parallel.tasks import TaskSpec


def payload_for(index: int) -> dict:
    return {"kind": "capped", "params": {"n": 64, "c": 2, "lam": 0.5, "x": index}, "replicate": 0}


def stub_result(payload: dict) -> dict:
    return {
        "outcome": {"echo": payload["params"]},
        "elapsed": 0.001,
        "pid": os.getpid(),
        "resumed_round": None,
    }


def collect(client: BrokerClient, payloads: list[dict]) -> dict[str, object]:
    """Drain run_tasks into {digest: bundle-or-failure}."""
    results = {}
    for payload, bundle in client.run_tasks(payloads):
        results[TaskSpec.from_payload(payload).digest] = bundle
    return results


class TestCompletion:
    def test_tasks_complete_with_worker_provenance(self, make_broker, stub_worker):
        broker = make_broker()
        stub_worker(broker.address, task_fn=stub_result, worker_id="stub-a")
        payloads = [payload_for(i) for i in range(6)]
        results = collect(BrokerClient(broker.address), payloads)
        assert len(results) == 6
        for payload in payloads:
            bundle = results[TaskSpec.from_payload(payload).digest]
            assert not isinstance(bundle, RemoteTaskFailure)
            assert bundle["outcome"] == {"echo": payload["params"]}
            assert bundle["source"] == "computed"
            assert bundle["worker"] == "stub-a"
            assert bundle["releases"] == 0

    def test_fleet_events_reach_the_client(self, make_broker, stub_worker):
        import threading

        broker = make_broker()
        events = []
        client = BrokerClient(broker.address, on_event=events.append)
        results: dict[str, object] = {}

        def drive():
            results.update(collect(client, [payload_for(0)]))

        # The client must be connected before the worker joins to see the
        # join event (fleet events are forwarded live, not replayed).
        driver = threading.Thread(target=drive, daemon=True)
        driver.start()
        time.sleep(0.3)
        stub_worker(broker.address, task_fn=stub_result, worker_id="stub-ev")
        driver.join(timeout=10.0)
        assert len(results) == 1
        kinds = {event["kind"] for event in events}
        assert "worker-join" in kinds

    def test_empty_submit_completes_immediately(self, make_broker):
        broker = make_broker()
        assert collect(BrokerClient(broker.address), []) == {}


class TestSharedCache:
    def test_completion_lands_in_shared_cache_with_origin(
        self, make_broker, stub_worker, tmp_path
    ):
        from repro.parallel.cache import ResultCache

        broker = make_broker(cache_dir=tmp_path / "cache")
        stub_worker(broker.address, task_fn=stub_result, worker_id="stub-c")
        payload = payload_for(1)
        collect(BrokerClient(broker.address), [payload])
        entry = ResultCache(tmp_path / "cache").get(TaskSpec.from_payload(payload).digest)
        assert entry is not None
        assert entry["outcome"] == {"echo": payload["params"]}
        assert entry["origin"]["worker"] == "stub-c"
        assert entry["origin"]["broker"]

    def test_second_run_is_served_from_cache_without_a_worker(
        self, make_broker, stub_worker, tmp_path
    ):
        cache_dir = tmp_path / "cache"
        first = make_broker(cache_dir=cache_dir)
        stub_worker(first.address, task_fn=stub_result, worker_id="stub-d")
        payloads = [payload_for(i) for i in range(3)]
        collect(BrokerClient(first.address), payloads)
        first.stop()

        # A fresh broker over the same cache, with NO workers attached:
        # every task must resolve instantly as a remote-cache hit.
        second = make_broker(cache_dir=cache_dir)
        results = collect(BrokerClient(second.address), payloads)
        assert len(results) == 3
        for bundle in results.values():
            assert bundle["source"] == "remote-cache"

    def test_inflight_dedup_across_clients(self, make_broker, stub_worker):
        broker = make_broker()
        stub_worker(broker.address, task_fn=stub_result, worker_id="stub-e")
        payload = payload_for(2)
        first = collect(BrokerClient(broker.address, run_id="run-a"), [payload])
        second = collect(BrokerClient(broker.address, run_id="run-b"), [payload])
        digest = TaskSpec.from_payload(payload).digest
        assert first[digest]["source"] == "computed"
        # The broker remembers the resolved key in memory and never
        # re-executes it for a later run.
        assert second[digest]["source"] == "remote-cache"
        assert second[digest]["outcome"] == first[digest]["outcome"]


class TestFailures:
    def test_failing_task_retries_then_fails_terminally(self, make_broker, stub_worker):
        broker = make_broker(max_retries=2)

        def explode(payload):
            raise ValueError("injected stub failure")

        stub_worker(broker.address, task_fn=explode, worker_id="stub-f")
        payload = payload_for(3)
        results = collect(BrokerClient(broker.address), [payload])
        failure = results[TaskSpec.from_payload(payload).digest]
        assert isinstance(failure, RemoteTaskFailure)
        assert "injected stub failure" in failure.error
        assert failure.attempts == 3  # 1 first try + 2 retries

    def test_zero_retries_fails_on_first_error(self, make_broker, stub_worker):
        broker = make_broker(max_retries=0)

        def explode(payload):
            raise ValueError("no second chances")

        stub_worker(broker.address, task_fn=explode, worker_id="stub-g")
        results = collect(BrokerClient(broker.address), [payload_for(4)])
        (failure,) = results.values()
        assert isinstance(failure, RemoteTaskFailure)
        assert failure.attempts == 1

    def test_flaky_task_succeeds_after_retry(self, make_broker, stub_worker):
        broker = make_broker(max_retries=2)
        calls = {"count": 0}

        def flaky(payload):
            calls["count"] += 1
            if calls["count"] == 1:
                raise RuntimeError("first attempt dies")
            return stub_result(payload)

        events = []
        client = BrokerClient(broker.address, on_event=events.append)
        stub_worker(broker.address, task_fn=flaky, worker_id="stub-h")
        results = collect(client, [payload_for(5)])
        (bundle,) = results.values()
        assert not isinstance(bundle, RemoteTaskFailure)
        assert calls["count"] == 2
        assert sum(1 for e in events if e["kind"] == "retry") == 1


class TestReLease:
    def raw_worker_hello(self, address: str, worker_id: str) -> socket.socket:
        host, port = address.split(":")
        sock = socket.create_connection((host, int(port)), timeout=5.0)
        send_frame(
            sock,
            {
                "type": "hello",
                "role": "worker",
                "protocol": PROTOCOL,
                "worker": worker_id,
                "code": measurement_fingerprint(),
            },
        )
        welcome = recv_frame(sock)
        assert welcome["type"] == "welcome"
        return sock

    def lease_one(self, sock: socket.socket) -> dict:
        send_frame(sock, {"type": "lease"})
        frame = recv_frame(sock)
        assert frame["type"] == "task"
        return frame

    def drive_in_thread(self, client: BrokerClient, payloads: list[dict]):
        """Pump run_tasks from a thread so the test can play raw worker."""
        import threading

        results: dict[str, object] = {}

        def drive():
            for payload, bundle in client.run_tasks(payloads):
                results[TaskSpec.from_payload(payload).digest] = bundle

        thread = threading.Thread(target=drive, daemon=True)
        thread.start()
        return results, thread

    def poll_for_task(self, sock: socket.socket) -> dict:
        """Lease-poll until the broker hands this session a task."""
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            send_frame(sock, {"type": "lease"})
            frame = recv_frame(sock)
            if frame["type"] == "task":
                return frame
            time.sleep(0.02)
        raise AssertionError("no task leased within 5s")

    def test_worker_disconnect_releases_immediately(self, make_broker, stub_worker, tmp_path):
        broker = make_broker(state_dir=tmp_path / "state")
        payload = payload_for(6)
        events = []
        client = BrokerClient(broker.address, on_event=events.append)
        results, driver = self.drive_in_thread(client, [payload])

        # Vanishing worker: leases the task, then dies without a word.
        doomed = self.raw_worker_hello(broker.address, "doomed")
        leased = self.poll_for_task(doomed)
        doomed.close()  # SIGKILL-equivalent at the protocol level
        stub_worker(broker.address, task_fn=stub_result, worker_id="rescuer")
        driver.join(timeout=10.0)
        assert not driver.is_alive()
        assert leased["payload"]["params"] == payload["params"]
        (bundle,) = results.values()
        assert not isinstance(bundle, RemoteTaskFailure)
        assert bundle["worker"] == "rescuer"
        assert bundle["releases"] == 1
        assert any(e["kind"] == "re-lease" for e in events)
        broker.stop()
        recorded = [e for e in read_events(tmp_path / "state") if e["event"] == "re-lease"]
        assert len(recorded) == 1
        assert recorded[0]["worker"] == "doomed"
        assert "disconnected" in recorded[0]["reason"]

    def test_heartbeat_lapse_releases_after_deadline(self, make_broker, stub_worker):
        broker = make_broker(lease_timeout=0.4)
        payload = payload_for(7)
        client = BrokerClient(broker.address)
        results, driver = self.drive_in_thread(client, [payload])

        # Wedged worker: holds the lease, never heartbeats, never finishes.
        silent = self.raw_worker_hello(broker.address, "silent")
        self.poll_for_task(silent)
        stub_worker(broker.address, task_fn=stub_result, worker_id="medic")
        driver.join(timeout=10.0)
        assert not driver.is_alive()
        silent.close()
        (bundle,) = results.values()
        assert not isinstance(bundle, RemoteTaskFailure)
        assert bundle["worker"] == "medic"
        assert bundle["releases"] == 1


class TestFingerprintSafety:
    def test_mismatched_worker_is_never_leased_work(self, make_broker, stub_worker):
        broker = make_broker()
        payload = payload_for(8)
        digest = task_digest(payload["kind"], payload["params"], 0)

        # A worker from a "different code version" polls and stays idle.
        host, port = broker.address.split(":")
        stranger = socket.create_connection((host, int(port)), timeout=5.0)
        send_frame(
            stranger,
            {
                "type": "hello",
                "role": "worker",
                "protocol": PROTOCOL,
                "worker": "stranger",
                "code": "fingerprint-from-another-commit",
            },
        )
        assert recv_frame(stranger)["type"] == "welcome"

        import threading

        client = BrokerClient(broker.address)
        results: dict[str, object] = {}

        def drive():
            for p, b in client.run_tasks([payload]):
                results[TaskSpec.from_payload(p).digest] = b

        driver = threading.Thread(target=drive, daemon=True)
        driver.start()
        # Give the stranger repeated shots at stealing the task while the
        # submit lands; it must only ever see idle frames.
        first = None
        for _ in range(10):
            send_frame(stranger, {"type": "lease"})
            first = recv_frame(stranger)
            assert first["type"] == "idle"
            time.sleep(0.05)
        stub_worker(broker.address, task_fn=stub_result, worker_id="native")
        driver.join(timeout=10.0)
        stranger.close()
        assert results[digest]["worker"] == "native"

    def test_protocol_mismatch_is_rejected(self, make_broker):
        broker = make_broker()
        host, port = broker.address.split(":")
        sock = socket.create_connection((host, int(port)), timeout=5.0)
        send_frame(sock, {"type": "hello", "role": "worker", "protocol": "repro-broker/v0"})
        reply = recv_frame(sock)
        assert reply["type"] == "error"
        assert "protocol mismatch" in reply["error"]
        sock.close()


class TestAddresses:
    def test_resolve_address_forms(self):
        from repro.distributed import resolve_address

        assert resolve_address("127.0.0.1:7070") == ("127.0.0.1", 7070)
        assert resolve_address(":7070") == ("127.0.0.1", 7070)
        assert resolve_address("7070") == ("127.0.0.1", 7070)

    def test_resolve_address_rejects_garbage(self):
        from repro.distributed import resolve_address

        with pytest.raises(DistributedError):
            resolve_address("localhost:notaport")
        with pytest.raises(DistributedError):
            resolve_address("localhost:99999")

    def test_client_reports_unreachable_broker(self):
        client = BrokerClient("127.0.0.1:1", timeout=0.5)
        with pytest.raises(DistributedError, match="is `repro broker` running"):
            list(client.run_tasks([payload_for(9)]))
