"""Frame codec: roundtrips, clean EOF vs torn frames, corrupt prefixes."""

from __future__ import annotations

import asyncio
import socket
import struct
import threading

import pytest

from repro.distributed.protocol import (
    MAX_FRAME_BYTES,
    encode_frame,
    read_frame_async,
    recv_frame,
    send_frame,
    write_frame_async,
)
from repro.errors import DistributedError, ProtocolError, ReproError


def socket_pair():
    a, b = socket.socketpair()
    a.settimeout(5.0)
    b.settimeout(5.0)
    return a, b


class TestBlockingCodec:
    def test_roundtrip(self):
        a, b = socket_pair()
        message = {"type": "task", "key": "k" * 40, "payload": {"params": {"lam": 0.75}}}
        send_frame(a, message)
        assert recv_frame(b) == message
        a.close()
        b.close()

    def test_multiple_frames_in_order(self):
        a, b = socket_pair()
        for index in range(5):
            send_frame(a, {"type": "lease", "index": index})
        for index in range(5):
            assert recv_frame(b)["index"] == index
        a.close()
        b.close()

    def test_clean_eof_returns_none(self):
        a, b = socket_pair()
        a.close()
        assert recv_frame(b) is None
        b.close()

    def test_eof_mid_body_raises(self):
        a, b = socket_pair()
        frame = encode_frame({"type": "complete", "result": "x" * 100})
        a.sendall(frame[: len(frame) - 20])  # die mid-body
        a.close()
        with pytest.raises(ProtocolError, match="mid-frame"):
            recv_frame(b)
        b.close()

    def test_eof_mid_header_raises(self):
        a, b = socket_pair()
        a.sendall(b"\x00\x00")  # half a length prefix
        a.close()
        with pytest.raises(ProtocolError):
            recv_frame(b)
        b.close()

    def test_corrupt_length_prefix_rejected(self):
        a, b = socket_pair()
        a.sendall(struct.pack(">I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="corrupt prefix"):
            recv_frame(b)
        a.close()
        b.close()

    def test_non_object_body_rejected(self):
        a, b = socket_pair()
        body = b'["not", "an", "object"]'
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError, match="'type'"):
            recv_frame(b)
        a.close()
        b.close()

    def test_body_without_type_rejected(self):
        a, b = socket_pair()
        body = b'{"key": "abc"}'
        a.sendall(struct.pack(">I", len(body)) + body)
        with pytest.raises(ProtocolError):
            recv_frame(b)
        a.close()
        b.close()


class TestAsyncCodec:
    def run_pair(self, server_side, client_side):
        """Drive the asyncio half against a blocking socket peer."""
        a, b = socket_pair()
        result = {}

        async def main():
            reader, writer = await asyncio.open_connection(sock=a)
            try:
                result["value"] = await server_side(reader, writer)
            finally:
                writer.close()

        thread = threading.Thread(target=client_side, args=(b,), daemon=True)
        thread.start()
        asyncio.run(main())
        thread.join(timeout=5.0)
        b.close()
        return result.get("value")

    def test_async_reads_blocking_writes(self):
        message = {"type": "hello", "role": "worker", "worker": "w-1"}

        async def server(reader, writer):
            return await read_frame_async(reader)

        assert self.run_pair(server, lambda sock: send_frame(sock, message)) == message

    def test_async_writes_blocking_reads(self):
        message = {"type": "welcome", "heartbeat": 5.0}
        got = {}

        async def server(reader, writer):
            await write_frame_async(writer, message)
            return None

        self.run_pair(server, lambda sock: got.update(recv_frame(sock)))
        assert got == message

    def test_async_clean_eof_returns_none(self):
        async def server(reader, writer):
            return await read_frame_async(reader)

        assert self.run_pair(server, lambda sock: sock.close()) is None

    def test_async_torn_frame_raises(self):
        frame = encode_frame({"type": "complete", "result": "y" * 64})

        def client(sock):
            sock.sendall(frame[:-10])
            sock.close()

        async def server(reader, writer):
            with pytest.raises(ProtocolError, match="mid-frame"):
                await read_frame_async(reader)
            return "raised"

        assert self.run_pair(server, client) == "raised"


class TestErrorTaxonomy:
    def test_protocol_error_is_distributed_and_repro_error(self):
        # Callers catching the repo-wide ReproError (or the distributed
        # family) must see codec failures too.
        assert issubclass(ProtocolError, DistributedError)
        assert issubclass(DistributedError, ReproError)
        assert issubclass(DistributedError, RuntimeError)
