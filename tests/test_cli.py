"""Unit tests for the command-line interface."""

import io

import pytest

from repro.cli import build_parser, main


def run_cli(*argv: str) -> tuple[int, str]:
    out = io.StringIO()
    code = main(list(argv), out=out)
    return code, out.getvalue()


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_experiment_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "--id", "bogus"])


class TestList:
    def test_lists_experiments_and_profiles(self):
        code, text = run_cli("list")
        assert code == 0
        assert "fig4_left" in text
        assert "paper" in text and "quick" in text


class TestTheory:
    def test_general_capacity(self):
        code, text = run_cli("theory", "--c", "2", "--lam", "0.75", "--n", "1024")
        assert code == 0
        assert "Thm2 pool bound" in text
        assert "sweet spot" in text
        assert "Thm1" not in text

    def test_unit_capacity_includes_thm1(self):
        code, text = run_cli("theory", "--c", "1", "--lam", "0.75", "--n", "1024")
        assert code == 0
        assert "Thm1 pool bound" in text


class TestMeanfield:
    def test_outputs_equilibrium(self):
        code, text = run_cli("meanfield", "--c", "1", "--lam", "0.75")
        assert code == 0
        assert "normalized pool" in text
        assert "1.3863" in text  # nu/n = ln 4


class TestSimulate:
    def test_capped_point(self):
        code, text = run_cli(
            "simulate", "--n", "256", "--c", "2", "--lam", "0.75", "--rounds", "50"
        )
        assert code == 0
        assert "pool/n" in text

    def test_greedy_point(self):
        code, text = run_cli(
            "simulate",
            "--process",
            "greedy",
            "--d",
            "2",
            "--n",
            "256",
            "--lam",
            "0.75",
            "--rounds",
            "50",
            "--burn-in",
            "50",
        )
        assert code == 0
        assert "avg_wait" in text

    def test_sharded_point(self):
        code, text = run_cli(
            "simulate",
            "--n",
            "256",
            "--c",
            "2",
            "--lam",
            "0.75",
            "--rounds",
            "40",
            "--shards",
            "2",
        )
        assert code == 0
        assert "pool/n" in text

    def test_shards_require_finite_capacity(self):
        code, text = run_cli("simulate", "--lam", "0.75", "--shards", "2")
        assert code == 2
        assert "finite --c" in text

    def test_shards_exclude_batch_replicates(self):
        code, text = run_cli(
            "simulate",
            "--n",
            "64",
            "--c",
            "2",
            "--lam",
            "0.75",
            "--shards",
            "2",
            "--batch-replicates",
        )
        assert code == 2
        assert "mutually exclusive" in text

    def test_shards_reject_greedy(self):
        code, text = run_cli("simulate", "--process", "greedy", "--lam", "0.75", "--shards", "2")
        assert code == 2
        assert "--process capped" in text


class TestExperiments:
    def test_single_experiment_with_csv(self, tmp_path):
        code, text = run_cli(
            "experiments",
            "--id",
            "dominance",
            "--profile",
            "quick",
            "--csv-dir",
            str(tmp_path),
        )
        assert code == 0
        assert "PASS" in text
        assert (tmp_path / "dominance.csv").exists()

    def test_plot_flag(self):
        code, text = run_cli("experiments", "--id", "dominance", "--profile", "quick", "--plot")
        assert code == 0
        assert "+----" in text or "|" in text

    def test_nonpositive_jobs_rejected(self):
        code, text = run_cli(
            "experiments", "--id", "dominance", "--profile", "quick", "--jobs", "0"
        )
        assert code == 2
        assert "--jobs" in text

    def test_resume_requires_cache_dir(self):
        code, text = run_cli("experiments", "--id", "dominance", "--profile", "quick", "--resume")
        assert code == 2
        assert "--cache-dir" in text

    def test_cache_dir_routes_through_runner(self, tmp_path):
        cache = tmp_path / "cache"
        code, text = run_cli(
            "experiments",
            "--id",
            "dominance",
            "--profile",
            "quick",
            "--cache-dir",
            str(cache),
            "--no-progress",
            "--timing",
        )
        assert code == 0
        assert "experiments: 1" in text
        assert (cache / "journal.jsonl").exists()

        # A resumed rerun must recompute nothing.
        code, text = run_cli(
            "experiments",
            "--id",
            "dominance",
            "--profile",
            "quick",
            "--cache-dir",
            str(cache),
            "--resume",
            "--no-progress",
        )
        assert code == 0
        assert "experiments: 1 (journal 1, cache 0)" in text

    def test_nonpositive_task_timeout_rejected(self):
        code, text = run_cli(
            "experiments",
            "--id",
            "dominance",
            "--profile",
            "quick",
            "--task-timeout",
            "0",
        )
        assert code == 2
        assert "--task-timeout" in text

    def test_negative_max_retries_rejected(self):
        code, text = run_cli(
            "experiments",
            "--id",
            "dominance",
            "--profile",
            "quick",
            "--max-retries",
            "-1",
        )
        assert code == 2
        assert "--max-retries" in text

    def test_keep_going_and_fail_fast_are_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiments", "--all", "--keep-going", "--fail-fast"])

    def test_experiment_error_exits_3(self, monkeypatch):
        def boom(experiment_id, profile):
            raise RuntimeError("simulated explosion")

        monkeypatch.setattr("repro.cli.run_experiment", boom)
        code, text = run_cli("experiments", "--id", "dominance", "--profile", "quick")
        assert code == 3
        assert "ERROR dominance: RuntimeError: simulated explosion" in text
        assert "errors: 1 experiment(s) failed: dominance" in text

    def test_keep_going_reports_every_error(self, monkeypatch):
        def boom(experiment_id, profile):
            raise RuntimeError("nope")

        monkeypatch.setattr("repro.cli.run_experiment", boom)
        code, text = run_cli("experiments", "--all", "--profile", "quick", "--keep-going")
        assert code == 3
        from repro.analysis.experiments import EXPERIMENTS

        assert text.count("ERROR ") == len(EXPERIMENTS)

    def test_fail_fast_stops_at_first_error(self, monkeypatch):
        def boom(experiment_id, profile):
            raise RuntimeError("nope")

        monkeypatch.setattr("repro.cli.run_experiment", boom)
        code, text = run_cli("experiments", "--all", "--profile", "quick", "--fail-fast")
        assert code == 3
        assert text.count("ERROR ") == 1

    def test_runner_failures_surface_as_errors(self, monkeypatch):
        from repro.parallel.runner import RunnerReport

        def fake_run_experiments(ids, **kwargs):
            return RunnerReport(
                experiments_total=len(list(ids)),
                experiments_failed=1,
                failures={"dominance": "quarantined tasks left holes"},
            )

        monkeypatch.setattr("repro.parallel.run_experiments", fake_run_experiments)
        code, text = run_cli(
            "experiments",
            "--id",
            "dominance",
            "--profile",
            "quick",
            "--jobs",
            "2",
            "--no-progress",
        )
        assert code == 3
        assert "ERROR dominance: quarantined tasks left holes" in text

    def test_json_and_markdown_outputs(self, tmp_path):
        code, text = run_cli(
            "experiments",
            "--id",
            "drain_stages",
            "--profile",
            "quick",
            "--json-dir",
            str(tmp_path / "json"),
            "--markdown",
            str(tmp_path / "report.md"),
        )
        assert code == 0
        assert (tmp_path / "json" / "drain_stages.json").exists()
        report = (tmp_path / "report.md").read_text()
        assert report.startswith("# Reproduction report")
        assert "drain_stages" in report


class TestFluid:
    def test_prints_trajectory(self):
        code, text = run_cli("fluid", "--c", "1", "--lam", "0.75", "--rounds", "20")
        assert code == 0
        assert "pool/n" in text
        assert "relaxation" in text

    def test_spike_start(self):
        code, text = run_cli(
            "fluid", "--c", "2", "--lam", "0.5", "--rounds", "10", "--initial-pool", "4.0"
        )
        assert code == 0
        assert "4.0000" in text


class TestTrace:
    def test_record_then_summarize(self, tmp_path):
        path = tmp_path / "run.jsonl"
        code, text = run_cli(
            "trace",
            "record",
            str(path),
            "--n",
            "128",
            "--c",
            "2",
            "--lam",
            "0.75",
            "--rounds",
            "40",
        )
        assert code == 0
        assert "wrote 40 rounds" in text
        code, text = run_cli("trace", "summarize", str(path), "--n", "128")
        assert code == 0
        assert "pool/n" in text and "max_wait" in text

    def test_record_respects_burn_in(self, tmp_path):
        path = tmp_path / "run.jsonl"
        code, text = run_cli(
            "trace",
            "record",
            str(path),
            "--n",
            "64",
            "--c",
            "1",
            "--lam",
            "0.5",
            "--rounds",
            "10",
            "--burn-in",
            "5",
        )
        assert code == 0
        # Burn-in rounds are also streamed (observers see every round).
        assert "wrote 15 rounds" in text


class TestCompare:
    def test_identical_files_ok(self, tmp_path):
        run_cli(
            "experiments",
            "--id",
            "dominance",
            "--profile",
            "quick",
            "--json-dir",
            str(tmp_path),
        )
        path = tmp_path / "dominance.json"
        code, text = run_cli("compare", str(path), str(path))
        assert code == 0
        assert "OK" in text

    def test_mismatch_flagged(self, tmp_path):
        import json

        run_cli(
            "experiments",
            "--id",
            "dominance",
            "--profile",
            "quick",
            "--json-dir",
            str(tmp_path),
        )
        path_a = tmp_path / "dominance.json"
        payload = json.loads(path_a.read_text())
        payload["rows"][0]["worst_gap"] = payload["rows"][0]["worst_gap"] * 100.0
        payload["profile"] = "tampered"
        path_b = tmp_path / "tampered.json"
        path_b.write_text(json.dumps(payload))
        code, text = run_cli("compare", str(path_a), str(path_b), "--tolerance", "0.1")
        assert code == 1
        assert "outlier" in text


class TestTelemetryCli:
    SIM_ARGS = (
        "simulate",
        "--n",
        "64",
        "--c",
        "2",
        "--lam",
        "0.75",
        "--rounds",
        "30",
        "--seed",
        "3",
    )

    def test_simulate_capture_writes_artifacts(self, tmp_path):
        tel_dir = tmp_path / "tel"
        code, text = run_cli(*self.SIM_ARGS, "--telemetry-dir", str(tel_dir))
        assert code == 0
        assert f"telemetry written to {tel_dir}" in text
        assert (tel_dir / "events.jsonl").exists()
        assert (tel_dir / "metrics.prom").exists()
        assert (tel_dir / "manifest.json").exists()

    def test_simulate_output_identical_with_capture(self, tmp_path):
        code_plain, plain = run_cli(*self.SIM_ARGS)
        code_tel, tel = run_cli(*self.SIM_ARGS, "--telemetry-dir", str(tmp_path / "tel"))
        assert code_plain == code_tel == 0
        assert tel.startswith(plain)  # capture only appends the dir notice

    def test_manifest_validates_and_prom_parses(self, tmp_path):
        from repro.telemetry import load_manifest, parse_prometheus

        tel_dir = tmp_path / "tel"
        run_cli(*self.SIM_ARGS, "--telemetry-dir", str(tel_dir))
        manifest = load_manifest(tel_dir)
        assert manifest["config"]["n"] == 64
        assert manifest["seeds"] == [3]
        families = parse_prometheus((tel_dir / "metrics.prom").read_text())
        assert "rounds_total" in families
        assert "round_seconds" in families

    def test_report_command(self, tmp_path):
        tel_dir = tmp_path / "tel"
        run_cli(*self.SIM_ARGS, "--telemetry-dir", str(tel_dir))
        code, text = run_cli("telemetry", "report", str(tel_dir))
        assert code == 0
        assert "kernel=fused" in text
        assert "accept" in text and "(residual)" in text
        assert "attributed=" in text

    def test_report_missing_manifest_errors(self, tmp_path):
        code, text = run_cli("telemetry", "report", str(tmp_path))
        assert code == 2
        assert "error:" in text

    def test_experiments_capture_includes_runner_metrics(self, tmp_path):
        from repro.telemetry import load_manifest

        tel_dir = tmp_path / "tel"
        code, text = run_cli(
            "experiments",
            "--id",
            "dominance",
            "--profile",
            "quick",
            "--cache-dir",
            str(tmp_path / "cache"),
            "--telemetry-dir",
            str(tel_dir),
            "--no-progress",
        )
        assert code == 0
        metrics = load_manifest(tel_dir)["metrics"]
        assert "phase_seconds" in metrics  # runner discover/measure/replay spans

    def test_live_status_conflicts_with_no_progress(self):
        code, text = run_cli(
            "experiments",
            "--id",
            "dominance",
            "--profile",
            "quick",
            "--live-status",
            "--no-progress",
        )
        assert code == 2
        assert "--live-status" in text


class TestSimulateScenario:
    SCENARIO = (
        '{"churn": {"seed": 5, "events": ['
        '{"type": "join_burst", "at_round": 20, "count": 16}]}}'
    )

    def test_inline_json_scenario_runs(self):
        code, text = run_cli(
            "simulate",
            "--n",
            "64",
            "--c",
            "2",
            "--lam",
            "0.75",
            "--rounds",
            "40",
            "--burn-in",
            "10",
            "--scenario",
            self.SCENARIO,
        )
        assert code == 0
        assert "pool/n" in text

    def test_scenario_file_path(self, tmp_path):
        path = tmp_path / "scenario.json"
        path.write_text(self.SCENARIO)
        code, text = run_cli(
            "simulate",
            "--n",
            "64",
            "--c",
            "2",
            "--lam",
            "0.75",
            "--rounds",
            "40",
            "--scenario",
            str(path),
        )
        assert code == 0

    def test_scenario_requires_capped(self):
        code, text = run_cli(
            "simulate", "--process", "greedy", "--lam", "0.75", "--scenario", self.SCENARIO
        )
        assert code == 2
        assert "--process capped" in text

    def test_scenario_excludes_shards(self):
        code, text = run_cli(
            "simulate",
            "--n",
            "64",
            "--c",
            "2",
            "--lam",
            "0.75",
            "--shards",
            "2",
            "--scenario",
            self.SCENARIO,
        )
        assert code == 2
        assert "mutually exclusive" in text

    def test_scenario_excludes_batch_replicates(self):
        code, text = run_cli(
            "simulate",
            "--n",
            "64",
            "--c",
            "2",
            "--lam",
            "0.75",
            "--batch-replicates",
            "--scenario",
            self.SCENARIO,
        )
        assert code == 2
        assert "mutually exclusive" in text

    def test_bad_scenario_json_is_config_error(self):
        code, text = run_cli(
            "simulate",
            "--n",
            "64",
            "--c",
            "2",
            "--lam",
            "0.75",
            "--scenario",
            '{"chrun": {}}',
        )
        assert code == 2
        assert "unknown scenario keys" in text


class TestDistributedCli:
    def test_parser_accepts_broker_worker_dashboard(self):
        parser = build_parser()
        args = parser.parse_args(["broker", "--port", "7070", "--lease-timeout", "5"])
        assert args.command == "broker" and args.port == 7070
        args = parser.parse_args(["worker", "127.0.0.1:7070", "--exit-when-idle"])
        assert args.command == "worker" and args.exit_when_idle
        args = parser.parse_args(["dashboard", "state", "--bench", "BENCH_sweep.json"])
        assert args.command == "dashboard" and len(args.bench) == 1

    def test_experiments_broker_flag_validates_address(self):
        code, text = run_cli(
            "experiments", "--id", "fig4_left", "--broker", "localhost:notaport"
        )
        assert code == 2
        assert "invalid broker address" in text

    def test_experiments_broker_rejects_checkpoint_every(self):
        code, text = run_cli(
            "experiments",
            "--id",
            "fig4_left",
            "--broker",
            "127.0.0.1:7070",
            "--checkpoint-every",
            "10",
            "--cache-dir",
            "unused",
        )
        assert code == 2
        assert "broker-side knob" in text

    def test_broker_checkpoint_every_needs_dir(self):
        code, text = run_cli("broker", "--checkpoint-every", "10")
        assert code == 2
        assert "--checkpoint-dir" in text

    def test_broker_rejects_bad_lease_timeout(self):
        code, text = run_cli("broker", "--lease-timeout", "0")
        assert code == 2
        assert "--lease-timeout" in text

    def test_worker_rejects_bad_address(self):
        code, text = run_cli("worker", "localhost:notaport")
        assert code == 2
        assert "invalid broker address" in text

    def test_dashboard_without_inputs_errors(self):
        code, text = run_cli("dashboard")
        assert code == 2
        assert "dashboard needs" in text

    def test_dashboard_renders_state_and_bench(self, tmp_path):
        import json

        from repro.distributed.store import SweepStateStore

        state_dir = tmp_path / "state"
        store = SweepStateStore(state_dir)
        store.state.tasks_total = 2
        store.state.tasks_done = 2
        store.record("complete", key="a", worker="vm-1")
        store.close()
        bench = tmp_path / "BENCH_sweep.json"
        bench.write_text(
            json.dumps({"profile": "quick", "fabric": {"speedup_4w_over_1w": 3.2}}),
            encoding="utf-8",
        )
        code, text = run_cli("dashboard", str(state_dir), "--bench", str(bench))
        assert code == 0
        assert "2/2" in text
        assert "vm-1" in text
        assert "fabric 4w/1w 3.20x" in text

    def test_broker_mode_end_to_end(self, tmp_path):
        # Full CLI path: experiments --broker against a live broker+worker.
        import threading

        from repro.distributed import Broker, BrokerConfig, Worker

        broker = Broker(BrokerConfig(host="127.0.0.1", port=0))

        import asyncio

        loop_holder = {}

        def serve():
            loop = asyncio.new_event_loop()
            asyncio.set_event_loop(loop)
            loop_holder["loop"] = loop
            loop.run_until_complete(broker.serve())
            loop.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        while broker.port is None:
            pass
        worker = Worker(f"127.0.0.1:{broker.port}", worker_id="cli-w", poll=0.02)
        worker_thread = threading.Thread(target=worker.run, daemon=True)
        worker_thread.start()
        try:
            code, text = run_cli(
                "experiments",
                "--id",
                "fig4_left",
                "--profile",
                "quick",
                "--broker",
                f"127.0.0.1:{broker.port}",
                "--no-progress",
            )
            assert code == 0
            assert "broker: " in text
            assert "on 1 worker(s) [cli-w:" in text
        finally:
            worker._stop = True
            loop_holder["loop"].call_soon_threadsafe(broker.shutdown)
            thread.join(timeout=5)
            worker_thread.join(timeout=5)


class TestTraceTimelineCli:
    def _traced_run(self, tmp_path):
        # fig4_left (not dominance): tracing needs an experiment with
        # actual sweep tasks, and --jobs 2 engages the parallel runner.
        tel_dir = tmp_path / "tel"
        code, _ = run_cli(
            "experiments",
            "--id",
            "fig4_left",
            "--profile",
            "quick",
            "--jobs",
            "2",
            "--telemetry-dir",
            str(tel_dir),
            "--no-progress",
        )
        assert code == 0
        return tel_dir

    def test_run_dir_shorthand_renders_timelines(self, tmp_path):
        tel_dir = self._traced_run(tmp_path)
        assert (tel_dir / "trace.jsonl").exists()
        code, text = run_cli("trace", str(tel_dir))
        assert code == 0
        assert "traces:" in text
        assert "[complete]" in text
        assert "critical path" in text
        # The explicit subcommand and a direct file path work too.
        code_file, text_file = run_cli(
            "trace", "timeline", str(tel_dir / "trace.jsonl")
        )
        assert code_file == 0
        assert text_file == text

    def test_missing_trace_exits_2(self, tmp_path):
        code, text = run_cli("trace", str(tmp_path))
        assert code == 2
        assert "error:" in text and "no trace file" in text

    def test_normalize_argv_leaves_other_subcommands_alone(self):
        from repro.cli import _normalize_argv

        assert _normalize_argv(["trace", "out/tel"]) == ["trace", "timeline", "out/tel"]
        assert _normalize_argv(["trace", "record", "x"]) == ["trace", "record", "x"]
        assert _normalize_argv(["trace", "--help"]) == ["trace", "--help"]
        assert _normalize_argv(["trace"]) == ["trace"]
        assert _normalize_argv(["simulate", "--n", "8"]) == ["simulate", "--n", "8"]


class TestCprofileCli:
    SIM_ARGS = (
        "simulate",
        "--n",
        "64",
        "--c",
        "2",
        "--lam",
        "0.75",
        "--rounds",
        "30",
        "--seed",
        "3",
    )

    def test_simulate_cprofile_prints_hotspots(self):
        plain_code, plain = run_cli(*self.SIM_ARGS)
        code, text = run_cli(*self.SIM_ARGS, "--cprofile")
        assert plain_code == code == 0
        assert "cProfile hotspots" in text
        # Profiling observes the interpreter only: same measurement lines.
        assert text.startswith(plain)

    def test_simulate_cprofile_folds_into_manifest(self, tmp_path):
        from repro.telemetry import load_manifest

        tel_dir = tmp_path / "tel"
        code, _ = run_cli(*self.SIM_ARGS, "--cprofile", "--telemetry-dir", str(tel_dir))
        assert code == 0
        profile = load_manifest(tel_dir)["profile"]
        assert profile["profiler"] == "cProfile"
        assert profile["tasks_profiled"] == 1
        assert profile["top"] and "function" in profile["top"][0]


class TestDashboardCli:
    def _state_dir(self, tmp_path):
        from repro.distributed.store import SweepStateStore

        store = SweepStateStore(tmp_path / "state")
        store.state.tasks_total = 2
        store.state.tasks_done = 2
        store.close()
        return tmp_path / "state"

    def test_missing_state_dir_exits_2(self, tmp_path):
        code, text = run_cli("dashboard", str(tmp_path / "nope"))
        assert code == 2
        assert "error:" in text

    def test_watch_bounded_iterations(self, tmp_path):
        state_dir = self._state_dir(tmp_path)
        code, text = run_cli(
            "dashboard",
            str(state_dir),
            "--watch",
            "--interval",
            "0",
            "--iterations",
            "2",
        )
        assert code == 0
        assert text.count("--- repro dashboard") == 2
        assert "sweep state" in text

    def test_watch_keeps_going_after_errors(self, tmp_path):
        code, text = run_cli(
            "dashboard",
            str(tmp_path / "ghost"),
            "--watch",
            "--interval",
            "0",
            "--iterations",
            "2",
        )
        assert code == 2
        assert text.count("error:") == 2
