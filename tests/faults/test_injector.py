"""FaultInjector semantics on the fast CAPPED simulator.

The key property (an acceptance criterion for the subsystem) is
determinism: the same (FaultSchedule, process seed) pair reproduces a
faulty run exactly, and an *empty* schedule leaves the fault-free
trajectory untouched — the injector draws from its own RNG stream, never
from the process's.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.capped import CappedProcess
from repro.engine.driver import SimulationDriver
from repro.engine.observers import InvariantChecker, TraceRecorder
from repro.errors import ConfigurationError
from repro.faults import (
    CapacityDegradation,
    CrashBurst,
    FaultInjector,
    FaultSchedule,
    PeriodicOutage,
    RequestDrop,
    StochasticCrashes,
)


def run_with_schedule(schedule, rounds=120, rng=1, n=256, lam=0.75, capacity=2):
    """One faulty run; returns (trace, injector, process)."""
    process = CappedProcess(n=n, capacity=capacity, lam=lam, rng=rng, initial_pool=40)
    trace = TraceRecorder()
    injector = FaultInjector(schedule)
    driver = SimulationDriver(
        burn_in=0, measure=rounds, observers=[trace, injector, InvariantChecker(every=10)]
    )
    driver.run(process)
    return trace, injector, process


class TestDeterminism:
    def test_same_schedule_and_seed_reproduces_run(self):
        schedule = FaultSchedule(
            events=(
                CrashBurst(at_round=30, fraction=0.25, duration=15),
                CapacityDegradation(at_round=60, duration=10, capacity=1, fraction=0.5),
                RequestDrop(at_round=80, fraction=0.3),
            ),
            seed=7,
        )
        first, inj1, _ = run_with_schedule(schedule)
        second, inj2, _ = run_with_schedule(schedule)
        assert first.pool_sizes() == second.pool_sizes()
        assert inj1.events_log == inj2.events_log
        assert inj1.crashes == inj2.crashes

    def test_different_fault_seed_changes_victims_not_process(self):
        def make(seed):
            return FaultSchedule(
                events=(CrashBurst(at_round=30, fraction=0.25, duration=15),), seed=seed
            )

        _, inj_a, _ = run_with_schedule(make(1))
        _, inj_b, _ = run_with_schedule(make(2))
        # Same number of crashes, (almost surely) different victims → the
        # post-fault trajectories may differ but the counters match.
        assert inj_a.crashes == inj_b.crashes == round(0.25 * 256)

    def test_empty_schedule_does_not_perturb_trajectory(self):
        bare = CappedProcess(n=256, capacity=2, lam=0.75, rng=1, initial_pool=40)
        bare_trace = TraceRecorder()
        SimulationDriver(burn_in=0, measure=120, observers=[bare_trace]).run(bare)
        observed, injector, _ = run_with_schedule(FaultSchedule())
        assert observed.pool_sizes() == bare_trace.pool_sizes()
        assert injector.all_clear
        assert injector.crashes == injector.recoveries == 0


class TestCrashBurst:
    def test_preserved_crash_and_recovery(self):
        schedule = FaultSchedule(
            events=(CrashBurst(at_round=30, fraction=0.25, duration=15),), seed=3
        )
        trace, injector, process = run_with_schedule(schedule)
        assert injector.crashes == injector.recoveries == round(0.25 * 256)
        assert injector.balls_lost == 0  # preserved buffers
        assert injector.all_clear
        assert not process.bins.down.any()
        # The outage visibly backs up the pool relative to just before it.
        pools = trace.pool_sizes()
        assert max(pools[30:45]) > pools[29]
        # down_rounds: 64 bins down for exactly 15 rounds each.
        assert injector.down_rounds == round(0.25 * 256) * 15

    def test_wiped_crash_loses_buffered_balls(self):
        schedule = FaultSchedule(
            events=(CrashBurst(at_round=30, fraction=0.5, duration=10, buffer_policy="wiped"),),
            seed=3,
        )
        _, injector, process = run_with_schedule(schedule)
        assert injector.balls_lost > 0
        process.check_invariants()

    def test_permanent_outage_never_recovers(self):
        schedule = FaultSchedule(events=(CrashBurst(at_round=10, fraction=0.1),), seed=3)
        _, injector, process = run_with_schedule(schedule, rounds=60)
        assert injector.recoveries == 0
        assert injector.down_count == round(0.1 * 256)
        assert int(process.bins.down.sum()) == injector.down_count


class TestPeriodicOutage:
    def test_fires_every_period(self):
        schedule = FaultSchedule(
            events=(PeriodicOutage(period=30, duration=5, fraction=0.1, first_round=20),),
            seed=5,
        )
        _, injector, _ = run_with_schedule(schedule, rounds=100)
        crash_rounds = [t for t, msg in injector.events_log if msg.startswith("crash")]
        assert crash_rounds == [20, 50, 80]
        assert injector.crashes == 3 * round(0.1 * 256)
        assert injector.all_clear


class TestStochasticCrashes:
    def test_markov_crash_recover_within_window(self):
        schedule = FaultSchedule(
            events=(StochasticCrashes(crash_prob=0.02, recover_prob=0.5, last_round=80),),
            seed=11,
        )
        _, injector, _ = run_with_schedule(schedule, rounds=100)
        assert injector.crashes > 0
        assert injector.recoveries > 0
        # After last_round the remaining down entities stop flipping coins.
        assert injector.down_count == injector.crashes - injector.recoveries


class TestCapacityDegradation:
    def test_degrade_and_restore(self):
        schedule = FaultSchedule(
            events=(CapacityDegradation(at_round=30, duration=20, capacity=1),), seed=3
        )
        _, injector, process = run_with_schedule(schedule)
        # Capacity fully restored after the window…
        assert np.all(np.asarray(process.bins.capacity) == 2)
        assert injector.all_clear
        # …and the high-water invariant held throughout (checked every 10
        # rounds by the InvariantChecker; loads above the degraded capacity
        # are legal because existing queue contents are never truncated).
        process.check_invariants()
        restores = [msg for _, msg in injector.events_log if msg.startswith("restore")]
        assert len(restores) == 1

    def test_partial_degradation_touches_a_fraction(self):
        schedule = FaultSchedule(
            events=(CapacityDegradation(at_round=30, duration=10, capacity=1, fraction=0.25),),
            seed=3,
        )
        _, _, process = run_with_schedule(schedule, rounds=35)
        degraded = np.asarray(process.bins.capacity)
        assert int((degraded == 1).sum()) == round(0.25 * 256)
        assert int((degraded == 2).sum()) == 256 - round(0.25 * 256)


class TestRequestDrop:
    def test_drops_youngest_pool_entries(self):
        schedule = FaultSchedule(events=(RequestDrop(at_round=50, fraction=0.5),), seed=3)
        trace, injector, _ = run_with_schedule(schedule)
        pools = trace.pool_sizes()
        # Round 50's record is snapshotted before observers run, so the
        # shed removes exactly int(0.5 · pool) of that recorded size.
        assert injector.requests_dropped == int(0.5 * pools[49])
        assert injector.requests_dropped > 0


class TestBinding:
    def test_rejects_non_schedule(self):
        with pytest.raises(ConfigurationError):
            FaultInjector("not a schedule")

    def test_rejects_rebinding_to_another_process(self):
        injector = FaultInjector(FaultSchedule())
        a = CappedProcess(n=8, capacity=2, lam=0.5, rng=1)
        b = CappedProcess(n=8, capacity=2, lam=0.5, rng=2)
        injector.on_round(a.step(), a)
        with pytest.raises(ConfigurationError):
            injector.on_round(b.step(), b)

    def test_rejects_unknown_process_shape(self):
        injector = FaultInjector(FaultSchedule())
        record = type("R", (), {"round": 1})()
        with pytest.raises(ConfigurationError):
            injector.on_round(record, object())
