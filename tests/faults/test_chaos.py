"""Chaos-hook plumbing: env parsing, injection claiming, safe actions.

The destructive actions (``crash``/``kill``) are exercised end-to-end in
``tests/parallel/test_hardened_runner.py`` where a real worker process can
die; here we test everything that can run safely in-process.
"""

import pytest

from repro.errors import ChaosInjected, ConfigurationError
from repro.faults.chaos import CHAOS_ENV, ChaosSpec, chaos_from_env, maybe_chaos


class TestChaosSpec:
    def test_round_trip_through_env(self):
        spec = ChaosSpec(action="fail", match="r1", times=2)
        parsed = chaos_from_env({CHAOS_ENV: spec.to_env()})
        assert parsed.action == "fail"
        assert parsed.match == "r1"
        assert parsed.times == 2

    def test_unset_env_is_none(self):
        assert chaos_from_env({}) is None

    def test_malformed_json_is_fatal(self):
        with pytest.raises(ConfigurationError):
            chaos_from_env({CHAOS_ENV: "{broken"})

    def test_non_object_payload_is_fatal(self):
        with pytest.raises(ConfigurationError):
            chaos_from_env({CHAOS_ENV: '["kill"]'})

    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError):
            ChaosSpec(action="explode")

    def test_crash_and_kill_require_marker_dir(self):
        with pytest.raises(ConfigurationError):
            ChaosSpec(action="crash")
        with pytest.raises(ConfigurationError):
            ChaosSpec(action="kill")
        ChaosSpec(action="kill", marker_dir="/tmp/somewhere")  # fine


class TestMaybeChaos:
    def test_noop_when_unarmed(self):
        maybe_chaos("any label", environ={})

    def test_fail_action_raises_chaos_injected(self):
        spec = ChaosSpec(action="fail")
        with pytest.raises(ChaosInjected):
            maybe_chaos("capped n=256 r0", spec=spec)

    def test_match_filters_by_label_substring(self):
        spec = ChaosSpec(action="fail", match="r1")
        maybe_chaos("capped n=256 r0", spec=spec)  # no match, no injection
        with pytest.raises(ChaosInjected):
            maybe_chaos("capped n=256 r1", spec=spec)

    def test_marker_dir_limits_injections(self, tmp_path):
        spec = ChaosSpec(action="fail", times=2, marker_dir=str(tmp_path / "markers"))
        for _ in range(2):
            with pytest.raises(ChaosInjected):
                maybe_chaos("task", spec=spec)
        # Both slots claimed: the hook stands down.
        maybe_chaos("task", spec=spec)
        markers = sorted(p.name for p in (tmp_path / "markers").iterdir())
        assert markers == ["chaos-0.marker", "chaos-1.marker"]

    def test_hang_sleeps_for_configured_seconds(self):
        spec = ChaosSpec(action="hang", seconds=0.01)
        import time

        start = time.perf_counter()
        maybe_chaos("task", spec=spec)
        assert time.perf_counter() - start >= 0.01
