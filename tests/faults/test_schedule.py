"""Validation semantics of the declarative fault schedules."""

import pytest

from repro.errors import ConfigurationError
from repro.faults import (
    CapacityDegradation,
    CrashBurst,
    FaultSchedule,
    PeriodicOutage,
    RequestDrop,
    StochasticCrashes,
)


class TestCrashBurst:
    def test_valid(self):
        event = CrashBurst(at_round=10, fraction=0.5, duration=5)
        assert event.buffer_policy == "preserved"

    def test_permanent_outage_allowed(self):
        assert CrashBurst(at_round=1, fraction=1.0).duration is None

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"at_round": 0, "fraction": 0.5},
            {"at_round": 1, "fraction": 0.0},
            {"at_round": 1, "fraction": 1.5},
            {"at_round": 1, "fraction": 0.5, "duration": 0},
            {"at_round": 1, "fraction": 0.5, "buffer_policy": "shredded"},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            CrashBurst(**kwargs)


class TestPeriodicOutage:
    def test_valid(self):
        PeriodicOutage(period=20, duration=5, fraction=0.1)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"period": 1, "duration": 1, "fraction": 0.1},
            {"period": 10, "duration": 10, "fraction": 0.1},  # duration < period
            {"period": 10, "duration": 0, "fraction": 0.1},
            {"period": 10, "duration": 5, "fraction": 0.1, "first_round": 0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            PeriodicOutage(**kwargs)


class TestStochasticCrashes:
    def test_valid(self):
        StochasticCrashes(crash_prob=0.01, recover_prob=0.2, last_round=100)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_prob": 0.0, "recover_prob": 0.5},
            {"crash_prob": 0.5, "recover_prob": 1.5},
            {"crash_prob": 0.1, "recover_prob": 0.1, "first_round": 10, "last_round": 5},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            StochasticCrashes(**kwargs)


class TestCapacityDegradation:
    def test_valid(self):
        CapacityDegradation(at_round=5, duration=10, capacity=1, fraction=0.5)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"at_round": 5, "duration": 0, "capacity": 1},
            {"at_round": 5, "duration": 10, "capacity": 0},
            {"at_round": 5, "duration": 10, "capacity": 1, "fraction": 0.0},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            CapacityDegradation(**kwargs)


class TestRequestDrop:
    def test_valid(self):
        RequestDrop(at_round=3, fraction=0.25)

    def test_rejects_bad_fraction(self):
        with pytest.raises(ConfigurationError):
            RequestDrop(at_round=3, fraction=2.0)


class TestFaultSchedule:
    def test_empty_schedule_is_falsy(self):
        assert not FaultSchedule()
        assert FaultSchedule(events=(CrashBurst(at_round=1, fraction=0.5),))

    def test_events_coerced_to_tuple(self):
        schedule = FaultSchedule(events=[RequestDrop(at_round=1, fraction=0.5)])
        assert isinstance(schedule.events, tuple)

    def test_rejects_unknown_event_type(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule(events=("not an event",))
