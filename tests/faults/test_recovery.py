"""Unit tests for the recovery-time metrics."""

import numpy as np
import pytest

from repro.engine.metrics import RoundRecord
from repro.errors import ConfigurationError
from repro.faults import measure_recovery, per_round_p99, stationary_band
from repro.faults.recovery import time_to_return

_EMPTY = np.zeros(0, dtype=np.int64)


class TestStationaryBand:
    def test_band_from_noisy_window(self):
        rng = np.random.default_rng(0)
        window = 100 + rng.normal(0, 2, size=200)
        band = stationary_band(window)
        assert band.lo < 100 < band.hi
        assert band.contains(band.mean)
        assert not band.contains(band.hi + 1)

    def test_abs_floor_keeps_constant_series_reachable(self):
        band = stationary_band([5.0, 5.0, 5.0, 5.0])
        assert band.std == 0.0
        assert band.hi - band.lo >= 2.0  # 2 · abs_floor

    def test_rel_floor_scales_with_mean(self):
        band = stationary_band([1000.0, 1000.0], rel_floor=0.1)
        assert band.hi == pytest.approx(1100.0)

    def test_needs_two_samples(self):
        with pytest.raises(ConfigurationError):
            stationary_band([1.0])


class TestTimeToReturn:
    def test_requires_sustained_stretch(self):
        band = stationary_band([0.0, 0.0], abs_floor=1.0)  # band [-1, 1]
        # Dips into the band at index 2 but only for one sample.
        series = [5, 5, 0, 5, 5, 0, 0, 0, 0, 5]
        assert time_to_return(series, band, start=0, sustain=3) == 5
        assert time_to_return(series, band, start=0, sustain=5) is None

    def test_start_offset_respected(self):
        band = stationary_band([0.0, 0.0], abs_floor=1.0)
        series = [0, 0, 0, 5, 0, 0, 0]
        assert time_to_return(series, band, start=4, sustain=3) == 4

    def test_rejects_bad_sustain(self):
        band = stationary_band([0.0, 0.0])
        with pytest.raises(ConfigurationError):
            time_to_return([0.0], band, start=0, sustain=0)


class TestMeasureRecovery:
    def _series(self):
        # 50 stationary rounds at 100, a spike to 200 decaying back.
        pre = np.full(50, 100.0)
        spike = np.linspace(200, 100, 40)
        post = np.full(60, 100.0)
        return np.concatenate([pre, spike, post])

    def test_measures_peak_and_recovery(self):
        series = self._series()
        report = measure_recovery(series, fault_index=50, fault_end_index=60, pre_window=40)
        assert report.recovered
        assert report.peak_value == pytest.approx(200.0)
        assert report.peak_index == 50
        assert report.recovery_rounds is not None and report.recovery_rounds > 0
        # Recovery can't precede the end of the fault window.
        assert report.recovery_index >= report.fault_end_index

    def test_never_recovers(self):
        series = np.concatenate([np.full(20, 100.0), np.full(30, 500.0)])
        report = measure_recovery(series, fault_index=20, fault_end_index=25, pre_window=10)
        assert not report.recovered
        assert report.recovery_rounds is None

    def test_already_recovered_when_fault_clears(self):
        series = np.full(100, 100.0)
        report = measure_recovery(series, fault_index=50, fault_end_index=60, pre_window=20)
        assert report.recovered
        assert report.recovery_rounds == 0

    def test_rejects_fault_window_outside_series(self):
        with pytest.raises(ConfigurationError):
            measure_recovery(np.zeros(10), fault_index=5, fault_end_index=20, pre_window=3)

    def test_rejects_oversized_pre_window(self):
        with pytest.raises(ConfigurationError):
            measure_recovery(np.zeros(50), fault_index=5, fault_end_index=10, pre_window=20)


class TestPerRoundP99:
    def _record(self, round_index, values, counts):
        return RoundRecord(
            round=round_index,
            wait_values=np.asarray(values, dtype=np.int64),
            wait_counts=np.asarray(counts, dtype=np.int64),
        )

    def test_weighted_quantile(self):
        # 99 waits of 1 and 1 wait of 50: p99 picks the boundary value 1;
        # 90/10 pushes the p99 to the tail value.
        records = [
            self._record(1, [1, 50], [99, 1]),
            self._record(2, [1, 50], [90, 10]),
        ]
        p99 = per_round_p99(records)
        assert p99[0] == 1.0
        assert p99[1] == 50.0

    def test_empty_rounds_carry_forward(self):
        records = [
            self._record(1, [7], [4]),
            self._record(2, [], []),
            self._record(3, [], []),
        ]
        assert per_round_p99(records).tolist() == [7.0, 7.0, 7.0]

    def test_leading_empty_rounds_are_zero(self):
        records = [self._record(1, [], []), self._record(2, [3], [1])]
        assert per_round_p99(records).tolist() == [0.0, 3.0]


class TestTimeToReturnPartialConfirmation:
    def _band(self):
        return stationary_band([0.0, 0.0], abs_floor=1.0)  # band [-1, 1]

    def test_run_ending_in_band_reports_entry_index(self):
        # Re-enters at index 4 but the run ends 3 samples later: with
        # sustain=10 no full window exists, yet the tail never left the
        # band, so the entry index is still the answer.
        series = [5, 5, 5, 5, 0, 0, 0]
        assert time_to_return(series, self._band(), start=0, sustain=10) == 4

    def test_run_ending_outside_band_is_unrecovered(self):
        series = [5, 5, 0, 0, 0, 5]
        assert time_to_return(series, self._band(), start=0, sustain=10) is None

    def test_full_sustain_window_preferred_over_tail(self):
        # A complete sustained window exists: the partial tail never runs.
        series = [5, 0, 0, 0, 5, 0, 0]
        assert time_to_return(series, self._band(), start=0, sustain=3) == 1

    def test_tail_entry_respects_start(self):
        # The in-band stretch reaches back before `start`; the report must
        # not claim a return earlier than the scan window.
        series = [0, 0, 0, 0, 0]
        assert time_to_return(series, self._band(), start=3, sustain=10) == 3

    def test_single_trailing_sample_counts(self):
        series = [5, 5, 0]
        assert time_to_return(series, self._band(), start=0, sustain=4) == 2


class TestMeasurePostChurnRecovery:
    def _series(self):
        # Stationary at 100, a leave burst at index 50 steps the
        # equilibrium up to 140 with an overshoot spike to 200.
        series = np.full(200, 100.0)
        series[50:55] = [200.0, 180.0, 165.0, 155.0, 148.0]
        series[55:] = 140.0
        return series

    def test_band_fits_new_equilibrium(self):
        from repro.faults import measure_post_churn_recovery

        report = measure_post_churn_recovery(
            self._series(), churn_index=50, tail_window=50, sustain=5
        )
        assert report.band.contains(140.0)
        assert not report.band.contains(100.0)
        assert report.peak_value == 200.0
        assert report.peak_index == 50
        assert report.recovered
        # Settles at index 55 -> 5 rounds after the churn.
        assert report.recovery_rounds == 5

    def test_unsettled_run_reports_unrecovered(self):
        from repro.faults import measure_post_churn_recovery

        # Still climbing at the end: with a tight band the ramp passes
        # straight through the tail-fitted level and ends above it, so
        # neither a sustained window nor the partial-confirmation tail
        # rule can claim a return.
        series = np.concatenate([np.full(50, 100.0), np.linspace(100, 400, 150)])
        report = measure_post_churn_recovery(
            series, churn_index=50, tail_window=20, sustain=30, width=0.1, rel_floor=0.001
        )
        assert report.recovery_index is None
        assert not report.recovered

    def test_validation(self):
        from repro.faults import measure_post_churn_recovery

        series = np.zeros(20)
        with pytest.raises(ConfigurationError):
            measure_post_churn_recovery(series, churn_index=0, tail_window=5)
        with pytest.raises(ConfigurationError):
            measure_post_churn_recovery(series, churn_index=25, tail_window=5)
        with pytest.raises(ConfigurationError):
            measure_post_churn_recovery(series, churn_index=10, tail_window=1)
        with pytest.raises(ConfigurationError):
            measure_post_churn_recovery(series, churn_index=10, tail_window=15)
