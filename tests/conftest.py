"""Shared fixtures and collection hooks for the repro test suite."""

from __future__ import annotations

from pathlib import Path

import numpy as np
import pytest

from repro.rng import RngFactory


def pytest_collection_modifyitems(config, items) -> None:
    """Mark tests by tier based on their directory.

    ``tests/integration`` holds the long-running end-to-end runs and
    ``tests/property`` the hypothesis suites; both get ``slow`` so CI's
    default job (``-m "not slow"``) runs the fast tier and the scheduled
    job picks the rest up. The tier-1 command runs everything regardless.
    """
    for item in items:
        parts = Path(str(item.fspath)).parts
        if "integration" in parts:
            item.add_marker(pytest.mark.slow)
        if "property" in parts:
            item.add_marker(pytest.mark.property)
            item.add_marker(pytest.mark.slow)


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def factory() -> RngFactory:
    """A deterministic RngFactory, fresh per test."""
    return RngFactory(seed=777)
