"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.rng import RngFactory


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator, fresh per test."""
    return np.random.default_rng(12345)


@pytest.fixture
def factory() -> RngFactory:
    """A deterministic RngFactory, fresh per test."""
    return RngFactory(seed=777)
