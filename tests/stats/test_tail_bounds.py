"""Unit tests for the Appendix A tail bounds."""

import math

import numpy as np
import pytest

from repro.stats.tail_bounds import (
    binomial_domination_tail,
    binomial_tail_upper,
    chernoff_2exp_bound,
    chernoff_multiplicative_bound,
    empty_bins_concentration,
)


class TestLemma8:
    def test_value_is_two_to_minus_r(self):
        assert chernoff_2exp_bound(mean=1.0, threshold=10.0) == pytest.approx(2.0**-10)

    def test_precondition_enforced(self):
        with pytest.raises(ValueError):
            chernoff_2exp_bound(mean=5.0, threshold=6.0)  # 6 < 2e*5

    def test_boundary_precondition_accepted(self):
        r = 2 * math.e * 3.0
        assert chernoff_2exp_bound(mean=3.0, threshold=r) == pytest.approx(2.0**-r)

    def test_negative_mean_rejected(self):
        with pytest.raises(ValueError):
            chernoff_2exp_bound(mean=-1.0, threshold=1.0)

    def test_bound_actually_holds_for_binomial(self, rng):
        # Empirical sanity: X ~ B(1000, 0.001), E[X]=1, R=12 >= 2e.
        samples = rng.binomial(1000, 0.001, size=20_000)
        empirical = np.mean(samples >= 12)
        assert empirical <= chernoff_2exp_bound(1.0, 12.0) + 1e-3


class TestLemma9:
    def test_formula(self):
        mean, delta = 10.0, 0.5
        expected = math.exp(-(0.25 * 10) / 2.5)
        assert chernoff_multiplicative_bound(mean, delta) == pytest.approx(expected)

    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ValueError):
            chernoff_multiplicative_bound(1.0, 0.0)

    def test_bound_holds_for_binomial(self, rng):
        mean = 100 * 0.3
        samples = rng.binomial(100, 0.3, size=20_000)
        delta = 0.5
        empirical = np.mean(samples >= (1 + delta) * mean)
        assert empirical <= chernoff_multiplicative_bound(mean, delta) + 1e-3


class TestLemma10:
    def test_probability_capped_at_one(self):
        assert empty_bins_concentration(10, 5.0, 0.01) <= 1.0

    def test_decreases_in_deviation(self):
        small = empty_bins_concentration(100, 30.0, 5.0)
        large = empty_bins_concentration(100, 30.0, 20.0)
        assert large < small

    def test_rejects_bad_expected(self):
        with pytest.raises(ValueError):
            empty_bins_concentration(10, 11.0, 1.0)

    def test_empirical_empty_bins_within_bound(self, rng):
        n, m = 200, 400
        expected_empty = n * (1 - 1 / n) ** m
        deviation = 20.0
        hits = 0
        trials = 2000
        for _ in range(trials):
            loads = np.bincount(rng.integers(0, n, size=m), minlength=n)
            empty = np.count_nonzero(loads == 0)
            if abs(empty - expected_empty) >= deviation:
                hits += 1
        assert hits / trials <= empty_bins_concentration(n, expected_empty, deviation) + 0.01


class TestBinomialTail:
    def test_threshold_zero_is_one(self):
        assert binomial_tail_upper(10, 0.5, 0) == 1.0

    def test_threshold_above_trials_is_zero(self):
        assert binomial_tail_upper(10, 0.5, 11) == 0.0

    def test_degenerate_probabilities(self):
        assert binomial_tail_upper(10, 0.0, 1) == 0.0
        assert binomial_tail_upper(10, 1.0, 10) == 1.0

    def test_matches_direct_sum(self):
        # Pr[B(6, 0.3) >= 4] computed by hand via complement.
        from math import comb

        exact = sum(comb(6, k) * 0.3**k * 0.7 ** (6 - k) for k in range(4, 7))
        assert binomial_tail_upper(6, 0.3, 4) == pytest.approx(exact)

    def test_domination_alias(self):
        assert binomial_domination_tail(6, 0.3, 4) == binomial_tail_upper(6, 0.3, 4)

    def test_large_trials_stable(self):
        value = binomial_tail_upper(10_000, 0.001, 30)
        assert 0.0 <= value <= 1.0
