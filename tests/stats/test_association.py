"""Unit tests for the negative-association diagnostics."""

import numpy as np
import pytest

from repro.stats.association import (
    empty_bin_indicators,
    pairwise_covariance_report,
)


class TestPairwiseCovariance:
    def test_independent_variables_near_zero(self, rng):
        data = rng.integers(0, 2, size=(5000, 4))
        report = pairwise_covariance_report(data)
        assert abs(report.mean_covariance) < 0.02
        assert report.pairs == 6
        assert report.consistent_with_na()

    def test_positively_correlated_flagged(self, rng):
        shared = rng.integers(0, 2, size=(2000, 1))
        data = np.hstack([shared, shared])
        report = pairwise_covariance_report(data)
        assert report.max_covariance > 0.2
        assert not report.consistent_with_na()

    def test_anticorrelated_consistent(self, rng):
        first = rng.integers(0, 2, size=(2000, 1))
        data = np.hstack([first, 1 - first])
        report = pairwise_covariance_report(data)
        assert report.mean_covariance < 0
        assert report.consistent_with_na()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            pairwise_covariance_report(np.zeros((1, 3)))
        with pytest.raises(ValueError):
            pairwise_covariance_report(np.zeros((10, 1)))

    def test_custom_tolerance(self, rng):
        data = rng.integers(0, 2, size=(100, 3))
        report = pairwise_covariance_report(data, tolerance=10.0)
        assert report.tolerance == 10.0
        assert report.consistent_with_na()


class TestEmptyBinIndicators:
    def test_shape(self, rng):
        matrix = empty_bin_indicators(n=20, balls=30, trials=50, rng=rng)
        assert matrix.shape == (50, 20)
        assert set(np.unique(matrix)) <= {0, 1}

    def test_watch_subset(self, rng):
        matrix = empty_bin_indicators(n=20, balls=30, trials=10, rng=rng, bins_to_watch=5)
        assert matrix.shape == (10, 5)

    def test_mean_matches_occupancy_formula(self, rng):
        n, balls = 30, 45
        matrix = empty_bin_indicators(n=n, balls=balls, trials=4000, rng=rng)
        empirical = float(matrix.mean())
        assert empirical == pytest.approx((1 - 1 / n) ** balls, rel=0.05)

    def test_dubhashi_ranjan_negative_association(self, rng):
        # The indicator family the paper's Lemma 2 relies on ([13]):
        # empty-bin indicators are negatively associated, hence their
        # pairwise covariances are non-positive (up to sampling noise).
        matrix = empty_bin_indicators(n=10, balls=10, trials=6000, rng=rng)
        report = pairwise_covariance_report(matrix)
        assert report.consistent_with_na()
        assert report.mean_covariance < 0  # genuinely negative, not just zero

    def test_validation(self, rng):
        with pytest.raises(ValueError):
            empty_bin_indicators(n=1, balls=5, trials=5, rng=rng)
        with pytest.raises(ValueError):
            empty_bin_indicators(n=5, balls=-1, trials=5, rng=rng)
