"""Unit tests for confidence intervals."""

import numpy as np
import pytest

from repro.stats.intervals import bootstrap_ci, normal_ci


class TestNormalCI:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            normal_ci([])

    def test_single_sample_degenerates(self):
        ci = normal_ci([4.2])
        assert ci.low == ci.high == ci.estimate == 4.2

    def test_contains_true_mean_usually(self, rng):
        misses = 0
        for _ in range(200):
            samples = rng.normal(10.0, 3.0, size=40)
            if not normal_ci(samples, confidence=0.95).contains(10.0):
                misses += 1
        # ~5% expected; allow generous slack for 200 trials.
        assert misses <= 25

    def test_width_shrinks_with_samples(self, rng):
        small = normal_ci(rng.normal(0, 1, size=20))
        large = normal_ci(rng.normal(0, 1, size=2000))
        assert large.half_width < small.half_width

    def test_symmetric_around_mean(self, rng):
        samples = rng.normal(5, 1, size=50)
        ci = normal_ci(samples)
        assert ci.estimate - ci.low == pytest.approx(ci.high - ci.estimate)

    def test_nonstandard_confidence_level(self, rng):
        samples = rng.normal(0, 1, size=100)
        narrow = normal_ci(samples, confidence=0.80)
        wide = normal_ci(samples, confidence=0.99)
        assert narrow.half_width < wide.half_width

    def test_str_renders(self):
        text = str(normal_ci([1.0, 2.0, 3.0]))
        assert "[" in text and "]" in text


class TestBootstrapCI:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])

    def test_zero_resamples_rejected(self):
        with pytest.raises(ValueError):
            bootstrap_ci([1.0, 2.0], resamples=0)

    def test_single_sample_degenerates(self):
        ci = bootstrap_ci([7.0], rng=0)
        assert ci.low == ci.high == 7.0

    def test_reproducible_with_seed(self):
        data = [1.0, 5.0, 2.0, 8.0, 3.0]
        a = bootstrap_ci(data, rng=42)
        b = bootstrap_ci(data, rng=42)
        assert (a.low, a.high) == (b.low, b.high)

    def test_covers_estimate(self, rng):
        data = rng.exponential(2.0, size=100)
        ci = bootstrap_ci(data, rng=1)
        assert ci.low <= ci.estimate <= ci.high

    def test_custom_statistic(self, rng):
        data = rng.normal(0, 1, size=200)
        ci = bootstrap_ci(data, statistic=np.median, rng=2)
        assert ci.estimate == pytest.approx(float(np.median(data)))
