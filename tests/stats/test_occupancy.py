"""Unit tests for occupancy formulas."""

import math

import numpy as np
import pytest

from repro.stats.occupancy import (
    expected_empty_bins,
    expected_occupied_bins,
    miss_probability,
)


class TestMissProbability:
    def test_exact_formula(self):
        assert miss_probability(4, 3) == pytest.approx((3 / 4) ** 3)

    def test_asymptotic_upper_bounds_exact(self):
        # (1 - 1/n)^m <= e^{-m/n}, the inequality used throughout the paper.
        for n in (2, 10, 100):
            for m in (0, 1, 5, 50):
                assert miss_probability(n, m, exact=True) <= miss_probability(
                    n, m, exact=False
                ) + 1e-12

    def test_zero_balls(self):
        assert miss_probability(10, 0) == 1.0

    def test_single_bin(self):
        assert miss_probability(1, 1) == 0.0
        assert miss_probability(1, 0) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            miss_probability(0, 1)
        with pytest.raises(ValueError):
            miss_probability(1, -1)


class TestExpectedCounts:
    def test_empty_plus_occupied_is_n(self):
        n, m = 50, 120
        total = expected_empty_bins(n, m) + expected_occupied_bins(n, m)
        assert total == pytest.approx(n)

    def test_matches_simulation(self, rng):
        n, m = 100, 150
        trials = 3000
        empties = [
            int(np.count_nonzero(np.bincount(rng.integers(0, n, m), minlength=n) == 0))
            for _ in range(trials)
        ]
        assert float(np.mean(empties)) == pytest.approx(expected_empty_bins(n, m), rel=0.02)

    def test_exponential_approximation_close_for_large_n(self):
        n, m = 10_000, 20_000
        exact = expected_empty_bins(n, m, exact=True)
        approx = expected_empty_bins(n, m, exact=False)
        assert approx == pytest.approx(exact, rel=1e-3)

    def test_paper_rate_example(self):
        # Section III-A: with m* = ln(1/(1-lam))*n + 2n thrown, a deletion
        # attempt fails with probability <= e^{-m*/n} = e^{-2}(1-lam).
        lam = 0.75
        n = 1000
        m_star = int(math.log(1 / (1 - lam)) * n + 2 * n)
        assert miss_probability(n, m_star, exact=False) <= math.exp(-2) * (1 - lam) * 1.001
