"""Unit tests for stochastic-dominance utilities."""

import numpy as np
import pytest

from repro.stats.dominance import (
    coupled_dominance_report,
    empirical_cdf,
    stochastically_dominates,
)


class TestEmpiricalCdf:
    def test_step_function_values(self):
        cdf = empirical_cdf([1.0, 2.0, 3.0])
        assert cdf(0.5) == 0.0
        assert cdf(1.0) == pytest.approx(1 / 3)
        assert cdf(2.5) == pytest.approx(2 / 3)
        assert cdf(3.0) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_vectorised_evaluation(self):
        cdf = empirical_cdf([1.0, 2.0])
        out = cdf(np.array([0.0, 1.5, 5.0]))
        assert out.tolist() == [0.0, 0.5, 1.0]


class TestStochasticDominance:
    def test_shifted_sample_dominates(self, rng):
        base = rng.normal(0, 1, 500)
        assert stochastically_dominates(base + 2.0, base)

    def test_not_dominating_in_reverse(self, rng):
        base = rng.normal(0, 1, 500)
        assert not stochastically_dominates(base, base + 2.0)

    def test_identical_samples_dominate_weakly(self):
        data = [1.0, 2.0, 3.0]
        assert stochastically_dominates(data, data)

    def test_tolerance_absorbs_small_crossings(self):
        a = [1.0, 2.0, 3.0]
        b = [1.1, 1.9, 3.0]
        # Small CDF crossings; a strict check fails, a tolerant one passes.
        assert not stochastically_dominates(a, b)
        assert stochastically_dominates(a, b, tolerance=0.5)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            stochastically_dominates([], [1.0])


class TestCoupledDominance:
    def test_holds(self):
        report = coupled_dominance_report([1, 2, 3], [1, 2, 4])
        assert report.holds
        assert report.violations == 0
        assert report.worst_gap <= 0

    def test_violation_counted(self):
        report = coupled_dominance_report([1, 5, 3], [1, 2, 4])
        assert not report.holds
        assert report.violations == 1
        assert report.worst_gap == 3

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            coupled_dominance_report([1, 2], [1, 2, 3])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            coupled_dominance_report([], [])

    def test_str_mentions_status(self):
        assert "holds" in str(coupled_dominance_report([1], [2]))
        assert "VIOLATED" in str(coupled_dominance_report([2], [1]))
