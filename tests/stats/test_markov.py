"""Unit tests for the finite Markov-chain utilities."""

import numpy as np
import pytest

from repro.stats.markov import (
    expected_hitting_times,
    mixing_time,
    stationary_distribution,
    total_variation,
    validate_transition_matrix,
)


def two_state(p: float, q: float) -> np.ndarray:
    """Chain flipping 0→1 w.p. p and 1→0 w.p. q."""
    return np.array([[1 - p, p], [q, 1 - q]])


class TestValidation:
    def test_accepts_valid(self):
        validate_transition_matrix(two_state(0.3, 0.6))

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            validate_transition_matrix(np.ones((2, 3)) / 3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            validate_transition_matrix(np.array([[1.5, -0.5], [0.5, 0.5]]))

    def test_rejects_bad_row_sums(self):
        with pytest.raises(ValueError):
            validate_transition_matrix(np.array([[0.5, 0.4], [0.5, 0.5]]))


class TestStationary:
    def test_two_state_closed_form(self):
        p, q = 0.3, 0.6
        pi = stationary_distribution(two_state(p, q))
        assert pi[0] == pytest.approx(q / (p + q))
        assert pi[1] == pytest.approx(p / (p + q))

    def test_identity_chain_any_distribution(self):
        pi = stationary_distribution(np.eye(3))
        assert pi.sum() == pytest.approx(1.0)

    def test_doubly_stochastic_is_uniform(self):
        matrix = np.array([[0.5, 0.25, 0.25], [0.25, 0.5, 0.25], [0.25, 0.25, 0.5]])
        pi = stationary_distribution(matrix)
        assert np.allclose(pi, 1 / 3)

    def test_fixed_point_property(self, rng):
        raw = rng.uniform(0.1, 1.0, size=(5, 5))
        matrix = raw / raw.sum(axis=1, keepdims=True)
        pi = stationary_distribution(matrix)
        assert np.allclose(pi @ matrix, pi, atol=1e-9)


class TestTotalVariation:
    def test_identical_is_zero(self):
        assert total_variation([0.5, 0.5], [0.5, 0.5]) == 0.0

    def test_disjoint_is_one(self):
        assert total_variation([1.0, 0.0], [0.0, 1.0]) == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            total_variation([1.0], [0.5, 0.5])


class TestMixingTime:
    def test_fast_chain_mixes_fast(self):
        # Jumping straight to stationarity mixes in one step.
        matrix = np.array([[0.3, 0.7], [0.3, 0.7]])
        assert mixing_time(matrix) == 1

    def test_slow_chain_mixes_slowly(self):
        fast = mixing_time(two_state(0.4, 0.4), epsilon=0.01)
        slow = mixing_time(two_state(0.01, 0.01), epsilon=0.01)
        assert slow > 10 * fast

    def test_periodic_chain_never_mixes(self):
        flip = np.array([[0.0, 1.0], [1.0, 0.0]])
        with pytest.raises(ValueError):
            mixing_time(flip, max_steps=100)

    def test_epsilon_validation(self):
        with pytest.raises(ValueError):
            mixing_time(two_state(0.5, 0.5), epsilon=2.0)

    def test_capped_bin_chain_mixes_quickly(self):
        # The fluid-limit bin chain mixes in O(c) rounds — the separation
        # of time scales behind the warm-start strategy.
        from repro.core.meanfield import bin_transition_matrix

        for c in (1, 2, 4):
            steps = mixing_time(bin_transition_matrix(1.5, c), epsilon=0.05)
            assert steps <= 6 * c + 6


class TestHittingTimes:
    def test_target_is_zero(self):
        hitting = expected_hitting_times(two_state(0.5, 0.5), target=1)
        assert hitting[1] == 0.0

    def test_geometric_waiting(self):
        # From state 0, hitting 1 needs Geometric(p) steps: mean 1/p.
        p = 0.25
        hitting = expected_hitting_times(two_state(p, 0.5), target=1)
        assert hitting[0] == pytest.approx(1 / p)

    def test_unreachable_target_is_infinite(self):
        matrix = np.array([[1.0, 0.0], [0.5, 0.5]])
        hitting = expected_hitting_times(matrix, target=1)
        assert not np.isfinite(hitting[0])

    def test_target_validation(self):
        with pytest.raises(ValueError):
            expected_hitting_times(two_state(0.5, 0.5), target=7)

    def test_single_state_chain(self):
        assert expected_hitting_times(np.array([[1.0]]), target=0).tolist() == [0.0]
