"""Unit tests for streaming statistics collectors."""

import math

import numpy as np
import pytest

from repro.stats.streaming import Histogram, P2Quantile, RunningStats


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.mean == 0.0
        assert stats.variance == 0.0
        assert stats.min == math.inf

    def test_mean_and_variance_match_numpy(self, rng):
        data = rng.normal(5, 2, size=500)
        stats = RunningStats()
        stats.add_many(data)
        assert stats.mean == pytest.approx(float(np.mean(data)))
        assert stats.variance == pytest.approx(float(np.var(data, ddof=1)))

    def test_weighted_equals_repeated(self):
        weighted = RunningStats()
        repeated = RunningStats()
        for value, weight in [(1.0, 3), (4.0, 2), (2.5, 5)]:
            weighted.add(value, weight)
            for _ in range(weight):
                repeated.add(value)
        assert weighted.mean == pytest.approx(repeated.mean)
        assert weighted.variance == pytest.approx(repeated.variance)
        assert weighted.count == repeated.count

    def test_min_max(self):
        stats = RunningStats()
        stats.add_many([3.0, -1.0, 7.0])
        assert stats.min == -1.0
        assert stats.max == 7.0

    def test_zero_weight_ignored(self):
        stats = RunningStats()
        stats.add(100.0, weight=0)
        assert stats.count == 0

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            RunningStats().add(1.0, weight=-1)

    def test_merge_matches_combined(self, rng):
        a_data = rng.normal(0, 1, 200)
        b_data = rng.normal(3, 2, 300)
        a, b, combined = RunningStats(), RunningStats(), RunningStats()
        a.add_many(a_data)
        b.add_many(b_data)
        combined.add_many(np.concatenate([a_data, b_data]))
        a.merge(b)
        assert a.mean == pytest.approx(combined.mean)
        assert a.variance == pytest.approx(combined.variance)
        assert a.count == combined.count

    def test_merge_into_empty(self):
        a, b = RunningStats(), RunningStats()
        b.add_many([1.0, 2.0])
        a.merge(b)
        assert a.mean == 1.5

    def test_merge_empty_is_noop(self):
        a, b = RunningStats(), RunningStats()
        a.add(5.0)
        a.merge(b)
        assert a.count == 1


class TestP2Quantile:
    def test_rejects_bad_quantile(self):
        with pytest.raises(ValueError):
            P2Quantile(1.5)

    def test_small_sample_exact(self):
        est = P2Quantile(0.5)
        for value in [5.0, 1.0, 3.0]:
            est.add(value)
        assert est.value == 3.0

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value)

    def test_median_of_uniform(self, rng):
        est = P2Quantile(0.5)
        for value in rng.uniform(0, 1, size=5000):
            est.add(float(value))
        assert est.value == pytest.approx(0.5, abs=0.05)

    def test_p99_of_exponential(self, rng):
        est = P2Quantile(0.99)
        data = rng.exponential(1.0, size=20_000)
        for value in data:
            est.add(float(value))
        true_p99 = -math.log(0.01)
        assert est.value == pytest.approx(true_p99, rel=0.15)

    def test_count(self):
        est = P2Quantile(0.5)
        for _ in range(7):
            est.add(1.0)
        assert est.count == 7


class TestHistogram:
    def test_empty(self):
        hist = Histogram()
        assert hist.total == 0
        assert hist.max == -1
        assert hist.min == -1

    def test_add_and_moments(self):
        hist = Histogram()
        hist.add(1, 2)
        hist.add(3, 2)
        assert hist.total == 4
        assert hist.mean == pytest.approx(2.0)
        assert hist.min == 1
        assert hist.max == 3

    def test_negative_value_rejected(self):
        with pytest.raises(ValueError):
            Histogram().add(-1)

    def test_grows_on_demand(self):
        hist = Histogram(initial_size=2)
        hist.add(1000)
        assert hist.max == 1000

    def test_add_array(self):
        hist = Histogram()
        hist.add_array(np.array([0, 5, 5]), np.array([1, 2, 3]))
        assert hist.total == 6
        assert hist.counts().tolist() == [1, 0, 0, 0, 0, 5]

    def test_add_empty_array(self):
        hist = Histogram()
        hist.add_array(np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        assert hist.total == 0

    def test_quantiles_exact(self):
        hist = Histogram()
        for value in [0, 0, 1, 2, 2, 2, 3, 10]:
            hist.add(value)
        assert hist.quantile(0.0) == 0
        assert hist.quantile(0.5) == 2
        assert hist.quantile(1.0) == 10

    def test_quantile_of_empty_raises(self):
        with pytest.raises(ValueError):
            Histogram().quantile(0.5)

    def test_quantile_out_of_range_rejected(self):
        hist = Histogram()
        hist.add(1)
        with pytest.raises(ValueError):
            hist.quantile(1.5)

    def test_merge(self):
        a, b = Histogram(), Histogram()
        a.add(1, 2)
        b.add(1, 1)
        b.add(400, 1)
        a.merge(b)
        assert a.total == 4
        assert a.max == 400

    def test_mean_matches_numpy(self, rng):
        values = rng.integers(0, 30, size=1000)
        hist = Histogram()
        for value in values:
            hist.add(int(value))
        assert hist.mean == pytest.approx(float(values.mean()))
