"""Targeted tests for paths the main suites exercise only indirectly."""

import numpy as np
import pytest

from repro.stats.intervals import normal_ci


class TestNonTabulatedConfidence:
    def test_interpolated_z_value(self, rng):
        # 0.97 is not in the z table, exercising the rational approximation.
        samples = rng.normal(0, 1, size=200)
        narrow = normal_ci(samples, confidence=0.95)
        mid = normal_ci(samples, confidence=0.97)
        wide = normal_ci(samples, confidence=0.99)
        assert narrow.half_width < mid.half_width < wide.half_width

    def test_extreme_confidence(self, rng):
        samples = rng.normal(0, 1, size=50)
        ci = normal_ci(samples, confidence=0.999)
        assert ci.low < ci.estimate < ci.high


class TestCliColdStart:
    def test_simulate_cold_start_flag(self):
        import io

        from repro.cli import main

        out = io.StringIO()
        code = main(
            [
                "simulate",
                "--n",
                "256",
                "--c",
                "1",
                "--lam",
                "0.5",
                "--rounds",
                "50",
                "--cold-start",
            ],
            out=out,
        )
        assert code == 0
        assert "pool/n" in out.getvalue()


class TestFluidCustomStart:
    def test_integrate_from_custom_load_distribution(self):
        from repro.core import fluid

        loads = np.array([0.2, 0.5, 0.3])
        trajectory = fluid.integrate(c=2, lam=0.5, rounds=50, initial_loads=loads)
        # Still converges to the unique equilibrium.
        from repro.core.meanfield import equilibrium

        assert trajectory.pool[-1] == pytest.approx(equilibrium(2, 0.5).normalized_pool, abs=0.01)

    def test_spike_with_preloaded_bins_drains(self):
        from repro.core import fluid

        loads = np.array([0.0, 0.0, 1.0])  # every bin full
        trajectory = fluid.integrate(c=2, lam=0.0, rounds=40, initial_pool=1.0, initial_loads=loads)
        assert trajectory.pool[-1] == pytest.approx(0.0, abs=1e-6)
        assert trajectory.mean_load[-1] == pytest.approx(0.0, abs=1e-6)


class TestMeanFieldStrProperties:
    def test_equilibrium_dataclass_fields(self):
        from repro.core.meanfield import equilibrium

        eq = equilibrium(2, 0.75)
        assert eq.c == 2
        assert eq.lam == 0.75
        assert len(eq.load_distribution) == 3
        assert eq.load_distribution.sum() == pytest.approx(1.0)


class TestPointResultRowForFiniteCapacity:
    def test_row_renders_integer_capacity(self):
        from repro.analysis.sweep import measure_capped

        point = measure_capped(n=64, c=3, lam=0.5, measure=20, seed=0)
        assert point.row()["c"] == 3
