"""Unit tests for the AgeProfiler observer."""

from repro.core.capped import CappedProcess
from repro.engine.driver import SimulationDriver
from repro.engine.observers import AgeProfiler


class TestAgeProfiler:
    def test_records_per_round(self):
        profiler = AgeProfiler()
        process = CappedProcess(n=64, capacity=1, lam=0.875, rng=0)
        SimulationDriver(burn_in=0, measure=50, observers=[profiler]).run(process)
        assert len(profiler.max_ages) == 50
        assert len(profiler.age_class_counts) == 50

    def test_ages_nonnegative_and_bounded(self):
        profiler = AgeProfiler()
        process = CappedProcess(n=128, capacity=1, lam=0.9375, rng=1)
        SimulationDriver(burn_in=100, measure=200, observers=[profiler]).run(process)
        assert min(profiler.max_ages) >= 0
        # The oldest pool age is itself a lower bound on future waits, so
        # in steady state it stays within the waiting-time scale.
        assert profiler.peak_age < 50

    def test_ignores_processes_without_pool(self):
        from repro.processes.greedy import GreedyBatchProcess

        profiler = AgeProfiler()
        process = GreedyBatchProcess(n=32, d=1, lam=0.5, rng=2)
        SimulationDriver(burn_in=0, measure=10, observers=[profiler]).run(process)
        assert profiler.max_ages == []
        assert profiler.peak_age == 0

    def test_empty_pool_records_zero_age(self):
        profiler = AgeProfiler()
        process = CappedProcess(n=64, capacity=3, lam=1 / 64, rng=3)
        SimulationDriver(burn_in=0, measure=20, observers=[profiler]).run(process)
        # At this trivial load the pool is empty almost every round.
        assert min(profiler.max_ages) == 0
