"""Unit tests for the SimulationDriver."""

import numpy as np
import pytest

from repro.engine.driver import SimulationDriver
from repro.engine.metrics import RoundRecord
from repro.engine.observers import TraceRecorder
from repro.errors import ConfigurationError

_EMPTY = np.zeros(0, dtype=np.int64)


class ScriptedProcess:
    """A process emitting a predetermined pool-size trajectory."""

    def __init__(self, pools):
        self.n = 10
        self.pools = list(pools)
        self.round = 0

    def step(self) -> RoundRecord:
        pool = self.pools[self.round % len(self.pools)]
        self.round += 1
        return RoundRecord(
            round=self.round,
            pool_size=pool,
            deleted=1,
            wait_values=_EMPTY,
            wait_counts=_EMPTY,
        )


class TestConfiguration:
    def test_negative_burn_in_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationDriver(burn_in=-1, measure=10)

    def test_zero_measure_rejected(self):
        with pytest.raises(ConfigurationError):
            SimulationDriver(burn_in=0, measure=0)


class TestExecution:
    def test_burn_in_rounds_not_measured(self):
        process = ScriptedProcess(pools=[100] * 5 + [1] * 100)
        result = SimulationDriver(burn_in=5, measure=10).run(process)
        assert result.summary.mean_pool == pytest.approx(1.0)

    def test_measure_window_length(self):
        process = ScriptedProcess(pools=[2])
        result = SimulationDriver(burn_in=3, measure=7).run(process)
        assert result.measured == 7
        assert result.summary.rounds == 7
        assert len(result.pool_series) == 7

    def test_observers_see_all_rounds(self):
        process = ScriptedProcess(pools=[1])
        trace = TraceRecorder()
        SimulationDriver(burn_in=4, measure=6, observers=[trace]).run(process)
        assert len(trace) == 10

    def test_stationary_flag_constant_series(self):
        process = ScriptedProcess(pools=[5])
        result = SimulationDriver(burn_in=0, measure=20).run(process)
        assert result.stationary is True

    def test_stationary_flag_drifting_series(self):
        process = ScriptedProcess(pools=list(range(0, 2000, 10)))
        result = SimulationDriver(burn_in=0, measure=100).run(process)
        assert result.stationary is False

    def test_stationary_none_for_tiny_windows(self):
        process = ScriptedProcess(pools=[1])
        result = SimulationDriver(burn_in=0, measure=2).run(process)
        assert result.stationary is None

    def test_stationary_boundary_at_four_measured_rounds(self):
        # measure < 4 means the diagnostic is not run at all (None, i.e.
        # "unknown"); measure >= 4 always yields a real verdict.
        below = SimulationDriver(burn_in=0, measure=3).run(ScriptedProcess(pools=[1]))
        assert below.stationary is None
        at = SimulationDriver(burn_in=0, measure=4).run(ScriptedProcess(pools=[1]))
        assert isinstance(at.stationary, bool)

    def test_result_convenience_properties(self):
        process = ScriptedProcess(pools=[20])
        result = SimulationDriver(burn_in=0, measure=5).run(process)
        assert result.normalized_pool == pytest.approx(2.0)
        assert result.avg_wait == 0.0
        assert result.max_wait == 0
