"""Kill-and-resume bit-identity with churn/fault/autoscale observers attached.

Extends the checkpoint contract of ``test_driver_checkpoint.py`` to elastic
runs: a kill at any round — including rounds bracketing a membership resize
— resumes bit-identically because the driver snapshots observer state
(injector RNG position, pending drains, autoscaler window) alongside the
process.
"""

import pytest

from repro.churn import scenario_from_dict
from repro.core.capped import CappedProcess
from repro.engine.driver import SimulationDriver
from repro.engine.observers import TraceRecorder


class KillAt:
    """Wrap a process to raise KeyboardInterrupt right after round R steps."""

    def __init__(self, process, at_round):
        self._process = process
        self._at_round = at_round

    def __getattr__(self, name):
        return getattr(self._process, name)

    @property
    def __class__(self):  # keep the snapshot's process-class tag honest
        return type(self._process)

    def step(self):
        record = self._process.step()
        if record.round == self._at_round:
            raise KeyboardInterrupt
        return record


SCENARIO = {
    "churn": {
        "seed": 11,
        "min_n": 16,
        "events": [
            {"type": "join_burst", "at_round": 12, "count": 16},
            {"type": "leave_burst", "at_round": 24, "count": 12, "policy": "drain"},
            {"type": "leave_burst", "at_round": 34, "fraction": 0.25, "policy": "rehash"},
        ],
    },
    "faults": {
        "seed": 7,
        "events": [
            {"type": "crash_burst", "at_round": 18, "fraction": 0.1, "duration": 10},
        ],
    },
    "autoscaling": {
        "controller": "utilization",
        "target": 0.4,
        "band": 0.05,
        "window": 6,
        "check_every": 6,
        "cooldown": 12,
        "max_step": 8,
        "min_n": 16,
    },
    "autoscale_seed": 3,
}

BURN_IN, MEASURE = 10, 35


def make_process():
    return CappedProcess(n=64, capacity=2, lam=0.75, rng=11)


def run_reference():
    trace = TraceRecorder()
    observers = scenario_from_dict(SCENARIO).build_observers() + [trace]
    process = make_process()
    SimulationDriver(burn_in=BURN_IN, measure=MEASURE, observers=observers).run(process)
    return trace, process


def records_key(records):
    return [
        (
            r.round,
            r.arrivals,
            r.accepted,
            r.deleted,
            r.pool_size,
            r.total_load,
            r.max_load,
            r.wait_values.tolist(),
            r.wait_counts.tolist(),
        )
        for r in records
    ]


# Kill rounds bracket every membership change in SCENARIO: before the join
# (11), on the resize round itself (12), mid-drain (26), right after the
# rehash shrink (35), and late (42).
@pytest.mark.parametrize("kill_round", [11, 12, 26, 35, 42])
def test_kill_resume_bit_identical_through_churn(tmp_path, kill_round):
    ref_trace, ref_process = run_reference()
    reference = records_key(ref_trace.records)

    # Same observer shape as the resumed run (the restore validates it).
    observers = scenario_from_dict(SCENARIO).build_observers() + [TraceRecorder()]
    interrupted = SimulationDriver(
        burn_in=BURN_IN,
        measure=MEASURE,
        observers=observers,
        checkpoint_dir=tmp_path,
        checkpoint_every=4,
    )
    with pytest.raises(KeyboardInterrupt):
        interrupted.run(KillAt(make_process(), kill_round))

    trace = TraceRecorder()
    observers = scenario_from_dict(SCENARIO).build_observers() + [trace]
    resumed_driver = SimulationDriver(
        burn_in=BURN_IN,
        measure=MEASURE,
        observers=observers,
        checkpoint_dir=tmp_path,
        checkpoint_every=4,
    )
    process = make_process()
    resumed_driver.run(process)
    assert resumed_driver.last_restore is not None

    # The resumed record stream is the exact tail of the reference stream,
    # and the final elastic membership matches.
    resumed = records_key(trace.records)
    assert resumed == reference[-len(resumed) :]
    assert process.n == ref_process.n
    assert process.bins.loads.tolist() == ref_process.bins.loads.tolist()
    assert process.pool.size == ref_process.pool.size
    process.check_invariants()


def test_observer_counters_restored(tmp_path):
    # The counters the injectors accumulate (joins, rehashes, scale events)
    # survive the kill/resume cycle rather than resetting to zero.
    scenario = scenario_from_dict(SCENARIO)
    ref_observers = scenario.build_observers()
    SimulationDriver(burn_in=BURN_IN, measure=MEASURE, observers=ref_observers).run(
        make_process()
    )
    ref_churn, ref_faults, ref_scaler = ref_observers

    observers = scenario.build_observers()
    with pytest.raises(KeyboardInterrupt):
        SimulationDriver(
            burn_in=BURN_IN,
            measure=MEASURE,
            observers=observers,
            checkpoint_dir=tmp_path,
            checkpoint_every=4,
        ).run(KillAt(make_process(), 30))

    observers = scenario.build_observers()
    SimulationDriver(
        burn_in=BURN_IN,
        measure=MEASURE,
        observers=observers,
        checkpoint_dir=tmp_path,
        checkpoint_every=4,
    ).run(make_process())
    churn, faults, scaler = observers
    assert churn.joins == ref_churn.joins
    assert churn.leaves == ref_churn.leaves
    assert churn.balls_rehashed == ref_churn.balls_rehashed
    assert churn.events_log == ref_churn.events_log
    assert faults.crashes == ref_faults.crashes
    assert (scaler.scale_outs, scaler.scale_ins, scaler.events_log) == (
        ref_scaler.scale_outs,
        ref_scaler.scale_ins,
        ref_scaler.events_log,
    )
