"""Unit tests for JSONL trace record/replay."""

import numpy as np
import pytest

from repro.core.capped import CappedProcess
from repro.engine.driver import SimulationDriver
from repro.engine.metrics import RoundRecord
from repro.engine.trace import (
    TraceWriter,
    read_trace,
    record_from_json,
    record_to_json,
    write_trace,
)


def sample_record(round_index=1):
    return RoundRecord(
        round=round_index,
        arrivals=4,
        thrown=10,
        accepted=7,
        deleted=5,
        pool_size=3,
        total_load=9,
        max_load=2,
        wait_values=np.array([0, 2], dtype=np.int64),
        wait_counts=np.array([5, 2], dtype=np.int64),
    )


def records_equal(a: RoundRecord, b: RoundRecord) -> bool:
    scalars = (
        "round", "arrivals", "thrown", "accepted", "deleted", "pool_size", "total_load", "max_load"
    )
    return (
        all(getattr(a, field) == getattr(b, field) for field in scalars)
        and a.wait_values.tolist() == b.wait_values.tolist()
        and a.wait_counts.tolist() == b.wait_counts.tolist()
    )


class TestJsonRoundTrip:
    def test_single_record(self):
        original = sample_record()
        restored = record_from_json(record_to_json(original))
        assert records_equal(original, restored)

    def test_empty_waits(self):
        record = RoundRecord(round=3)
        restored = record_from_json(record_to_json(record))
        assert restored.wait_values.size == 0

    def test_one_line_per_record(self):
        assert "\n" not in record_to_json(sample_record())


class TestFileRoundTrip:
    def test_write_and_read(self, tmp_path):
        records = [sample_record(i) for i in range(1, 6)]
        path = write_trace(records, tmp_path / "nested" / "trace.jsonl")
        restored = list(read_trace(path))
        assert len(restored) == 5
        assert all(records_equal(a, b) for a, b in zip(records, restored))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text(record_to_json(sample_record()) + "\n\n\n")
        assert len(list(read_trace(path))) == 1


class TestTraceWriterObserver:
    def test_streams_simulation_to_disk(self, tmp_path):
        path = tmp_path / "run.jsonl"
        process = CappedProcess(n=32, capacity=2, lam=0.75, rng=0)
        with TraceWriter(path) as writer:
            SimulationDriver(burn_in=5, measure=20, observers=[writer]).run(process)
        assert writer.records_written == 25
        restored = list(read_trace(path))
        assert len(restored) == 25
        assert [r.round for r in restored] == list(range(1, 26))

    def test_replayed_statistics_match_live(self, tmp_path):
        from repro.engine.metrics import MetricsCollector

        path = tmp_path / "run.jsonl"
        process = CappedProcess(n=64, capacity=2, lam=0.875, rng=1)
        writer = TraceWriter(path)
        live = SimulationDriver(burn_in=0, measure=60, observers=[writer]).run(process)
        writer.close()

        replayed = MetricsCollector(n=64)
        for record in read_trace(path):
            replayed.observe(record)
        summary = replayed.summary()
        assert summary.normalized_pool == pytest.approx(live.normalized_pool)
        assert summary.avg_wait == pytest.approx(live.avg_wait)
        assert summary.max_wait == live.max_wait

    def test_close_is_idempotent(self, tmp_path):
        writer = TraceWriter(tmp_path / "t.jsonl")
        writer.close()
        writer.close()


class TestGzipTraces:
    def test_write_read_roundtrip(self, tmp_path):
        records = [sample_record(i) for i in range(1, 6)]
        path = write_trace(records, tmp_path / "trace.jsonl.gz")
        restored = list(read_trace(path))
        assert len(restored) == 5
        assert all(records_equal(a, b) for a, b in zip(records, restored))

    def test_really_compressed(self, tmp_path):
        path = write_trace([sample_record()], tmp_path / "trace.jsonl.gz")
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"  # gzip magic

    def test_empty_wait_histogram_roundtrips(self, tmp_path):
        # A round with no departures has empty wait arrays; the gzip path
        # must restore them as empty int64 arrays, not None.
        record = RoundRecord(round=7)
        path = write_trace([record], tmp_path / "trace.jsonl.gz")
        (restored,) = list(read_trace(path))
        assert records_equal(record, restored)
        assert restored.wait_values.size == 0
        assert restored.wait_counts.dtype == np.int64

    def test_trace_writer_streams_gzip(self, tmp_path):
        path = tmp_path / "run.jsonl.gz"
        process = CappedProcess(n=32, capacity=2, lam=0.75, rng=0)
        with TraceWriter(path) as writer:
            SimulationDriver(burn_in=0, measure=15, observers=[writer]).run(process)
        assert writer.records_written == 15
        restored = list(read_trace(path))
        assert [r.round for r in restored] == list(range(1, 16))

    def test_gzip_matches_plain(self, tmp_path):
        records = [sample_record(i) for i in range(1, 4)]
        plain = write_trace(records, tmp_path / "a.jsonl")
        gzipped = write_trace(records, tmp_path / "b.jsonl.gz")
        plain_records = list(read_trace(plain))
        gzip_records = list(read_trace(gzipped))
        assert all(records_equal(a, b) for a, b in zip(plain_records, gzip_records))
