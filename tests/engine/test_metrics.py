"""Unit tests for RoundRecord and MetricsCollector."""

import numpy as np
import pytest

from repro.engine.metrics import MetricsCollector, RoundRecord


def record(round_index=1, pool=0, waits=None, **kwargs):
    if waits:
        values, counts = np.unique(np.asarray(waits), return_counts=True)
    else:
        values = counts = np.zeros(0, dtype=np.int64)
    return RoundRecord(
        round=round_index,
        pool_size=pool,
        wait_values=values,
        wait_counts=counts,
        **kwargs,
    )


class TestRoundRecord:
    def test_wait_total(self):
        assert record(waits=[1, 1, 3]).wait_total == 3

    def test_wait_total_empty(self):
        assert record().wait_total == 0


class TestMetricsCollector:
    def test_requires_positive_n(self):
        with pytest.raises(ValueError):
            MetricsCollector(n=0)

    def test_summary_requires_rounds(self):
        with pytest.raises(ValueError):
            MetricsCollector(n=4).summary()

    def test_normalized_pool(self):
        collector = MetricsCollector(n=10)
        collector.observe(record(pool=5))
        collector.observe(record(round_index=2, pool=15))
        assert collector.summary().normalized_pool == pytest.approx(1.0)

    def test_peak_pool(self):
        collector = MetricsCollector(n=10)
        for i, pool in enumerate([3, 9, 4], start=1):
            collector.observe(record(round_index=i, pool=pool))
        assert collector.summary().peak_pool == 9

    def test_wait_statistics(self):
        collector = MetricsCollector(n=4)
        collector.observe(record(waits=[0, 0, 2]))
        collector.observe(record(round_index=2, waits=[4]))
        summary = collector.summary()
        assert summary.avg_wait == pytest.approx(1.5)
        assert summary.max_wait == 4
        assert summary.balls_observed == 4

    def test_no_waits_summary(self):
        collector = MetricsCollector(n=4)
        collector.observe(record())
        summary = collector.summary()
        assert summary.avg_wait == 0.0
        assert summary.max_wait == 0

    def test_throughput(self):
        collector = MetricsCollector(n=4)
        collector.observe(record(deleted=4))
        collector.observe(record(round_index=2, deleted=2))
        assert collector.summary().throughput == pytest.approx(3.0)

    def test_pool_series_kept(self):
        collector = MetricsCollector(n=4)
        for i, pool in enumerate([1, 2, 3], start=1):
            collector.observe(record(round_index=i, pool=pool))
        assert collector.pool_series.tolist() == [1, 2, 3]

    def test_pool_series_optional(self):
        collector = MetricsCollector(n=4, keep_pool_series=False)
        collector.observe(record(pool=5))
        assert collector.pool_series.size == 0

    def test_peak_max_load(self):
        collector = MetricsCollector(n=4)
        collector.observe(record(max_load=2))
        collector.observe(record(round_index=2, max_load=7))
        assert collector.summary().peak_max_load == 7

    def test_summary_str(self):
        collector = MetricsCollector(n=4)
        collector.observe(record(pool=2, waits=[1]))
        assert "pool/n" in str(collector.summary())
