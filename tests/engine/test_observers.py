"""Unit tests for observers."""

import io

import numpy as np
import pytest

from repro.engine.metrics import RoundRecord
from repro.engine.observers import InvariantChecker, Observer, ProgressLogger, TraceRecorder
from repro.errors import InvariantViolation

_EMPTY = np.zeros(0, dtype=np.int64)


def record(round_index: int, pool: int = 0) -> RoundRecord:
    return RoundRecord(round=round_index, pool_size=pool, wait_values=_EMPTY, wait_counts=_EMPTY)


class FlakyProcess:
    """check_invariants fails after being armed."""

    def __init__(self):
        self.armed = False
        self.calls = 0

    def check_invariants(self):
        self.calls += 1
        if self.armed:
            raise InvariantViolation("armed")


class TestTraceRecorder:
    def test_records_all(self):
        trace = TraceRecorder()
        for i in range(3):
            trace.on_round(record(i + 1, pool=i), process=None)
        assert len(trace) == 3
        assert trace.pool_sizes() == [0, 1, 2]

    def test_satisfies_protocol(self):
        assert isinstance(TraceRecorder(), Observer)


class TestInvariantChecker:
    def test_checks_every_round_by_default(self):
        checker = InvariantChecker()
        process = FlakyProcess()
        for i in range(5):
            checker.on_round(record(i + 1), process)
        assert process.calls == 5
        assert checker.checks_run == 5

    def test_respects_interval(self):
        checker = InvariantChecker(every=3)
        process = FlakyProcess()
        for i in range(9):
            checker.on_round(record(i + 1), process)
        assert process.calls == 3

    def test_propagates_violation(self):
        checker = InvariantChecker()
        process = FlakyProcess()
        process.armed = True
        with pytest.raises(InvariantViolation):
            checker.on_round(record(1), process)

    def test_violation_message_localizes_failure(self):
        checker = InvariantChecker()
        process = FlakyProcess()
        process.armed = True
        with pytest.raises(InvariantViolation) as excinfo:
            checker.on_round(record(42, pool=9), process)
        message = str(excinfo.value)
        assert "round 42" in message
        assert "FlakyProcess" in message
        assert "pool=9" in message
        assert "armed" in message  # the underlying error survives
        assert isinstance(excinfo.value.__cause__, InvariantViolation)

    def test_tolerates_processes_without_invariants(self):
        checker = InvariantChecker()
        checker.on_round(record(1), process=object())

    def test_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            InvariantChecker(every=0)


class TestProgressLogger:
    def test_writes_at_interval(self):
        stream = io.StringIO()
        logger = ProgressLogger(every=2, stream=stream)
        for i in range(4):
            logger.on_round(record(i + 1, pool=7), process=None)
        output = stream.getvalue()
        assert output.count("pool=7") == 2
        assert "[round 2]" in output

    def test_silent_between_intervals(self):
        stream = io.StringIO()
        logger = ProgressLogger(every=100, stream=stream)
        logger.on_round(record(1), process=None)
        assert stream.getvalue() == ""
