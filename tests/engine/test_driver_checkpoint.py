"""Kill-and-resume bit-identity through SimulationDriver checkpoints.

The contract under test: kill a checkpointed run at any round, run the same
driver configuration again against the same checkpoint directory, and the
final :class:`SimulationResult` — and the RoundRecord stream feeding it —
is bit-identical to an uninterrupted run.
"""

import numpy as np
import pytest

from repro.checkpoint import CheckpointStore
from repro.core.capped import CappedProcess
from repro.engine.driver import SimulationDriver
from repro.engine.observers import TraceRecorder
from repro.errors import CheckpointIncompatible, ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.schedule import CapacityDegradation, FaultSchedule, StochasticCrashes
from repro.kernels.batched import BatchedCappedProcess
from repro.processes.capped_dchoice import CappedDChoiceProcess
from repro.rng import RngFactory


class KillAt:
    """Wrap a process to raise KeyboardInterrupt right after round R steps."""

    def __init__(self, process, at_round):
        self._process = process
        self._at_round = at_round

    def __getattr__(self, name):
        return getattr(self._process, name)

    @property
    def __class__(self):  # keep the snapshot's process-class tag honest
        return type(self._process)

    def step(self):
        record = self._process.step()
        records = record if isinstance(record, list) else [record]
        if records[0].round == self._at_round:
            raise KeyboardInterrupt
        return record


def result_key(result):
    return (
        result.summary,
        result.pool_series.tolist(),
        result.burn_in,
        result.measured,
        result.stationary,
    )


def records_key(records):
    return [
        (
            r.round,
            r.arrivals,
            r.thrown,
            r.accepted,
            r.deleted,
            r.pool_size,
            r.total_load,
            r.max_load,
            r.wait_values.tolist(),
            r.wait_counts.tolist(),
        )
        for r in records
    ]


def assert_kill_resume_identical(tmp_path, make_process, kill_round, burn_in=15, measure=25):
    """Kill at ``kill_round``, resume, compare against an uninterrupted run."""
    reference = SimulationDriver(burn_in=burn_in, measure=measure).run(make_process())

    interrupted = SimulationDriver(
        burn_in=burn_in, measure=measure, checkpoint_dir=tmp_path, checkpoint_every=4
    )
    with pytest.raises(KeyboardInterrupt):
        interrupted.run(KillAt(make_process(), kill_round))

    resumed = SimulationDriver(
        burn_in=burn_in, measure=measure, checkpoint_dir=tmp_path, checkpoint_every=4
    )
    result = resumed.run(make_process())
    assert resumed.last_restore is not None
    assert result_key(result) == result_key(reference)
    return resumed


class TestCappedKillResume:
    @pytest.mark.parametrize("capacity", [1, 4])
    @pytest.mark.parametrize("kill_round", [3, 16, 39])
    def test_bit_identical_at_any_phase(self, tmp_path, capacity, kill_round):
        def make():
            return CappedProcess(n=64, capacity=capacity, lam=0.75, rng=11)

        assert_kill_resume_identical(tmp_path, make, kill_round)

    def test_round_record_stream_identical(self, tmp_path):
        # Not just the summary: the per-round records seen by observers on
        # the resumed run continue the reference stream exactly.
        def make(observer=None):
            process = CappedProcess(n=64, capacity=2, lam=0.75, rng=5)
            observers = [] if observer is None else [observer]
            return process, observers

        ref_trace = TraceRecorder()
        process, observers = make(ref_trace)
        SimulationDriver(burn_in=10, measure=20, observers=observers).run(process)

        trace = TraceRecorder()
        process, observers = make(trace)
        driver = SimulationDriver(
            burn_in=10,
            measure=20,
            observers=observers,
            checkpoint_dir=tmp_path,
            checkpoint_every=5,
        )
        with pytest.raises(KeyboardInterrupt):
            driver.run(KillAt(process, 17))

        resumed_trace = TraceRecorder()
        process, observers = make(resumed_trace)
        SimulationDriver(
            burn_in=10,
            measure=20,
            observers=observers,
            checkpoint_dir=tmp_path,
            checkpoint_every=5,
        ).run(process)
        reference = records_key(ref_trace.records)
        # Before the kill, the interrupted run saw the reference prefix.
        interrupted = records_key(trace.records)
        assert interrupted == reference[: len(interrupted)]
        # The resumed run replays from the snapshot round; its records are
        # the exact tail of the reference stream.
        resumed_records = records_key(resumed_trace.records)
        assert resumed_records == reference[-len(resumed_records):]


class TestDChoiceKillResume:
    def test_bit_identical(self, tmp_path):
        def make():
            return CappedDChoiceProcess(n=64, capacity=2, d=2, lam=0.75, rng=7)

        assert_kill_resume_identical(tmp_path, make, kill_round=22)


class TestFaultScheduleKillResume:
    def test_bit_identical_through_active_faults(self, tmp_path):
        schedule = FaultSchedule(
            events=(
                StochasticCrashes(crash_prob=0.02, recover_prob=0.3, first_round=1),
                CapacityDegradation(at_round=20, duration=12, capacity=1, fraction=0.5),
            ),
            seed=99,
        )

        def make():
            process = CappedProcess(n=64, capacity=4, lam=0.75, rng=13)
            injector = FaultInjector(schedule)
            return process, injector

        process, injector = make()
        reference = SimulationDriver(burn_in=15, measure=25, observers=[injector]).run(process)

        process, injector = make()
        driver = SimulationDriver(
            burn_in=15,
            measure=25,
            observers=[injector],
            checkpoint_dir=tmp_path,
            checkpoint_every=4,
        )
        with pytest.raises(KeyboardInterrupt):
            driver.run(KillAt(process, 27))

        process, injector = make()
        resumed = SimulationDriver(
            burn_in=15,
            measure=25,
            observers=[injector],
            checkpoint_dir=tmp_path,
            checkpoint_every=4,
        )
        result = resumed.run(process)
        assert resumed.last_restore is not None
        assert result_key(result) == result_key(reference)
        # The injector's own ledger must line up too, not just the result.
        assert injector.crashes + injector.recoveries > 0


class TestBatchedKillResume:
    def test_bit_identical_per_replicate(self, tmp_path):
        def make():
            rngs = [RngFactory(3).child(r).generator("capped") for r in range(3)]
            return BatchedCappedProcess(n=48, capacity=2, lam=0.75, rngs=rngs)

        reference = SimulationDriver(burn_in=10, measure=20).run_batched(make())

        driver = SimulationDriver(
            burn_in=10, measure=20, checkpoint_dir=tmp_path, checkpoint_every=4
        )
        with pytest.raises(KeyboardInterrupt):
            driver.run_batched(KillAt(make(), 23))

        resumed = SimulationDriver(
            burn_in=10, measure=20, checkpoint_dir=tmp_path, checkpoint_every=4
        )
        results = resumed.run_batched(make())
        assert resumed.last_restore is not None
        assert len(results) == len(reference)
        for got, want in zip(results, reference):
            assert result_key(got) == result_key(want)


class TestCorruptionFallback:
    def test_corrupt_newest_falls_back_to_previous(self, tmp_path):
        def make():
            return CappedProcess(n=64, capacity=2, lam=0.75, rng=21)

        reference = SimulationDriver(burn_in=10, measure=20).run(make())

        driver = SimulationDriver(
            burn_in=10, measure=20, checkpoint_dir=tmp_path, checkpoint_every=3
        )
        with pytest.raises(KeyboardInterrupt):
            driver.run(KillAt(make(), 25))

        store = CheckpointStore(tmp_path)
        newest_round, newest = store.snapshots()[0]
        data = newest.read_bytes()
        newest.write_bytes(data[: len(data) // 2])

        resumed = SimulationDriver(
            burn_in=10, measure=20, checkpoint_dir=tmp_path, checkpoint_every=3
        )
        result = resumed.run(make())
        assert resumed.last_restore.reason == "corrupt"
        assert resumed.last_restore.round < newest_round
        assert result_key(result) == result_key(reference)


class TestRestoreValidation:
    def test_other_configuration_rejected(self, tmp_path):
        driver = SimulationDriver(
            burn_in=5, measure=10, checkpoint_dir=tmp_path, checkpoint_every=2
        )
        driver.run(CappedProcess(n=32, capacity=2, lam=0.75, rng=1))

        other = SimulationDriver(burn_in=5, measure=11, checkpoint_dir=tmp_path, checkpoint_every=2)
        with pytest.raises(CheckpointIncompatible, match="measure"):
            other.run(CappedProcess(n=32, capacity=2, lam=0.75, rng=1))

    def test_other_process_rejected(self, tmp_path):
        driver = SimulationDriver(
            burn_in=5, measure=10, checkpoint_dir=tmp_path, checkpoint_every=2
        )
        driver.run(CappedProcess(n=32, capacity=2, lam=0.75, rng=1))

        other = SimulationDriver(burn_in=5, measure=10, checkpoint_dir=tmp_path, checkpoint_every=2)
        with pytest.raises(CheckpointIncompatible, match="n "):
            other.run(CappedProcess(n=64, capacity=2, lam=0.75, rng=1))

    def test_cadence_requires_directory(self):
        with pytest.raises(ConfigurationError, match="checkpoint_dir"):
            SimulationDriver(burn_in=1, measure=1, checkpoint_every=5)

    def test_completed_run_restores_to_final_state(self, tmp_path):
        # Running again over a finished run's directory replays nothing:
        # the restored counters already satisfy both phases on the nearest
        # snapshot, so only the post-snapshot tail is recomputed.
        def make():
            return CappedProcess(n=32, capacity=2, lam=0.75, rng=2)

        first = SimulationDriver(
            burn_in=5, measure=10, checkpoint_dir=tmp_path, checkpoint_every=5
        ).run(make())
        again = SimulationDriver(burn_in=5, measure=10, checkpoint_dir=tmp_path, checkpoint_every=5)
        second = again.run(make())
        assert again.last_restore is not None
        assert result_key(first) == result_key(second)
