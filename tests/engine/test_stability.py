"""Unit tests for burn-in heuristics and stationarity diagnostics."""

import numpy as np
import pytest

from repro.engine.stability import default_burn_in, is_stationary, split_drift


class TestDefaultBurnIn:
    def test_respects_floor(self):
        assert default_burn_in(n=1024, c=1, lam=0.0) >= 100

    def test_cold_start_scales_with_relaxation(self):
        cold = default_burn_in(n=1024, c=1, lam=1 - 2**-10)
        assert cold >= 5 * 2**10

    def test_warm_start_drops_relaxation_term(self):
        warm = default_burn_in(n=1024, c=1, lam=1 - 2**-10, warm_start=True)
        cold = default_burn_in(n=1024, c=1, lam=1 - 2**-10, warm_start=False)
        assert warm < cold

    def test_larger_capacity_shortens_warm_burn_in(self):
        c1 = default_burn_in(n=4096, c=1, lam=1 - 2**-10, warm_start=True)
        c4 = default_burn_in(n=4096, c=4, lam=1 - 2**-10, warm_start=True)
        assert c4 <= c1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            default_burn_in(n=1, c=1, lam=0.5)
        with pytest.raises(ValueError):
            default_burn_in(n=10, c=0, lam=0.5)
        with pytest.raises(ValueError):
            default_burn_in(n=10, c=1, lam=1.0)


class TestDrift:
    def test_constant_series_has_zero_drift(self):
        assert split_drift([5.0] * 10) == 0.0

    def test_trending_series_detected(self):
        assert split_drift(np.arange(100.0)) > 0.5

    def test_stationary_noise_passes(self, rng):
        series = rng.normal(10, 1, size=400)
        assert is_stationary(series)

    def test_filling_pool_fails(self):
        series = np.linspace(0, 100, 200) + np.random.default_rng(0).normal(0, 1, 200)
        assert not is_stationary(series)

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            split_drift([1.0, 2.0])

    def test_threshold_controls_sensitivity(self):
        series = np.concatenate([np.zeros(50), np.ones(50) * 0.4])
        assert not is_stationary(series, threshold=0.1)
        assert is_stationary(series, threshold=10.0)
