"""Unit tests for ASCII plots."""

import pytest

from repro.analysis.plots import ascii_plot


class TestAsciiPlot:
    def test_empty_series(self):
        assert "(no data)" in ascii_plot({})
        assert "(no data)" in ascii_plot({"a": []})

    def test_title_and_legend(self):
        text = ascii_plot({"mine": [(0, 0), (1, 1)]}, title="T")
        assert text.splitlines()[0] == "T"
        assert "o mine" in text

    def test_axis_ranges_reported(self):
        text = ascii_plot({"s": [(0, 5), (10, 20)]}, x_label="c", y_label="wait")
        assert "c: [0, 10]" in text
        assert "wait: [5, 20]" in text

    def test_markers_differ_between_series(self):
        text = ascii_plot({"a": [(0, 0)], "b": [(1, 1)]})
        assert "o a" in text and "x b" in text

    def test_canvas_dimensions(self):
        text = ascii_plot({"a": [(0, 0), (1, 1)]}, width=20, height=5)
        rows = [line for line in text.splitlines() if line.startswith("|")]
        assert len(rows) == 5
        assert all(len(row) == 21 for row in rows)

    def test_constant_series_does_not_crash(self):
        text = ascii_plot({"flat": [(0, 3), (1, 3), (2, 3)]})
        assert "flat" in text

    def test_too_small_canvas_rejected(self):
        with pytest.raises(ValueError):
            ascii_plot({"a": [(0, 0)]}, width=2, height=2)

    def test_non_finite_points_skipped(self):
        text = ascii_plot({"a": [(0, 1), (1, float("nan")), (2, 2)]})
        assert "a" in text
