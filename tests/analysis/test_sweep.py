"""Unit tests for point measurement."""

import pytest

from repro.analysis.sweep import measure_capped, measure_greedy


class TestMeasureCapped:
    def test_basic_point(self):
        point = measure_capped(n=256, c=2, lam=0.75, measure=100, seed=0)
        assert point.n == 256
        assert point.c == 2
        assert 0 <= point.normalized_pool < 3
        assert point.avg_wait >= 0
        assert point.max_wait >= point.wait_p99

    def test_reproducible(self):
        a = measure_capped(n=128, c=1, lam=0.5, measure=50, seed=9)
        b = measure_capped(n=128, c=1, lam=0.5, measure=50, seed=9)
        assert a.normalized_pool == b.normalized_pool
        assert a.max_wait == b.max_wait

    def test_different_seeds_differ(self):
        a = measure_capped(n=128, c=1, lam=0.75, measure=50, seed=1)
        b = measure_capped(n=128, c=1, lam=0.75, measure=50, seed=2)
        assert a.normalized_pool != b.normalized_pool

    def test_replicates_tighten_ci(self):
        few = measure_capped(n=128, c=1, lam=0.75, measure=50, replicates=2, seed=0)
        many = measure_capped(n=128, c=1, lam=0.75, measure=50, replicates=8, seed=0)
        assert many.pool_ci.half_width <= few.pool_ci.half_width * 1.5
        assert many.replicates == 8

    def test_warm_and_cold_agree_in_steady_state(self):
        warm = measure_capped(n=512, c=1, lam=0.75, measure=300, seed=3, warm_start=True)
        cold = measure_capped(n=512, c=1, lam=0.75, measure=300, seed=3, warm_start=False)
        assert warm.normalized_pool == pytest.approx(cold.normalized_pool, rel=0.15)

    def test_explicit_burn_in_respected(self):
        point = measure_capped(n=128, c=1, lam=0.5, measure=50, seed=0, burn_in=7)
        assert point.burn_in == 7

    def test_infinite_capacity(self):
        point = measure_capped(n=256, c=None, lam=0.75, measure=100, seed=4)
        assert point.normalized_pool == 0.0

    def test_row_rendering(self):
        point = measure_capped(n=128, c=None, lam=0.5, measure=50, seed=0)
        row = point.row()
        assert row["c"] == "inf"
        assert row["n"] == 128


class TestMeasureGreedy:
    def test_basic_point(self):
        point = measure_greedy(n=256, d=2, lam=0.75, measure=100, seed=0)
        assert point.normalized_pool == 0.0
        assert point.avg_wait >= 0

    def test_reproducible(self):
        a = measure_greedy(n=128, d=1, lam=0.5, measure=50, seed=5)
        b = measure_greedy(n=128, d=1, lam=0.5, measure=50, seed=5)
        assert a.avg_wait == b.avg_wait
