"""Unit tests for JSON export of experiment results."""

import pytest

from repro.analysis.experiments import ExperimentResult
from repro.analysis.export import (
    load_result,
    result_from_json,
    result_to_json,
    save_result,
)


def sample_result() -> ExperimentResult:
    return ExperimentResult(
        experiment_id="sample",
        title="Sample",
        profile="quick",
        columns=["c", "pool/n"],
        rows=[{"c": 1, "pool/n": 0.5}, {"c": 2, "pool/n": 0.25}],
        notes=["a note"],
        verdicts={"check": True},
    )


class TestRoundTrip:
    def test_json_round_trip_preserves_everything(self):
        original = sample_result()
        restored = result_from_json(result_to_json(original))
        assert restored.experiment_id == original.experiment_id
        assert restored.rows == original.rows
        assert restored.notes == original.notes
        assert restored.verdicts == original.verdicts
        assert restored.columns == original.columns

    def test_file_round_trip(self, tmp_path):
        path = save_result(sample_result(), tmp_path / "nested" / "dir")
        assert path.name == "sample.json"
        restored = load_result(path)
        assert restored.rows == sample_result().rows

    def test_missing_fields_rejected(self):
        with pytest.raises(KeyError):
            result_from_json('{"experiment_id": "x"}')

    def test_optional_fields_default(self):
        text = (
            '{"experiment_id": "x", "title": "T", "profile": "p",'
            ' "columns": ["a"], "rows": []}'
        )
        restored = result_from_json(text)
        assert restored.notes == []
        assert restored.verdicts == {}

    def test_json_is_stable(self):
        assert result_to_json(sample_result()) == result_to_json(sample_result())
