"""Unit tests for run comparison."""

import pytest

from repro.analysis.compare import compare_results
from repro.analysis.experiments import ExperimentResult


def make_result(profile, pool_values, experiment_id="fig4_left"):
    return ExperimentResult(
        experiment_id=experiment_id,
        title="T",
        profile=profile,
        columns=["c", "pool/n"],
        rows=[{"c": c, "pool/n": value} for c, value in pool_values.items()],
    )


class TestCompare:
    def test_identical_runs_within_tolerance(self):
        a = make_result("quick", {1: 0.6, 2: 0.2})
        b = make_result("paper", {1: 0.6, 2: 0.2})
        report = compare_results(a, b)
        assert report.within_tolerance
        assert report.worst_delta == 0.0

    def test_relative_deltas_computed(self):
        a = make_result("quick", {1: 1.0})
        b = make_result("paper", {1: 1.1})
        report = compare_results(a, b)
        assert report.rows[0].deltas["pool/n"] == pytest.approx(0.1)
        assert report.rows[0].worst_column == "pool/n"

    def test_outliers_flagged(self):
        a = make_result("quick", {1: 1.0, 2: 1.0})
        b = make_result("paper", {1: 1.05, 2: 2.0})
        report = compare_results(a, b, tolerance=0.1)
        assert not report.within_tolerance
        assert len(report.outliers()) == 1
        assert report.outliers()[0].key == (2,)

    def test_missing_rows_reported(self):
        a = make_result("quick", {1: 1.0, 2: 1.0})
        b = make_result("paper", {1: 1.0, 3: 1.0})
        report = compare_results(a, b)
        assert report.missing_in_b == [(2,)]
        assert report.missing_in_a == [(3,)]
        assert not report.within_tolerance

    def test_different_experiments_rejected(self):
        a = make_result("quick", {1: 1.0})
        b = make_result("paper", {1: 1.0}, experiment_id="fig5_left")
        with pytest.raises(ValueError):
            compare_results(a, b)

    def test_str_summary(self):
        a = make_result("quick", {1: 1.0})
        b = make_result("paper", {1: 1.2})
        text = str(compare_results(a, b, tolerance=0.5))
        assert "quick vs paper" in text
        assert "OK" in text

    def test_real_profiles_agree(self):
        # The actual cross-profile claim: the saved default and paper runs
        # (see results/) agree on normalized metrics. Regenerate two tiny
        # independent runs instead of reading files.
        from repro.analysis.experiments import Profile, run_experiment

        # Both sizes must support the figure's largest lambda exponent
        # (10), otherwise the clamped rows cannot be aligned.
        tiny_a = Profile(name="a", n=1024, measure=150, replicates=1, seed=1)
        tiny_b = Profile(name="b", n=2048, measure=150, replicates=1, seed=2)
        result_a = run_experiment("fig4_left", tiny_a)
        result_b = run_experiment("fig4_left", tiny_b)
        report = compare_results(result_a, result_b, tolerance=0.3)
        # pool/n is n-invariant; reference and meanfield columns identical.
        assert report.within_tolerance, str(report)
