"""Unit tests for table formatting and CSV export."""

from repro.analysis.tables import format_table, to_csv


class TestFormatTable:
    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_alignment_and_header(self):
        rows = [{"name": "a", "value": 1}, {"name": "long-name", "value": 22}]
        text = format_table(rows)
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert len(lines) == 4

    def test_title(self):
        text = format_table([{"x": 1}], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_column_selection_and_order(self):
        rows = [{"a": 1, "b": 2, "c": 3}]
        text = format_table(rows, columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_missing_keys_render_empty(self):
        text = format_table([{"a": 1}, {"b": 2}], columns=["a", "b"])
        assert "1" in text and "2" in text

    def test_float_formatting(self):
        text = format_table([{"x": 0.123456789}])
        assert "0.1235" in text


class TestToCsv:
    def test_empty(self):
        assert to_csv([]) == ""

    def test_basic(self):
        csv = to_csv([{"a": 1, "b": "x"}, {"a": 2, "b": "y"}])
        assert csv.splitlines() == ["a,b", "1,x", "2,y"]

    def test_quoting(self):
        csv = to_csv([{"a": "hello, world", "b": 'say "hi"'}])
        assert '"hello, world"' in csv
        assert '"say ""hi"""' in csv

    def test_column_order(self):
        csv = to_csv([{"a": 1, "b": 2}], columns=["b", "a"])
        assert csv.splitlines()[0] == "b,a"
