"""Unit tests for the markdown report generator."""

import pytest

from repro.analysis.experiments import ExperimentResult
from repro.analysis.report import render_markdown, write_report


def result_with(verdicts=None, rows=None):
    return ExperimentResult(
        experiment_id="demo",
        title="Demo experiment",
        profile="quick",
        columns=["c", "pool/n"],
        rows=rows if rows is not None else [{"c": 1, "pool/n": 0.5}, {"c": 2, "pool/n": 0.25}],
        notes=["a note"],
        verdicts=verdicts if verdicts is not None else {"shape holds": True},
    )


class TestRenderMarkdown:
    def test_requires_results(self):
        with pytest.raises(ValueError):
            render_markdown([])

    def test_contains_title_summary_and_section(self):
        text = render_markdown([result_with()], title="My Report")
        assert text.startswith("# My Report")
        assert "## Verdicts" in text
        assert "## demo — Demo experiment" in text
        assert "1/1 pass" in text

    def test_markdown_table_rendering(self):
        text = render_markdown([result_with()])
        assert "| c | pool/n |" in text
        assert "| 1 | 0.5 |" in text

    def test_notes_and_verdicts_rendered(self):
        text = render_markdown([result_with()])
        assert "> note: a note" in text
        assert "> check **shape holds**: PASS" in text

    def test_failed_verdicts_bolded_in_summary(self):
        text = render_markdown([result_with(verdicts={"x": False})])
        assert "**0/1 pass**" in text
        assert "FAIL" in text

    def test_plots_included_by_default(self):
        text = render_markdown([result_with()])
        assert "```" in text

    def test_plots_can_be_disabled(self):
        text = render_markdown([result_with()], include_plots=False)
        assert "```" not in text

    def test_result_without_verdicts_shows_dash(self):
        text = render_markdown([result_with(verdicts={})])
        assert "| demo | quick | — |" in text

    def test_non_numeric_rows_skip_plot(self):
        result = ExperimentResult(
            experiment_id="x",
            title="T",
            profile="p",
            columns=["name"],
            rows=[{"name": "abc"}],
        )
        text = render_markdown([result])
        assert "```" not in text


class TestWriteReport:
    def test_writes_file_with_parents(self, tmp_path):
        path = write_report([result_with()], tmp_path / "deep" / "report.md")
        assert path.exists()
        assert path.read_text().startswith("# Reproduction report")
