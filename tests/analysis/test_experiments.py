"""Unit tests for the experiment registry.

Full experiment runs live in the benchmark suite; here we verify the
registry mechanics and run the cheapest experiments at a tiny ad-hoc
profile to validate row structure and claim checks.
"""

import pytest

from repro.analysis.experiments import (
    EXPERIMENTS,
    PROFILES,
    ExperimentResult,
    Profile,
    get_experiment,
    run_experiment,
)
from repro.errors import ExperimentError

TINY = Profile(name="tiny", n=256, measure=60, replicates=1)


class TestRegistry:
    def test_all_design_doc_experiments_present(self):
        expected = {
            "fig4_left",
            "fig4_right",
            "fig5_left",
            "fig5_right",
            "sweet_spot",
            "theory_bounds",
            "dominance",
            "baseline_comparison",
            "n_invariance",
            "meanfield_validation",
            "ablation_dchoice",
            "ablation_aging",
            "heterogeneous_capacity",
            "drain_stages",
            "robustness_workloads",
            "fault_recovery",
            "churn_recovery",
        }
        assert expected == set(EXPERIMENTS)

    def test_profiles(self):
        assert PROFILES["paper"].n == 2**15
        assert PROFILES["paper"].measure == 1000
        assert PROFILES["quick"].n < PROFILES["default"].n

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            get_experiment("nope")

    def test_unknown_profile(self):
        with pytest.raises(ExperimentError):
            run_experiment("dominance", "nope")

    def test_every_generator_has_docstring(self):
        for fn in EXPERIMENTS.values():
            assert fn.__doc__


class TestResultRendering:
    def test_table_and_csv(self):
        result = ExperimentResult(
            experiment_id="x",
            title="T",
            profile="tiny",
            columns=["a", "b"],
            rows=[{"a": 1, "b": 2.5}],
            notes=["a note"],
            verdicts={"check": True},
        )
        table = result.table()
        assert "T" in table and "note: a note" in table and "PASS" in table
        assert result.csv().splitlines()[0] == "a,b"

    def test_all_checks_pass_logic(self):
        result = ExperimentResult("x", "T", "p", ["a"], verdicts={"one": True, "two": False})
        assert not result.all_checks_pass
        assert "FAIL" in result.table()


class TestTinyRuns:
    def test_dominance_tiny(self):
        result = run_experiment("dominance", TINY)
        assert result.all_checks_pass
        assert all(row["violations"] == 0 for row in result.rows)

    def test_lambda_clamping_noted(self):
        result = run_experiment("fig4_left", TINY)
        # exponent 10 > log2(256) = 8 must be clamped and noted.
        assert any("substituted" in note for note in result.notes)
        assert result.rows  # all points produced

    def test_sweet_spot_tiny(self):
        result = run_experiment("sweet_spot", TINY)
        assert len(result.rows) == 8
        assert "avg-wait minimum" in " ".join(result.notes)

    def test_meanfield_validation_tiny(self):
        result = run_experiment("meanfield_validation", TINY)
        assert {row["c"] for row in result.rows} == {1, 2, 4}
