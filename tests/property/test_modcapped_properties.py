"""Property-based tests for the MODCAPPED buffer machinery (hypothesis)."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.modcapped import ModCappedProcess, buffer_capacity

capacities = st.integers(min_value=1, max_value=8)
rounds = st.integers(min_value=0, max_value=200)
buffer_indices = st.integers(min_value=0, max_value=40)


@given(capacities, rounds)
def test_active_capacities_always_sum_to_c(c, t):
    total = sum(buffer_capacity(j, t, c) for j in range(0, t // c + 3))
    assert total == c


@given(capacities, buffer_indices)
def test_buffer_lifecycle_shape(c, j):
    # Capacity ramps 0..c over the fill phase then c..1 over the drain
    # phase, and is 0 outside the active window.
    window = [buffer_capacity(j, t, c) for t in range(c * (j - 1), c * (j + 1))]
    if j >= 1:
        assert window[:c] == list(range(0, c))
        assert window[c:] == list(range(c, 0, -1))
    assert buffer_capacity(j, c * (j + 1), c) == 0
    assert buffer_capacity(j, c * (j - 1) - 1, c) == 0


@given(capacities, rounds)
def test_at_most_two_active_buffers(c, t):
    active = [j for j in range(0, t // c + 3) if buffer_capacity(j, t, c) > 0]
    assert 1 <= len(active) <= 2
    if len(active) == 2:
        assert active[1] == active[0] + 1


@given(
    st.sampled_from([8, 16]),
    capacities,
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=0, max_value=2**31 - 1),
)
@settings(max_examples=30, deadline=None)
def test_modcapped_long_run_invariants(n, c, k, seed):
    if k >= n:
        k = n - 1
    process = ModCappedProcess(n=n, c=c, lam=k / n, rng=seed)
    for _ in range(4 * c + 20):
        record = process.step()
        process.check_invariants()
        assert record.thrown >= process.m_star
        assert record.pool_size >= 0
