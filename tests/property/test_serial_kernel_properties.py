"""Property-based tests on the whole-round serial kernel and sharding.

Hypothesis drives the two exact-equivalence contracts over randomly
drawn small configurations:

* the fused path (which dispatches to the serial whole-round kernel for
  finite shared capacities) produces ``RoundRecord`` streams bit-identical
  to ``kernel="legacy"`` on random ``(n, c, λ)`` grids, and
* the sharded engine's capture-and-replay matches a legacy run fed the
  identical choice vector, for random shard counts.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.capped import CappedProcess
from repro.kernels.sharded import ShardedCappedProcess
from repro.rng import RngFactory

# n, c, lambda numerator (lam = k/n). c >= 1 and finite so both the serial
# kernel (c >= 2) and the unit-take path (c = 1) get coverage.
configs = st.tuples(
    st.sampled_from([4, 8, 16, 32]),
    st.sampled_from([1, 2, 3, 5]),
    st.integers(min_value=0, max_value=31),
).filter(lambda t: t[2] < t[0])

seeds = st.integers(min_value=0, max_value=2**31 - 1)


def assert_same_record(a, b, context):
    assert a.round == b.round, context
    assert a.thrown == b.thrown, context
    assert a.accepted == b.accepted, context
    assert a.deleted == b.deleted, context
    assert a.pool_size == b.pool_size, context
    assert a.total_load == b.total_load, context
    assert a.max_load == b.max_load, context
    assert np.array_equal(a.wait_values, b.wait_values), context
    assert np.array_equal(a.wait_counts, b.wait_counts), context


@given(configs, seeds, st.integers(min_value=1, max_value=30))
@settings(max_examples=60, deadline=None)
def test_fused_matches_legacy_on_random_grid(config, seed, rounds):
    n, c, k, = config
    lam = k / n
    fused = CappedProcess(
        n=n, capacity=c, lam=lam, rng=RngFactory(seed).child(0).generator("capped")
    )
    legacy = CappedProcess(
        n=n,
        capacity=c,
        lam=lam,
        rng=RngFactory(seed).child(0).generator("capped"),
        kernel="legacy",
    )
    for _ in range(rounds):
        assert_same_record(fused.step(), legacy.step(), context=(config, seed))
    assert np.array_equal(fused.bins.loads, legacy.bins.loads)
    fused.check_invariants()


@given(configs, seeds, st.integers(min_value=1, max_value=4))
@settings(max_examples=40, deadline=None)
def test_sharded_replay_matches_legacy(config, seed, shards):
    n, c, k = config
    lam = k / n
    shards = min(shards, n)
    sharded = ShardedCappedProcess(
        n=n, capacity=c, lam=lam, seed=seed, shards=shards, record_choices=True
    )
    legacy = CappedProcess(n=n, capacity=c, lam=lam, rng=0, kernel="legacy")
    for _ in range(25):
        mine = sharded.step()
        theirs = legacy.step(choices=sharded.last_choices)
        assert_same_record(mine, theirs, context=(config, seed, shards))
    assert np.array_equal(sharded.bins.loads, legacy.bins.loads)
    sharded.check_invariants()
