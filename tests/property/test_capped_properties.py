"""Property-based tests on CAPPED(c, λ) round dynamics (hypothesis)."""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.capped import CappedProcess

# Small-but-varied configurations: n, c, lambda numerator (lam = k/n).
configs = st.tuples(
    st.sampled_from([4, 8, 16]),
    st.sampled_from([1, 2, 3, None]),
    st.integers(min_value=0, max_value=15),
).filter(lambda t: t[2] < t[0])

seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(configs, seeds, st.integers(min_value=1, max_value=25))
@settings(max_examples=60, deadline=None)
def test_conservation_every_round(config, seed, rounds):
    n, c, k = config
    process = CappedProcess(n=n, capacity=c, lam=k / n, rng=seed)
    generated = deleted = 0
    for _ in range(rounds):
        record = process.step()
        generated += record.arrivals
        deleted += record.deleted
        assert record.thrown == record.accepted + record.pool_size
    assert generated == deleted + record.pool_size + record.total_load


@given(configs, seeds)
@settings(max_examples=60, deadline=None)
def test_capacity_never_exceeded(config, seed):
    n, c, k = config
    process = CappedProcess(n=n, capacity=c, lam=k / n, rng=seed)
    for _ in range(20):
        record = process.step()
        if c is not None:
            assert record.max_load <= c
        process.check_invariants()


@given(configs, seeds)
@settings(max_examples=40, deadline=None)
def test_pool_only_holds_past_labels(config, seed):
    n, c, k = config
    process = CappedProcess(n=n, capacity=c, lam=k / n, rng=seed)
    for _ in range(15):
        process.step()
        labels = process.pool.labels()
        assert all(label <= process.round for label in labels)


@given(
    st.sampled_from([4, 8]),
    st.integers(min_value=1, max_value=3),
    st.lists(st.integers(min_value=0, max_value=7), min_size=1, max_size=12),
)
@settings(max_examples=60, deadline=None)
def test_injected_choices_are_deterministic(n, c, raw_choices):
    # Same injected choices => identical outcomes, independent of the RNG.
    lam = 1 / n
    results = []
    for seed in (1, 2):
        process = CappedProcess(n=n, capacity=c, lam=lam, rng=seed)
        choices = np.asarray([x % n for x in raw_choices[: 1]], dtype=np.int64)
        record = process.step(choices=choices)
        results.append((record.accepted, record.pool_size, record.deleted))
    assert results[0] == results[1]


@given(seeds)
@settings(max_examples=20, deadline=None)
def test_waits_bounded_by_pool_age_plus_capacity(seed):
    n, c, lam = 16, 2, 0.75
    process = CappedProcess(n=n, capacity=c, lam=lam, rng=seed)
    for _ in range(30):
        oldest_age_before = process.pool.max_age(process.round + 1) if process.pool else 0
        record = process.step()
        if len(record.wait_values):
            # A ball's wait = pool age at acceptance + queue position,
            # both bounded by the oldest pool age and c - 1 respectively.
            assert record.wait_values.max() <= oldest_age_before + 1 + c - 1 + 1
