"""Property-based tests for streaming collectors vs batch oracles."""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given

from repro.stats.streaming import Histogram, RunningStats

floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


@given(st.lists(floats, min_size=1, max_size=200))
def test_running_stats_matches_numpy(values):
    stats = RunningStats()
    stats.add_many(values)
    assert stats.mean == pytest.approx(float(np.mean(values)), rel=1e-9, abs=1e-6)
    assert stats.min == min(values)
    assert stats.max == max(values)
    if len(values) > 1:
        assert stats.variance == pytest.approx(float(np.var(values, ddof=1)), rel=1e-6, abs=1e-6)


@given(st.lists(floats, min_size=1, max_size=100), st.lists(floats, min_size=1, max_size=100))
def test_merge_equals_concatenation(a_values, b_values):
    a, b, both = RunningStats(), RunningStats(), RunningStats()
    a.add_many(a_values)
    b.add_many(b_values)
    both.add_many(a_values + b_values)
    a.merge(b)
    assert a.mean == pytest.approx(both.mean, rel=1e-9, abs=1e-6)
    assert a.variance == pytest.approx(both.variance, rel=1e-6, abs=1e-6)


@given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300))
def test_histogram_quantiles_match_numpy_inverted_cdf(values):
    hist = Histogram()
    for value in values:
        hist.add(value)
    data = np.sort(np.asarray(values))
    for q in (0.0, 0.25, 0.5, 0.9, 1.0):
        expected = int(np.quantile(data, q, method="inverted_cdf"))
        assert hist.quantile(q) == expected


@given(st.lists(st.tuples(st.integers(0, 100), st.integers(0, 20)), min_size=1, max_size=50))
def test_histogram_weighted_add_matches_expansion(pairs):
    weighted = Histogram()
    expanded = Histogram()
    for value, count in pairs:
        weighted.add(value, count)
        for _ in range(count):
            expanded.add(value)
    assert weighted.total == expanded.total
    assert weighted.counts().tolist() == expanded.counts().tolist()
