"""Property-based tests on the batched-replicate engine (hypothesis).

The batched engine's whole contract is "R fused replicates ≡ R serial
processes, bit for bit"; hypothesis drives that equivalence plus the
engine's own conservation and capacity invariants across randomly drawn
small configurations.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.capped import CappedProcess
from repro.kernels import BatchedCappedProcess
from repro.rng import RngFactory

# n, c, lambda numerator (lam = k/n), replicate count.
configs = st.tuples(
    st.sampled_from([4, 8, 16]),
    st.sampled_from([1, 2, 3, None]),
    st.integers(min_value=0, max_value=15),
    st.integers(min_value=1, max_value=4),
).filter(lambda t: t[2] < t[0])

seeds = st.integers(min_value=0, max_value=2**31 - 1)


@given(configs, seeds, st.integers(min_value=1, max_value=25))
@settings(max_examples=40, deadline=None)
def test_batched_matches_serial_bit_for_bit(config, seed, rounds):
    n, c, k, replicates = config
    factory = RngFactory(seed)
    serial = []
    for r in range(replicates):
        process = CappedProcess(
            n=n, capacity=c, lam=k / n, rng=factory.child(r).generator("capped")
        )
        serial.append([process.step() for _ in range(rounds)])

    batched = BatchedCappedProcess(
        n=n,
        capacity=c,
        lam=k / n,
        rngs=[factory.child(r).generator("capped") for r in range(replicates)],
    )
    for t in range(rounds):
        for r, record in enumerate(batched.step()):
            reference = serial[r][t]
            assert record.pool_size == reference.pool_size
            assert record.accepted == reference.accepted
            assert record.deleted == reference.deleted
            assert record.total_load == reference.total_load
            assert record.max_load == reference.max_load
            assert np.array_equal(record.wait_values, reference.wait_values)
            assert np.array_equal(record.wait_counts, reference.wait_counts)
    batched.check_invariants()


@given(configs, seeds)
@settings(max_examples=40, deadline=None)
def test_per_replicate_conservation(config, seed):
    n, c, k, replicates = config
    batched = BatchedCappedProcess(
        n=n,
        capacity=c,
        lam=k / n,
        rngs=[RngFactory(seed).child(r).generator("capped") for r in range(replicates)],
    )
    generated = np.zeros(replicates, dtype=np.int64)
    deleted = np.zeros(replicates, dtype=np.int64)
    for _ in range(20):
        records = batched.step()
        for r, record in enumerate(records):
            generated[r] += record.arrivals
            deleted[r] += record.deleted
            assert record.thrown == record.accepted + record.pool_size
            if c is not None:
                assert record.max_load <= c
    for r, record in enumerate(records):
        assert generated[r] == deleted[r] + record.pool_size + record.total_load
