"""Crash-point properties of the broker's durable store.

The recovery contract: a broker SIGKILLed at *any* byte of its
``--state-dir`` history must leave a directory from which a successor
recovers a consistent prefix of the truth — the newest valid snapshot
plus every intact event past its ``seq``, with at most the torn tail
line lost. Hypothesis drives the crash point over the raw bytes.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed.store import SweepStateStore, read_live_events, replay_events

pytestmark = pytest.mark.slow


def write_history(directory, n_events: int, snapshot_after: int) -> int:
    """Record ``n_events``, snapshotting after ``snapshot_after`` of them.

    Returns the snapshot's folded ``seq`` (0 when no snapshot happened).
    """
    store = SweepStateStore(directory)
    folded = 0
    for index in range(n_events):
        store.record("task", key=f"k{index}", order=index)
        if index + 1 == snapshot_after:
            store.write_state()
            folded = store.state.seq
    # Close without the implicit snapshot a clean shutdown would write:
    # a SIGKILL never calls close().
    store._events_fh.close()
    return folded


@settings(max_examples=40, deadline=None)
@given(
    n_events=st.integers(min_value=1, max_value=12),
    snapshot_after=st.integers(min_value=0, max_value=12),
    cut=st.integers(min_value=0, max_value=2000),
)
def test_truncated_event_log_always_yields_an_intact_prefix(
    tmp_path_factory, n_events, snapshot_after, cut
):
    directory = tmp_path_factory.mktemp("store")
    write_history(directory, n_events, min(snapshot_after, n_events))
    log = directory / "events.jsonl"
    raw = log.read_bytes()
    log.write_bytes(raw[: min(cut, len(raw))])  # SIGKILL mid-append

    events = list(read_live_events(directory))
    # Every surviving line is intact JSON with monotonically increasing
    # seq starting at 1 — a strict prefix of what was written.
    seqs = [e["seq"] for e in events]
    assert seqs == list(range(1, len(seqs) + 1))
    assert [e["key"] for e in events] == [f"k{i}" for i in range(len(seqs))]

    # Replay past the snapshot never yields folded-in or torn events.
    snapshot = SweepStateStore.load_state(directory)
    folded = int(snapshot.seq) if snapshot is not None else 0
    tail = list(replay_events(directory, after_seq=folded))
    assert all(int(e["seq"]) > folded for e in tail)
    assert len(tail) == max(0, len(seqs) - folded)


@settings(max_examples=40, deadline=None)
@given(
    cut=st.integers(min_value=0, max_value=4000),
    generations=st.integers(min_value=1, max_value=4),
)
def test_torn_snapshot_always_recovers_newest_valid_generation(
    tmp_path_factory, cut, generations
):
    directory = tmp_path_factory.mktemp("snap")
    store = SweepStateStore(directory)
    for done in range(1, generations + 1):
        store.state.tasks_done = done
        store.write_state()
    store._events_fh.close()

    # Tear the live snapshot at an arbitrary byte (crash mid-replace or
    # mid-write). The loader must fall back to the newest valid one.
    live = directory / "state.json"
    raw = live.read_bytes()
    live.write_bytes(raw[: min(cut, len(raw))])

    loaded = SweepStateStore.load_state(directory)
    if cut >= len(raw):
        # Nothing was torn; the live snapshot still wins.
        assert loaded is not None and loaded.tasks_done == generations
    elif generations >= 2:
        # The .prev generation is whole: recovery proceeds one step back
        # (unless the truncated live snapshot still parses as valid JSON,
        # which only happens for a cut at the closing newline).
        assert loaded is not None
        assert loaded.tasks_done in (generations - 1, generations)
    elif loaded is not None:
        # Single generation, torn: only a still-parseable prefix may load.
        payload = json.loads(live.read_text(encoding="utf-8"))
        assert isinstance(payload, dict)
