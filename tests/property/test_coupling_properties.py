"""Property-based tests: the dominance lemmas hold for random configs."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.coupling import CoupledRun

configs = st.tuples(
    st.sampled_from([8, 16, 32]),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=0, max_value=31),
    st.integers(min_value=0, max_value=2**31 - 1),
).filter(lambda t: t[2] < t[0])


@given(configs)
@settings(max_examples=25, deadline=None)
def test_pool_dominance_surely_holds(config):
    n, c, k, seed = config
    run = CoupledRun(n=n, c=c, lam=k / n, rng=seed)
    report = run.run(4 * c + 30)
    assert report.holds


@given(configs)
@settings(max_examples=15, deadline=None)
def test_load_dominance_surely_holds(config):
    n, c, k, seed = config
    run = CoupledRun(n=n, c=c, lam=k / n, rng=seed)
    for _ in range(3 * c + 20):
        result = run.step()
        assert result.loads_dominated
