"""Property-based tests on checkpoint/restore (hypothesis).

The snapshot contract: at *any* round boundary, ``get_state`` followed by
``set_state`` into a fresh object is invisible — the restored process emits
exactly the trajectory the original would have, and snapshots are immutable
value objects (restoring one twice replays the same future twice). Hypothesis
drives random interleavings of step / snapshot / restore to hunt for state
the snapshot misses (RNG position, pool ages, counters, capacity).
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.core.capped import CappedProcess
from repro.kernels import BatchedCappedProcess
from repro.rng import RngFactory

# n, c, lambda numerator (lam = k/n).
configs = st.tuples(
    st.sampled_from([4, 8, 16]),
    st.sampled_from([1, 2, 3, None]),
    st.integers(min_value=0, max_value=15),
).filter(lambda t: t[2] < t[0])

seeds = st.integers(min_value=0, max_value=2**31 - 1)

# A plan is a sequence of step-counts; a snapshot/restore cycle happens
# between consecutive entries.
plans = st.lists(st.integers(min_value=0, max_value=12), min_size=1, max_size=5)


def record_key(record):
    return (
        record.round,
        record.arrivals,
        record.thrown,
        record.accepted,
        record.deleted,
        record.pool_size,
        record.total_load,
        record.max_load,
        record.wait_values.tolist(),
        record.wait_counts.tolist(),
    )


def make_capped(config, seed, generation):
    n, c, k = config
    # Restores land in processes built with a *different* RNG seed so any
    # state the snapshot forgets shows up as a diverging trajectory.
    return CappedProcess(
        n=n,
        capacity=c,
        lam=k / n,
        rng=RngFactory(seed).child(generation).generator("capped"),
    )


@given(configs, seeds, plans)
@settings(max_examples=40, deadline=None)
def test_snapshot_restore_interleaving_is_invisible(config, seed, plan):
    # Reference: one process stepping straight through.
    reference = make_capped(config, seed, 0)
    total = sum(plan)
    expected = [record_key(reference.step()) for _ in range(total)]

    # Same trajectory, but hopping through a snapshot/restore between
    # every chunk of the plan, each time into a freshly-built process.
    current = make_capped(config, seed, 0)
    observed = []
    for generation, chunk in enumerate(plan[:-1]):
        observed.extend(record_key(current.step()) for _ in range(chunk))
        snapshot = current.get_state()
        current = make_capped(config, seed, generation + 1)
        current.set_state(snapshot)
        current.check_invariants()
    observed.extend(record_key(current.step()) for _ in range(plan[-1]))

    assert observed == expected


@given(
    configs, seeds, st.integers(min_value=0, max_value=15), st.integers(min_value=1, max_value=10)
)
@settings(max_examples=40, deadline=None)
def test_snapshot_is_an_immutable_value(config, seed, warmup, rounds):
    # Restoring the same snapshot twice replays the same future twice,
    # even after the donor process has moved on (deep-copy semantics).
    process = make_capped(config, seed, 0)
    for _ in range(warmup):
        process.step()
    snapshot = process.get_state()

    first = make_capped(config, seed, 1)
    first.set_state(snapshot)
    future_one = [record_key(first.step()) for _ in range(rounds)]

    for _ in range(rounds):
        process.step()  # mutate the donor after the snapshot was taken

    second = make_capped(config, seed, 2)
    second.set_state(snapshot)
    future_two = [record_key(second.step()) for _ in range(rounds)]
    assert future_one == future_two


@given(configs, seeds, st.integers(min_value=1, max_value=3), plans)
@settings(max_examples=25, deadline=None)
def test_batched_snapshot_restore_interleaving_is_invisible(config, seed, replicates, plan):
    n, c, k = config

    def make(generation):
        factory = RngFactory(seed + generation)
        return BatchedCappedProcess(
            n=n,
            capacity=c,
            lam=k / n,
            rngs=[factory.child(r).generator("capped") for r in range(replicates)],
        )

    def step_key(process):
        return [record_key(record) for record in process.step()]

    reference = make(0)
    total = sum(plan)
    expected = [step_key(reference) for _ in range(total)]

    current = make(0)
    observed = []
    for generation, chunk in enumerate(plan[:-1]):
        observed.extend(step_key(current) for _ in range(chunk))
        snapshot = current.get_state()
        current = make(generation + 1)
        current.set_state(snapshot)
        current.check_invariants()
    observed.extend(step_key(current) for _ in range(plan[-1]))

    assert observed == expected
