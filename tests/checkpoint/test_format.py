"""The repro-checkpoint/v1 document format: atomicity, integrity, versioning."""

import json
import os

import numpy as np
import pytest

from repro.checkpoint import (
    CHECKPOINT_FORMAT,
    checkpoint_fingerprint,
    dumps_canonical,
    read_checkpoint,
    read_checkpoint_header,
    write_checkpoint,
)
from repro.errors import CheckpointCorrupt, CheckpointIncompatible


class TestWriteRead:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "ckpt-0000000001.json"
        payload = {"round": 1, "values": [1, 2, 3]}
        nbytes = write_checkpoint(path, payload, meta={"phase": "measure"})
        assert nbytes == path.stat().st_size
        document = read_checkpoint(path)
        assert document["format"] == CHECKPOINT_FORMAT
        assert document["payload"] == payload
        assert document["meta"] == {"phase": "measure"}

    def test_numpy_values_serialise(self, tmp_path):
        path = tmp_path / "c.json"
        payload = {
            "i": np.int64(7),
            "f": np.float64(0.5),
            "b": np.bool_(True),
            "a": np.arange(4),
        }
        write_checkpoint(path, payload)
        restored = read_checkpoint(path)["payload"]
        assert restored == {"i": 7, "f": 0.5, "b": True, "a": [0, 1, 2, 3]}

    def test_infinities_roundtrip(self, tmp_path):
        # RunningStats snapshots on an empty window hold ±inf min/max.
        path = tmp_path / "c.json"
        write_checkpoint(path, {"min": float("inf"), "max": float("-inf")})
        restored = read_checkpoint(path)["payload"]
        assert restored["min"] == float("inf")
        assert restored["max"] == float("-inf")

    def test_no_tmp_left_behind(self, tmp_path):
        path = tmp_path / "c.json"
        write_checkpoint(path, {"x": 1})
        assert list(tmp_path.glob("*.tmp")) == []

    def test_overwrite_is_atomic_replacement(self, tmp_path):
        path = tmp_path / "c.json"
        write_checkpoint(path, {"x": 1})
        write_checkpoint(path, {"x": 2})
        assert read_checkpoint(path)["payload"] == {"x": 2}


class TestIntegrity:
    def test_truncated_file_is_corrupt(self, tmp_path):
        path = tmp_path / "c.json"
        write_checkpoint(path, {"x": list(range(100))})
        data = path.read_bytes()
        path.write_bytes(data[: len(data) // 2])
        with pytest.raises(CheckpointCorrupt):
            read_checkpoint(path)

    def test_tampered_payload_fails_digest(self, tmp_path):
        path = tmp_path / "c.json"
        write_checkpoint(path, {"x": 1})
        document = json.loads(path.read_text())
        document["payload"]["x"] = 2
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointCorrupt, match="integrity"):
            read_checkpoint_header(path)

    def test_missing_fields_are_corrupt(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text(json.dumps({"format": CHECKPOINT_FORMAT}))
        with pytest.raises(CheckpointCorrupt, match="missing"):
            read_checkpoint(path)

    def test_non_object_is_corrupt(self, tmp_path):
        path = tmp_path / "c.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(CheckpointCorrupt):
            read_checkpoint(path)


class TestVersioning:
    def test_wrong_format_is_incompatible(self, tmp_path):
        path = tmp_path / "c.json"
        write_checkpoint(path, {"x": 1})
        document = json.loads(path.read_text())
        document["format"] = "repro-checkpoint/v999"
        path.write_text(json.dumps(document))
        with pytest.raises(CheckpointIncompatible, match="format"):
            read_checkpoint(path)

    def test_foreign_fingerprint_is_incompatible(self, tmp_path):
        path = tmp_path / "c.json"
        write_checkpoint(path, {"x": 1}, fingerprint="0" * 64)
        with pytest.raises(CheckpointIncompatible, match="fingerprint"):
            read_checkpoint(path)

    def test_header_read_skips_compat_checks(self, tmp_path):
        # The inspect tool must be able to examine snapshots from other code.
        path = tmp_path / "c.json"
        write_checkpoint(path, {"x": 1}, fingerprint="0" * 64)
        document = read_checkpoint_header(path)
        assert document["fingerprint"] == "0" * 64

    def test_fingerprint_tracks_measurement_modules(self):
        from repro.parallel.keys import measurement_fingerprint

        assert checkpoint_fingerprint() == measurement_fingerprint()


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert dumps_canonical({"b": 1, "a": [1, 2]}) == '{"a":[1,2],"b":1}'

    def test_digest_stable_across_parse_roundtrip(self, tmp_path):
        from repro.checkpoint.format import payload_digest

        payload = {"rng": {"state": {"state": 2**127 + 1}}, "f": 0.1 + 0.2}
        assert payload_digest(json.loads(dumps_canonical(payload))) == payload_digest(payload)

    def test_unserialisable_value_raises(self, tmp_path):
        with pytest.raises(TypeError):
            dumps_canonical({"x": object()})

    def test_chmod_unreadable_reports_corrupt(self, tmp_path):
        path = tmp_path / "c.json"
        write_checkpoint(path, {"x": 1})
        path.unlink()
        with pytest.raises(CheckpointCorrupt, match="cannot read"):
            read_checkpoint_header(path)
        assert not os.path.exists(path)
