"""CheckpointStore: rolling retention, corruption fallback, telemetry."""

import json

import pytest

from repro import telemetry
from repro.checkpoint import CheckpointStore, write_checkpoint
from repro.errors import ConfigurationError


def corrupt(path) -> None:
    """Truncate a snapshot so its payload digest no longer verifies."""
    data = path.read_bytes()
    path.write_bytes(data[: len(data) - 20])


class TestRetention:
    def test_keep_must_leave_a_fallback(self, tmp_path):
        with pytest.raises(ConfigurationError):
            CheckpointStore(tmp_path, keep=1)

    def test_prunes_to_keep_newest(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        for round in (10, 20, 30, 40):
            store.save(round, {"round": round})
        assert [r for r, _ in store.snapshots()] == [40, 30]

    def test_prune_clears_orphaned_tmp_files(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=2)
        (tmp_path / "ckpt-0000000005.json.tmp").write_text("dead write")
        store.save(10, {"round": 10})
        assert list(tmp_path.glob("*.tmp")) == []

    def test_snapshot_names_sort_numerically(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        for round in (9, 100, 20):
            store.save(round, {"round": round})
        assert [r for r, _ in store.snapshots()] == [100, 20, 9]


class TestRestore:
    def test_empty_directory_restores_nothing(self, tmp_path):
        assert CheckpointStore(tmp_path / "missing").load_latest() is None
        assert CheckpointStore(tmp_path / "missing").latest_round() is None

    def test_loads_newest(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(10, {"round": 10})
        store.save(20, {"round": 20}, meta={"phase": "measure"})
        restored = store.load_latest()
        assert restored.round == 20
        assert restored.payload == {"round": 20}
        assert restored.meta == {"phase": "measure"}
        assert restored.reason == "resume"

    def test_corrupt_newest_falls_back(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(10, {"round": 10})
        store.save(20, {"round": 20})
        corrupt(store.path_for(20))
        restored = store.load_latest()
        assert restored.round == 10
        assert restored.skipped_corrupt == 1
        assert restored.reason == "corrupt"

    def test_incompatible_newest_falls_back(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(10, {"round": 10})
        write_checkpoint(store.path_for(20), {"round": 20}, fingerprint="0" * 64)
        restored = store.load_latest()
        assert restored.round == 10
        assert restored.skipped_incompatible == 1
        assert restored.reason == "fingerprint"

    def test_all_snapshots_bad_restores_nothing(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(10, {"round": 10})
        store.save(20, {"round": 20})
        corrupt(store.path_for(10))
        corrupt(store.path_for(20))
        assert store.load_latest() is None

    def test_garbage_json_counts_as_corrupt(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(10, {"round": 10})
        store.path_for(20).write_text("{not json")
        restored = store.load_latest()
        assert restored.round == 10
        assert restored.reason == "corrupt"


class TestTelemetry:
    def test_save_and_restore_metrics(self, tmp_path):
        with telemetry.session() as tel:
            store = CheckpointStore(tmp_path)
            store.save(10, {"round": 10})
            store.save(20, {"round": 20})
            corrupt(store.path_for(20))
            restored = store.load_latest()
            assert restored.reason == "corrupt"
            snapshot = tel.registry.snapshot()
        restores = snapshot["restores_total"]["series"]
        assert restores == [{"labels": {"reason": "corrupt"}, "value": 1.0}]
        assert snapshot["checkpoint_write_seconds"]["series"][0]["count"] == 2
        assert snapshot["checkpoint_bytes"]["series"][0]["count"] == 2
        assert snapshot["checkpoint_bytes"]["series"][0]["min"] > 0

    def test_quiet_peek_emits_nothing(self, tmp_path):
        with telemetry.session() as tel:
            store = CheckpointStore(tmp_path)
            store.save(10, {"round": 10})
            assert store.latest_round() == 10
            snapshot = tel.registry.snapshot()
        assert "restores_total" not in snapshot

    def test_no_session_is_silent(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(10, {"round": 10})
        assert store.load_latest().round == 10


class TestMetaRoundtrip:
    def test_meta_not_covered_by_digest(self, tmp_path):
        # meta is advisory; editing it must not poison the payload digest.
        store = CheckpointStore(tmp_path)
        path = store.save(10, {"round": 10}, meta={"phase": "burn_in"})
        document = json.loads(path.read_text())
        document["meta"]["phase"] = "edited"
        path.write_text(json.dumps(document))
        restored = store.load_latest()
        assert restored.meta["phase"] == "edited"
        assert restored.reason == "resume"
