"""Unit tests for the metrics registry."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.registry import HISTOGRAM_QUANTILES, MetricsRegistry, quantile_key


def test_quantile_keys_avoid_float_truncation():
    assert [quantile_key(q) for q in HISTOGRAM_QUANTILES] == ["p50", "p95", "p99"]


class TestCounter:
    def test_accumulates_per_label_set(self):
        reg = MetricsRegistry()
        counter = reg.counter("rounds_total")
        counter.inc(kernel="fused")
        counter.inc(2, kernel="fused")
        counter.inc(kernel="legacy")
        assert counter.value(kernel="fused") == 3.0
        assert counter.value(kernel="legacy") == 1.0
        assert counter.value(kernel="never") == 0.0

    def test_unlabelled_series(self):
        reg = MetricsRegistry()
        reg.counter("tasks").inc(5)
        assert reg.counter("tasks").value() == 5.0

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("c").inc(-1)

    def test_label_values_stringified(self):
        reg = MetricsRegistry()
        counter = reg.counter("c")
        counter.inc(replicate=3)
        assert counter.value(replicate="3") == 1.0


class TestGauge:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("pool_size_normalized")
        gauge.set(0.5)
        gauge.set(0.25)
        assert gauge.value() == 0.25

    def test_missing_series_raises(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().gauge("g").value(replicate=0)


class TestHistogram:
    def test_exact_aggregates(self):
        hist = MetricsRegistry().histogram("round_seconds")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value, kernel="fused")
        stream = hist.stream(kernel="fused")
        assert stream.count == 4
        assert stream.total == 10.0
        assert stream.min == 1.0
        assert stream.max == 4.0

    def test_quantiles_exact_below_reservoir(self):
        hist = MetricsRegistry().histogram("h")
        for value in range(1, 101):
            hist.observe(float(value))
        stream = hist.stream()
        assert stream.quantile(0.5) == 50.0
        assert stream.quantile(0.95) == 95.0
        assert stream.quantile(0.99) == 99.0

    def test_p99_distinct_from_p95_with_exact_counts(self):
        # 99 fast observations and two slow outliers: p95 must not see the
        # outliers, p99 must — the fleet-latency tail is the whole point.
        hist = MetricsRegistry().histogram("h")
        for _ in range(99):
            hist.observe(0.01)
        hist.observe(10.0)
        hist.observe(10.0)
        stream = hist.stream()
        assert stream.quantile(0.95) == 0.01
        assert stream.quantile(0.99) == 10.0

    def test_single_observation_quantile(self):
        hist = MetricsRegistry().histogram("h")
        hist.observe(1.0, phase="throw")
        assert hist.stream(phase="throw").quantile(0.5) == 1.0
        assert hist.stream(phase="accept") is None

    def test_empty_stream_quantile_is_nan(self):
        from repro.telemetry.registry import _HistogramSeries

        assert math.isnan(_HistogramSeries().quantile(0.5))

    def test_reservoir_sampling_is_deterministic(self):
        def fill():
            hist = MetricsRegistry().histogram("h")
            for value in range(10_000):  # exceeds the 4096 reservoir
                hist.observe(float(value))
            return hist.stream().quantile(0.5)

        assert fill() == fill()


class TestRegistry:
    def test_kind_mismatch_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ConfigurationError):
            reg.gauge("x")

    def test_invalid_metric_name_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("bad name")

    def test_invalid_label_name_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsRegistry().counter("c").inc(**{"bad-label": 1})

    def test_get_does_not_create(self):
        reg = MetricsRegistry()
        assert reg.get("nothing") is None
        assert len(reg) == 0

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c", "a counter").inc(kernel="fused")
        reg.gauge("g").set(1.5)
        reg.histogram("h").observe(2.0, phase="accept")
        snap = reg.snapshot()
        assert snap["c"]["kind"] == "counter"
        assert snap["c"]["help"] == "a counter"
        assert snap["c"]["series"] == [{"labels": {"kernel": "fused"}, "value": 1.0}]
        assert snap["g"]["series"] == [{"labels": {}, "value": 1.5}]
        entry = snap["h"]["series"][0]
        assert entry["labels"] == {"phase": "accept"}
        assert entry["count"] == 1 and entry["sum"] == 2.0
        assert entry["min"] == 2.0 and entry["max"] == 2.0
        for q in HISTOGRAM_QUANTILES:
            assert entry[f"p{int(q * 100)}"] == 2.0

    def test_snapshot_is_json_serialisable(self):
        import json

        reg = MetricsRegistry()
        reg.histogram("h").observe(0.5)
        json.dumps(reg.snapshot())
