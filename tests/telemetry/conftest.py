"""Shared fixtures for telemetry tests."""

import pytest

from repro.telemetry import runtime


@pytest.fixture(autouse=True)
def _telemetry_off():
    """Every test starts and ends with telemetry disabled.

    The active session is process-global state; a test that enables it and
    fails mid-way must not leak the session into the next test.
    """
    runtime.disable()
    yield
    runtime.disable()
