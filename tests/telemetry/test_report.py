"""Phase-attribution report tests, including the >= 95% coverage bar."""

import pytest

from repro import telemetry
from repro.core.capped import CappedProcess
from repro.engine.driver import SimulationDriver
from repro.kernels.batched import BatchedCappedProcess
from repro.telemetry import build_manifest, phase_attribution, render_report
from repro.telemetry.registry import MetricsRegistry


def synthetic_metrics():
    reg = MetricsRegistry()
    rounds = reg.histogram("round_seconds")
    phases = reg.histogram("kernel_phase_seconds")
    for _ in range(10):
        rounds.observe(1.0, kernel="fused")
        phases.observe(0.6, kernel="fused", phase="accept")
        phases.observe(0.3, kernel="fused", phase="throw")
        phases.observe(0.1, kernel="fused", phase="delete")
    return reg.snapshot()


class TestPhaseAttribution:
    def test_synthetic_exact_coverage(self):
        rows = phase_attribution(synthetic_metrics())
        assert len(rows) == 1
        row = rows[0]
        assert row["labels"] == {"kernel": "fused"}
        assert row["rounds"] == 10
        assert row["total_s"] == pytest.approx(10.0)
        assert row["coverage"] == pytest.approx(1.0)
        # Phases sorted by descending time share.
        assert [p["phase"] for p in row["phases"]] == ["accept", "throw", "delete"]
        assert row["phases"][0]["fraction"] == pytest.approx(0.6)

    def test_empty_metrics(self):
        assert phase_attribution({}) == []

    def test_unmatched_phases_ignored(self):
        reg = MetricsRegistry()
        reg.histogram("round_seconds").observe(1.0, kernel="fused")
        reg.histogram("kernel_phase_seconds").observe(0.5, kernel="legacy", phase="accept")
        (row,) = phase_attribution(reg.snapshot())
        assert row["phases"] == []
        assert row["coverage"] == 0.0


@pytest.mark.parametrize("kernel", ["fused", "legacy"])
def test_live_run_coverage_meets_bar(kernel):
    """Acceptance: named phases attribute >= 95% of measured round time."""
    with telemetry.session() as tel:
        process = CappedProcess(n=128, capacity=2, lam=0.75, rng=3, kernel=kernel)
        SimulationDriver(burn_in=40, measure=80).run(process)
        rows = phase_attribution(tel.registry.snapshot())
    (row,) = [r for r in rows if r["labels"].get("kernel") == kernel]
    assert row["rounds"] == 120
    assert row["coverage"] >= 0.95


def test_batched_run_coverage_meets_bar():
    from repro.rng import RngFactory

    rngs = [RngFactory(seed=3).child(r).generator("capped") for r in range(2)]
    with telemetry.session() as tel:
        process = BatchedCappedProcess(n=64, capacity=2, lam=0.75, rngs=rngs)
        SimulationDriver(burn_in=20, measure=40).run_batched(process)
        rows = phase_attribution(tel.registry.snapshot())
    (row,) = [r for r in rows if r["labels"].get("kernel") == "batched"]
    assert row["coverage"] >= 0.95


class TestRenderReport:
    def test_renders_phases_and_counters(self):
        metrics = synthetic_metrics()
        reg_extra = {"runner_tasks_total": {
            "kind": "counter",
            "help": "",
            "series": [{"labels": {"source": "computed"}, "value": 7.0}],
        }}
        manifest = build_manifest(
            {"n": 64}, metrics={**metrics, **reg_extra}, command=["repro", "simulate"]
        )
        lines = render_report(manifest)
        text = "\n".join(lines)
        assert "run: repro simulate" in text
        assert "kernel=fused" in text
        assert "accept" in text and "(residual)" in text
        assert "runner_tasks_total=7" in text

    def test_no_rounds_message(self):
        manifest = build_manifest({}, metrics={}, command=["repro"])
        text = "\n".join(render_report(manifest))
        assert "no round timing recorded" in text
