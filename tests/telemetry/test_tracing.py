"""Unit tests for task tracing: span records, trace files, reports."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry.tracing import (
    SpanBuffer,
    TaskTrace,
    Tracer,
    assemble_traces,
    build_span,
    read_spans,
    render_trace_report,
    trace_gaps,
    trace_id_for,
)


class TestIds:
    def test_trace_id_is_deterministic_digest_prefix(self):
        digest = "abcdef0123456789" * 4
        assert trace_id_for(digest) == "tabcdef012345"
        assert trace_id_for(digest) == trace_id_for(digest)

    def test_span_ids_are_origin_prefixed_and_unique(self):
        buffer = SpanBuffer("w-7")
        ids = {buffer.record("t1", "running", 0.0, 1.0) for _ in range(5)}
        assert len(ids) == 5
        assert all(span_id.startswith("w-7:") for span_id in ids)

    def test_mint_id_reserves_before_close(self):
        buffer = SpanBuffer("b")
        first = buffer.mint_id()
        second = buffer.record("t1", "leased", 0.0, 1.0)
        assert first != second
        assert first.startswith("b:")


class TestBuildSpan:
    def test_shape_and_rounding(self):
        span = build_span("t1", "c:1", "task", 1.23456789, 2.0, parent=None, label="x")
        assert span["event"] == "span"
        assert span["trace"] == "t1"
        assert span["span"] == "c:1"
        assert span["start"] == 1.234568
        assert span["end"] == 2.0
        assert "parent" not in span
        assert span["attrs"] == {"label": "x"}

    def test_point_span_defaults_end_to_start(self):
        span = build_span("t1", "c:2", "journaled", 5.0)
        assert span["start"] == span["end"] == 5.0
        assert "attrs" not in span


class TestSpanBuffer:
    def test_drain_hands_over_and_resets(self):
        buffer = SpanBuffer("b")
        buffer.record("t1", "queued", 0.0, 1.0)
        buffer.record("t2", "queued", 1.0, 2.0)
        drained = buffer.drain()
        assert [s["trace"] for s in drained] == ["t1", "t2"]
        assert buffer.drain() == []


class TestTracer:
    def test_lazy_open_leaves_no_file_until_first_span(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path)
        assert not path.exists()
        tracer.record("t1", "task", 0.0, 1.0, label="fig4")
        tracer.close()
        assert path.exists()
        assert tracer.spans_written == 1

    def test_add_writes_externally_minted_spans(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(path)
        tracer.add(build_span("t1", "w-1:1", "running", 0.0, 2.0, worker="w-1"))
        tracer.record("t1", "journaled", 2.0)
        tracer.close()
        spans = read_spans(path)
        assert [s["span"] for s in spans] == ["w-1:1", "c:1"]
        assert spans[0]["attrs"]["worker"] == "w-1"


class TestReadSpans:
    def test_missing_file_is_a_configuration_error(self, tmp_path):
        with pytest.raises(ConfigurationError, match="no trace file"):
            read_spans(tmp_path / "absent.jsonl")

    def test_torn_tail_is_tolerated(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = json.dumps(build_span("t1", "c:1", "task", 0.0, 1.0))
        path.write_text(good + "\n" + '{"event":"span","trace":"t2","tor')
        spans = read_spans(path)
        assert len(spans) == 1
        assert spans[0]["trace"] == "t1"

    def test_mid_file_corruption_raises(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        good = json.dumps(build_span("t1", "c:1", "task", 0.0, 1.0))
        path.write_text("not json at all\n" + good + "\n")
        with pytest.raises(ConfigurationError, match="corrupt span record"):
            read_spans(path)

    def test_non_span_event_lines_are_skipped(self, tmp_path):
        # A broker events.jsonl mixes spans with lease/complete records.
        path = tmp_path / "events.jsonl"
        lines = [
            json.dumps({"ts": 1.0, "event": "lease", "key": "k"}),
            json.dumps({"ts": 1.5, **build_span("t1", "b:1", "queued", 0.0, 1.0)}),
            json.dumps({"ts": 2.0, "event": "complete", "key": "k"}),
        ]
        path.write_text("\n".join(lines) + "\n")
        spans = read_spans(path)
        assert [s["name"] for s in spans] == ["queued"]


def chain(trace="t1", source="computed", with_running=True):
    """A complete span chain for one task, as the runner would write it."""
    spans = [
        build_span(trace, "c:1", "task", 0.0, 10.0, label="fig4 n=256", source=source),
        build_span(trace, "b:1", "submitted", 0.1, parent="c:1"),
        build_span(trace, "b:2", "queued", 0.1, 1.0, parent="c:1"),
        build_span(trace, "b:3", "leased", 1.0, 9.0, parent="c:1", status="ok", seq=1),
    ]
    if with_running:
        spans.append(build_span(trace, "w-1:1", "running", 1.1, 8.0, parent="b:3"))
        spans.append(build_span(trace, "w-1:2", "upload", 8.0, 9.0, parent="b:3"))
    spans.append(build_span(trace, "c:2", "journaled", 10.0, parent="c:1"))
    return spans


class TestAssembly:
    def test_traces_grouped_and_ordered_by_first_span(self):
        late = [build_span("t2", "c:3", "task", 20.0, 21.0, label="late")]
        traces = assemble_traces(late + chain("t1"))
        assert [t.trace for t in traces] == ["t1", "t2"]
        assert traces[0].label == "fig4 n=256"
        assert traces[0].duration == pytest.approx(10.0)

    def test_complete_chain_has_no_gaps(self):
        (trace,) = assemble_traces(chain())
        assert trace_gaps(trace) == []

    def test_cache_hit_does_not_require_running(self):
        (trace,) = assemble_traces(chain(source="cache", with_running=False))
        assert trace_gaps(trace) == []

    def test_computed_task_requires_running(self):
        (trace,) = assemble_traces(chain(with_running=False))
        assert trace_gaps(trace) == ["running"]

    def test_missing_root_reported_as_task_gap(self):
        spans = [s for s in chain() if s["name"] != "task"]
        (trace,) = assemble_traces(spans)
        assert "task" in trace_gaps(trace)

    def test_released_lease_counts_as_re_lease_waste(self):
        spans = chain()
        spans.append(
            build_span("t1", "b:9", "leased", 0.5, 3.5, parent="c:1", status="released", seq=1)
        )
        (trace,) = assemble_traces(spans)
        phases = trace.phase_seconds()
        assert phases["re-lease-waste"] == pytest.approx(3.0)
        assert phases["running"] == pytest.approx(6.9)


class TestReport:
    def test_empty_report(self):
        assert render_trace_report([]) == "no traces recorded\n"

    def test_report_shows_timeline_and_critical_path(self):
        report = render_trace_report(assemble_traces(chain()))
        assert "fig4 n=256" in report
        assert "[complete]" in report
        assert "critical path" in report
        assert "running" in report

    def test_report_flags_incomplete_chains_and_re_leases(self):
        spans = chain(with_running=False)
        spans.append(
            build_span("t1", "b:9", "leased", 0.5, 3.5, parent="c:1", status="released", seq=1)
        )
        report = render_trace_report(assemble_traces(spans))
        assert "missing: running" in report
        assert "re-leases: 1 task(s)" in report
        assert "incomplete span chains" in report

    def test_report_limits_to_slowest_tasks(self):
        spans = []
        for index in range(4):
            trace = f"t{index}"
            spans.append(
                build_span(trace, f"c:{index}", "task", 0.0, float(index + 1), label=f"job{index}")
            )
        report = render_trace_report(assemble_traces(spans), limit=2)
        assert "job3" in report and "job2" in report
        assert "job0" not in report
        assert "2 faster task(s) not shown" in report
