"""Unit tests for the per-run manifest (schema v1)."""

import json

import pytest

from repro.errors import ConfigurationError
from repro.telemetry import (
    MANIFEST_FILENAME,
    MANIFEST_SCHEMA,
    build_manifest,
    host_info,
    load_manifest,
    validate_manifest,
    write_manifest,
)
from repro.telemetry.registry import MetricsRegistry


def make_manifest(**overrides):
    manifest = build_manifest(
        config={"n": 256, "c": 2, "lam": 0.75},
        seeds=[0, 1],
        metrics=MetricsRegistry().snapshot(),
        command=["repro", "simulate"],
    )
    manifest.update(overrides)
    return manifest


class TestBuild:
    def test_schema_and_fields(self):
        manifest = make_manifest()
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["command"] == ["repro", "simulate"]
        assert manifest["config"]["n"] == 256
        assert manifest["seeds"] == [0, 1]
        assert manifest["code"]["package_fingerprint"]
        assert manifest["code"]["measurement_fingerprint"]
        assert manifest["host"]["python"]
        validate_manifest(manifest)

    def test_metrics_snapshot_embedded(self):
        reg = MetricsRegistry()
        reg.counter("rounds_total").inc(5, kernel="fused")
        manifest = build_manifest({}, metrics=reg.snapshot())
        assert manifest["metrics"]["rounds_total"]["kind"] == "counter"
        validate_manifest(manifest)

    def test_json_serialisable(self):
        json.dumps(make_manifest())

    def test_host_info_fields(self):
        info = host_info()
        assert {"hostname", "platform", "python", "cpu_count", "pid"} <= set(info)


class TestWriteLoad:
    def test_roundtrip_via_directory(self, tmp_path):
        manifest = make_manifest()
        path = write_manifest(manifest, tmp_path)
        assert path == tmp_path / MANIFEST_FILENAME
        assert load_manifest(tmp_path) == manifest
        assert load_manifest(path) == manifest

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_manifest(tmp_path)

    def test_write_rejects_invalid(self, tmp_path):
        with pytest.raises(ConfigurationError):
            write_manifest({"schema": "bogus"}, tmp_path)
        assert not (tmp_path / MANIFEST_FILENAME).exists()


class TestValidate:
    def test_rejects_non_dict(self):
        with pytest.raises(ConfigurationError):
            validate_manifest(["not", "a", "dict"])

    def test_rejects_wrong_schema(self):
        with pytest.raises(ConfigurationError):
            validate_manifest(make_manifest(schema="repro-telemetry-manifest/v0"))

    @pytest.mark.parametrize(
        "field", ["created_unix", "command", "config", "seeds", "code", "host", "metrics"]
    )
    def test_rejects_missing_field(self, field):
        manifest = make_manifest()
        del manifest[field]
        with pytest.raises(ConfigurationError):
            validate_manifest(manifest)

    def test_rejects_wrong_field_type(self):
        with pytest.raises(ConfigurationError):
            validate_manifest(make_manifest(seeds="0,1"))

    def test_rejects_boolean_created_unix(self):
        with pytest.raises(ConfigurationError):
            validate_manifest(make_manifest(created_unix=True))

    def test_rejects_non_integer_seeds(self):
        with pytest.raises(ConfigurationError):
            validate_manifest(make_manifest(seeds=[0, "1"]))
        with pytest.raises(ConfigurationError):
            validate_manifest(make_manifest(seeds=[True]))

    def test_rejects_empty_fingerprint(self):
        manifest = make_manifest()
        manifest["code"]["package_fingerprint"] = ""
        with pytest.raises(ConfigurationError):
            validate_manifest(manifest)

    def test_rejects_malformed_metric_family(self):
        with pytest.raises(ConfigurationError):
            validate_manifest(make_manifest(metrics={"x": {"kind": "counter"}}))
