"""Opt-in cProfile capture: hotspot extraction, merging, manifest block."""

from __future__ import annotations

import pytest

from repro.telemetry.profiling import merge_hotspots, profile_call, profile_section


def busy(n: int) -> int:
    return sum(i * i for i in range(n))


class TestProfileCall:
    def test_returns_result_and_ranked_hotspots(self):
        result, hotspots = profile_call(busy, 1000)
        assert result == busy(1000)
        assert hotspots
        for entry in hotspots:
            assert set(entry) == {"function", "ncalls", "tottime", "cumtime"}
        cums = [h["cumtime"] for h in hotspots]
        assert cums == sorted(cums, reverse=True)

    def test_top_truncates(self):
        _, hotspots = profile_call(busy, 1000, top=2)
        assert len(hotspots) <= 2

    def test_exception_propagates(self):
        def boom():
            raise ValueError("nope")

        with pytest.raises(ValueError, match="nope"):
            profile_call(boom)


class TestMergeHotspots:
    def test_same_function_accumulates(self):
        a = [{"function": "f", "ncalls": 2, "tottime": 0.1, "cumtime": 0.5}]
        b = [{"function": "f", "ncalls": 3, "tottime": 0.2, "cumtime": 0.25}]
        (merged,) = merge_hotspots([a, b])
        assert merged == {"function": "f", "ncalls": 5, "tottime": 0.3, "cumtime": 0.75}

    def test_ranked_by_total_cumtime_and_truncated(self):
        tasks = [
            [
                {"function": "slow", "ncalls": 1, "tottime": 0.0, "cumtime": 9.0},
                {"function": "fast", "ncalls": 1, "tottime": 0.0, "cumtime": 1.0},
                {"function": "mid", "ncalls": 1, "tottime": 0.0, "cumtime": 5.0},
            ]
        ]
        merged = merge_hotspots(tasks, top=2)
        assert [h["function"] for h in merged] == ["slow", "mid"]

    def test_malformed_entries_skipped(self):
        tasks = [
            "not a list",
            [{"no_function": True}, None, {"function": "ok", "cumtime": 1.0}],
        ]
        (merged,) = merge_hotspots(tasks)
        assert merged["function"] == "ok"
        assert merged["ncalls"] == 0


class TestProfileSection:
    def test_manifest_block_shape(self):
        _, hotspots = profile_call(busy, 100, top=3)
        section = profile_section(hotspots, tasks_profiled=7)
        assert section["profiler"] == "cProfile"
        assert section["tasks_profiled"] == 7
        assert section["top"] == hotspots
