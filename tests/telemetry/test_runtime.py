"""Unit tests for the telemetry session lifecycle, spans, and phase clocks."""

import pytest

from repro import telemetry
from repro.errors import ConfigurationError
from repro.telemetry.runtime import _NOOP_SPAN, PhaseClock, Telemetry


class RecordingSink:
    def __init__(self):
        self.events = []
        self.closed = False

    def emit(self, event):
        self.events.append(event)

    def close(self):
        self.closed = True


class TestSessionLifecycle:
    def test_off_by_default(self):
        assert telemetry.current() is None

    def test_enable_disable(self):
        tel = telemetry.enable()
        assert telemetry.current() is tel
        assert telemetry.disable() is tel
        assert telemetry.current() is None

    def test_double_enable_rejected(self):
        telemetry.enable()
        with pytest.raises(ConfigurationError):
            telemetry.enable()

    def test_disable_is_idempotent(self):
        assert telemetry.disable() is None
        assert telemetry.disable() is None

    def test_session_context_manager_closes_sinks(self):
        sink = RecordingSink()
        with telemetry.session(sinks=[sink]) as tel:
            assert telemetry.current() is tel
            tel.emit({"type": "x"})
        assert telemetry.current() is None
        assert sink.closed
        assert len(sink.events) == 1

    def test_session_cleans_up_on_error(self):
        with pytest.raises(RuntimeError):
            with telemetry.session():
                raise RuntimeError("boom")
        assert telemetry.current() is None

    def test_enable_rejects_telemetry_plus_sinks(self):
        with pytest.raises(ConfigurationError):
            telemetry.enable(Telemetry(), sinks=[RecordingSink()])


class TestTelemetryObject:
    def test_convenience_methods_hit_registry(self):
        tel = Telemetry()
        tel.inc("c", kernel="fused")
        tel.set_gauge("g", 2.5)
        tel.observe("h", 0.1, phase="throw")
        tel.phase("accept", 0.2, kernel="fused")
        snap = tel.registry.snapshot()
        assert snap["c"]["series"][0]["value"] == 1.0
        assert snap["g"]["series"][0]["value"] == 2.5
        assert snap["h"]["series"][0]["count"] == 1
        phases = snap["kernel_phase_seconds"]["series"][0]
        assert phases["labels"] == {"kernel": "fused", "phase": "accept"}

    def test_events_stamped_with_timestamps(self):
        sink = RecordingSink()
        tel = Telemetry(sinks=[sink])
        tel.emit({"type": "task"})
        event = sink.events[0]
        assert event["type"] == "task"
        assert event["ts"] > 0
        assert event["elapsed_s"] >= 0


class TestSpan:
    def test_noop_singleton_when_disabled(self):
        assert telemetry.span("anything") is _NOOP_SPAN
        with telemetry.span("anything"):
            pass  # must be a usable context manager

    def test_records_histogram_when_enabled(self):
        tel = telemetry.enable()
        with telemetry.span("measure", component="driver"):
            pass
        stream = tel.registry.histogram("phase_seconds").stream(phase="measure", component="driver")
        assert stream is not None and stream.count == 1

    def test_emit_span_event_records_error_name(self):
        sink = RecordingSink()
        with pytest.raises(ValueError):
            with telemetry.session(sinks=[sink]):
                with telemetry.span("discover", emit=True, component="runner"):
                    raise ValueError("bad")
        (event,) = [e for e in sink.events if e["type"] == "span"]
        assert event["name"] == "discover"
        assert event["error"] == "ValueError"
        assert event["labels"] == {"component": "runner"}


class TestPhaseClock:
    def test_laps_tile_the_round_exactly(self):
        tel = Telemetry()
        clock = PhaseClock(tel, kernel="fused")
        clock.lap("throw")
        clock.lap("accept")
        clock.lap("delete")
        clock.finish()
        hist = tel.registry.histogram("kernel_phase_seconds")
        lap_total = sum(
            hist.stream(kernel="fused", phase=phase).total
            for phase in ("throw", "accept", "delete")
        )
        round_total = tel.registry.histogram("round_seconds").stream(kernel="fused").total
        assert lap_total == pytest.approx(round_total, abs=1e-12)
        assert tel.registry.counter("rounds_total").value(kernel="fused") == 1.0
