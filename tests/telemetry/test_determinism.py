"""Telemetry must never change simulation results: bit-identical trajectories.

The zero-interference contract (docs/observability.md): enabling telemetry
— registry, phase clocks, spans, sinks — produces exactly the same
trajectories and summaries as running without it, for every kernel.
"""

import pytest

from repro import telemetry
from repro.core.capped import CappedProcess
from repro.engine.driver import SimulationDriver
from repro.kernels.batched import BatchedCappedProcess
from repro.telemetry import JsonlEventSink


def run_capped(kernel: str):
    process = CappedProcess(n=64, capacity=2, lam=0.75, rng=7, kernel=kernel)
    driver = SimulationDriver(burn_in=30, measure=60)
    result = driver.run(process)
    return (
        result.pool_series.tolist(),
        result.normalized_pool,
        result.avg_wait,
        result.max_wait,
    )


def run_batched():
    from repro.rng import RngFactory

    rngs = [RngFactory(seed=7).child(r).generator("capped") for r in range(2)]
    process = BatchedCappedProcess(n=64, capacity=2, lam=0.75, rngs=rngs)
    results = SimulationDriver(burn_in=30, measure=60).run_batched(process)
    return [(r.pool_series.tolist(), r.normalized_pool, r.avg_wait, r.max_wait) for r in results]


@pytest.mark.parametrize("kernel", ["fused", "legacy"])
def test_capped_bit_identical_with_telemetry(kernel, tmp_path):
    baseline = run_capped(kernel)
    with telemetry.session(sinks=[JsonlEventSink(tmp_path / "events.jsonl")]) as tel:
        instrumented = run_capped(kernel)
        assert tel.registry.counter("rounds_total").value(kernel=kernel) == 90.0
    assert instrumented == baseline


def test_batched_bit_identical_with_telemetry():
    baseline = run_batched()
    with telemetry.session() as tel:
        instrumented = run_batched()
        assert tel.registry.counter("rounds_total").value(kernel="batched") == 90.0
    assert instrumented == baseline


def test_back_to_back_sessions_do_not_interfere():
    baseline = run_capped("fused")
    with telemetry.session():
        pass
    assert run_capped("fused") == baseline
