"""Unit tests for the JSONL event sink and the Prometheus exporter."""

import gzip

import pytest

from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.sinks import (
    JsonlEventSink,
    parse_prometheus,
    read_events,
    render_prometheus,
    write_prometheus,
)


class TestJsonlEventSink:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with JsonlEventSink(path) as sink:
            sink.emit({"type": "task", "label": "a"})
            sink.emit({"type": "fault", "round": 3})
        assert sink.events_written == 2
        events = list(read_events(path))
        assert events == [{"type": "task", "label": "a"}, {"type": "fault", "round": 3}]

    def test_gzip_roundtrip(self, tmp_path):
        path = tmp_path / "events.jsonl.gz"
        with JsonlEventSink(path) as sink:
            for i in range(10):
                sink.emit({"i": i})
        # Really compressed, not just named .gz.
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"
        assert [e["i"] for e in read_events(path)] == list(range(10))
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            assert len(handle.readlines()) == 10

    def test_plain_sink_flushes_per_line(self, tmp_path):
        path = tmp_path / "events.jsonl"
        sink = JsonlEventSink(path)
        sink.emit({"type": "task"})
        # Readable before close — the crash-safe contract.
        assert list(read_events(path)) == [{"type": "task"}]
        sink.close()

    def test_emit_after_close_is_noop(self, tmp_path):
        sink = JsonlEventSink(tmp_path / "e.jsonl")
        sink.close()
        sink.emit({"type": "late"})
        assert sink.events_written == 0

    def test_creates_parent_directories(self, tmp_path):
        sink = JsonlEventSink(tmp_path / "deep" / "nested" / "e.jsonl")
        sink.close()
        assert (tmp_path / "deep" / "nested" / "e.jsonl").exists()


def populated_snapshot():
    reg = MetricsRegistry()
    reg.counter("rounds_total", "rounds simulated").inc(90, kernel="fused")
    reg.counter("rounds_total").inc(10, kernel="legacy")
    reg.gauge("pool_size_normalized").set(0.17)
    hist = reg.histogram("round_seconds")
    for value in (0.001, 0.002, 0.003, 0.004):
        hist.observe(value, kernel="fused")
    return reg.snapshot()


class TestPrometheusRender:
    def test_counter_and_gauge_lines(self):
        text = render_prometheus(populated_snapshot())
        assert "# TYPE rounds_total counter" in text
        assert 'rounds_total{kernel="fused"} 90' in text
        assert 'rounds_total{kernel="legacy"} 10' in text
        assert "pool_size_normalized 0.17" in text

    def test_histogram_exported_as_summary(self):
        text = render_prometheus(populated_snapshot())
        assert "# TYPE round_seconds summary" in text
        assert 'round_seconds{kernel="fused",quantile="0.5"}' in text
        assert 'round_seconds{kernel="fused",quantile="0.95"}' in text
        assert 'round_seconds_sum{kernel="fused"} 0.01' in text
        assert 'round_seconds_count{kernel="fused"} 4' in text

    def test_label_values_escaped(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(label='quo"te\\slash\nline')
        text = render_prometheus(reg.snapshot())
        assert '\\"' in text and "\\\\" in text and "\\n" in text

    def test_help_line_rendered(self):
        text = render_prometheus(populated_snapshot())
        assert "# HELP rounds_total rounds simulated" in text


class TestPrometheusParse:
    def test_roundtrip(self):
        snapshot = populated_snapshot()
        families = parse_prometheus(render_prometheus(snapshot))
        assert families["rounds_total"]["kind"] == "counter"
        assert families["rounds_total"]["help"] == "rounds simulated"
        fused = [
            s for s in families["rounds_total"]["samples"] if s["labels"] == {"kernel": "fused"}
        ]
        assert fused[0]["value"] == 90.0
        # Summary suffixes attach to the declared family.
        summary = families["round_seconds"]
        names = {s["name"] for s in summary["samples"]}
        assert names == {"round_seconds", "round_seconds_sum", "round_seconds_count"}
        assert "round_seconds_sum" not in families

    def test_escaped_labels_roundtrip(self):
        reg = MetricsRegistry()
        value = 'quo"te\\slash\nline'
        reg.counter("c").inc(label=value)
        families = parse_prometheus(render_prometheus(reg.snapshot()))
        assert families["c"]["samples"][0]["labels"] == {"label": value}

    def test_write_prometheus_creates_parents(self, tmp_path):
        path = write_prometheus(populated_snapshot(), tmp_path / "sub" / "m.prom")
        assert path.exists()
        assert parse_prometheus(path.read_text(encoding="utf-8"))


class TestEmptyHistogramExport:
    def test_nan_quantiles_render_and_parse(self):
        reg = MetricsRegistry()
        # A histogram family can exist with an empty-series sibling only via
        # snapshot-level manipulation; the realistic empty case is p-quantile
        # NaN from a zero-observation stream, which snapshot() maps to None.
        snapshot = reg.snapshot()
        assert render_prometheus(snapshot) == "\n"
        text = render_prometheus(
            {
                "h": {
                    "kind": "histogram",
                    "help": "",
                    "series": [
                        {
                            "labels": {},
                            "count": 0,
                            "sum": 0.0,
                            "min": None,
                            "max": None,
                            "p50": None,
                            "p95": None,
                        }
                    ],
                }
            }
        )
        assert 'h{quantile="0.5"} NaN' in text
        families = parse_prometheus(text)
        sample = families["h"]["samples"][0]
        assert sample["value"] != sample["value"]  # NaN
