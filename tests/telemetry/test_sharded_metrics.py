"""Per-shard telemetry from the sharded engine."""

from __future__ import annotations

from repro.kernels.sharded import ShardedCappedProcess
from repro.telemetry import runtime


def test_sharded_run_emits_per_shard_metrics():
    with runtime.session() as tel:
        process = ShardedCappedProcess(n=64, capacity=3, lam=0.9375, seed=1, shards=3)
        for _ in range(8):
            process.step()

        resolve = tel.registry.get("kernel_resolve_seconds")
        labels = [lbl for lbl, _ in resolve.series()]
        for shard in range(3):
            assert {"path": "serial", "shard": str(shard)} in labels

        imbalance = tel.registry.get("shard_imbalance")
        # Slowest-over-mean is >= 1 by construction, and bounded by the
        # shard count.
        assert 1.0 <= imbalance.value() <= 3.0

        rounds = tel.registry.get("rounds_total")
        assert rounds.value(kernel="sharded") == 8.0


def test_disabled_telemetry_costs_nothing_to_shard():
    # No session active: steps must not raise and no registry exists.
    assert runtime.current() is None
    process = ShardedCappedProcess(n=64, capacity=3, lam=0.9375, seed=2, shards=2)
    for _ in range(4):
        process.step()
    process.check_invariants()
