"""Fleet snapshot piggybacking and the merged Prometheus export."""

from __future__ import annotations

from repro.telemetry.fleet import (
    compress_snapshot,
    decompress_snapshot,
    merge_fleet_snapshots,
)
from repro.telemetry.registry import MetricsRegistry
from repro.telemetry.sinks import parse_prometheus, render_prometheus, write_prometheus


def worker_snapshot(kind: str, seconds: list[float]) -> dict:
    reg = MetricsRegistry()
    for value in seconds:
        reg.counter("worker_tasks_total", "Tasks finished.").inc(status="ok")
        reg.histogram("worker_task_seconds", "Per-task seconds.").observe(value, kind=kind)
    return reg.snapshot()


class TestCompression:
    def test_round_trip(self):
        snapshot = worker_snapshot("capped", [0.5, 1.5])
        assert decompress_snapshot(compress_snapshot(snapshot)) == snapshot

    def test_garbage_degrades_to_none(self):
        assert decompress_snapshot("not base64 at all!") is None
        assert decompress_snapshot("") is None
        assert decompress_snapshot("AAAA") is None

    def test_non_dict_payload_rejected(self):
        import base64
        import zlib

        blob = base64.b64encode(zlib.compress(b"[1,2,3]")).decode("ascii")
        assert decompress_snapshot(blob) is None


class TestMerge:
    def test_worker_series_gain_worker_label(self):
        merged = merge_fleet_snapshots({"w-a": worker_snapshot("capped", [1.0])})
        series = merged["worker_task_seconds"]["series"]
        labelled = [s for s in series if s["labels"].get("worker") == "w-a"]
        assert len(labelled) == 1
        assert labelled[0]["labels"]["kind"] == "capped"

    def test_counters_aggregate_across_workers(self):
        merged = merge_fleet_snapshots(
            {
                "w-a": worker_snapshot("capped", [1.0, 2.0]),
                "w-b": worker_snapshot("capped", [3.0]),
            }
        )
        series = merged["worker_tasks_total"]["series"]
        aggregate = [s for s in series if "worker" not in s["labels"]]
        assert len(aggregate) == 1
        assert aggregate[0]["value"] == 3.0

    def test_histograms_aggregate_exact_count_sum_min_max(self):
        merged = merge_fleet_snapshots(
            {
                "w-a": worker_snapshot("capped", [1.0, 2.0]),
                "w-b": worker_snapshot("capped", [5.0]),
            }
        )
        series = merged["worker_task_seconds"]["series"]
        aggregate = next(s for s in series if "worker" not in s["labels"])
        assert aggregate["count"] == 3
        assert aggregate["sum"] == 8.0
        assert aggregate["min"] == 1.0
        assert aggregate["max"] == 5.0
        # Reservoir quantiles do not merge exactly; the aggregate omits them.
        assert "p50" not in aggregate

    def test_base_snapshot_passes_through_unlabelled(self):
        broker = MetricsRegistry()
        broker.gauge("fleet_queue_depth", "Queue depth.").set(4)
        merged = merge_fleet_snapshots(
            {"w-a": worker_snapshot("capped", [1.0])}, base=broker.snapshot()
        )
        (series,) = merged["fleet_queue_depth"]["series"]
        assert series["labels"] == {}
        assert series["value"] == 4.0

    def test_kind_conflict_skipped(self):
        conflicting = MetricsRegistry()
        conflicting.gauge("worker_tasks_total", "Wrong kind.").set(9)
        merged = merge_fleet_snapshots(
            {
                "w-a": worker_snapshot("capped", [1.0]),
                "w-b": conflicting.snapshot(),
            }
        )
        family = merged["worker_tasks_total"]
        assert family["kind"] == "counter"
        assert all(s.get("value") != 9.0 for s in family["series"])


class TestPrometheusRoundTrip:
    def test_fleet_labelled_series_survive_render_and_parse(self, tmp_path):
        broker = MetricsRegistry()
        broker.gauge("fleet_queue_depth", "Queue depth.").set(2)
        broker.histogram("fleet_task_seconds", "Fleet latency.").observe(1.5)
        merged = merge_fleet_snapshots(
            {
                "w-a": worker_snapshot("capped", [1.0, 2.0]),
                "w-b": worker_snapshot("greedy", [4.0]),
            },
            base=broker.snapshot(),
        )
        path = write_prometheus(merged, tmp_path / "fleet.prom")
        families = parse_prometheus(path.read_text(encoding="utf-8"))

        assert families["fleet_queue_depth"]["kind"] == "gauge"
        assert families["fleet_queue_depth"]["samples"][0]["value"] == 2.0

        tasks = families["worker_task_seconds"]
        assert tasks["kind"] == "summary"
        counts = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in tasks["samples"]
            if s["name"] == "worker_task_seconds_count"
        }
        assert counts[(("kind", "capped"), ("worker", "w-a"))] == 2.0
        assert counts[(("kind", "greedy"), ("worker", "w-b"))] == 1.0
        # The merged (unlabelled-worker) aggregates are present too.
        assert counts[(("kind", "capped"),)] == 2.0
        assert counts[(("kind", "greedy"),)] == 1.0

        totals = families["worker_tasks_total"]
        aggregate = [
            s for s in totals["samples"] if "worker" not in s["labels"]
        ]
        assert aggregate and aggregate[0]["value"] == 3.0

    def test_render_parse_values_round_trip_exactly(self):
        merged = merge_fleet_snapshots({"w-a": worker_snapshot("capped", [0.125, 0.25])})
        families = parse_prometheus(render_prometheus(merged))
        sums = [
            s["value"]
            for s in families["worker_task_seconds"]["samples"]
            if s["name"] == "worker_task_seconds_sum" and s["labels"].get("worker") == "w-a"
        ]
        assert sums == [0.375]
