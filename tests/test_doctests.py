"""Run the doc examples embedded in public docstrings.

Documentation that executes is documentation that stays correct; every
module whose docstrings carry ``>>>`` examples is exercised here.
"""

import doctest

import pytest

import repro
import repro.balls.buffer
import repro.balls.pool
import repro.core.capped
import repro.processes.greedy
import repro.rng
import repro.stats.streaming

MODULES = [
    repro.rng,
    repro.balls.buffer,
    repro.balls.pool,
    repro.core.capped,
    repro.processes.greedy,
    repro.stats.streaming,
]


@pytest.mark.parametrize("module", MODULES, ids=lambda m: m.__name__)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"
    assert results.attempted > 0, f"no doctests found in {module.__name__}"


def test_package_docstring_example():
    results = doctest.testmod(repro, verbose=False)
    assert results.failed == 0
