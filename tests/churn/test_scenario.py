"""Tests for the chaos scenario DSL (dict/JSON -> wired observers)."""

import pytest

from repro.churn import (
    Autoscaler,
    AutoscalingPolicy,
    ChaosScenario,
    ChurnInjector,
    ChurnSchedule,
    JoinBurst,
    LeaveBurst,
    scenario_from_dict,
    scenario_from_json,
)
from repro.core.capped import CappedProcess
from repro.engine.driver import SimulationDriver
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.schedule import CrashBurst, FaultSchedule


class TestParsing:
    def test_full_scenario_round_trips(self):
        scenario = scenario_from_dict(
            {
                "faults": {
                    "seed": 1,
                    "events": [
                        {"type": "crash_burst", "at_round": 30, "fraction": 0.1, "duration": 5}
                    ],
                },
                "churn": {
                    "seed": 2,
                    "min_n": 8,
                    "events": [
                        {"type": "join_burst", "at_round": 15, "count": 16},
                        {"type": "leave_burst", "at_round": 40, "fraction": 0.25},
                    ],
                },
                "autoscaling": {"controller": "utilization", "target": 0.7},
                "autoscale_seed": 3,
            }
        )
        assert isinstance(scenario.faults.events[0], CrashBurst)
        assert isinstance(scenario.churn.events[0], JoinBurst)
        assert isinstance(scenario.churn.events[1], LeaveBurst)
        assert scenario.churn.min_n == 8
        assert scenario.autoscaling.target == 0.7
        assert scenario.autoscale_seed == 3

    def test_snake_case_registry_names(self):
        scenario = scenario_from_dict(
            {"churn": {"events": [{"type": "leave_burst", "at_round": 2, "count": 1}]}}
        )
        assert isinstance(scenario.churn.events[0], LeaveBurst)

    def test_unknown_event_type_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown churn event type"):
            scenario_from_dict({"churn": {"events": [{"type": "node_explosion"}]}})

    def test_missing_event_type_rejected(self):
        with pytest.raises(ConfigurationError, match="missing its 'type'"):
            scenario_from_dict({"churn": {"events": [{"at_round": 2, "count": 1}]}})

    def test_unknown_event_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown keys"):
            scenario_from_dict(
                {"churn": {"events": [{"type": "join_burst", "at_round": 2, "cont": 1}]}}
            )

    def test_unknown_schedule_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown keys"):
            scenario_from_dict({"churn": {"sed": 1, "events": []}})

    def test_unknown_top_level_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown scenario keys"):
            scenario_from_dict({"chrun": {}})

    def test_unknown_autoscaling_knobs_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown autoscaling keys"):
            scenario_from_dict({"autoscaling": {"tarjet": 0.5}})

    def test_event_validation_still_applies(self):
        with pytest.raises(ConfigurationError):
            scenario_from_dict(
                {"churn": {"events": [{"type": "join_burst", "at_round": 0, "count": 1}]}}
            )

    def test_non_dict_rejected(self):
        with pytest.raises(ConfigurationError, match="must be a dict"):
            scenario_from_dict(["churn"])

    def test_from_json(self):
        scenario = scenario_from_json(
            '{"churn": {"events": [{"type": "join_burst", "at_round": 3, "count": 2}]}}'
        )
        assert scenario.churn.events[0].count == 2

    def test_from_json_rejects_bad_json(self):
        with pytest.raises(ConfigurationError, match="not valid JSON"):
            scenario_from_json("{nope")


class TestScenario:
    def test_empty_scenario_is_falsy(self):
        assert not ChaosScenario()
        assert not scenario_from_dict({})
        assert scenario_from_dict(
            {"churn": {"events": [{"type": "join_burst", "at_round": 1, "count": 1}]}}
        )
        assert scenario_from_dict({"autoscaling": {}})

    def test_rejects_wrong_part_types(self):
        with pytest.raises(ConfigurationError):
            ChaosScenario(faults=ChurnSchedule())
        with pytest.raises(ConfigurationError):
            ChaosScenario(churn=FaultSchedule())
        with pytest.raises(ConfigurationError):
            ChaosScenario(autoscaling={"target": 0.5})

    def test_build_observers_order_and_types(self):
        scenario = ChaosScenario(
            faults=FaultSchedule(events=(CrashBurst(at_round=5, fraction=0.1, duration=3),)),
            churn=ChurnSchedule(events=(JoinBurst(at_round=3, count=4),)),
            autoscaling=AutoscalingPolicy(),
        )
        observers = scenario.build_observers()
        assert [type(o) for o in observers] == [ChurnInjector, FaultInjector, Autoscaler]

    def test_build_observers_skips_absent_parts(self):
        observers = ChaosScenario(
            churn=ChurnSchedule(events=(JoinBurst(at_round=3, count=4),))
        ).build_observers()
        assert [type(o) for o in observers] == [ChurnInjector]
        assert ChaosScenario().build_observers() == []

    def test_builds_fresh_observers_each_call(self):
        scenario = ChaosScenario(churn=ChurnSchedule(events=(JoinBurst(at_round=3, count=4),)))
        a = scenario.build_observers()
        b = scenario.build_observers()
        assert a[0] is not b[0]

    def test_remap_cross_wiring(self):
        # A churn shrink must remap the fault injector's down-map so a
        # crashed bin keeps being tracked under its compacted index.
        scenario = scenario_from_dict(
            {
                "faults": {
                    "seed": 4,
                    "events": [
                        {"type": "crash_burst", "at_round": 2, "fraction": 0.5, "duration": 30}
                    ],
                },
                "churn": {
                    "seed": 9,
                    "events": [
                        {"type": "leave_burst", "at_round": 5, "fraction": 0.5, "policy": "drop"}
                    ],
                },
            }
        )
        process = CappedProcess(n=32, capacity=2, lam=0.5, rng=6)
        observers = scenario.build_observers()
        fault_injector = observers[1]
        for _ in range(10):
            record = process.step()
            for observer in observers:
                observer.on_round(record, process)
        assert process.n == 16
        # Remaining down bins all map inside the compacted index space,
        # and the fault injector's bookkeeping agrees with the bin mask.
        down = process.bins.down
        assert down.shape[0] == 16
        assert fault_injector.down_count == int(down.sum())
        process.check_invariants()


class TestDriverIntegration:
    def test_scenario_observers_drive_a_run(self):
        scenario = scenario_from_dict(
            {
                "churn": {
                    "seed": 5,
                    "events": [
                        {"type": "join_burst", "at_round": 10, "count": 8},
                        {"type": "leave_burst", "at_round": 20, "count": 4, "policy": "rehash"},
                    ],
                },
                "faults": {
                    "seed": 6,
                    "events": [
                        {"type": "crash_burst", "at_round": 15, "fraction": 0.1, "duration": 5}
                    ],
                },
            }
        )
        process = CappedProcess(n=32, capacity=2, lam=0.75, rng=7)
        driver = SimulationDriver(burn_in=5, measure=25, observers=scenario.build_observers())
        result = driver.run(process)
        assert process.n == 36
        assert len(result.pool_series) == 25
        process.check_invariants()
