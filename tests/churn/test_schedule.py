"""Validation tests for churn schedule dataclasses."""

import pytest

from repro.churn import (
    ChurnSchedule,
    Flapping,
    JoinBurst,
    LeaveBurst,
    PoissonChurn,
    Ramp,
)
from repro.errors import ConfigurationError


class TestJoinBurst:
    def test_valid(self):
        event = JoinBurst(at_round=5, count=8)
        assert event.capacity is None

    def test_rejects_bad_round(self):
        with pytest.raises(ConfigurationError):
            JoinBurst(at_round=0, count=1)

    def test_rejects_zero_count(self):
        with pytest.raises(ConfigurationError):
            JoinBurst(at_round=1, count=0)

    def test_rejects_zero_capacity(self):
        with pytest.raises(ConfigurationError):
            JoinBurst(at_round=1, count=1, capacity=0)


class TestLeaveBurst:
    def test_fraction_or_count_exactly_one(self):
        with pytest.raises(ConfigurationError):
            LeaveBurst(at_round=1)
        with pytest.raises(ConfigurationError):
            LeaveBurst(at_round=1, fraction=0.5, count=3)

    def test_fraction_range(self):
        with pytest.raises(ConfigurationError):
            LeaveBurst(at_round=1, fraction=0.0)
        with pytest.raises(ConfigurationError):
            LeaveBurst(at_round=1, fraction=1.5)
        LeaveBurst(at_round=1, fraction=1.0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigurationError):
            LeaveBurst(at_round=1, count=1, policy="explode")

    def test_drain_policy_accepted(self):
        assert LeaveBurst(at_round=1, count=2, policy="drain").policy == "drain"


class TestFlapping:
    def test_valid(self):
        Flapping(first_round=1, period=10, down_rounds=3, count=2)

    def test_down_rounds_must_fit_period(self):
        with pytest.raises(ConfigurationError):
            Flapping(first_round=1, period=5, down_rounds=5)
        with pytest.raises(ConfigurationError):
            Flapping(first_round=1, period=5, down_rounds=0)

    def test_last_round_after_first(self):
        with pytest.raises(ConfigurationError):
            Flapping(first_round=10, period=5, down_rounds=2, last_round=9)


class TestPoissonChurn:
    def test_valid(self):
        PoissonChurn(join_rate=0.5, leave_rate=0.5)

    def test_rejects_negative_rates(self):
        with pytest.raises(ConfigurationError):
            PoissonChurn(join_rate=-0.1, leave_rate=0.5)

    def test_rejects_both_zero(self):
        with pytest.raises(ConfigurationError):
            PoissonChurn(join_rate=0.0, leave_rate=0.0)

    def test_window_ordering(self):
        with pytest.raises(ConfigurationError):
            PoissonChurn(join_rate=1.0, leave_rate=0.0, first_round=10, last_round=5)


class TestRamp:
    def test_valid(self):
        Ramp(start_round=5, end_round=20, target_n=100)

    def test_end_after_start(self):
        with pytest.raises(ConfigurationError):
            Ramp(start_round=5, end_round=5, target_n=100)

    def test_target_positive(self):
        with pytest.raises(ConfigurationError):
            Ramp(start_round=1, end_round=2, target_n=0)


class TestChurnSchedule:
    def test_empty_schedule_is_falsy(self):
        assert not ChurnSchedule()
        assert ChurnSchedule(events=(JoinBurst(at_round=1, count=1),))

    def test_rejects_foreign_event_types(self):
        with pytest.raises(ConfigurationError):
            ChurnSchedule(events=("join",))

    def test_rejects_bad_bounds(self):
        with pytest.raises(ConfigurationError):
            ChurnSchedule(min_n=0)
        with pytest.raises(ConfigurationError):
            ChurnSchedule(min_n=10, max_n=5)

    def test_events_normalised_to_tuple(self):
        schedule = ChurnSchedule(events=[JoinBurst(at_round=1, count=1)])
        assert isinstance(schedule.events, tuple)
