"""Tests for the occupancy/wait-driven autoscaler."""

import pytest

from repro.churn import Autoscaler, AutoscalingPolicy
from repro.core.capped import CappedProcess
from repro.errors import ConfigurationError


def run_with_autoscaler(process, scaler, rounds):
    for _ in range(rounds):
        record = process.step()
        scaler.on_round(record, process)


class TestPolicyValidation:
    def test_defaults_valid(self):
        AutoscalingPolicy()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"controller": "cpu"},
            {"target": 0.0},
            {"band": 1.0},
            {"window": 0},
            {"check_every": 0},
            {"cooldown": -1},
            {"max_step": 0},
            {"min_n": 0},
            {"min_n": 10, "max_n": 5},
            {"policy": "explode"},
            {"capacity_max": 0},
        ],
    )
    def test_rejects_bad_knobs(self, kwargs):
        with pytest.raises(ConfigurationError):
            AutoscalingPolicy(**kwargs)

    def test_drain_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            AutoscalingPolicy(policy="drain")

    def test_scaler_requires_policy_instance(self):
        with pytest.raises(ConfigurationError):
            Autoscaler({"target": 0.5})


class TestUtilizationController:
    def test_scales_out_under_high_occupancy(self):
        # High lam on a c=4 pool holds occupancy near 0.5, far above the
        # 0.25 target. (c=1 would not work: accepted balls are always the
        # oldest, so FIFO deletion empties the bins every round.)
        process = CappedProcess(n=32, capacity=4, lam=0.96875, rng=1, initial_pool=64)
        scaler = Autoscaler(
            AutoscalingPolicy(
                controller="utilization", target=0.25, band=0.1, window=5, check_every=5,
                cooldown=0, max_step=8,
            ),
            seed=3,
        )
        run_with_autoscaler(process, scaler, 10)
        assert scaler.scale_outs >= 1
        assert process.n > 32
        process.check_invariants()

    def test_scales_in_under_low_occupancy(self):
        process = CappedProcess(n=64, capacity=4, lam=0.25, rng=2)
        scaler = Autoscaler(
            AutoscalingPolicy(
                controller="utilization", target=0.5, band=0.1, window=5, check_every=5,
                cooldown=0, max_step=16, min_n=8,
            ),
            seed=3,
        )
        run_with_autoscaler(process, scaler, 30)
        assert scaler.scale_ins >= 1
        assert 8 <= process.n < 64
        process.check_invariants()

    def test_deadband_holds_membership(self):
        # A signal inside target ± band never triggers a decision.
        process = CappedProcess(n=32, capacity=2, lam=0.5, rng=3)
        scaler = Autoscaler(
            AutoscalingPolicy(
                controller="utilization", target=0.35, band=0.9, window=5, check_every=5,
                cooldown=0,
            ),
            seed=1,
        )
        run_with_autoscaler(process, scaler, 30)
        assert scaler.scale_outs == 0 and scaler.scale_ins == 0
        assert process.n == 32

    def test_cooldown_limits_event_rate(self):
        process = CappedProcess(n=64, capacity=4, lam=0.25, rng=2)
        scaler = Autoscaler(
            AutoscalingPolicy(
                controller="utilization", target=0.5, band=0.05, window=2, check_every=2,
                cooldown=20, max_step=4, min_n=8,
            ),
            seed=3,
        )
        run_with_autoscaler(process, scaler, 40)
        events = [t for t, _ in scaler.events_log]
        assert all(b - a >= 20 for a, b in zip(events, events[1:]))

    def test_unbounded_pool_rejected(self):
        process = CappedProcess(n=16, capacity=None, lam=0.5, rng=1)
        scaler = Autoscaler(AutoscalingPolicy(controller="utilization"))
        record = process.step()
        with pytest.raises(ConfigurationError):
            scaler.on_round(record, process)

    def test_capacity_raise_at_max_n(self):
        process = CappedProcess(n=16, capacity=2, lam=0.9375, rng=4, initial_pool=64)
        scaler = Autoscaler(
            AutoscalingPolicy(
                controller="utilization", target=0.2, band=0.05, window=3, check_every=3,
                cooldown=0, max_n=16, capacity_max=4,
            ),
            seed=5,
        )
        run_with_autoscaler(process, scaler, 30)
        assert scaler.capacity_raises >= 1
        assert process.bins.capacity > 2
        assert process.n == 16
        process.check_invariants()

    def test_one_scaler_per_process(self):
        a = CappedProcess(n=16, capacity=2, lam=0.5, rng=1)
        b = CappedProcess(n=16, capacity=2, lam=0.5, rng=2)
        scaler = Autoscaler(AutoscalingPolicy())
        scaler.on_round(a.step(), a)
        with pytest.raises(ConfigurationError):
            scaler.on_round(b.step(), b)


class TestP99Controller:
    def test_scales_out_on_high_waits(self):
        # Saturated c=1 run: waits blow past a 1-round target.
        process = CappedProcess(n=32, capacity=1, lam=0.96875, rng=6, initial_pool=256)
        scaler = Autoscaler(
            AutoscalingPolicy(
                controller="p99_wait", target=1.0, band=0.2, window=5, check_every=5,
                cooldown=0, max_step=16,
            ),
            seed=7,
        )
        run_with_autoscaler(process, scaler, 25)
        assert scaler.scale_outs >= 1
        assert process.n > 32
        process.check_invariants()

    def test_works_on_unbounded_pool(self):
        # p99 controller never reads capacity, so c=None is fine.
        process = CappedProcess(n=16, capacity=None, lam=0.5, rng=8)
        scaler = Autoscaler(
            AutoscalingPolicy(controller="p99_wait", target=5.0, window=3, check_every=3)
        )
        run_with_autoscaler(process, scaler, 10)
        process.check_invariants()


class TestStateRoundTrip:
    def _build(self):
        process = CappedProcess(n=64, capacity=4, lam=0.25, rng=9)
        scaler = Autoscaler(
            AutoscalingPolicy(
                controller="utilization", target=0.5, band=0.05, window=4, check_every=4,
                cooldown=8, max_step=8, min_n=8,
            ),
            seed=11,
        )
        return process, scaler

    def test_snapshot_resumes_identically(self):
        process, scaler = self._build()
        run_with_autoscaler(process, scaler, 13)
        proc_state = process.get_state()
        scaler_state = scaler.get_state()

        run_with_autoscaler(process, scaler, 20)
        reference = (process.n, scaler.scale_ins, scaler.scale_outs, scaler.events_log)

        restored = CappedProcess(n=64, capacity=4, lam=0.25, rng=0)
        restored.set_state(proc_state)
        _, scaler2 = self._build()
        scaler2.set_state(scaler_state)
        run_with_autoscaler(restored, scaler2, 20)
        assert (restored.n, scaler2.scale_ins, scaler2.scale_outs, scaler2.events_log) == reference
