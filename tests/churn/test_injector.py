"""Behavioural tests for :class:`repro.churn.ChurnInjector`.

The invariants under test: membership changes land at the scheduled round,
re-hashing conserves balls, drain removal is two-stage and loss-free, all
randomness comes from the schedule's own stream (determinism + zero
perturbation of static runs), and injector state round-trips through
get_state/set_state bit-identically.
"""

import numpy as np
import pytest

from repro.churn import (
    ChurnInjector,
    ChurnSchedule,
    Flapping,
    JoinBurst,
    LeaveBurst,
    PoissonChurn,
    Ramp,
    removal_mapping,
)
from repro.core.capped import CappedProcess
from repro.errors import ConfigurationError

from tests.kernels.test_fused_equivalence import assert_records_equal


def run_with_churn(process, injector, rounds):
    """Step the process, delivering each record to the injector (driver order)."""
    records = []
    for _ in range(rounds):
        record = process.step()
        injector.on_round(record, process)
        records.append(record)
    return records


def total_balls(process):
    return process.pool.size + process.bins.total_load


class TestRemovalMapping:
    def test_compacts_survivors_in_order(self):
        mapping = removal_mapping(6, np.array([1, 4]))
        assert mapping.tolist() == [0, -1, 1, 2, -1, 3]

    def test_identity_when_nothing_removed(self):
        assert removal_mapping(4, np.array([], dtype=np.int64)).tolist() == [0, 1, 2, 3]


class TestJoinBurst:
    def test_membership_grows_at_scheduled_round(self):
        process = CappedProcess(n=32, capacity=2, lam=0.5, rng=1)
        injector = ChurnInjector(
            ChurnSchedule(events=(JoinBurst(at_round=3, count=8),), seed=5)
        )
        run_with_churn(process, injector, 2)
        assert process.n == 32
        run_with_churn(process, injector, 1)
        assert process.n == 40
        assert injector.joins == 8
        process.check_invariants()

    def test_max_n_clamps_joins(self):
        process = CappedProcess(n=32, capacity=2, lam=0.5, rng=1)
        injector = ChurnInjector(
            ChurnSchedule(events=(JoinBurst(at_round=2, count=100),), seed=5, max_n=36)
        )
        run_with_churn(process, injector, 3)
        assert process.n == 36


class TestLeaveBurst:
    def test_rehash_conserves_balls(self):
        process = CappedProcess(n=32, capacity=2, lam=0.75, rng=2)
        injector = ChurnInjector(
            ChurnSchedule(events=(LeaveBurst(at_round=6, count=8),), seed=9)
        )
        for _ in range(5):
            record = process.step()
            injector.on_round(record, process)
        record = process.step()
        before = record.pool_size + record.total_load
        injector.on_round(record, process)
        assert process.n == 24
        assert total_balls(process) == before
        assert injector.balls_rehashed >= 0
        assert injector.balls_dropped == 0
        process.check_invariants()

    def test_drop_discards_queued_balls(self):
        process = CappedProcess(n=32, capacity=2, lam=0.75, rng=2)
        injector = ChurnInjector(
            ChurnSchedule(events=(LeaveBurst(at_round=6, fraction=0.25, policy="drop"),), seed=9)
        )
        for _ in range(5):
            record = process.step()
            injector.on_round(record, process)
        record = process.step()
        before = record.pool_size + record.total_load
        injector.on_round(record, process)
        assert process.n == 24
        assert total_balls(process) == before - injector.balls_dropped
        assert injector.balls_rehashed == 0
        process.check_invariants()

    def test_min_n_truncates_leaves(self):
        process = CappedProcess(n=16, capacity=2, lam=0.5, rng=3)
        injector = ChurnInjector(
            ChurnSchedule(events=(LeaveBurst(at_round=2, fraction=1.0),), seed=1, min_n=4)
        )
        run_with_churn(process, injector, 4)
        assert process.n == 4
        process.check_invariants()

    def test_drain_is_two_stage_and_lossless(self):
        process = CappedProcess(n=32, capacity=3, lam=0.9375, rng=4)
        injector = ChurnInjector(
            ChurnSchedule(events=(LeaveBurst(at_round=8, count=6, policy="drain"),), seed=2)
        )
        totals = []
        for t in range(1, 16):
            record = process.step()
            before = record.pool_size + record.total_load
            injector.on_round(record, process)
            totals.append((t, before, total_balls(process), process.n))
            process.check_invariants()
        # Sealed at round 8: membership unchanged until the drains empty.
        at_seal = next(row for row in totals if row[0] == 8)
        assert at_seal[3] == 32
        assert process.bins.draining.sum() == 0  # all drains finished
        assert process.n == 26
        assert injector.balls_dropped == 0
        assert injector.balls_rehashed == 0
        # Drain never loses a ball at any injection boundary.
        for _, before, after, _ in totals:
            assert after == before

    def test_victims_never_include_draining_bins(self):
        # Two overlapping drain bursts: the second must pick victims from
        # live bins only, and both drain groups are eventually removed.
        process = CappedProcess(n=32, capacity=3, lam=0.9375, rng=4)
        injector = ChurnInjector(
            ChurnSchedule(
                events=(
                    LeaveBurst(at_round=5, count=4, policy="drain"),
                    LeaveBurst(at_round=6, count=4, policy="drain"),
                ),
                seed=2,
            )
        )
        run_with_churn(process, injector, 20)
        assert process.n == 24
        assert process.bins.draining.sum() == 0
        process.check_invariants()


class TestTimeVaryingEvents:
    def test_flapping_oscillates_and_returns(self):
        process = CappedProcess(n=32, capacity=2, lam=0.5, rng=5)
        injector = ChurnInjector(
            ChurnSchedule(
                events=(Flapping(first_round=4, period=10, down_rounds=3, count=2, last_round=5),),
                seed=7,
            )
        )
        sizes = []
        for _ in range(12):
            record = process.step()
            injector.on_round(record, process)
            sizes.append(process.n)
        assert sizes[3] == 30  # departure at round 4
        assert sizes[6] == 32  # rejoin 3 rounds later
        assert sizes[-1] == 32
        process.check_invariants()

    def test_ramp_reaches_target(self):
        process = CappedProcess(n=32, capacity=2, lam=0.5, rng=6)
        injector = ChurnInjector(
            ChurnSchedule(events=(Ramp(start_round=2, end_round=10, target_n=56),), seed=3)
        )
        run_with_churn(process, injector, 12)
        assert process.n == 56
        process.check_invariants()

    def test_ramp_down(self):
        process = CappedProcess(n=32, capacity=2, lam=0.5, rng=6)
        injector = ChurnInjector(
            ChurnSchedule(events=(Ramp(start_round=2, end_round=10, target_n=16),), seed=3)
        )
        run_with_churn(process, injector, 12)
        assert process.n == 16
        process.check_invariants()

    def test_poisson_churn_respects_bounds(self):
        process = CappedProcess(n=16, capacity=2, lam=0.5, rng=7)
        injector = ChurnInjector(
            ChurnSchedule(
                events=(PoissonChurn(join_rate=3.0, leave_rate=3.0),),
                seed=11,
                min_n=12,
                max_n=20,
            )
        )
        for _ in range(40):
            record = process.step()
            injector.on_round(record, process)
            assert 12 <= process.n <= 20
        process.check_invariants()


class TestDeterminism:
    def _trajectory(self, seed):
        process = CappedProcess(n=32, capacity=2, lam=0.75, rng=1)
        injector = ChurnInjector(
            ChurnSchedule(
                events=(PoissonChurn(join_rate=1.0, leave_rate=1.0),), seed=seed, min_n=8
            )
        )
        sizes = []
        for _ in range(30):
            record = process.step()
            injector.on_round(record, process)
            sizes.append(process.n)
        return sizes

    def test_same_seed_same_trajectory(self):
        assert self._trajectory(5) == self._trajectory(5)

    def test_churn_stream_independent_of_process_stream(self):
        # Same schedule seed over different process seeds: the Poisson
        # draws (join/leave counts) must not depend on the process RNG.
        def counts(process_seed):
            process = CappedProcess(n=64, capacity=2, lam=0.5, rng=process_seed)
            injector = ChurnInjector(
                ChurnSchedule(events=(PoissonChurn(join_rate=2.0, leave_rate=0.0),), seed=13)
            )
            run_with_churn(process, injector, 10)
            return injector.joins

        assert counts(1) == counts(2)

    def test_empty_schedule_is_bit_identical_noop(self):
        plain = CappedProcess(n=32, capacity=2, lam=0.75, rng=9)
        churned = CappedProcess(n=32, capacity=2, lam=0.75, rng=9)
        injector = ChurnInjector(ChurnSchedule())
        for _ in range(40):
            a = plain.step()
            b = churned.step()
            injector.on_round(b, churned)
            assert_records_equal(a, b)
        assert np.array_equal(plain.bins.loads, churned.bins.loads)
        assert plain.pool.size == churned.pool.size


class TestStateRoundTrip:
    def test_mid_run_snapshot_resumes_identically(self):
        schedule = ChurnSchedule(
            events=(
                JoinBurst(at_round=4, count=8),
                LeaveBurst(at_round=9, count=6, policy="drain"),
                PoissonChurn(join_rate=0.5, leave_rate=0.5, first_round=12),
            ),
            seed=21,
            min_n=8,
        )

        process = CappedProcess(n=32, capacity=2, lam=0.75, rng=8)
        injector = ChurnInjector(schedule)
        run_with_churn(process, injector, 10)  # past the resize, drains pending
        proc_state = process.get_state()
        inj_state = injector.get_state()
        reference = [
            (r.round, r.pool_size, r.total_load, process.n)
            for r in run_with_churn(process, injector, 15)
        ]

        restored = CappedProcess(n=32, capacity=2, lam=0.75, rng=0)
        restored.set_state(proc_state)
        injector2 = ChurnInjector(schedule)
        injector2.set_state(inj_state)
        replay = [
            (r.round, r.pool_size, r.total_load, restored.n)
            for r in run_with_churn(restored, injector2, 15)
        ]
        assert replay == reference

    def test_set_state_rejects_garbage(self):
        injector = ChurnInjector(ChurnSchedule())
        with pytest.raises((KeyError, TypeError, ConfigurationError)):
            injector.set_state({"bogus": 1})
