"""Unit tests for the diurnal arrival model."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.arrivals import DiurnalArrivals


class TestDiurnal:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(n=10, base=1.0, amplitude=0.1, period=10)
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(n=10, base=0.5, amplitude=-0.1, period=10)
        with pytest.raises(ConfigurationError):
            DiurnalArrivals(n=10, base=0.5, amplitude=0.1, period=1)

    def test_oscillates_around_base(self, rng):
        workload = DiurnalArrivals(n=1000, base=0.5, amplitude=0.25, period=40)
        counts = [workload.arrivals(t, rng) for t in range(1, 41)]
        assert max(counts) == pytest.approx(750, abs=5)
        assert min(counts) == pytest.approx(250, abs=5)
        assert np.mean(counts) == pytest.approx(500, rel=0.02)

    def test_rate_clamped_to_unit_interval(self, rng):
        workload = DiurnalArrivals(n=100, base=0.9, amplitude=0.5, period=10)
        for t in range(1, 21):
            assert 0 <= workload.arrivals(t, rng) <= 100

    def test_periodicity(self, rng):
        workload = DiurnalArrivals(n=500, base=0.5, amplitude=0.3, period=16)
        first = [workload.arrivals(t, rng) for t in range(1, 17)]
        second = [workload.arrivals(t, rng) for t in range(17, 33)]
        assert first == second

    def test_mean_rate(self):
        assert DiurnalArrivals(n=10, base=0.6, amplitude=0.2, period=8).mean_rate == 0.6

    def test_capped_stays_stable_under_diurnal_load(self):
        # The pool tracks the oscillation but never runs away when the
        # peak rate stays below 1.
        from repro.core.capped import CappedProcess
        from repro.engine.driver import SimulationDriver

        workload = DiurnalArrivals(n=256, base=0.625, amplitude=0.25, period=64)
        process = CappedProcess(n=256, capacity=2, lam=0.625, rng=0, arrivals=workload)
        result = SimulationDriver(burn_in=128, measure=256).run(process)
        assert result.summary.peak_pool < 3 * 256
        assert result.summary.throughput == pytest.approx(0.625 * 256, rel=0.1)
