"""Unit tests for arrival processes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.arrivals import (
    AdversarialArrivals,
    ArrivalProcess,
    BernoulliArrivals,
    BurstyArrivals,
    DeterministicArrivals,
    HeavyTailedArrivals,
    PoissonArrivals,
    StochasticDiurnalArrivals,
    TraceArrivals,
    make_arrivals,
)


class TestDeterministic:
    def test_exact_count(self, rng):
        arrivals = DeterministicArrivals(n=100, lam=0.75)
        assert arrivals.arrivals(1, rng) == 75
        assert arrivals.per_round == 75

    def test_non_integral_rejected(self):
        with pytest.raises(ConfigurationError):
            DeterministicArrivals(n=100, lam=0.111)

    def test_lambda_range(self):
        with pytest.raises(ConfigurationError):
            DeterministicArrivals(n=100, lam=1.0)
        with pytest.raises(ConfigurationError):
            DeterministicArrivals(n=100, lam=-0.1)

    def test_zero_rate(self, rng):
        assert DeterministicArrivals(n=10, lam=0.0).arrivals(1, rng) == 0

    def test_mean_rate(self):
        assert DeterministicArrivals(n=8, lam=0.5).mean_rate == 0.5

    def test_protocol_conformance(self):
        assert isinstance(DeterministicArrivals(n=8, lam=0.5), ArrivalProcess)


class TestBernoulli:
    def test_mean_close_to_lambda_n(self, rng):
        arrivals = BernoulliArrivals(n=1000, lam=0.3)
        samples = [arrivals.arrivals(t, rng) for t in range(500)]
        assert np.mean(samples) == pytest.approx(300, rel=0.05)

    def test_bounded_by_n(self, rng):
        arrivals = BernoulliArrivals(n=50, lam=0.9)
        assert all(arrivals.arrivals(t, rng) <= 50 for t in range(200))


class TestPoisson:
    def test_mean_close_to_lambda_n(self, rng):
        arrivals = PoissonArrivals(n=1000, lam=0.3)
        samples = [arrivals.arrivals(t, rng) for t in range(500)]
        assert np.mean(samples) == pytest.approx(300, rel=0.05)

    def test_variance_close_to_mean(self, rng):
        arrivals = PoissonArrivals(n=1000, lam=0.5)
        samples = [arrivals.arrivals(t, rng) for t in range(2000)]
        assert np.var(samples) == pytest.approx(500, rel=0.15)


class TestBursty:
    def test_alternation(self, rng):
        arrivals = BurstyArrivals(n=100, lam_high=1.0, lam_low=0.0, on_rounds=2, off_rounds=3)
        counts = [arrivals.arrivals(t, rng) for t in range(1, 11)]
        assert counts == [100, 100, 0, 0, 0, 100, 100, 0, 0, 0]

    def test_mean_rate(self):
        arrivals = BurstyArrivals(n=100, lam_high=1.0, lam_low=0.5, on_rounds=1, off_rounds=1)
        assert arrivals.mean_rate == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstyArrivals(n=10, lam_high=0.2, lam_low=0.5, on_rounds=1, off_rounds=1)
        with pytest.raises(ConfigurationError):
            BurstyArrivals(n=10, lam_high=0.9, lam_low=0.5, on_rounds=0, off_rounds=1)


class TestAdversarial:
    def test_schedule_respected(self, rng):
        arrivals = AdversarialArrivals(n=10, schedule=lambda t: t * 2)
        assert arrivals.arrivals(3, rng) == 6

    def test_negative_schedule_rejected(self, rng):
        arrivals = AdversarialArrivals(n=10, schedule=lambda t: -1)
        with pytest.raises(ConfigurationError):
            arrivals.arrivals(1, rng)


class TestTrace:
    def test_cycles(self, rng):
        arrivals = TraceArrivals(n=10, trace=(1, 2, 3))
        assert [arrivals.arrivals(t, rng) for t in range(1, 8)] == [1, 2, 3, 1, 2, 3, 1]

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceArrivals(n=10, trace=())

    def test_mean_rate(self):
        assert TraceArrivals(n=10, trace=(5, 15)).mean_rate == pytest.approx(1.0)


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(make_arrivals("deterministic", 10, 0.5), DeterministicArrivals)
        assert isinstance(make_arrivals("bernoulli", 10, 0.5), BernoulliArrivals)
        assert isinstance(make_arrivals("poisson", 10, 0.5), PoissonArrivals)

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_arrivals("weird", 10, 0.5)


class TestStochasticDiurnal:
    def test_mean_tracks_rate_at(self):
        arrivals = StochasticDiurnalArrivals(n=1000, base=0.5, amplitude=0.3, period=48)
        rng = np.random.default_rng(0)
        for t in (1, 13, 25, 37):
            draws = [arrivals.arrivals(t, np.random.default_rng(s)) for s in range(200)]
            expected = arrivals.rate_at(t) * 1000
            assert abs(np.mean(draws) - expected) < 0.05 * max(expected, 1.0)
        assert arrivals.arrivals(1, rng) >= 0

    def test_rate_clamped_to_unit_interval(self):
        arrivals = StochasticDiurnalArrivals(n=100, base=0.9, amplitude=0.5, period=10)
        rates = [arrivals.rate_at(t) for t in range(1, 11)]
        assert max(rates) == 1.0
        assert min(rates) >= 0.0

    def test_period_phase(self):
        arrivals = StochasticDiurnalArrivals(n=100, base=0.5, amplitude=0.2, period=24)
        assert arrivals.rate_at(1) == pytest.approx(0.5)  # sin(0) at round 1
        assert arrivals.rate_at(7) == pytest.approx(0.7)  # quarter period: peak
        assert arrivals.rate_at(25) == pytest.approx(arrivals.rate_at(1))

    def test_seeded_determinism(self):
        arrivals = StochasticDiurnalArrivals(n=500, base=0.5, amplitude=0.3, period=12)
        a = [arrivals.arrivals(t, np.random.default_rng(7)) for t in range(1, 6)]
        b = [arrivals.arrivals(t, np.random.default_rng(7)) for t in range(1, 6)]
        assert a == b

    def test_mean_rate_is_base(self):
        assert StochasticDiurnalArrivals(n=10, base=0.4, amplitude=0.1, period=6).mean_rate == 0.4

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            StochasticDiurnalArrivals(n=10, base=1.5, amplitude=0.1, period=6)
        with pytest.raises(ConfigurationError):
            StochasticDiurnalArrivals(n=10, base=0.5, amplitude=-0.1, period=6)
        with pytest.raises(ConfigurationError):
            StochasticDiurnalArrivals(n=10, base=0.5, amplitude=0.1, period=1)


class TestHeavyTailed:
    def test_floor_without_burst(self):
        # burst_prob tiny: almost every round is the deterministic floor.
        arrivals = HeavyTailedArrivals(n=100, lam=0.5, burst_prob=1e-12)
        rng = np.random.default_rng(3)
        assert all(arrivals.arrivals(t, rng) == 50 for t in range(1, 50))

    def test_bursts_bounded_by_cap(self):
        arrivals = HeavyTailedArrivals(
            n=100, lam=0.5, burst_prob=1.0, alpha=0.8, burst_scale=0.5, burst_cap=10.0
        )
        rng = np.random.default_rng(4)
        ceiling = 50 + round(10.0 * 0.5 * 100)
        draws = [arrivals.arrivals(t, rng) for t in range(1, 200)]
        assert all(50 < d <= ceiling for d in draws)

    def test_mean_burst_multiple_exact(self):
        # alpha=2: E[min(c, 1+Pareto(2))] = 1 + (1 - 1/c); alpha=1 is the
        # log form 1 + ln(c).
        assert HeavyTailedArrivals(
            n=10, lam=0.5, alpha=2.0, burst_cap=20.0
        ).mean_burst_multiple == pytest.approx(1 + (1 - 1 / 20.0))
        assert HeavyTailedArrivals(
            n=10, lam=0.5, alpha=1.0, burst_cap=20.0
        ).mean_burst_multiple == pytest.approx(1 + np.log(20.0))

    def test_mean_rate_accounts_for_bursts(self):
        arrivals = HeavyTailedArrivals(n=10, lam=0.5, burst_prob=0.1, burst_scale=0.5)
        assert arrivals.mean_rate == pytest.approx(
            0.5 + 0.1 * 0.5 * arrivals.mean_burst_multiple
        )

    def test_seeded_determinism(self):
        arrivals = HeavyTailedArrivals(n=200, lam=0.5, burst_prob=0.3)
        a = [arrivals.arrivals(t, np.random.default_rng(9)) for t in range(1, 20)]
        b = [arrivals.arrivals(t, np.random.default_rng(9)) for t in range(1, 20)]
        assert a == b

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            HeavyTailedArrivals(n=10, lam=1.5)
        with pytest.raises(ConfigurationError):
            HeavyTailedArrivals(n=10, lam=0.5, burst_prob=0.0)
        with pytest.raises(ConfigurationError):
            HeavyTailedArrivals(n=10, lam=0.5, burst_prob=1.5)
        with pytest.raises(ConfigurationError):
            HeavyTailedArrivals(n=10, lam=0.5, alpha=0.0)
        with pytest.raises(ConfigurationError):
            HeavyTailedArrivals(n=10, lam=0.5, burst_scale=0.0)
        with pytest.raises(ConfigurationError):
            HeavyTailedArrivals(n=10, lam=0.5, burst_cap=0.5)


class TestFactoryElasticKinds:
    def test_heavy_tailed_kind(self):
        arrivals = make_arrivals("heavy_tailed", 10, 0.5, burst_prob=0.2)
        assert isinstance(arrivals, HeavyTailedArrivals)
        assert arrivals.burst_prob == 0.2

    def test_diurnal_kind_builds_stochastic(self):
        arrivals = make_arrivals("diurnal", 10, 0.5, amplitude=0.2, period=24)
        assert isinstance(arrivals, StochasticDiurnalArrivals)
        assert arrivals.base == 0.5

    def test_unknown_kind_lists_diurnal(self):
        with pytest.raises(ConfigurationError, match="diurnal"):
            make_arrivals("weird", 10, 0.5)
