"""Unit tests for arrival processes."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.workloads.arrivals import (
    AdversarialArrivals,
    ArrivalProcess,
    BernoulliArrivals,
    BurstyArrivals,
    DeterministicArrivals,
    PoissonArrivals,
    TraceArrivals,
    make_arrivals,
)


class TestDeterministic:
    def test_exact_count(self, rng):
        arrivals = DeterministicArrivals(n=100, lam=0.75)
        assert arrivals.arrivals(1, rng) == 75
        assert arrivals.per_round == 75

    def test_non_integral_rejected(self):
        with pytest.raises(ConfigurationError):
            DeterministicArrivals(n=100, lam=0.111)

    def test_lambda_range(self):
        with pytest.raises(ConfigurationError):
            DeterministicArrivals(n=100, lam=1.0)
        with pytest.raises(ConfigurationError):
            DeterministicArrivals(n=100, lam=-0.1)

    def test_zero_rate(self, rng):
        assert DeterministicArrivals(n=10, lam=0.0).arrivals(1, rng) == 0

    def test_mean_rate(self):
        assert DeterministicArrivals(n=8, lam=0.5).mean_rate == 0.5

    def test_protocol_conformance(self):
        assert isinstance(DeterministicArrivals(n=8, lam=0.5), ArrivalProcess)


class TestBernoulli:
    def test_mean_close_to_lambda_n(self, rng):
        arrivals = BernoulliArrivals(n=1000, lam=0.3)
        samples = [arrivals.arrivals(t, rng) for t in range(500)]
        assert np.mean(samples) == pytest.approx(300, rel=0.05)

    def test_bounded_by_n(self, rng):
        arrivals = BernoulliArrivals(n=50, lam=0.9)
        assert all(arrivals.arrivals(t, rng) <= 50 for t in range(200))


class TestPoisson:
    def test_mean_close_to_lambda_n(self, rng):
        arrivals = PoissonArrivals(n=1000, lam=0.3)
        samples = [arrivals.arrivals(t, rng) for t in range(500)]
        assert np.mean(samples) == pytest.approx(300, rel=0.05)

    def test_variance_close_to_mean(self, rng):
        arrivals = PoissonArrivals(n=1000, lam=0.5)
        samples = [arrivals.arrivals(t, rng) for t in range(2000)]
        assert np.var(samples) == pytest.approx(500, rel=0.15)


class TestBursty:
    def test_alternation(self, rng):
        arrivals = BurstyArrivals(n=100, lam_high=1.0, lam_low=0.0, on_rounds=2, off_rounds=3)
        counts = [arrivals.arrivals(t, rng) for t in range(1, 11)]
        assert counts == [100, 100, 0, 0, 0, 100, 100, 0, 0, 0]

    def test_mean_rate(self):
        arrivals = BurstyArrivals(n=100, lam_high=1.0, lam_low=0.5, on_rounds=1, off_rounds=1)
        assert arrivals.mean_rate == pytest.approx(0.75)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            BurstyArrivals(n=10, lam_high=0.2, lam_low=0.5, on_rounds=1, off_rounds=1)
        with pytest.raises(ConfigurationError):
            BurstyArrivals(n=10, lam_high=0.9, lam_low=0.5, on_rounds=0, off_rounds=1)


class TestAdversarial:
    def test_schedule_respected(self, rng):
        arrivals = AdversarialArrivals(n=10, schedule=lambda t: t * 2)
        assert arrivals.arrivals(3, rng) == 6

    def test_negative_schedule_rejected(self, rng):
        arrivals = AdversarialArrivals(n=10, schedule=lambda t: -1)
        with pytest.raises(ConfigurationError):
            arrivals.arrivals(1, rng)


class TestTrace:
    def test_cycles(self, rng):
        arrivals = TraceArrivals(n=10, trace=(1, 2, 3))
        assert [arrivals.arrivals(t, rng) for t in range(1, 8)] == [1, 2, 3, 1, 2, 3, 1]

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigurationError):
            TraceArrivals(n=10, trace=())

    def test_mean_rate(self):
        assert TraceArrivals(n=10, trace=(5, 15)).mean_rate == pytest.approx(1.0)


class TestFactory:
    def test_known_kinds(self):
        assert isinstance(make_arrivals("deterministic", 10, 0.5), DeterministicArrivals)
        assert isinstance(make_arrivals("bernoulli", 10, 0.5), BernoulliArrivals)
        assert isinstance(make_arrivals("poisson", 10, 0.5), PoissonArrivals)

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError):
            make_arrivals("weird", 10, 0.5)
