"""Tracing and profiling through the local runner: chains, bit-identity.

The observability acceptance bar: a traced run must reconstruct a
complete span chain for every journaled task, and the merged CSVs must
stay byte-identical to an untraced serial run — tracing observes, never
perturbs.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import Profile, run_experiment
from repro.parallel.runner import run_experiments
from repro.telemetry import runtime
from repro.telemetry.tracing import Tracer, assemble_traces, read_spans, trace_gaps

TINY = Profile(name="tiny", n=256, measure=30, replicates=2, seed=4242)


@pytest.fixture(autouse=True)
def _telemetry_off():
    runtime.disable()
    yield
    runtime.disable()


class TestTracedRuns:
    def test_chains_complete_and_csv_bit_identical(self, tmp_path):
        serial = run_experiment("fig4_left", TINY)
        trace_path = tmp_path / "trace.jsonl"
        with runtime.session(tracer=Tracer(trace_path)):
            report = run_experiments(["fig4_left"], profile=TINY, jobs=2)

        # Tracing never perturbs results: byte-identical to untraced serial.
        assert report.results[0].csv() == serial.csv()

        traces = assemble_traces(read_spans(trace_path))
        assert len(traces) == report.tasks_total == 20
        for trace in traces:
            assert trace_gaps(trace) == [], f"incomplete chain for {trace.label}"
            attrs = trace.root["attrs"]
            assert attrs["source"] == "computed"
            assert "digest" in attrs and attrs["label"]
            # Local pool: one running span per computed task, parented
            # under the client-side queue wait's root.
            (running,) = trace.named("running")
            assert running["parent"] == trace.root["span"]
            (journaled,) = trace.named("journaled")
            assert journaled["parent"] == trace.root["span"]

    def test_journal_served_tasks_still_chain_complete(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        run_experiments(["fig4_left"], profile=TINY, jobs=1, journal_path=journal_path)

        trace_path = tmp_path / "trace.jsonl"
        with runtime.session(tracer=Tracer(trace_path)):
            resumed = run_experiments(
                ["fig4_left"], profile=TINY, jobs=1, journal_path=journal_path, resume=True
            )
        assert resumed.experiments_from_journal == 1
        # A fully journal-replayed experiment computes nothing; whatever
        # tasks were traced (none, here) must not leave dangling files.
        assert resumed.tasks_computed == 0
        assert not trace_path.exists()


class TestCprofile:
    def test_hotspots_reach_the_report_without_perturbing_results(self):
        serial = run_experiment("fig4_left", TINY)
        report = run_experiments(["fig4_left"], profile=TINY, jobs=1, cprofile=True)
        assert report.results[0].csv() == serial.csv()
        assert report.tasks_profiled == report.tasks_computed == 20
        assert report.hotspots
        top = report.hotspots[0]
        assert set(top) == {"function", "ncalls", "tottime", "cumtime"}
        assert any("profiled: 20 task(s)" in line for line in report.summary_lines())

    def test_profiling_off_by_default(self):
        report = run_experiments(["fig4_left"], profile=TINY, jobs=1)
        assert report.tasks_profiled == 0
        assert report.hotspots == []
