"""Crash-safety and replay semantics of the JSONL journal."""

from __future__ import annotations

import json

from repro.parallel.journal import Journal


class TestJournalRoundTrip:
    def test_append_and_load(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append_task("k1", {"kind": "capped"}, {"avg_wait": 1.5})
            journal.append_experiment("e1", "fig4_left", {"rows": []})
        state = Journal.load(path)
        assert state.tasks == {"k1": {"avg_wait": 1.5}}
        assert state.experiments == {"e1": {"rows": []}}
        assert state.corrupt_lines == 0
        assert state.entries == 2

    def test_load_missing_file_is_empty(self, tmp_path):
        state = Journal.load(tmp_path / "nope.jsonl")
        assert state.entries == 0

    def test_fresh_journal_truncates_stale_one(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append_task("old", {}, {"x": 1})
        with Journal(path, resume=False) as journal:
            journal.append_task("new", {}, {"x": 2})
        state = Journal.load(path)
        assert "old" not in state.tasks
        assert "new" in state.tasks

    def test_resume_appends(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append_task("a", {}, {"x": 1})
        with Journal(path, resume=True) as journal:
            journal.append_task("b", {}, {"x": 2})
        state = Journal.load(path)
        assert set(state.tasks) == {"a", "b"}


class TestQuarantineEntries:
    def test_quarantine_round_trip(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append_quarantine("k1", {"kind": "capped"}, "boom", 3)
        state = Journal.load(path)
        assert state.quarantined == {
            "k1": {"spec": {"kind": "capped"}, "error": "boom", "attempts": 3}
        }
        assert state.entries == 1
        assert state.corrupt_lines == 0

    def test_later_success_trumps_quarantine(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append_quarantine("k1", {}, "boom", 3)
            journal.append_task("k1", {}, {"x": 1})
        state = Journal.load(path)
        assert state.quarantined == {}
        assert state.tasks == {"k1": {"x": 1}}

    def test_quarantine_after_success_is_ignored(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append_task("k1", {}, {"x": 1})
            journal.append_quarantine("k1", {}, "boom", 3)
        state = Journal.load(path)
        assert state.quarantined == {}
        assert state.tasks == {"k1": {"x": 1}}


class TestTruncatedTailResume:
    def test_resume_recomputes_only_the_torn_task(self, tmp_path):
        """End-to-end: tear the journal's last JSONL line (a crash mid-append),
        resume, and get a bit-identical result with only that cell recomputed."""
        from repro.analysis.experiments import Profile, run_experiment
        from repro.parallel.runner import run_experiments

        tiny = Profile(name="tiny", n=256, measure=30, replicates=2, seed=4242)
        serial = run_experiment("fig4_left", tiny)
        journal_path = tmp_path / "journal.jsonl"
        run_experiments(["fig4_left"], profile=tiny, jobs=1, journal_path=journal_path)

        lines = [line for line in journal_path.read_text().splitlines() if line.strip()]
        assert '"type": "experiment"' in lines[-1]
        # Drop the whole-experiment entry and truncate into the final task
        # line, as if the process died mid-append.
        torn = lines[:-2] + [lines[-2][:-15]]
        journal_path.write_text("\n".join(torn) + "\n")

        report = run_experiments(
            ["fig4_left"], profile=tiny, jobs=1, journal_path=journal_path, resume=True
        )
        assert report.journal_corrupt_lines == 1
        assert report.tasks_from_journal == 19
        assert report.tasks_computed == 1
        assert report.results[0].csv() == serial.csv()


class TestJournalCrashTolerance:
    def test_torn_final_line_is_skipped(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append_task("a", {}, {"x": 1})
            journal.append_task("b", {}, {"x": 2})
        # Simulate a crash mid-append: truncate into the last line.
        raw = path.read_bytes()
        path.write_bytes(raw[:-9])
        state = Journal.load(path)
        assert set(state.tasks) == {"a"}
        assert state.corrupt_lines == 1

    def test_garbage_line_is_counted_not_fatal(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        with Journal(path) as journal:
            journal.append_task("a", {}, {"x": 1})
        with open(path, "ab") as fh:
            fh.write(b"{not json at all\n")
        with Journal(path, resume=True) as journal:
            journal.append_task("b", {}, {"x": 2})
        state = Journal.load(path)
        assert set(state.tasks) == {"a", "b"}
        assert state.corrupt_lines == 1

    def test_unknown_entry_type_counts_as_corrupt(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        path.write_text(json.dumps({"type": "mystery", "key": "k"}) + "\n")
        state = Journal.load(path)
        assert state.entries == 0
        assert state.corrupt_lines == 1
