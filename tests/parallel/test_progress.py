"""Unit tests for progress reporting, timing stats, and the live dashboard."""

import io

from repro.parallel.progress import (
    LiveStatusReporter,
    ProgressReporter,
    TimingStats,
    stream_is_tty,
)


class FakeTTY(io.StringIO):
    def isatty(self):
        return True


class BrokenStream(io.StringIO):
    def isatty(self):
        raise ValueError("closed")


class TestStreamIsTty:
    def test_stringio_is_not_tty(self):
        assert stream_is_tty(io.StringIO()) is False

    def test_fake_tty(self):
        assert stream_is_tty(FakeTTY()) is True

    def test_missing_isatty(self):
        assert stream_is_tty(object()) is False

    def test_raising_isatty(self):
        assert stream_is_tty(BrokenStream()) is False


class TestTimingStats:
    def test_overall_aggregates(self):
        stats = TimingStats()
        stats.add("a", 1.0)
        stats.add("b", 3.0)
        assert stats.count == 2
        assert stats.total == 4.0
        assert stats.mean == 2.0
        assert stats.slowest == 3.0 and stats.slowest_label == "b"

    def test_explicit_group_argument(self):
        stats = TimingStats()
        stats.add("capped n=64 c=1 r0", 1.0, group="capped")
        stats.add("capped n=64 c=2 r0", 2.0, group="capped")
        stats.add("greedy n=64 d=1 r0", 5.0, group="greedy")
        assert sorted(stats.by_group) == ["capped", "greedy"]
        assert stats.by_group["capped"] == [1.0, 2.0]

    def test_no_group_defaults_to_full_label(self):
        # The old behaviour silently grouped by label.split()[0]; now the
        # full label is its own group unless the caller says otherwise.
        stats = TimingStats()
        stats.add("capped n=64 r0", 1.0)
        stats.add("capped n=128 r0", 2.0)
        assert sorted(stats.by_group) == ["capped n=128 r0", "capped n=64 r0"]

    def test_summary_lines_include_percentiles(self):
        stats = TimingStats()
        for i in range(1, 101):
            stats.add(f"task{i}", float(i), group="capped")
        lines = stats.summary_lines()
        assert "tasks timed: 100" in lines[0]
        (group_line,) = [line for line in lines if "capped" in line]
        assert "p50=50.00s" in group_line
        assert "p95=95.00s" in group_line
        assert "max=100.00s" in group_line

    def test_summary_single_sample_group(self):
        stats = TimingStats()
        stats.add("only", 2.0, group="g")
        (line,) = [line for line in stats.summary_lines() if "g " in line]
        assert "p50=2.00s" in line and "p95=2.00s" in line


class TestProgressReporter:
    def test_non_tty_writes_plain_newlines(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=2, stream=stream, min_interval=0.0)
        reporter.task_done("a", 0.5)
        reporter.task_done("b", 0.5)
        text = stream.getvalue()
        assert "\r" not in text
        assert text.count("\n") == 2
        assert "[2/2] b" in text

    def test_tty_rewrites_in_place(self):
        stream = FakeTTY()
        reporter = ProgressReporter(total=2, stream=stream, min_interval=0.0)
        reporter.task_done("a", 0.5)
        reporter.task_done("b", 0.5)
        text = stream.getvalue()
        assert text.startswith("\r")
        assert text.count("\r") == 2
        assert text.endswith("\n")  # final frame gets the newline

    def test_tty_pads_shorter_frames(self):
        stream = FakeTTY()
        reporter = ProgressReporter(total=2, stream=stream, min_interval=0.0)
        reporter.task_done("a-very-long-label-indeed", 0.5)
        reporter.task_done("b", 0.5)
        frames = stream.getvalue().split("\r")
        assert len(frames[2].rstrip("\n")) >= len(frames[1])

    def test_extra_info_kwargs_ignored(self):
        reporter = ProgressReporter(total=1, stream=io.StringIO(), min_interval=0.0)
        reporter.task_done("a", 0.1, pid=123, outcome={"x": 1}, kind="capped", params={})
        assert reporter.done == 1

    def test_cached_tasks_do_not_skew_eta(self):
        reporter = ProgressReporter(total=3, stream=io.StringIO(), min_interval=0.0)
        reporter.task_done("a", 0.0, source="cache")
        assert reporter.computed == 0


class TestLiveStatusReporter:
    def test_dashboard_extras_appear(self):
        class Report:
            tasks_retried = 2
            tasks_quarantined = 1

        stream = io.StringIO()
        reporter = LiveStatusReporter(
            total=2, jobs=2, stream=stream, min_interval=0.0, report=Report()
        )
        outcome = {"normalized_pool": 0.17}
        params = {"n": 64, "c": 2, "lam": 0.75}
        reporter.task_done("t1", 0.1, pid=11, outcome=outcome, kind="capped", params=params)
        reporter.task_done("t2", 0.1, pid=12, outcome=outcome, kind="capped", params=params)
        text = stream.getvalue()
        assert "workers 2 (1/1)" in text
        assert "task/s" in text
        assert "retries 2" in text and "quarantined 1" in text
        assert "pool err" in text

    def test_pool_error_uses_meanfield_reference(self):
        from repro.core.meanfield import equilibrium

        reporter = LiveStatusReporter(total=1, stream=io.StringIO(), min_interval=0.0)
        theory = equilibrium(2, 0.75).normalized_pool
        reporter.task_done(
            "t",
            0.1,
            pid=1,
            outcome={"normalized_pool": theory},
            kind="capped",
            params={"c": 2, "lam": 0.75},
        )
        assert reporter.theory_errors == [0.0]

    def test_non_capped_outcomes_skipped(self):
        reporter = LiveStatusReporter(total=1, stream=io.StringIO(), min_interval=0.0)
        reporter.task_done(
            "t",
            0.1,
            pid=1,
            outcome={"normalized_pool": 0.5},
            kind="greedy",
            params={"d": 2, "lam": 0.75},
        )
        assert reporter.theory_errors == []

    def test_malformed_params_skipped(self):
        reporter = LiveStatusReporter(total=2, stream=io.StringIO(), min_interval=0.0)
        reporter.task_done("t", 0.1, kind="capped", outcome={}, params={"c": 2, "lam": 0.75})
        reporter.task_done(
            "u", 0.1, kind="capped", outcome={"normalized_pool": 0.5}, params={"lam": 1.5}
        )
        assert reporter.theory_errors == []

    def test_theory_cache_memoises_per_cell(self):
        reporter = LiveStatusReporter(total=2, stream=io.StringIO(), min_interval=0.0)
        params = {"c": 2, "lam": 0.75}
        for label in ("a", "b"):
            reporter.task_done(
                label, 0.1, outcome={"normalized_pool": 0.2}, kind="capped", params=params
            )
        assert list(reporter._theory_pool) == [(2, 0.75)]
        assert len(reporter.theory_errors) == 2


class TestFleetAggregation:
    def test_base_reporter_ignores_fleet_events(self):
        reporter = ProgressReporter(total=1, stream=io.StringIO())
        reporter.note_fleet_event({"kind": "re-lease", "worker": "w-1"})  # no-op, no crash

    def test_remote_tasks_count_toward_throughput_and_eta(self):
        stream = io.StringIO()
        reporter = ProgressReporter(total=4, jobs=1, stream=stream, min_interval=0.0)
        reporter.task_done("t1", 2.0, source="remote", worker="vm-1")
        assert reporter.computed == 1
        assert reporter.computed_seconds == 2.0
        assert "eta" in stream.getvalue()

    def test_live_status_aggregates_by_worker_id(self):
        stream = io.StringIO()
        reporter = LiveStatusReporter(total=3, stream=stream, min_interval=0.0)
        info = {"outcome": {}, "kind": "greedy", "params": {}}
        reporter.task_done("t1", 0.1, source="remote", worker="vm-b", **info)
        reporter.task_done("t2", 0.1, source="remote", worker="vm-a", **info)
        reporter.task_done("t3", 0.1, source="remote", worker="vm-b", **info)
        assert reporter.worker_tasks == {"vm-a": 1, "vm-b": 2}
        # Sorted by worker id: vm-a first.
        assert "workers 2 (1/2)" in stream.getvalue()

    def test_fleet_events_update_membership_and_counters(self):
        stream = io.StringIO()
        reporter = LiveStatusReporter(total=2, stream=stream, min_interval=0.0)
        reporter.note_fleet_event({"kind": "worker-join", "worker": "vm-a"})
        reporter.note_fleet_event({"kind": "worker-join", "worker": "vm-b"})
        reporter.note_fleet_event({"kind": "re-lease", "worker": "vm-a", "key": "k1"})
        reporter.note_fleet_event({"kind": "retry", "worker": "vm-b", "key": "k2"})
        reporter.note_fleet_event({"kind": "worker-leave", "worker": "vm-a"})
        assert reporter.fleet_workers == {"vm-b"}
        assert reporter.fleet_releases == 1
        assert reporter.fleet_retries == 1
        reporter.task_done(
            "t1", 0.1, source="remote", worker="vm-b", outcome={}, kind="x", params={}
        )
        assert "fleet 1 live" in stream.getvalue()
        assert "re-leases 1" in stream.getvalue()

    def test_completion_implies_membership_without_join_event(self):
        # Workers that joined before this client connected never produce a
        # join event; their completions must still light up the fleet line.
        stream = io.StringIO()
        reporter = LiveStatusReporter(total=1, stream=stream, min_interval=0.0)
        reporter.task_done(
            "t1", 0.1, source="remote", worker="early-bird", outcome={}, kind="x", params={}
        )
        assert reporter.fleet_workers == {"early-bird"}
        assert "fleet 1 live" in stream.getvalue()

    def test_mixed_sources_only_count_computed_and_remote(self):
        reporter = LiveStatusReporter(total=4, stream=io.StringIO(), min_interval=0.0)
        info = {"outcome": {}, "kind": "x", "params": {}}
        reporter.task_done("t1", 0.5, source="computed", pid=7, **info)
        reporter.task_done("t2", 0.5, source="remote", worker="vm-a", **info)
        reporter.task_done("t3", 0.0, source="cache")
        reporter.task_done("t4", 0.0, source="remote-cache")
        assert reporter.computed == 2
        assert reporter.worker_tasks == {7: 1, "vm-a": 1}
