"""Runner-level checkpointing and graceful shutdown.

A task whose worker dies mid-simulation resumes from its latest snapshot
instead of recomputing from round zero; SIGINT/SIGTERM stop the sweep at
the next task boundary with everything durable for ``--resume``.
"""

from __future__ import annotations

import json
import os
import signal

import pytest

from repro.analysis.experiments import Profile, run_experiment
from repro.errors import GracefulShutdown, SHUTDOWN_EXIT_CODE
from repro.faults.chaos import CHAOS_ENV
from repro.parallel import Journal
from repro.parallel.runner import ExperimentRunner, run_experiments

TINY = Profile(name="tiny", n=256, measure=30, replicates=2, seed=4242)


def journal_entries(path):
    return [json.loads(line) for line in path.read_text().splitlines()]


class TestTaskResume:
    def test_task_resumes_from_snapshot_after_mid_round_failure(self, tmp_path, monkeypatch):
        # Arm the round-scoped chaos hook: the first task dies (retryably)
        # right after round 20 completes — after the round-20 snapshot was
        # written. The retry must restore that snapshot, and the final
        # numbers must match a never-interrupted serial run.
        serial = run_experiment("fig4_left", TINY)
        monkeypatch.setenv(
            CHAOS_ENV,
            json.dumps(
                {
                    "action": "fail",
                    "at_round": 20,
                    "times": 1,
                    "marker_dir": str(tmp_path / "markers"),
                }
            ),
        )
        cache_dir = tmp_path / "cache"
        report = run_experiments(
            ["fig4_left"],
            profile=TINY,
            jobs=1,
            cache_dir=cache_dir,
            retry_backoff=0,
            checkpoint_every=10,
        )
        assert report.results[0].csv() == serial.csv()
        assert report.tasks_retried == 1
        assert report.tasks_quarantined == 0

        # The retried task's journal entry records where it resumed from.
        resumed = [
            entry
            for entry in journal_entries(cache_dir / "journal.jsonl")
            if entry.get("provenance")
        ]
        assert len(resumed) == 1
        assert resumed[0]["provenance"]["resumed_round"] == 20

        # Outcomes are durable, so every per-task snapshot dir was removed.
        checkpoints = cache_dir / "checkpoints"
        assert not any(checkpoints.iterdir())

    def test_checkpoint_config_does_not_change_task_digests(self, tmp_path):
        # Checkpoint placement is runner plumbing: a checkpointed sweep and
        # a plain sweep must share cache keys, so the second run here is
        # served entirely from the first run's cache.
        cache_dir = tmp_path / "cache"
        first = run_experiments(
            ["fig4_left"],
            profile=TINY,
            jobs=1,
            cache_dir=cache_dir,
            checkpoint_every=10,
        )
        assert first.tasks_computed == 20
        second = run_experiments(
            ["fig4_left"],
            profile=TINY,
            jobs=1,
            cache_dir=cache_dir,
        )
        assert second.tasks_computed == 0
        assert second.experiments_from_cache == 1


class TestGracefulShutdown:
    def _run_with_signal_after(self, tmp_path, monkeypatch, sig, calls_before):
        import repro.parallel.runner as runner_module

        journal_path = tmp_path / "journal.jsonl"
        real_execute = runner_module.execute_task
        calls = {"n": 0}

        def signalling_execute(payload):
            result = real_execute(payload)
            calls["n"] += 1
            if calls["n"] == calls_before:
                os.kill(os.getpid(), sig)  # handled: sets the shutdown flag
            return result

        monkeypatch.setattr(runner_module, "execute_task", signalling_execute)
        with pytest.raises(GracefulShutdown) as excinfo:
            run_experiments(["fig4_left"], profile=TINY, jobs=1, journal_path=journal_path)
        return journal_path, calls["n"], excinfo.value

    @pytest.mark.parametrize("sig", [signal.SIGINT, signal.SIGTERM])
    def test_signal_stops_at_task_boundary(self, tmp_path, monkeypatch, sig):
        journal_path, calls, err = self._run_with_signal_after(
            tmp_path, monkeypatch, sig, calls_before=3
        )
        # The in-flight task finished and was journaled; nothing ran after.
        assert calls == 3
        assert err.signal_number == sig
        assert "--resume" in str(err)
        assert len(Journal.load(journal_path).tasks) == 3

    def test_resume_completes_after_shutdown(self, tmp_path, monkeypatch):
        serial = run_experiment("fig4_left", TINY)
        journal_path, _, _ = self._run_with_signal_after(
            tmp_path, monkeypatch, signal.SIGINT, calls_before=3
        )
        monkeypatch.undo()  # restore the real execute_task
        report = run_experiments(
            ["fig4_left"],
            profile=TINY,
            jobs=1,
            journal_path=journal_path,
            resume=True,
        )
        assert report.results[0].csv() == serial.csv()
        assert report.tasks_from_journal == 3
        assert report.tasks_computed == 17

    def test_handlers_restored_after_run(self, tmp_path):
        before = (signal.getsignal(signal.SIGINT), signal.getsignal(signal.SIGTERM))
        runner = ExperimentRunner(profile=TINY, jobs=1)
        runner.run(["drain_stages"])
        after = (signal.getsignal(signal.SIGINT), signal.getsignal(signal.SIGTERM))
        assert after == before

    def test_cli_maps_shutdown_to_distinct_exit_code(self, monkeypatch):
        import io

        from repro.cli import main

        def interrupted_run(ids, **kwargs):
            raise GracefulShutdown("received SIGINT", signal_number=signal.SIGINT)

        monkeypatch.setattr("repro.parallel.run_experiments", interrupted_run)
        out = io.StringIO()
        code = main(
            [
                "experiments",
                "--id",
                "dominance",
                "--profile",
                "quick",
                "--jobs",
                "2",
                "--no-progress",
            ],
            out=out,
        )
        assert code == SHUTDOWN_EXIT_CODE
        assert code not in (0, 1, 2, 3, 130, 143)
        assert "interrupted" in out.getvalue()
