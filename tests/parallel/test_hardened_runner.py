"""Fault tolerance of the hardened runner: retries, timeouts, quarantine,
broken-pool recovery, and graceful degradation to serial execution.

Two layers of tests:

* **fabric tests** drive ``ExperimentRunner._run_tasks`` directly with tiny
  module-level functions (pickle-friendly) that fail/hang/crash on demand,
  coordinated through marker files so "fail exactly once" works across
  worker processes;
* **end-to-end tests** run a real experiment under the ``REPRO_CHAOS``
  hooks and assert the final CSV is still bit-identical to the serial path
  — fault tolerance must not cost determinism.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

import pytest

from repro.analysis.experiments import Profile, run_experiment
from repro.errors import ParallelExecutionError
from repro.faults.chaos import CHAOS_ENV, ChaosSpec
from repro.parallel import ExperimentRunner, TaskFailure
from repro.parallel.runner import RunnerReport

TINY = Profile(name="tiny", n=256, measure=30, replicates=2, seed=4242)


def _claim(payload: dict) -> bool:
    """Atomically claim this payload's marker; True on first call only."""
    path = Path(payload["dir"]) / f"{payload['i']}.marker"
    try:
        fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
    except FileExistsError:
        return False
    os.close(fd)
    return True


def _fail_once(payload):
    if _claim(payload):
        raise RuntimeError("first attempt fails")
    return {"ok": payload["i"]}


def _always_fail(payload):
    raise RuntimeError("broken forever")


def _hang_once(payload):
    if _claim(payload):
        time.sleep(60)
    return {"ok": payload["i"]}


def _always_hang(payload):
    time.sleep(60)


def _crash_once(payload):
    if _claim(payload):
        os._exit(13)
    return {"ok": payload["i"]}


def _crash_marked_once(payload):
    # Only payloads flagged "crash" ever die, and only on their first
    # execution — safe to re-run in the main process after a fallback.
    if payload.get("crash") and _claim(payload):
        os._exit(13)
    return {"ok": payload["i"]}


def _payloads(tmp_path, count):
    return [{"i": i, "dir": str(tmp_path)} for i in range(count)]


def _run(runner, fn, payloads):
    report = RunnerReport()
    outcomes = dict()
    for payload, outcome in runner._run_tasks(fn, payloads, report):
        assert payload["i"] not in outcomes, "payload yielded twice"
        outcomes[payload["i"]] = outcome
    # Accounting invariant: exactly one outcome per payload, success or not.
    assert set(outcomes) == {p["i"] for p in payloads}
    return report, outcomes


class TestValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"task_timeout": 0.0},
            {"task_timeout": -1.0},
            {"max_retries": -1},
            {"retry_backoff": -0.1},
            {"max_pool_rebuilds": -1},
        ],
    )
    def test_rejects_bad_fault_tolerance_config(self, kwargs):
        with pytest.raises(ParallelExecutionError):
            ExperimentRunner(profile=TINY, **kwargs)


class TestSerialFabric:
    def test_transient_failures_are_retried(self, tmp_path):
        runner = ExperimentRunner(profile=TINY, jobs=1, retry_backoff=0.0)
        report, outcomes = _run(runner, _fail_once, _payloads(tmp_path, 4))
        assert all(outcome == {"ok": i} for i, outcome in outcomes.items())
        assert report.tasks_retried == 4

    def test_exhausted_budget_becomes_task_failure(self, tmp_path):
        runner = ExperimentRunner(profile=TINY, jobs=1, max_retries=1, retry_backoff=0.0)
        report, outcomes = _run(runner, _always_fail, _payloads(tmp_path, 2))
        for outcome in outcomes.values():
            assert isinstance(outcome, TaskFailure)
            assert outcome.attempts == 2  # max_retries=1 → 2 executions
            assert "broken forever" in outcome.error
        assert report.tasks_retried == 2  # one retry each before giving up

    def test_zero_retries_fails_immediately(self, tmp_path):
        runner = ExperimentRunner(profile=TINY, jobs=1, max_retries=0, retry_backoff=0.0)
        report, outcomes = _run(runner, _always_fail, _payloads(tmp_path, 1))
        assert outcomes[0].attempts == 1
        assert report.tasks_retried == 0


class TestPooledFabric:
    def test_worker_exceptions_are_retried(self, tmp_path):
        runner = ExperimentRunner(profile=TINY, jobs=2, retry_backoff=0.0)
        report, outcomes = _run(runner, _fail_once, _payloads(tmp_path, 4))
        assert all(outcome == {"ok": i} for i, outcome in outcomes.items())
        assert report.tasks_retried == 4
        assert report.pool_rebuilds == 0  # plain exceptions don't break the pool

    def test_hung_worker_is_timed_out_and_task_retried(self, tmp_path):
        runner = ExperimentRunner(profile=TINY, jobs=2, task_timeout=0.25, retry_backoff=0.0)
        report, outcomes = _run(runner, _hang_once, _payloads(tmp_path, 3))
        assert all(outcome == {"ok": i} for i, outcome in outcomes.items())
        assert report.pool_rebuilds >= 1  # a hung worker poisons the pool
        assert report.tasks_retried >= 1

    def test_hopeless_hang_is_reported_as_timeout(self, tmp_path):
        runner = ExperimentRunner(
            profile=TINY, jobs=2, task_timeout=0.25, max_retries=0, retry_backoff=0.0
        )
        report, outcomes = _run(runner, _always_hang, _payloads(tmp_path, 2))
        for failure in outcomes.values():
            assert isinstance(failure, TaskFailure)
            assert failure.timed_out
            assert "timed out" in failure.error
        assert report.pool_rebuilds >= 1

    def test_killed_worker_breaks_pool_then_recovers(self, tmp_path):
        # max_retries is generous because a pool break charges every
        # in-flight task one attempt: a crasher can also be charged as an
        # innocent bystander of another crasher's break.
        runner = ExperimentRunner(profile=TINY, jobs=2, max_retries=5, retry_backoff=0.0)
        report, outcomes = _run(runner, _crash_once, _payloads(tmp_path, 4))
        assert all(outcome == {"ok": i} for i, outcome in outcomes.items())
        assert report.pool_rebuilds >= 1

    def test_rebuild_budget_exhaustion_falls_back_to_serial(self, tmp_path):
        runner = ExperimentRunner(profile=TINY, jobs=2, max_pool_rebuilds=0, retry_backoff=0.0)
        payloads = _payloads(tmp_path, 4)
        payloads[0]["crash"] = True
        report, outcomes = _run(runner, _crash_marked_once, payloads)
        # The one crash marker was claimed by the dead worker, so the
        # serial fallback completes every task in the main process.
        assert all(outcome == {"ok": i} for i, outcome in outcomes.items())
        assert report.serial_fallback
        assert report.pool_rebuilds == 1


class TestEndToEndChaos:
    """Real experiments under REPRO_CHAOS: faults must not cost determinism."""

    def test_injected_failure_is_retried_to_the_same_answer(self, tmp_path, monkeypatch):
        serial = run_experiment("fig4_left", TINY)
        spec = ChaosSpec(action="fail", times=1, marker_dir=str(tmp_path / "markers"))
        monkeypatch.setenv(CHAOS_ENV, spec.to_env())
        runner = ExperimentRunner(profile=TINY, jobs=2, retry_backoff=0.0)
        report = runner.run(["fig4_left"])
        assert report.tasks_retried >= 1
        assert not report.failures
        assert report.results[0].csv() == serial.csv()

    def test_sigkilled_worker_still_bit_identical(self, tmp_path, monkeypatch):
        serial = run_experiment("fig4_left", TINY)
        spec = ChaosSpec(action="kill", times=1, marker_dir=str(tmp_path / "markers"))
        monkeypatch.setenv(CHAOS_ENV, spec.to_env())
        runner = ExperimentRunner(profile=TINY, jobs=2, retry_backoff=0.0)
        report = runner.run(["fig4_left"])
        assert report.pool_rebuilds >= 1
        assert not report.failures
        assert report.results[0].csv() == serial.csv()
        assert report.tasks_accounted >= report.tasks_total

    def test_poisoned_task_is_quarantined_not_fatal(self, tmp_path, monkeypatch):
        # Every replicate-1 task fails deterministically (no marker dir →
        # every attempt injects): each must be quarantined, the experiment
        # must fail cleanly, and nothing may be silently lost.
        spec = ChaosSpec(action="fail", match="r1")
        monkeypatch.setenv(CHAOS_ENV, spec.to_env())
        journal_path = tmp_path / "journal.jsonl"
        runner = ExperimentRunner(
            profile=TINY,
            jobs=1,
            journal_path=journal_path,
            max_retries=1,
            retry_backoff=0.0,
        )
        report = runner.run(["fig4_left"])
        assert report.tasks_quarantined == 10  # 10 cells × replicate 1
        assert report.tasks_computed == 10  # replicate 0 still computed
        assert report.tasks_accounted == report.tasks_total == 20
        assert report.experiments_failed == 1
        assert "fig4_left" in report.failures
        assert report.results == []
        assert all(entry["attempts"] == 2 for entry in report.quarantined)
        summary = "\n".join(report.summary_lines())
        assert "quarantined" in summary and "failed: fig4_left" in summary

        # Quarantine is sticky: a resumed run re-reports the quarantined
        # tasks from the journal instead of re-running them — even though
        # chaos is now disarmed and they would succeed.
        monkeypatch.delenv(CHAOS_ENV)
        resumed = ExperimentRunner(
            profile=TINY,
            jobs=1,
            journal_path=journal_path,
            resume=True,
            retry_backoff=0.0,
        ).run(["fig4_left"])
        assert resumed.tasks_computed == 0
        assert resumed.tasks_quarantined == 10
        assert resumed.tasks_from_journal == 10
        assert "fig4_left" in resumed.failures
        assert all("quarantined in journal" in entry["error"] for entry in resumed.quarantined)
