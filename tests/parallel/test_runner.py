"""End-to-end tests for the parallel experiment runner.

Everything runs on a deliberately tiny profile (n = 256, 30 measured
rounds) so the whole module stays in the fast tier.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.experiments import Profile, run_experiment
from repro.errors import ParallelExecutionError
from repro.parallel import ExperimentRunner, Journal
from repro.parallel.runner import run_experiments

TINY = Profile(name="tiny", n=256, measure=30, replicates=2, seed=4242)


class TestBitIdentical:
    def test_process_pool_matches_serial(self):
        serial = run_experiment("fig4_left", TINY)
        report = run_experiments(["fig4_left"], profile=TINY, jobs=2)
        parallel = report.results[0]
        assert parallel.rows == serial.rows
        assert parallel.notes == serial.notes
        assert parallel.verdicts == serial.verdicts
        assert parallel.csv() == serial.csv()
        assert report.tasks_total == report.tasks_computed == 20

    def test_in_process_runner_matches_serial(self):
        serial = run_experiment("sweet_spot", TINY)
        report = run_experiments(["sweet_spot"], profile=TINY, jobs=1)
        assert report.results[0].csv() == serial.csv()

    def test_pure_driver_experiment_matches_serial(self):
        # drain_stages never calls the sweep helpers; its discovery run is
        # the real run and must still match the serial path exactly.
        serial = run_experiment("drain_stages", TINY)
        report = run_experiments(["drain_stages"], profile=TINY, jobs=2)
        assert report.results[0].csv() == serial.csv()
        assert report.tasks_total == 0

    def test_mixed_kinds_match_serial(self):
        # baseline_comparison interleaves capped and greedy measurements.
        serial = run_experiment("baseline_comparison", TINY)
        report = run_experiments(["baseline_comparison"], profile=TINY, jobs=2)
        assert report.results[0].csv() == serial.csv()


class TestCrashResume:
    def test_journal_replay_after_simulated_crash(self, tmp_path, monkeypatch):
        journal_path = tmp_path / "journal.jsonl"
        serial = run_experiment("fig4_left", TINY)

        import repro.parallel.runner as runner_module

        real_execute = runner_module.execute_task
        calls = {"n": 0}

        def dying_execute(payload):
            if calls["n"] >= 3:
                raise KeyboardInterrupt  # simulate Ctrl-C / a killed worker
            calls["n"] += 1
            return real_execute(payload)

        with monkeypatch.context() as patch:
            patch.setattr(runner_module, "execute_task", dying_execute)
            with pytest.raises(KeyboardInterrupt):
                run_experiments(["fig4_left"], profile=TINY, jobs=1, journal_path=journal_path)

        crashed = Journal.load(journal_path)
        assert len(crashed.tasks) == 3
        assert not crashed.experiments

        report = run_experiments(
            ["fig4_left"], profile=TINY, jobs=1, journal_path=journal_path, resume=True
        )
        assert report.tasks_from_journal == 3
        assert report.tasks_computed == report.tasks_total - 3
        assert report.results[0].csv() == serial.csv()

        # No duplicate and no missing cells in the journal afterwards.
        lines = [json.loads(line) for line in journal_path.read_text().splitlines() if line.strip()]
        task_keys = [entry["key"] for entry in lines if entry["type"] == "task"]
        assert len(task_keys) == len(set(task_keys)) == report.tasks_total

    def test_resume_skips_whole_finished_experiments(self, tmp_path):
        journal_path = tmp_path / "journal.jsonl"
        first = run_experiments(["fig4_left"], profile=TINY, jobs=1, journal_path=journal_path)
        resumed = run_experiments(
            ["fig4_left"], profile=TINY, jobs=1, journal_path=journal_path, resume=True
        )
        assert resumed.experiments_from_journal == 1
        assert resumed.tasks_computed == 0
        assert resumed.results[0].csv() == first.results[0].csv()

    def test_resume_requires_a_journal(self):
        with pytest.raises(ParallelExecutionError):
            ExperimentRunner(profile=TINY, resume=True)


class TestCacheAccounting:
    def test_hit_miss_accounting(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = run_experiments(["fig4_left"], profile=TINY, jobs=1, cache_dir=cache_dir)
        assert first.cache_hits == 0
        assert first.cache_misses == first.tasks_total == 20

        # Drop the whole-experiment entries so the rerun has to rediscover
        # and pull every measurement from the task-level cache.
        for path in cache_dir.glob("*.json"):
            if "experiment_id" in json.loads(path.read_text()):
                path.unlink()

        second = run_experiments(["fig4_left"], profile=TINY, jobs=1, cache_dir=cache_dir)
        assert second.tasks_from_cache == second.tasks_total == 20
        assert second.tasks_computed == 0
        assert second.cache_misses == 0
        assert second.results[0].csv() == first.results[0].csv()

    def test_whole_experiment_cache_hit(self, tmp_path):
        cache_dir = tmp_path / "cache"
        first = run_experiments(["fig4_left"], profile=TINY, jobs=1, cache_dir=cache_dir)
        second = run_experiments(["fig4_left"], profile=TINY, jobs=1, cache_dir=cache_dir)
        assert second.experiments_from_cache == 1
        assert second.tasks_total == 0
        assert second.results[0].csv() == first.results[0].csv()

    def test_cache_mirrors_hits_into_journal_for_later_resume(self, tmp_path):
        cache_dir = tmp_path / "cache"
        run_experiments(["fig4_left"], profile=TINY, jobs=1, cache_dir=cache_dir)
        for path in cache_dir.glob("*.json"):
            if "experiment_id" in json.loads(path.read_text()):
                path.unlink()
        run_experiments(["fig4_left"], profile=TINY, jobs=1, cache_dir=cache_dir)
        state = Journal.load(cache_dir / "journal.jsonl")
        assert len(state.tasks) == 20


class TestRunnerValidation:
    def test_unknown_experiment_fails_fast(self):
        with pytest.raises(Exception) as excinfo:
            run_experiments(["no_such_experiment"], profile=TINY)
        assert "no_such_experiment" in str(excinfo.value)

    def test_unknown_profile_fails(self):
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            ExperimentRunner(profile="warp-speed")

    def test_bad_jobs_rejected(self):
        with pytest.raises(ParallelExecutionError):
            ExperimentRunner(profile=TINY, jobs=0)
