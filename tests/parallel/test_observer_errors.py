"""Observer error policy: a raising observer aborts loudly and cleanly.

Documented contract (docs/observability.md): observers are notified in
list order after the round's state is final; an observer exception
propagates immediately (later observers are skipped, the run aborts); and
because the parallel runner journals/caches a task's outcome only after
the whole measurement returns, an observer raising mid-run can never
leave a partial or corrupt entry behind — the task fails, is retried, and
the resumed/retried results stay bit-identical.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import Profile, run_experiment
from repro.core.capped import CappedProcess
from repro.engine.driver import SimulationDriver
from repro.engine.observers import TraceRecorder
from repro.parallel import Journal
from repro.parallel.runner import run_experiments

TINY = Profile(name="tiny", n=256, measure=30, replicates=2, seed=4242)


class ExplodingObserver:
    def __init__(self, at_round: int):
        self.at_round = at_round
        self.calls = 0

    def on_round(self, record, process):
        self.calls += 1
        if record.round >= self.at_round:
            raise RuntimeError(f"observer exploded at round {record.round}")


class OrderSpy:
    def __init__(self, name: str, log: list):
        self.name = name
        self.log = log

    def on_round(self, record, process):
        self.log.append((record.round, self.name))


def make_process():
    return CappedProcess(n=64, capacity=2, lam=0.75, rng=11)


class TestDriverSemantics:
    def test_observers_called_in_list_order(self):
        log: list = []
        driver = SimulationDriver(
            burn_in=0, measure=4, observers=[OrderSpy("a", log), OrderSpy("b", log)]
        )
        driver.run(make_process())
        rounds = sorted({entry[0] for entry in log})
        for t in rounds:
            assert [name for r, name in log if r == t] == ["a", "b"]

    def test_exception_propagates_and_skips_later_observers(self):
        before = TraceRecorder()
        bomb = ExplodingObserver(at_round=3)
        after = TraceRecorder()
        driver = SimulationDriver(burn_in=0, measure=10, observers=[before, bomb, after])
        with pytest.raises(RuntimeError, match="observer exploded"):
            driver.run(make_process())
        # Earlier observer saw the fatal round; the later one never did.
        assert len(before) == 3
        assert len(after) == 2


class TestRunnerJournalCacheSafety:
    def test_observer_raising_mid_run_never_corrupts_journal_or_cache(self, tmp_path, monkeypatch):
        """An observer explosion fails one attempt; retry heals it and the
        journal, cache, and final result are exactly as if it never fired."""
        serial = run_experiment("fig4_left", TINY)
        cache_dir = tmp_path / "cache"
        journal_path = tmp_path / "journal.jsonl"

        import repro.engine.driver as driver_module

        real_run = driver_module.SimulationDriver.run
        armed = {"left": 1}

        def sabotaged_run(self, process):
            if armed["left"]:
                armed["left"] -= 1
                self.observers = [*self.observers, ExplodingObserver(at_round=5)]
            return real_run(self, process)

        with monkeypatch.context() as patch:
            patch.setattr(driver_module.SimulationDriver, "run", sabotaged_run)
            # jobs=1 keeps tasks in-process so the patch is visible.
            report = run_experiments(
                ["fig4_left"],
                profile=TINY,
                jobs=1,
                cache_dir=cache_dir,
                journal_path=journal_path,
                max_retries=1,
                retry_backoff=0.0,
            )
        assert armed["left"] == 0, "the exploding observer never fired"
        assert report.tasks_retried == 1
        assert not report.failures
        assert report.results[0].csv() == serial.csv()

        # The journal holds exactly one committed entry per task — the
        # failed attempt left nothing behind.
        state = Journal.load(journal_path)
        assert len(state.tasks) == report.tasks_total
        assert not state.quarantined

        # A resume replays the journal without recomputation and the cache
        # serves a fresh run — both bit-identical.
        resumed = run_experiments(
            ["fig4_left"],
            profile=TINY,
            jobs=1,
            cache_dir=cache_dir,
            journal_path=journal_path,
            resume=True,
        )
        assert resumed.tasks_computed == 0
        assert resumed.results[0].csv() == serial.csv()

    def test_unhealed_observer_error_quarantines_without_partial_entries(
        self, tmp_path, monkeypatch
    ):
        cache_dir = tmp_path / "cache"
        journal_path = tmp_path / "journal.jsonl"

        import repro.engine.driver as driver_module

        real_run = driver_module.SimulationDriver.run

        def always_sabotaged(self, process):
            self.observers = [*self.observers, ExplodingObserver(at_round=5)]
            return real_run(self, process)

        with monkeypatch.context() as patch:
            patch.setattr(driver_module.SimulationDriver, "run", always_sabotaged)
            report = run_experiments(
                ["fig4_left"],
                profile=TINY,
                jobs=1,
                cache_dir=cache_dir,
                journal_path=journal_path,
                max_retries=0,
                retry_backoff=0.0,
            )
        assert report.tasks_quarantined == report.tasks_total > 0
        assert report.failures  # the experiment is reported failed, not wrong
        state = Journal.load(journal_path)
        assert not state.tasks  # no partial outcome was ever journaled
        assert len(state.quarantined) == report.tasks_quarantined
