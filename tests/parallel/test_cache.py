"""Content-addressed cache behaviour and key stability."""

from __future__ import annotations

from repro.parallel.cache import ResultCache
from repro.parallel.keys import (
    experiment_digest,
    measurement_fingerprint,
    point_key,
    task_digest,
)


class TestKeys:
    def test_point_key_is_order_insensitive(self):
        a = point_key("capped", {"n": 8, "c": 1})
        b = point_key("capped", {"c": 1, "n": 8})
        assert a == b

    def test_task_digest_separates_replicates(self):
        params = {"n": 8, "c": 1, "lam": 0.5}
        assert task_digest("capped", params, 0) != task_digest("capped", params, 1)

    def test_task_digest_separates_params(self):
        assert task_digest("capped", {"n": 8}, 0) != task_digest("capped", {"n": 16}, 0)

    def test_digests_are_stable_within_a_process(self):
        params = {"n": 8, "c": 1}
        assert task_digest("capped", params, 0) == task_digest("capped", params, 0)
        profile = {"name": "quick", "n": 8, "measure": 4, "replicates": 1, "seed": 0}
        assert experiment_digest("fig4_left", profile) == experiment_digest("fig4_left", profile)

    def test_fingerprint_is_hex(self):
        fingerprint = measurement_fingerprint()
        assert len(fingerprint) == 16
        int(fingerprint, 16)


class TestResultCache:
    def test_miss_then_hit(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        assert cache.get("abc") is None
        cache.put("abc", {"outcome": {"avg_wait": 2.0}})
        assert cache.get("abc") == {"outcome": {"avg_wait": 2.0}}
        assert "abc" in cache
        assert len(cache) == 1

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("abc", {"x": 1})
        (tmp_path / "abc.json").write_text("{truncated")
        assert cache.get("abc") is None

    def test_put_overwrites_atomically(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("k", {"x": 1})
        cache.put("k", {"x": 2})
        assert cache.get("k") == {"x": 2}
        assert not list(tmp_path.glob("*.tmp.*"))
