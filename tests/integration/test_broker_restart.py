"""Chaos proof: SIGKILL the broker mid-sweep, restart it, lose nothing.

A real ``repro broker`` subprocess is killed with SIGKILL (no cleanup,
no atexit) while a multi-slot worker fleet is mid-sweep, then a
successor broker is started on the same ``--state-dir`` and port. The
acceptance bar from the paper-repro roadmap:

* the merged CSV is byte-identical to a serial run that was never
  interrupted;
* no task executes twice to completion (events.jsonl accounting);
* the successor runs as generation 2 and re-adopts surviving leases
  (``reattach`` events), visible to ``repro trace`` consumers.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.analysis.experiments import Profile, run_experiment
from repro.distributed.store import read_events
from repro.faults.chaos import CHAOS_ENV
from repro.parallel.runner import run_experiments

TINY = Profile(name="tiny", n=256, measure=30, replicates=2, seed=4242)
SRC = os.path.abspath(os.path.join(os.path.dirname(__file__), "..", "..", "src"))


def child_env(chaos: dict | None = None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(p for p in (SRC, env.get("PYTHONPATH")) if p)
    if chaos is not None:
        env[CHAOS_ENV] = json.dumps(chaos)
    else:
        env.pop(CHAOS_ENV, None)
    return env


def spawn_broker(tmp_path, port: int = 0) -> tuple[subprocess.Popen, int]:
    port_file = tmp_path / f"port.{time.monotonic_ns()}"
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "broker",
            "--host", "127.0.0.1", "--port", str(port),
            "--port-file", str(port_file),
            "--state-dir", str(tmp_path / "state"),
            "--cache-dir", str(tmp_path / "cache"),
            "--lease-timeout", "10.0",
        ],
        env=child_env(),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )
    deadline = time.monotonic() + 20.0
    while time.monotonic() < deadline:
        if port_file.exists() and port_file.read_text().strip():
            return proc, int(port_file.read_text().strip())
        if proc.poll() is not None:
            raise RuntimeError(f"broker exited early with {proc.returncode}")
        time.sleep(0.05)
    proc.kill()
    raise RuntimeError("broker did not write its port file in time")


def spawn_worker(
    address: str, worker_id: str, jobs: int = 2, chaos: dict | None = None
) -> subprocess.Popen:
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro", "worker", address,
            "--id", worker_id, "--jobs", str(jobs), "--quiet",
        ],
        env=child_env(chaos),
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def reap(*procs: subprocess.Popen) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.terminate()
    for proc in procs:
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:  # pragma: no cover - stuck child
            proc.kill()
            proc.wait(timeout=10)


@pytest.fixture
def serial_csv():
    return run_experiment("fig4_left", TINY).csv()


class TestBrokerSigkillMidSweep:
    def test_restarted_broker_resumes_the_sweep_losslessly(self, tmp_path, serial_csv):
        import threading

        first, port = spawn_broker(tmp_path)
        address = f"127.0.0.1:{port}"
        # One slot hangs for 6s right before uploading its finished result:
        # the marker file the chaos hook drops is our cross-process signal
        # that a lease is provably held, so the SIGKILL lands while the
        # worker still owes the broker an in-flight task. The hang outlasts
        # the restart, forcing the upload onto the generation-2 broker via
        # a reattach.
        marker_dir = tmp_path / "markers"
        marker_dir.mkdir()
        worker = spawn_worker(
            address,
            "fleet-a",
            jobs=2,
            chaos={
                "action": "hang",
                "match": "upload",
                "seconds": 6.0,
                "times": 1,
                "marker_dir": str(marker_dir),
            },
        )
        state_dir = tmp_path / "state"
        second: list[subprocess.Popen] = []

        def kill_and_restart() -> None:
            # Wait until the hang chaos has claimed its slot: from that
            # moment a lease is held and will stay held across the kill.
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if any(marker_dir.iterdir()):
                    break
                time.sleep(0.05)
            os.kill(first.pid, signal.SIGKILL)
            first.wait(timeout=10)
            second.append(spawn_broker(tmp_path, port=port)[0])

        chaos = threading.Thread(target=kill_and_restart, daemon=True)
        chaos.start()
        try:
            report = run_experiments(["fig4_left"], profile=TINY, broker=address)
            chaos.join(timeout=30)
        finally:
            reap(worker, first, *second)

        # The broker really died by SIGKILL and a successor took over.
        assert first.returncode == -9
        assert second, "successor broker never started"

        # Byte-identical science: the interrupted sweep equals serial.
        assert report.results[0].csv() == serial_csv
        assert report.tasks_quarantined == 0
        # Every task ran on the fleet; work finished before the kill may be
        # re-served to the reconnected client from the recovered store as
        # remote-cache rather than streamed live, depending on timing.
        assert report.tasks_remote + report.tasks_from_remote_cache == report.tasks_total
        # The client rode through the outage.
        assert report.broker_reconnects >= 1

        events = list(read_events(state_dir))
        # Exactly one completion per task key — nothing executed twice to
        # completion, across both broker generations.
        completes = [e for e in events if e["event"] == "complete"]
        assert len(completes) == report.tasks_total
        assert len({e["key"] for e in completes}) == report.tasks_total
        # The successor recovered as generation 2.
        recoveries = [e for e in events if e["event"] == "broker-recover"]
        assert recoveries and recoveries[-1]["generation"] == 2
        # The worker's surviving leases were re-adopted, not re-executed:
        # reattach events carry the worker id and the new generation.
        reattaches = [e for e in events if e["event"] == "reattach"]
        assert any(e["worker"] == "fleet-a" for e in reattaches)
        # The client-side tally only counts reattach events it was connected
        # to witness; whether the worker or the client reconnects first is a
        # race, so the durable log above is the authoritative assertion.
        assert report.tasks_reattached <= len(reattaches)
