"""Integration: CAPPED(∞, λ) ≡ GREEDY[1] (paper Section II).

With no capacity limit every ball is accepted by its sampled bin, so the
two implementations — one pool-based, one load-vector-based — simulate the
same process. We check distributional equality of their steady-state
statistics and exact equality of their per-round semantics under shared
randomness.
"""

import numpy as np
import pytest

from repro.core.capped import CappedProcess
from repro.engine.driver import SimulationDriver
from repro.processes.greedy import GreedyBatchProcess


def test_statistics_match_distributionally():
    driver = SimulationDriver(burn_in=400, measure=400)
    capped = driver.run(CappedProcess(n=512, capacity=None, lam=0.875, rng=1))
    greedy = driver.run(GreedyBatchProcess(n=512, d=1, lam=0.875, rng=2))
    assert capped.avg_wait == pytest.approx(greedy.avg_wait, rel=0.1)
    assert capped.max_wait == pytest.approx(greedy.max_wait, abs=4)
    assert capped.summary.peak_max_load == pytest.approx(greedy.summary.peak_max_load, abs=4)


def test_identical_under_shared_choices():
    n, lam, rounds = 64, 0.75, 80
    capped = CappedProcess(n=n, capacity=None, lam=lam, rng=0)
    greedy = GreedyBatchProcess(n=n, d=1, lam=lam, rng=0)
    choice_rng = np.random.default_rng(5)
    arrivals = round(lam * n)
    for _ in range(rounds):
        choices = choice_rng.integers(0, n, size=arrivals)

        capped_record = capped.step(choices=choices)

        # Drive GREEDY with the same committed bins by monkey-injecting.
        greedy_record_arrivals = arrivals
        committed = choices
        ranks_waits = greedy.loads[committed].copy()
        from repro.processes.greedy import _ranks_within_groups

        waits = ranks_waits + _ranks_within_groups(committed)
        greedy.loads += np.bincount(committed, minlength=n)
        nonempty = greedy.loads > 0
        greedy.loads[nonempty] -= 1
        greedy.round += 1

        assert capped_record.accepted == greedy_record_arrivals
        # Load vectors identical after the round.
        assert capped.bins.loads.tolist() == greedy.loads.tolist()
        # Wait multisets identical (CAPPED(inf) records the same positions).
        capped_waits = np.repeat(capped_record.wait_values, capped_record.wait_counts)
        assert sorted(capped_waits.tolist()) == sorted(waits.tolist())


def test_pool_always_empty_for_infinite_capacity():
    capped = CappedProcess(n=128, capacity=None, lam=0.9375, rng=3)
    for _ in range(100):
        assert capped.step().pool_size == 0
