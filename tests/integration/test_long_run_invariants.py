"""Integration: invariants and conservation laws over long runs.

Runs every round-based process with a periodic invariant-checking observer
and verifies global conservation (generated = served + in flight) under
deterministic, stochastic, and bursty arrival models.
"""

import pytest

from repro.core.capped import CappedProcess
from repro.core.modcapped import ModCappedProcess
from repro.engine.driver import SimulationDriver
from repro.engine.observers import InvariantChecker, TraceRecorder
from repro.processes.becchetti import RepeatedBallsProcess
from repro.processes.greedy import GreedyBatchProcess
from repro.workloads.arrivals import BernoulliArrivals, BurstyArrivals, PoissonArrivals


class TestInvariantSweeps:
    @pytest.mark.parametrize("c", [1, 2, 5, None])
    def test_capped_invariants_hold(self, c):
        process = CappedProcess(n=128, capacity=c, lam=0.875, rng=0)
        checker = InvariantChecker(every=1)
        SimulationDriver(burn_in=0, measure=300, observers=[checker]).run(process)
        assert checker.checks_run == 300

    @pytest.mark.parametrize("c", [1, 2, 3, 4, 7])
    def test_modcapped_invariants_hold(self, c):
        process = ModCappedProcess(n=64, c=c, lam=0.75, rng=c)
        checker = InvariantChecker(every=1)
        SimulationDriver(burn_in=0, measure=20 * c + 100, observers=[checker]).run(process)

    def test_greedy_invariants_hold(self):
        process = GreedyBatchProcess(n=128, d=2, lam=0.875, rng=1)
        SimulationDriver(burn_in=0, measure=300, observers=[InvariantChecker()]).run(process)

    def test_becchetti_invariants_hold(self):
        process = RepeatedBallsProcess(n=64, rng=2)
        SimulationDriver(burn_in=0, measure=300, observers=[InvariantChecker()]).run(process)


class TestConservation:
    def _check_capped_conservation(self, process, rounds):
        trace = TraceRecorder()
        SimulationDriver(burn_in=0, measure=rounds, observers=[trace]).run(process)
        generated = sum(r.arrivals for r in trace.records)
        deleted = sum(r.deleted for r in trace.records)
        final = trace.records[-1]
        assert generated == deleted + final.pool_size + final.total_load

    def test_deterministic_arrivals(self):
        self._check_capped_conservation(
            CappedProcess(n=64, capacity=2, lam=0.75, rng=3), rounds=200
        )

    def test_bernoulli_arrivals(self):
        arrivals = BernoulliArrivals(n=64, lam=0.75)
        self._check_capped_conservation(
            CappedProcess(n=64, capacity=2, lam=0.75, rng=4, arrivals=arrivals),
            rounds=200,
        )

    def test_poisson_arrivals(self):
        arrivals = PoissonArrivals(n=64, lam=0.5)
        self._check_capped_conservation(
            CappedProcess(n=64, capacity=1, lam=0.5, rng=5, arrivals=arrivals),
            rounds=200,
        )

    def test_bursty_arrivals(self):
        arrivals = BurstyArrivals(n=64, lam_high=1.0, lam_low=0.25, on_rounds=10, off_rounds=10)
        self._check_capped_conservation(
            CappedProcess(n=64, capacity=3, lam=0.625, rng=6, arrivals=arrivals),
            rounds=200,
        )


class TestStochasticArrivalStability:
    def test_bernoulli_model_matches_deterministic_in_steady_state(self):
        # Paper footnote 2: results carry over to probabilistic generation.
        driver = SimulationDriver(burn_in=500, measure=500)
        deterministic = driver.run(CappedProcess(n=512, capacity=2, lam=0.875, rng=7))
        probabilistic = driver.run(
            CappedProcess(
                n=512,
                capacity=2,
                lam=0.875,
                rng=8,
                arrivals=BernoulliArrivals(n=512, lam=0.875),
            )
        )
        assert probabilistic.normalized_pool == pytest.approx(
            deterministic.normalized_pool, rel=0.2
        )

    def test_pool_recovers_after_burst(self):
        arrivals = BurstyArrivals(n=256, lam_high=1.0, lam_low=0.0, on_rounds=50, off_rounds=50)
        process = CappedProcess(n=256, capacity=2, lam=0.5, rng=9, arrivals=arrivals)
        trace = TraceRecorder()
        SimulationDriver(burn_in=0, measure=400, observers=[trace]).run(process)
        pools = trace.pool_sizes()
        # At the end of each off phase the pool must have drained well
        # below its in-burst peak.
        assert pools[99] < max(pools[50:99])
        assert pools[199] <= pools[150]
