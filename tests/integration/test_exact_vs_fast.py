"""Integration: the fast CAPPED simulator equals the per-ball reference.

The fast simulator buckets exchangeable balls and records waiting times at
acceptance via the queue-position identity; the exact simulator tracks
every ball individually and records waits at actual deletion. Driven with
*identical* bin choices, the two must produce identical round-by-round
trajectories (pool sizes, acceptance counts, loads) and — once both are
drained — identical waiting-time multisets.
"""

import numpy as np
import pytest

from repro.core.capped import CappedProcess, ExactCappedSimulator
from repro.workloads.arrivals import DeterministicArrivals


def run_coupled_pair(n, capacity, lam, rounds, seed, kernel="fused"):
    """Run both simulators on shared choices; return wait multisets."""
    fast = CappedProcess(n=n, capacity=capacity, lam=lam, rng=0, kernel=kernel)
    exact = ExactCappedSimulator(n=n, capacity=capacity, lam=lam, rng=0)
    choice_rng = np.random.default_rng(seed)
    arrivals_per_round = round(lam * n)

    fast_waits: list[int] = []
    exact_waits: list[int] = []

    def collect(record, sink):
        for value, count in zip(record.wait_values, record.wait_counts):
            sink.extend([int(value)] * int(count))

    total_rounds = 0
    draining = False
    while True:
        total_rounds += 1
        if total_rounds > rounds and not draining:
            draining = True
            zero = DeterministicArrivals(n=n, lam=0.0)
            fast.arrivals = zero
            exact.arrivals = zero
        thrown = fast.pool.size + (0 if draining else arrivals_per_round)
        choices = choice_rng.integers(0, n, size=thrown)

        fast_record = fast.step(choices=choices)
        exact_record = exact.step(choices=choices)

        assert fast_record.pool_size == exact_record.pool_size, total_rounds
        assert fast_record.accepted == exact_record.accepted, total_rounds
        assert fast_record.deleted == exact_record.deleted, total_rounds
        assert fast_record.total_load == exact_record.total_load, total_rounds
        assert fast_record.max_load == exact_record.max_load, total_rounds

        collect(fast_record, fast_waits)
        collect(exact_record, exact_waits)

        if draining and fast_record.pool_size == 0 and fast_record.total_load == 0:
            break
        assert total_rounds < rounds + 10_000, "failed to drain"

    return fast_waits, exact_waits


@pytest.mark.parametrize("kernel", ["fused", "legacy"])
@pytest.mark.parametrize(
    "n,capacity,lam",
    [
        (16, 1, 0.75),
        (16, 2, 0.75),
        (32, 3, 0.9375),
        (8, 1, 0.5),
        (8, None, 0.75),
    ],
)
def test_trajectories_and_wait_multisets_identical(n, capacity, lam, kernel):
    # Both kernels are driven with *identical injected choices*, so the
    # per-round assertions inside run_coupled_pair pin the fused kernel
    # bit-for-bit against the per-ball reference — pool sizes, acceptance
    # counts, loads every round, wait multisets at the end.
    fast_waits, exact_waits = run_coupled_pair(n, capacity, lam, rounds=60, seed=123, kernel=kernel)
    assert sorted(fast_waits) == sorted(exact_waits)


def test_long_run_unit_capacity():
    fast_waits, exact_waits = run_coupled_pair(24, 1, 0.75, rounds=300, seed=7)
    assert sorted(fast_waits) == sorted(exact_waits)
    assert len(fast_waits) == 300 * 18  # every generated ball eventually served


def test_tie_breaking_does_not_affect_counts():
    # "Ties broken arbitrarily": with identical choices, a serial-reversed
    # exact simulator still matches the fast one on every count metric
    # (individual ball identities may differ, aggregate dynamics may not).
    n, capacity, lam = 16, 2, 0.75
    fast = CappedProcess(n=n, capacity=capacity, lam=lam, rng=0)
    exact = ExactCappedSimulator(n=n, capacity=capacity, lam=lam, rng=0)
    choice_rng = np.random.default_rng(99)
    for _ in range(100):
        thrown = fast.pool.size + round(lam * n)
        choices = choice_rng.integers(0, n, size=thrown)
        # Reverse within-round order for the exact sim: same age classes,
        # different serial order inside each class.
        fast_record = fast.step(choices=choices)
        exact_record = exact.step(choices=choices)
        assert fast_record.pool_size == exact_record.pool_size
        assert fast_record.max_load == exact_record.max_load
