"""Integration: long-run simulations respect Theorems 1 and 2.

The theorems are w.h.p. upper bounds holding at *any* time, so a long
simulation's peak pool size and maximum waiting time must stay below them.
The paper notes its constants are deliberately unoptimised, so these are
loose ceilings — the interesting direction is that they are never crossed.
"""

import pytest

from repro.analysis.sweep import measure_capped
from repro.core import theory


@pytest.mark.parametrize("lam", [0.5, 0.75, 1 - 2**-6])
def test_theorem1_pool_bound(lam):
    point = measure_capped(n=1024, c=1, lam=lam, measure=500, seed=11)
    assert point.peak_pool < theory.thm1_pool_bound(lam, 1024)


@pytest.mark.parametrize("lam", [0.5, 0.75, 1 - 2**-6])
def test_theorem1_wait_bound(lam):
    point = measure_capped(n=1024, c=1, lam=lam, measure=500, seed=12)
    assert point.max_wait < theory.thm1_wait_bound(lam, 1024)


@pytest.mark.parametrize("c", [2, 3, 4])
def test_theorem2_pool_bound(c):
    lam = 1 - 2**-8
    point = measure_capped(n=1024, c=c, lam=lam, measure=500, seed=13)
    assert point.peak_pool < theory.thm2_pool_bound(c, lam, 1024)


@pytest.mark.parametrize("c", [2, 3, 4])
def test_theorem2_wait_bound(c):
    lam = 1 - 2**-8
    point = measure_capped(n=1024, c=c, lam=lam, measure=500, seed=14)
    assert point.max_wait < theory.thm2_wait_bound(c, lam, 1024)


def test_section5_observation_bounds_are_loose():
    # Section V: measured behaviour is well below the proven bounds
    # (the paper attributes a factor of ~4 to the unoptimised analysis).
    lam, c, n = 1 - 2**-8, 2, 1024
    point = measure_capped(n=n, c=c, lam=lam, measure=500, seed=15)
    assert point.normalized_pool < theory.thm2_pool_bound(c, lam, n) / n / 4
    assert point.avg_wait < theory.thm2_wait_bound(c, lam, n) / 4


def test_empirical_reference_curves_hold():
    # The tighter Section V reference curves also upper-bound the data.
    for c in (1, 2, 3):
        lam = 1 - 2**-8
        point = measure_capped(n=1024, c=c, lam=lam, measure=400, seed=16 + c)
        assert point.normalized_pool <= theory.empirical_pool_curve(c, lam)
        assert point.max_wait <= theory.empirical_wait_curve(c, lam, 1024)
