"""Integration: checkpoint/restore resumes identical trajectories everywhere.

Every checkpointable process (CAPPED, MODCAPPED, GREEDY) must replay the
exact same future after a snapshot round-trip — including its RNG state.
"""

import pytest

from repro.core.capped import CappedProcess
from repro.core.modcapped import ModCappedProcess
from repro.processes.greedy import GreedyBatchProcess


def trajectory(process, rounds):
    return [
        (r.pool_size, r.accepted, r.deleted, r.max_load, r.total_load)
        for r in (process.step() for _ in range(rounds))
    ]


FACTORIES = {
    "capped": lambda seed: CappedProcess(n=48, capacity=2, lam=0.75, rng=seed),
    "modcapped": lambda seed: ModCappedProcess(n=48, c=3, lam=0.75, rng=seed),
    "greedy": lambda seed: GreedyBatchProcess(n=48, d=2, lam=0.75, rng=seed),
}


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_snapshot_restore_resumes_identically(name):
    factory = FACTORIES[name]
    process = factory(1)
    trajectory(process, 25)
    snapshot = process.get_state()
    expected = trajectory(process, 40)

    fresh = factory(999)  # different seed: state must fully override it
    fresh.set_state(snapshot)
    assert trajectory(fresh, 40) == expected


@pytest.mark.parametrize("name", sorted(FACTORIES))
def test_snapshot_rewind_same_instance(name):
    process = FACTORIES[name](2)
    trajectory(process, 10)
    snapshot = process.get_state()
    first = trajectory(process, 20)
    process.set_state(snapshot)
    assert trajectory(process, 20) == first


def test_greedy_shape_mismatch_rejected():
    small = GreedyBatchProcess(n=8, d=1, lam=0.5, rng=0)
    small.step()
    big = GreedyBatchProcess(n=16, d=1, lam=0.5, rng=0)
    with pytest.raises(ValueError):
        big.set_state(small.get_state())


def test_modcapped_shape_mismatch_rejected():
    small = ModCappedProcess(n=8, c=2, lam=0.5, rng=0)
    small.step()
    big = ModCappedProcess(n=16, c=2, lam=0.5, rng=0)
    with pytest.raises(ValueError):
        big.set_state(small.get_state())
