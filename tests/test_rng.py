"""Unit tests for deterministic randomness management."""

import numpy as np
import pytest

from repro.rng import RngFactory, resolve_rng, spawn_children


class TestRngFactory:
    def test_same_seed_same_stream(self):
        a = RngFactory(seed=5).generator("x")
        b = RngFactory(seed=5).generator("x")
        assert a.integers(1 << 40) == b.integers(1 << 40)

    def test_different_names_different_streams(self):
        factory = RngFactory(seed=5)
        a = factory.generator("alpha")
        b = factory.generator("beta")
        assert list(a.integers(1 << 30, size=8)) != list(b.integers(1 << 30, size=8))

    def test_different_seeds_different_streams(self):
        a = RngFactory(seed=1).generator("x")
        b = RngFactory(seed=2).generator("x")
        assert list(a.integers(1 << 30, size=8)) != list(b.integers(1 << 30, size=8))

    def test_same_name_returns_fresh_state(self):
        factory = RngFactory(seed=9)
        first = factory.generator("s")
        first.integers(10, size=100)  # advance
        second = factory.generator("s")
        third = factory.generator("s")
        assert second.integers(1 << 30) == third.integers(1 << 30)

    def test_sequential_streams_differ(self):
        factory = RngFactory(seed=3)
        a = factory.sequential()
        b = factory.sequential()
        assert list(a.integers(1 << 30, size=8)) != list(b.integers(1 << 30, size=8))

    def test_child_factories_independent(self):
        parent = RngFactory(seed=3)
        values = {parent.child(i).generator("x").integers(1 << 40) for i in range(20)}
        assert len(values) == 20

    def test_child_reproducible(self):
        assert (
            RngFactory(seed=3).child(4).generator("x").integers(1 << 40)
            == RngFactory(seed=3).child(4).generator("x").integers(1 << 40)
        )


class TestResolveRng:
    def test_none_gives_generator(self):
        assert isinstance(resolve_rng(None), np.random.Generator)

    def test_generator_passthrough(self):
        generator = np.random.default_rng(0)
        assert resolve_rng(generator) is generator

    def test_int_seed(self):
        a = resolve_rng(7, "n")
        b = resolve_rng(7, "n")
        assert a.integers(1 << 40) == b.integers(1 << 40)

    def test_factory_input(self):
        factory = RngFactory(seed=1)
        generator = resolve_rng(factory, "name")
        assert isinstance(generator, np.random.Generator)

    def test_numpy_integer_seed(self):
        assert isinstance(resolve_rng(np.int64(3)), np.random.Generator)

    def test_rejects_garbage(self):
        with pytest.raises(TypeError):
            resolve_rng("seed")  # type: ignore[arg-type]


class TestSpawnChildren:
    def test_count(self, rng):
        assert len(spawn_children(rng, 5)) == 5

    def test_children_distinct(self, rng):
        children = spawn_children(rng, 10)
        first_draws = {int(child.integers(1 << 40)) for child in children}
        assert len(first_draws) == 10

    def test_zero_children(self, rng):
        assert spawn_children(rng, 0) == []

    def test_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            spawn_children(rng, -1)
