"""Edge cases of the whole-round serial kernel and its dispatch guards.

The kernel's contract is purely arithmetic — clip evolving loads against
a per-key ceiling, oldest buckets first — so a transparent per-ball
Python reference checks it exactly on inputs the simulators never
produce through :class:`~repro.balls.bin_array.BinArray` (which enforces
``capacity >= 1``): zero-capacity keys, mixtures of tiny/huge ceilings,
and bucket layouts sized to hit the tiny/sparse/dense code paths in one
round. Separately: a fleet-wide outage (every bin down) must route the
fused process off the serial kernel and still match legacy bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.capped import CappedProcess
from repro.engine.driver import SimulationDriver
from repro.engine.observers import TraceRecorder
from repro.faults import CrashBurst, FaultInjector, FaultSchedule
from repro.kernels.round import resolve_capped_round_serial

from tests.kernels.test_fused_equivalence import assert_records_equal


def naive_round(loads, capacity_limit, bucket_keys, bucket_ages, hist_size):
    """Ball-by-ball reference resolution of one round (oldest first)."""
    loads = np.asarray(loads, dtype=np.int64).copy()
    if np.isscalar(capacity_limit):
        limit = np.full(loads.shape, capacity_limit, dtype=np.int64)
    else:
        limit = np.asarray(capacity_limit, dtype=np.int64)
    accepted_per_bucket = []
    waits: dict[int, int] = {}
    for keys, age in zip(bucket_keys, bucket_ages):
        taken = 0
        for key in np.asarray(keys, dtype=np.int64).tolist():
            held = loads[key]
            if held < limit[key]:
                waits[age + held] = waits.get(age + held, 0) + 1
                loads[key] = held + 1
                taken += 1
        accepted_per_bucket.append(taken)
    peak_load = int(loads.max()) if loads.size else 0
    deleted = int(np.count_nonzero(loads))
    new_loads = np.maximum(loads - 1, 0)
    wait_values = sorted(waits)
    return {
        "new_loads": new_loads,
        "accepted_per_bucket": accepted_per_bucket,
        "accepted_total": sum(accepted_per_bucket),
        "deleted": deleted,
        "peak_load": peak_load,
        "max_load": max(peak_load - 1, 0),
        "wait_values": wait_values,
        "wait_counts": [waits[v] for v in wait_values],
    }


def run_kernel(loads, capacity_limit, bucket_keys, bucket_ages, hist_size, **kwargs):
    loads = np.asarray(loads, dtype=np.int64)
    ball_keys = (
        np.concatenate([np.asarray(k, dtype=np.int64) for k in bucket_keys])
        if bucket_keys
        else np.zeros(0, dtype=np.int64)
    )
    counts = [len(k) for k in bucket_keys]
    return resolve_capped_round_serial(
        loads, capacity_limit, ball_keys, counts, list(bucket_ages), hist_size, **kwargs
    )


def assert_matches_naive(loads, capacity_limit, bucket_keys, bucket_ages, hist_size):
    result = run_kernel(loads, capacity_limit, bucket_keys, bucket_ages, hist_size)
    expected = naive_round(loads, capacity_limit, bucket_keys, bucket_ages, hist_size)
    assert np.array_equal(result.new_loads, expected["new_loads"])
    assert result.accepted_per_bucket == expected["accepted_per_bucket"]
    assert result.accepted_total == expected["accepted_total"]
    assert result.deleted == expected["deleted"]
    assert result.peak_load == expected["peak_load"]
    assert result.max_load == expected["max_load"]
    assert result.wait_values.tolist() == expected["wait_values"]
    assert result.wait_counts.tolist() == expected["wait_counts"]
    return result


class TestHeterogeneousCeilings:
    def test_zero_one_and_large_capacities(self):
        # c_i ∈ {0, 1, 37}: zero-capacity keys must never accept, large
        # ones must absorb everything thrown at them.
        rng = np.random.default_rng(1)
        n = 24
        limit = np.array(([0, 1, 37] * n)[:n], dtype=np.int64)
        loads = np.minimum(rng.integers(0, 3, size=n), limit)
        buckets = [rng.integers(0, n, size=size) for size in (200, 40, 7)]
        result = assert_matches_naive(loads, limit, buckets, [2, 1, 0], hist_size=39)
        zero_keys = np.flatnonzero(limit == 0)
        assert not result.new_loads[zero_keys].any()

    def test_all_zero_capacity_accepts_nothing(self):
        rng = np.random.default_rng(2)
        n = 16
        result = assert_matches_naive(
            np.zeros(n, dtype=np.int64),
            np.zeros(n, dtype=np.int64),
            [rng.integers(0, n, size=50)],
            [0],
            hist_size=2,
        )
        assert result.accepted_total == 0
        assert result.deleted == 0

    @pytest.mark.parametrize("seed", range(5))
    def test_random_mixed_ceilings_match_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 40))
        limit = rng.choice([0, 1, 2, 5, 19], size=n).astype(np.int64)
        loads = np.minimum(rng.integers(0, 4, size=n), limit)
        num_buckets = int(rng.integers(1, 5))
        buckets = [rng.integers(0, n, size=int(rng.integers(0, 4 * n))) for _ in range(num_buckets)]
        ages = list(range(num_buckets))[::-1]
        hist_size = int(limit.max()) + 1 if limit.size else 1
        assert_matches_naive(loads, limit, buckets, ages, hist_size)

    def test_tiny_sparse_and_dense_buckets_in_one_round(self):
        # One bucket per code path: <= _TINY_BUCKET scalar balls, a
        # mid-size sparse bincount bucket, and a dense whole-array bucket.
        rng = np.random.default_rng(3)
        n = 64
        limit = np.array([1, 3] * 32, dtype=np.int64)
        loads = np.zeros(n, dtype=np.int64)
        buckets = [
            rng.integers(0, n, size=5),
            rng.integers(0, n, size=7),
            rng.integers(0, n, size=500),
        ]
        assert_matches_naive(loads, limit, buckets, [2, 1, 0], hist_size=4)

    def test_scalar_ceiling_matches_reference(self):
        rng = np.random.default_rng(4)
        n = 32
        loads = rng.integers(0, 3, size=n)
        buckets = [rng.integers(0, n, size=size) for size in (90, 12)]
        assert_matches_naive(loads, 4, buckets, [1, 0], hist_size=5)


class TestFleetWideOutage:
    def run_with_outage(self, kernel):
        # Crash every bin at once: the serial kernel is ineligible while
        # anything is down, so the fused process must fall back and still
        # match legacy exactly through the outage and the recovery.
        schedule = FaultSchedule(
            events=(CrashBurst(at_round=15, fraction=1.0, duration=20),), seed=3
        )
        process = CappedProcess(n=64, capacity=2, lam=0.9375, rng=9, initial_pool=30, kernel=kernel)
        trace = TraceRecorder()
        SimulationDriver(
            burn_in=0, measure=80, observers=[trace, FaultInjector(schedule)]
        ).run(process)
        process.check_invariants()
        return trace, process

    def test_all_bins_down_matches_legacy(self):
        fused_trace, p1 = self.run_with_outage("fused")
        legacy_trace, p2 = self.run_with_outage("legacy")
        for a, b in zip(fused_trace.records, legacy_trace.records):
            assert_records_equal(a, b, context=f"round {a.round}")
        assert np.array_equal(p1.bins.loads, p2.bins.loads)
        # The outage really was total at its peak.
        assert p1.bins.down_count == 0  # recovered by the end
