"""The sharded engine is exactly the CAPPED process, shard by shard.

``kernel="legacy"`` is the oracle throughout, two ways:

1. **One shard is the unsharded trajectory.** ``shards=1`` consumes the
   stream ``RngFactory(seed).child(0).generator("capped")`` exactly like
   a single-process run on that generator (the RNG-stream contract), so
   every record matches bit for bit.
2. **Capture and replay.** For ``shards >= 2`` the realised choice
   vector is a different (but well-defined) sample; ``record_choices``
   captures it each round and injecting it into a legacy run must
   reproduce the sharded records exactly — acceptance, waits, deletions,
   final loads. This covers the span filtering, the per-shard histogram
   carries, and the merge, with zero tolerance.

On top of the oracle: inline and process backends agree bit for bit,
checkpoints restore mid-run bit-identically (including through the
SimulationDriver), and misconfigurations fail loudly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.capped import CappedProcess
from repro.engine.driver import SimulationDriver
from repro.errors import ConfigurationError
from repro.kernels.sharded import ShardedCappedProcess, shard_ranges, split_bucket
from repro.rng import RngFactory

from tests.kernels.test_fused_equivalence import assert_records_equal


SHARDED_CONFIGS = [
    dict(n=64, capacity=1, lam=0.9375),
    dict(n=64, capacity=4, lam=0.984375),
    dict(n=64, capacity=2, lam=0.9375, acceptance_order="youngest"),
    dict(n=64, capacity=3, lam=0.9375, initial_pool=100),
]


def run_sharded(shards, rounds=120, seed=7, backend="inline", **kwargs):
    process = ShardedCappedProcess(seed=seed, shards=shards, backend=backend, **kwargs)
    with process:
        records = [process.step() for _ in range(rounds)]
        process.check_invariants()
        loads = process.bins.loads.copy()
    return records, loads


class TestPartitioning:
    def test_shard_ranges_cover_without_overlap(self):
        for n, shards in [(64, 1), (64, 3), (7, 7), (100, 9)]:
            ranges = shard_ranges(n, shards)
            assert ranges[0][0] == 0
            assert ranges[-1][1] == n
            for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
                assert hi == lo
            sizes = [hi - lo for lo, hi in ranges]
            assert max(sizes) - min(sizes) <= 1

    def test_split_bucket_tiles_the_bucket(self):
        for count, shards in [(0, 4), (1, 4), (17, 3), (100, 7)]:
            split = split_bucket(count, shards)
            assert split[0][0] == 0
            assert split[-1][1] == count
            for (_, hi), (lo, _) in zip(split, split[1:]):
                assert hi == lo


class TestOneShardIsTheUnshardedRun:
    @pytest.mark.parametrize("config", SHARDED_CONFIGS, ids=lambda c: str(sorted(c.items())))
    def test_bit_identical_to_legacy_same_stream(self, config):
        rng = RngFactory(7).child(0).generator("capped")
        legacy = CappedProcess(rng=rng, kernel="legacy", **config)
        legacy_records = [legacy.step() for _ in range(120)]
        sharded_records, loads = run_sharded(shards=1, **config)
        for a, b in zip(legacy_records, sharded_records):
            assert_records_equal(a, b, context=f"round {a.round}: {config}")
        assert np.array_equal(legacy.bins.loads, loads)


class TestCaptureReplayOracle:
    @pytest.mark.parametrize("shards", [2, 3, 5])
    @pytest.mark.parametrize("config", SHARDED_CONFIGS, ids=lambda c: str(sorted(c.items())))
    def test_legacy_replay_of_sharded_choices(self, config, shards):
        sharded = ShardedCappedProcess(seed=7, shards=shards, record_choices=True, **config)
        legacy = CappedProcess(rng=0, kernel="legacy", **config)
        for _ in range(120):
            mine = sharded.step()
            theirs = legacy.step(choices=sharded.last_choices)
            assert_records_equal(
                mine, theirs, context=f"round {mine.round}: {config} shards={shards}"
            )
        sharded.check_invariants()
        assert np.array_equal(sharded.bins.loads, legacy.bins.loads)
        assert sharded.pool.labels() == legacy.pool.labels()
        assert sharded.pool.counts() == legacy.pool.counts()

    def test_heterogeneous_capacities(self):
        capacity = np.array([1, 2, 3, 4] * 16, dtype=np.int64)
        sharded = ShardedCappedProcess(
            n=64, capacity=capacity, lam=0.9375, seed=3, shards=3, record_choices=True
        )
        legacy = CappedProcess(n=64, capacity=capacity, lam=0.9375, rng=0, kernel="legacy")
        for _ in range(120):
            mine = sharded.step()
            theirs = legacy.step(choices=sharded.last_choices)
            assert_records_equal(mine, theirs, context=f"round {mine.round}")
        assert np.array_equal(sharded.bins.loads, legacy.bins.loads)

    def test_injected_choices_match_legacy(self):
        # Injection bypasses the substreams entirely: the same explicit
        # vector fed to both engines must resolve identically.
        rng = np.random.default_rng(99)
        sharded = ShardedCappedProcess(n=32, capacity=2, lam=0.9375, seed=1, shards=4)
        legacy = CappedProcess(n=32, capacity=2, lam=0.9375, rng=0, kernel="legacy")
        for _ in range(80):
            thrown = sharded.pool_size + sharded.arrivals.per_round
            choices = rng.integers(0, 32, size=thrown)
            assert_records_equal(sharded.step(choices=choices), legacy.step(choices=choices))
        assert np.array_equal(sharded.bins.loads, legacy.bins.loads)


class TestProcessBackend:
    def test_matches_inline_bit_for_bit(self):
        inline_records, inline_loads = run_sharded(shards=2, n=64, capacity=3, lam=0.9375, seed=11)
        process_records, process_loads = run_sharded(
            shards=2, n=64, capacity=3, lam=0.9375, seed=11, backend="process"
        )
        for a, b in zip(inline_records, process_records):
            assert_records_equal(a, b, context=f"round {a.round}")
        assert np.array_equal(inline_loads, process_loads)

    def test_heterogeneous_capacity_and_injection(self):
        capacity = np.array([1, 3] * 32, dtype=np.int64)
        rng = np.random.default_rng(5)
        with ShardedCappedProcess(
            n=64, capacity=capacity, lam=0.9375, seed=2, shards=2, backend="process"
        ) as worker_side:
            inline_side = ShardedCappedProcess(
                n=64, capacity=capacity, lam=0.9375, seed=2, shards=2
            )
            for step in range(60):
                if step % 3 == 0:
                    thrown = inline_side.pool_size + inline_side.arrivals.per_round
                    choices = rng.integers(0, 64, size=thrown)
                else:
                    choices = None
                assert_records_equal(
                    worker_side.step(choices=choices), inline_side.step(choices=choices)
                )
            assert np.array_equal(worker_side.bins.loads, inline_side.bins.loads)

    def test_choice_buffer_growth(self):
        # A pool flood forces the shared choices buffer past its initial
        # capacity; the grow handshake must stay bit-identical.
        flood = 6000
        with ShardedCappedProcess(
            n=16,
            capacity=2,
            lam=0.9375,
            seed=4,
            shards=2,
            backend="process",
            initial_pool=flood,
        ) as worker_side:
            inline_side = ShardedCappedProcess(
                n=16, capacity=2, lam=0.9375, seed=4, shards=2, initial_pool=flood
            )
            for _ in range(30):
                assert_records_equal(worker_side.step(), inline_side.step())
            assert np.array_equal(worker_side.bins.loads, inline_side.bins.loads)

    def test_close_is_idempotent_and_releases_loads(self):
        engine = ShardedCappedProcess(
            n=32, capacity=2, lam=0.9375, seed=1, shards=2, backend="process"
        )
        record = engine.step()
        engine.close()
        engine.close()
        # The bins survive teardown as a private copy.
        assert engine.bins.loads.sum() == record.total_load
        engine.bins.check_invariants()


class TestCheckpointing:
    @pytest.mark.parametrize("backend", ["inline", "process"])
    def test_mid_run_snapshot_restores_bit_identically(self, backend):
        with ShardedCappedProcess(
            n=64, capacity=3, lam=0.9375, seed=5, shards=2, backend=backend
        ) as original:
            for _ in range(40):
                original.step()
            snapshot = original.get_state()
            tail = [original.step() for _ in range(40)]
        with ShardedCappedProcess(
            n=64, capacity=3, lam=0.9375, seed=5, shards=2, backend=backend
        ) as restored:
            restored.set_state(snapshot)
            for expected in tail:
                assert_records_equal(expected, restored.step())

    def test_snapshot_crosses_backends(self):
        with ShardedCappedProcess(
            n=64, capacity=3, lam=0.9375, seed=6, shards=2, backend="process"
        ) as original:
            for _ in range(30):
                original.step()
            snapshot = original.get_state()
            tail = [original.step() for _ in range(30)]
        restored = ShardedCappedProcess(n=64, capacity=3, lam=0.9375, seed=6, shards=2)
        restored.set_state(snapshot)
        for expected in tail:
            assert_records_equal(expected, restored.step())

    def test_shard_count_mismatch_rejected(self):
        snapshot = ShardedCappedProcess(n=64, capacity=3, lam=0.9375, seed=6, shards=2).get_state()
        other = ShardedCappedProcess(n=64, capacity=3, lam=0.9375, seed=6, shards=4)
        with pytest.raises(ConfigurationError, match="shards"):
            other.set_state(snapshot)

    @pytest.mark.parametrize("kill_round", [3, 22])
    def test_driver_kill_resume_bit_identical(self, tmp_path, kill_round):
        from tests.engine.test_driver_checkpoint import assert_kill_resume_identical

        def build():
            return ShardedCappedProcess(n=64, capacity=3, lam=0.9375, seed=8, shards=2)

        assert_kill_resume_identical(tmp_path, build, kill_round)


class TestConfigurationGuards:
    def test_unbounded_capacity_rejected(self):
        with pytest.raises(ConfigurationError, match="finite"):
            ShardedCappedProcess(n=64, capacity=None, lam=0.9375, seed=0, shards=2)

    def test_more_shards_than_bins_rejected(self):
        with pytest.raises(ConfigurationError, match="bin per shard"):
            ShardedCappedProcess(n=4, capacity=2, lam=0.75, seed=0, shards=8)

    def test_zero_shards_rejected(self):
        with pytest.raises(ConfigurationError, match="shards"):
            ShardedCappedProcess(n=4, capacity=2, lam=0.75, seed=0, shards=0)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ConfigurationError, match="backend"):
            ShardedCappedProcess(n=4, capacity=2, lam=0.75, seed=0, shards=2, backend="gpu")

    def test_injected_choices_must_cover_all_balls(self):
        engine = ShardedCappedProcess(n=16, capacity=2, lam=0.9375, seed=0, shards=2)
        with pytest.raises(ConfigurationError, match="thrown"):
            engine.step(choices=np.zeros(3, dtype=np.int64))
