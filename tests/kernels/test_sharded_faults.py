"""The sharded engine under fault injection, against the legacy oracle.

Fault victims come from the *schedule's* RNG stream, so two
:class:`~repro.faults.injector.FaultInjector` instances built from one
:class:`~repro.faults.schedule.FaultSchedule` impose bit-identical fault
trajectories on two different processes. That lets the capture-and-replay
oracle of ``test_sharded.py`` extend to faulted runs: step the sharded
engine with ``record_choices=True``, replay its realised choice vector
into a legacy run under the same faults, and every record must match —
including the down-bin deletion undo (frozen queues) that the sharded
coordinator patches into the per-shard summaries.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.capped import CappedProcess
from repro.faults.injector import FaultInjector
from repro.faults.schedule import (
    CapacityDegradation,
    CrashBurst,
    FaultSchedule,
    StochasticCrashes,
)
from repro.kernels.sharded import ShardedCappedProcess

from tests.kernels.test_fused_equivalence import assert_records_equal


def run_equivalence(schedule, shards, rounds=60, backend="inline", **config):
    """Sharded-with-faults vs legacy-replay-with-faults, zero tolerance."""
    sharded = ShardedCappedProcess(
        seed=7, shards=shards, backend=backend, record_choices=True, **config
    )
    legacy = CappedProcess(rng=0, kernel="legacy", **config)
    sharded_injector = FaultInjector(schedule)
    legacy_injector = FaultInjector(schedule)
    saw_down = False
    down_spans = set()
    with sharded:
        for _ in range(rounds):
            mine = sharded.step()
            theirs = legacy.step(choices=sharded.last_choices)
            assert_records_equal(mine, theirs, context=f"round {mine.round} shards={shards}")
            sharded_injector.on_round(mine, sharded)
            legacy_injector.on_round(theirs, legacy)
            assert np.array_equal(sharded.bins.down, legacy.bins.down)
            if sharded.bins.down_count:
                saw_down = True
                down_idx = np.flatnonzero(sharded.bins.down)
                for lo, hi in sharded.ranges:
                    if ((down_idx >= lo) & (down_idx < hi)).any():
                        down_spans.add((lo, hi))
        sharded.check_invariants()
        legacy.check_invariants()
        assert np.array_equal(sharded.bins.loads, legacy.bins.loads)
        assert sharded.pool.labels() == legacy.pool.labels()
        assert sharded.pool.counts() == legacy.pool.counts()
    assert saw_down, "schedule never took a bin down; the test exercised nothing"
    return down_spans


class TestCrashBurst:
    @pytest.mark.parametrize("shards", [2, 4])
    def test_frozen_down_bins_match_legacy(self, shards):
        schedule = FaultSchedule(
            events=(CrashBurst(at_round=10, fraction=0.3, duration=20),), seed=3
        )
        down_spans = run_equivalence(
            schedule, shards, n=64, capacity=2, lam=0.9375, initial_pool=50
        )
        # 19 victims out of 64: the outage must straddle shard boundaries,
        # otherwise the per-shard summary correction went untested.
        assert len(down_spans) >= 2

    def test_wiped_buffers_match_legacy(self):
        schedule = FaultSchedule(
            events=(
                CrashBurst(at_round=8, fraction=0.25, duration=15, buffer_policy="wiped"),
            ),
            seed=5,
        )
        run_equivalence(schedule, shards=3, n=48, capacity=3, lam=0.9375, initial_pool=60)

    def test_permanent_outage(self):
        schedule = FaultSchedule(
            events=(CrashBurst(at_round=12, fraction=0.2, duration=None),), seed=9
        )
        run_equivalence(schedule, shards=4, n=64, capacity=2, lam=0.875)

    def test_unit_capacity(self):
        # c=1 takes the allow_unit_capacity serial path on the sharded side.
        schedule = FaultSchedule(
            events=(CrashBurst(at_round=10, fraction=0.3, duration=25),), seed=4
        )
        run_equivalence(schedule, shards=4, n=64, capacity=1, lam=0.9375, initial_pool=40)


class TestCapacityDegradation:
    def test_degraded_window_matches_legacy(self):
        schedule = FaultSchedule(
            events=(
                CrashBurst(at_round=20, fraction=0.15, duration=10),
                CapacityDegradation(at_round=10, duration=25, capacity=1, fraction=0.5),
            ),
            seed=6,
        )
        run_equivalence(schedule, shards=3, n=48, capacity=4, lam=0.9375, initial_pool=80)


class TestStochasticCrashes:
    def test_markov_outages_match_legacy(self):
        schedule = FaultSchedule(
            events=(
                StochasticCrashes(
                    first_round=5, last_round=50, crash_prob=0.02, recover_prob=0.2
                ),
            ),
            seed=8,
        )
        run_equivalence(schedule, shards=4, n=64, capacity=2, lam=0.9375, rounds=80)


@pytest.mark.slow
class TestProcessBackend:
    def test_crash_burst_process_backend(self):
        schedule = FaultSchedule(
            events=(CrashBurst(at_round=10, fraction=0.3, duration=20),), seed=3
        )
        run_equivalence(
            schedule,
            shards=2,
            backend="process",
            n=64,
            capacity=2,
            lam=0.9375,
            initial_pool=50,
        )
