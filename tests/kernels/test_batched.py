"""BatchedCappedProcess: R fused replicates, bit-identical to R serial runs.

Also unit tests of :func:`resolve_capped_round` itself (hand-checkable
acceptance cases) and of the driver/sweep wiring around the batched engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sweep import (
    measure_capped,
    run_capped_replicate,
    run_capped_replicates_batched,
)
from repro.core.capped import CappedProcess
from repro.engine.driver import SimulationDriver
from repro.engine.observers import TraceRecorder
from repro.errors import ConfigurationError
from repro.kernels import BatchedCappedProcess, positional_waits, resolve_capped_round
from repro.rng import RngFactory

from tests.kernels.test_fused_equivalence import assert_records_equal


class TestResolveCappedRound:
    def test_empty_round(self):
        free = np.array([1, 1], dtype=np.int64)
        loads = np.zeros(2, dtype=np.int64)
        resolved = resolve_capped_round(
            free, loads, np.zeros(0, np.int64), np.zeros(0, np.int64), np.zeros(0, np.int64)
        )
        assert resolved.accepted_total == 0
        assert resolved.accepted_per_key.tolist() == [0, 0]
        assert resolved.waits.size == 0

    def test_clips_against_free_slots_oldest_first(self):
        # Bin 0: 3 requests (two from bucket 0, one from bucket 2), 2 free
        # — the two highest-priority ones win, the bucket-2 one is
        # rejected. free.max() > 1 exercises the count-matrix path.
        free = np.array([2, 5], dtype=np.int64)
        loads = np.array([1, 0], dtype=np.int64)
        keys = np.array([0, 0, 1, 0], dtype=np.int64)  # priority-major
        counts = np.array([2, 1, 1], dtype=np.int64)
        ages = np.array([4, 3, 1], dtype=np.int64)
        resolved = resolve_capped_round(free, loads, keys, counts, ages)
        assert resolved.accepted_total == 3
        assert resolved.accepted_per_key.tolist() == [2, 1]
        assert resolved.accepted_per_bucket.tolist() == [2, 1, 0]
        # Runs are key-ascending: bin 0 positions start at load 1 → waits
        # 4+1, 4+2; bin 1 at load 0 → wait 3+0.
        assert resolved.run_keys.tolist() == [0, 1]
        assert resolved.run_buckets.tolist() == [0, 1]
        assert resolved.run_lengths.tolist() == [2, 1]
        assert resolved.waits.tolist() == [4 + 1, 4 + 2, 3 + 0]

    def test_bucket_priority_splits_across_runs(self):
        # One bin, 4 free, requests from two buckets: each bucket's
        # acceptances form their own run with their own age.
        free = np.array([4], dtype=np.int64)
        loads = np.array([2], dtype=np.int64)
        keys = np.zeros(3, dtype=np.int64)
        counts = np.array([2, 1], dtype=np.int64)
        ages = np.array([7, 2], dtype=np.int64)
        resolved = resolve_capped_round(free, loads, keys, counts, ages)
        assert resolved.accepted_total == 3
        assert resolved.run_lengths.tolist() == [2, 1]
        # Bucket 0 at positions 2, 3; bucket 1 at position 4.
        assert resolved.waits.tolist() == [7 + 2, 7 + 3, 2 + 4]

    def test_unit_take_first_touch(self):
        # free.max() == 1 → the unit-take fast path: each free key accepts
        # exactly its highest-priority requester.
        free = np.array([1, 1, 0], dtype=np.int64)
        loads = np.array([0, 2, 1], dtype=np.int64)
        # bucket 0: keys 0, 2; bucket 1: keys 0, 1.
        keys = np.array([0, 2, 0, 1], dtype=np.int64)
        counts = np.array([2, 2], dtype=np.int64)
        ages = np.array([5, 1], dtype=np.int64)
        resolved = resolve_capped_round(free, loads, keys, counts, ages)
        assert resolved.accepted_total == 2
        assert resolved.accepted_per_key.tolist() == [1, 1, 0]
        assert resolved.accepted_per_bucket.tolist() == [1, 1]
        assert resolved.run_keys.tolist() == [0, 1]
        assert resolved.run_buckets.tolist() == [0, 1]
        assert resolved.waits.tolist() == [5 + 0, 1 + 2]

    def test_zero_free_accepts_nothing(self):
        free = np.zeros(3, dtype=np.int64)
        loads = np.array([2, 2, 2], dtype=np.int64)
        keys = np.array([0, 1, 2, 1], dtype=np.int64)
        resolved = resolve_capped_round(
            free, loads, keys, np.array([4], np.int64), np.ones(1, np.int64)
        )
        assert resolved.accepted_total == 0
        assert not resolved.accepted_per_key.any()
        assert resolved.waits.size == 0

    def test_unit_take_path_equals_counting_path(self):
        # The dispatch condition (free <= 1 everywhere) is exactly where
        # both implementations are defined — they must agree field by
        # field on random instances.
        from repro.kernels.round import _resolve_counting, _resolve_unit_take

        rng = np.random.default_rng(17)
        for _ in range(50):
            n = int(rng.integers(2, 40))
            num_buckets = int(rng.integers(1, 6))
            counts = rng.integers(0, 12, size=num_buckets).astype(np.int64)
            keys = rng.integers(0, n, size=int(counts.sum()))
            free = rng.integers(0, 2, size=n).astype(np.int64)
            loads = rng.integers(0, 4, size=n).astype(np.int64)
            ages = np.sort(rng.integers(0, 30, size=num_buckets))[::-1].astype(np.int64)
            fast = _resolve_unit_take(free, loads, keys, counts, ages)
            general = _resolve_counting(free, loads, keys, counts, ages, True, True)
            assert fast.accepted_total == general.accepted_total
            assert np.array_equal(fast.accepted_per_key, general.accepted_per_key)
            assert np.array_equal(fast.accepted_per_bucket, general.accepted_per_bucket)
            assert np.array_equal(fast.run_keys, general.run_keys)
            assert np.array_equal(fast.run_buckets, general.run_buckets)
            assert np.array_equal(fast.run_lengths, general.run_lengths)
            assert np.array_equal(fast.waits, general.waits)

    def test_lean_mode_histogram_matches_full_expansion(self):
        # need_runs=False with all-zero loads: the unit-take path returns
        # the wait histogram directly and skips the per-ball arrays; it
        # must agree exactly with histogramming the full path's waits.
        from repro.kernels import wait_histogram

        rng = np.random.default_rng(23)
        for _ in range(30):
            n = int(rng.integers(2, 40))
            num_buckets = int(rng.integers(1, 6))
            counts = rng.integers(0, 12, size=num_buckets).astype(np.int64)
            if counts.sum() == 0:
                counts[0] = 1
            keys = rng.integers(0, n, size=int(counts.sum()))
            free = rng.integers(0, 2, size=n).astype(np.int64)
            loads = np.zeros(n, dtype=np.int64)
            # Ages are distinct by construction for real callers (t − labels
            # with strictly increasing labels) — the lean histogram relies
            # on it.
            ages = np.sort(rng.choice(30, size=num_buckets, replace=False))[::-1]
            ages = ages.astype(np.int64)
            full = resolve_capped_round(free, loads, keys, counts, ages)
            lean = resolve_capped_round(free, loads, keys, counts, ages, need_runs=False)
            assert lean.wait_hist is not None
            assert lean.accepted_total == full.accepted_total
            assert np.array_equal(lean.accepted_per_key, full.accepted_per_key)
            assert np.array_equal(lean.accepted_per_bucket, full.accepted_per_bucket)
            values, tallies = wait_histogram(full.waits)
            assert np.array_equal(lean.wait_hist[0], values)
            assert np.array_equal(lean.wait_hist[1], tallies)

    def test_lean_mode_falls_back_when_loads_nonzero(self):
        # Nonzero loads need the per-ball gather, so lean mode must come
        # back fully populated with wait_hist unset.
        free = np.array([1, 1, 0], dtype=np.int64)
        loads = np.array([0, 2, 1], dtype=np.int64)
        keys = np.array([0, 2, 0, 1], dtype=np.int64)
        counts = np.array([2, 2], dtype=np.int64)
        ages = np.array([5, 1], dtype=np.int64)
        resolved = resolve_capped_round(free, loads, keys, counts, ages, need_runs=False)
        assert resolved.wait_hist is None
        assert resolved.waits.tolist() == [5 + 0, 1 + 2]

    def test_positional_waits_run_expansion(self):
        starts = np.array([5, 2], dtype=np.int64)
        lengths = np.array([3, 1], dtype=np.int64)
        assert positional_waits(starts, lengths).tolist() == [5, 6, 7, 2]
        assert positional_waits(starts[:0], lengths[:0]).size == 0


BATCH_CONFIGS = [
    dict(n=64, capacity=1, lam=0.9375),
    dict(n=64, capacity=4, lam=0.984375),
    dict(n=64, capacity=None, lam=0.96875),
    dict(n=64, capacity=2, lam=0.9375, initial_pool=50),
]


class TestBatchedBitIdentity:
    @pytest.mark.parametrize("config", BATCH_CONFIGS, ids=lambda c: str(sorted(c.items())))
    def test_matches_serial_replicates(self, config):
        R, rounds, seed = 4, 120, 11
        factory = RngFactory(seed)
        serial = []
        for r in range(R):
            process = CappedProcess(rng=factory.child(r).generator("capped"), **config)
            serial.append([process.step() for _ in range(rounds)])

        batched = BatchedCappedProcess(
            rngs=[factory.child(r).generator("capped") for r in range(R)], **config
        )
        for t in range(rounds):
            records = batched.step()
            for r in range(R):
                assert_records_equal(records[r], serial[r][t], context=f"t={t} r={r}")
            if t % 30 == 0:
                batched.check_invariants()

    def test_heterogeneous_capacities_tiled_per_replicate(self):
        R, n = 3, 32
        capacity = np.arange(1, n + 1) % 3 + 1
        factory = RngFactory(2)
        serial = []
        for r in range(R):
            process = CappedProcess(
                n=n,
                capacity=capacity,
                lam=0.9375,
                rng=factory.child(r).generator("capped"),
            )
            serial.append([process.step() for _ in range(100)])
        batched = BatchedCappedProcess(
            n=n,
            capacity=capacity,
            lam=0.9375,
            rngs=[factory.child(r).generator("capped") for r in range(R)],
        )
        for t in range(100):
            for r, record in enumerate(batched.step()):
                assert_records_equal(record, serial[r][t], context=f"t={t} r={r}")
        batched.check_invariants()

    def test_pool_sizes_property(self):
        batched = BatchedCappedProcess(
            n=16,
            capacity=1,
            lam=0.875,
            rngs=[RngFactory(0).child(r).generator("capped") for r in range(2)],
        )
        assert batched.pool_sizes.tolist() == [0, 0]
        records = batched.step()
        assert batched.pool_sizes.tolist() == [r.pool_size for r in records]

    def test_configuration_validation(self):
        rngs = [np.random.default_rng(0)]
        with pytest.raises(ConfigurationError):
            BatchedCappedProcess(n=0, capacity=1, lam=0.5, rngs=rngs)
        with pytest.raises(ConfigurationError):
            BatchedCappedProcess(n=4, capacity=1, lam=0.5, rngs=[])
        with pytest.raises(ConfigurationError):
            BatchedCappedProcess(n=4, capacity=1, lam=0.5, rngs=rngs, initial_pool=-1)
        with pytest.raises(ConfigurationError):
            BatchedCappedProcess(n=4, capacity=np.ones(3, dtype=np.int64), lam=0.5, rngs=rngs)


class TestDriverAndSweepWiring:
    def test_run_batched_equals_serial_runs(self):
        driver = SimulationDriver(burn_in=10, measure=40)
        factory = RngFactory(5)
        serial = [
            driver.run(
                CappedProcess(
                    n=64, capacity=2, lam=0.9375, rng=factory.child(r).generator("capped")
                )
            )
            for r in range(3)
        ]
        batched_results = driver.run_batched(
            BatchedCappedProcess(
                n=64,
                capacity=2,
                lam=0.9375,
                rngs=[factory.child(r).generator("capped") for r in range(3)],
            )
        )
        assert len(batched_results) == 3
        for a, b in zip(batched_results, serial):
            assert a.summary == b.summary
            assert np.array_equal(a.pool_series, b.pool_series)
            assert a.stationary == b.stationary

    def test_run_batched_rejects_observers(self):
        driver = SimulationDriver(burn_in=0, measure=5, observers=[TraceRecorder()])
        process = BatchedCappedProcess(n=8, capacity=1, lam=0.5, rngs=[np.random.default_rng(0)])
        with pytest.raises(ConfigurationError):
            driver.run_batched(process)

    def test_sweep_batched_outcomes_equal_serial(self):
        params = dict(n=128, c=2, lam=0.9375, measure=40, seed=9, warm_start=True, burn_in=25)
        serial = [run_capped_replicate(replicate=r, **params) for r in range(3)]
        batched = run_capped_replicates_batched(replicates=3, **params)
        assert batched == serial

    def test_measure_capped_batch_replicates_flag(self):
        kwargs = dict(n=128, c=2, lam=0.9375, measure=30, replicates=3, seed=4)
        assert measure_capped(**kwargs) == measure_capped(batch_replicates=True, **kwargs)
