"""The fused round kernel is distributionally exact against the legacy sweep.

Two layers of evidence, per the kernel's contract:

1. **Identical injected choices** → identical :class:`RoundRecord`
   sequences (pure acceptance-logic equivalence, no RNG involved).
2. **Independent streams from the same seed** → identical sequences
   *anyway*, because both kernels consume the generator identically:
   bounded ``Generator.integers`` draws split across calls concatenate
   bit-identically to one big call (asserted directly below as the
   RNG-stream contract).

Covered configurations: CAPPED with c = 1, larger c, unbounded bins,
youngest-first ablation order, heterogeneous per-bin capacities,
warm-started pools, d-choice with d ≥ 2, and fault-injected runs with
down and degraded bins.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.capped import CappedProcess
from repro.engine.driver import SimulationDriver
from repro.engine.observers import TraceRecorder
from repro.errors import ConfigurationError
from repro.faults import (
    CapacityDegradation,
    CrashBurst,
    FaultInjector,
    FaultSchedule,
    PeriodicOutage,
)
from repro.processes.capped_dchoice import CappedDChoiceProcess
from repro.rng import RngFactory


def assert_records_equal(a, b, context=""):
    assert a.round == b.round, context
    assert a.arrivals == b.arrivals, context
    assert a.thrown == b.thrown, context
    assert a.accepted == b.accepted, context
    assert a.deleted == b.deleted, context
    assert a.pool_size == b.pool_size, context
    assert a.total_load == b.total_load, context
    assert a.max_load == b.max_load, context
    assert np.array_equal(a.wait_values, b.wait_values), context
    assert np.array_equal(a.wait_counts, b.wait_counts), context


def run_capped(kernel, rounds=150, seed=7, **kwargs):
    rng = RngFactory(seed).child(0).generator("capped")
    process = CappedProcess(rng=rng, kernel=kernel, **kwargs)
    records = [process.step() for _ in range(rounds)]
    process.check_invariants()
    return records, process


CAPPED_CONFIGS = [
    dict(n=64, capacity=1, lam=0.9375),
    dict(n=64, capacity=4, lam=0.984375),
    dict(n=64, capacity=None, lam=0.96875),
    dict(n=64, capacity=2, lam=0.9375, acceptance_order="youngest"),
    dict(n=64, capacity=1, lam=0.9375, initial_pool=100),
]


class TestCappedFusedVsLegacy:
    @pytest.mark.parametrize("config", CAPPED_CONFIGS, ids=lambda c: str(sorted(c.items())))
    def test_independent_streams_same_seed(self, config):
        fused, p1 = run_capped("fused", **config)
        legacy, p2 = run_capped("legacy", **config)
        for a, b in zip(fused, legacy):
            assert_records_equal(a, b, context=f"round {a.round}: {config}")
        assert np.array_equal(p1.bins.loads, p2.bins.loads)
        assert p1.pool.labels() == p2.pool.labels()
        assert p1.pool.counts() == p2.pool.counts()

    def test_heterogeneous_per_bin_capacities(self):
        capacity = np.arange(1, 33) % 3 + 1
        fused, p1 = run_capped("fused", n=32, capacity=capacity, lam=0.9375)
        legacy, p2 = run_capped("legacy", n=32, capacity=capacity, lam=0.9375)
        for a, b in zip(fused, legacy):
            assert_records_equal(a, b, context=f"round {a.round}")
        assert np.array_equal(p1.bins.loads, p2.bins.loads)

    def test_identical_injected_choices(self):
        # No RNG in the loop at all: the acceptance logic alone must agree.
        n, lam = 32, 0.875
        fused = CappedProcess(n=n, capacity=2, lam=lam, rng=0, kernel="fused")
        legacy = CappedProcess(n=n, capacity=2, lam=lam, rng=0, kernel="legacy")
        choice_rng = np.random.default_rng(42)
        for _ in range(120):
            thrown = fused.pool.size + round(lam * n)
            choices = choice_rng.integers(0, n, size=thrown)
            assert_records_equal(fused.step(choices=choices), legacy.step(choices=choices))

    def test_rng_stream_contract(self):
        # The property both kernels' bit-identity rests on: bounded integer
        # draws split across calls equal one concatenated draw, for the 1D
        # per-bucket splits and the row-major (count, d) probe matrices.
        split, whole = np.random.default_rng(3), np.random.default_rng(3)
        chunks = [split.integers(0, 64, size=k) for k in (5, 0, 17, 3)]
        assert np.array_equal(np.concatenate(chunks), whole.integers(0, 64, size=25))

        split2, whole2 = np.random.default_rng(4), np.random.default_rng(4)
        rows = [split2.integers(0, 64, size=(k, 3)) for k in (4, 9)]
        assert np.array_equal(np.vstack(rows), whole2.integers(0, 64, size=(13, 3)))

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ConfigurationError):
            CappedProcess(n=8, capacity=1, lam=0.5, rng=0, kernel="turbo")
        with pytest.raises(ConfigurationError):
            CappedDChoiceProcess(n=8, capacity=1, lam=0.5, rng=0, kernel="turbo")


class TestDChoiceFusedVsLegacy:
    @pytest.mark.parametrize(
        "config",
        [
            dict(n=64, capacity=1, lam=0.9375, d=2),
            dict(n=64, capacity=1, lam=0.9375, d=1),
            dict(n=64, capacity=4, lam=0.984375, d=3),
            dict(n=64, capacity=2, lam=0.25, d=2),  # pool empties regularly
            dict(n=64, capacity=2, lam=0.9375, d=2, initial_pool=80),
        ],
        ids=lambda c: str(sorted(c.items())),
    )
    def test_independent_streams_same_seed(self, config):
        def run(kernel):
            rng = RngFactory(3).child(0).generator("capped-dchoice")
            process = CappedDChoiceProcess(rng=rng, kernel=kernel, **config)
            records = [process.step() for _ in range(200)]
            process.check_invariants()
            return records, process

        fused, p1 = run("fused")
        legacy, p2 = run("legacy")
        for a, b in zip(fused, legacy):
            assert_records_equal(a, b, context=f"round {a.round}: {config}")
        assert np.array_equal(p1.bins.loads, p2.bins.loads)


class TestFusedUnderFaults:
    def run_faulty(self, kernel, schedule):
        process = CappedProcess(
            n=128, capacity=2, lam=0.9375, rng=11, initial_pool=40, kernel=kernel
        )
        trace = TraceRecorder()
        driver = SimulationDriver(
            burn_in=0, measure=120, observers=[trace, FaultInjector(schedule)]
        )
        driver.run(process)
        process.check_invariants()
        return trace, process

    def test_down_and_degraded_bins_match(self):
        # Crashes zero a bin's free slots and freeze its queue; degradation
        # can leave bins *over* their shrunken capacity — both paths must
        # agree on acceptance and waits throughout.
        schedule = FaultSchedule(
            events=(
                CrashBurst(at_round=20, fraction=0.25, duration=30),
                CapacityDegradation(at_round=55, duration=25, capacity=1, fraction=0.5),
                PeriodicOutage(period=40, duration=8, fraction=0.1, first_round=10),
            ),
            seed=5,
        )
        fused_trace, p1 = self.run_faulty("fused", schedule)
        legacy_trace, p2 = self.run_faulty("legacy", schedule)
        assert fused_trace.pool_sizes() == legacy_trace.pool_sizes()
        for a, b in zip(fused_trace.records, legacy_trace.records):
            assert_records_equal(a, b, context=f"round {a.round}")
        assert np.array_equal(p1.bins.loads, p2.bins.loads)
        assert np.array_equal(p1.bins.down, p2.bins.down)
