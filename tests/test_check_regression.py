"""Exit-status contract of benchmarks/check_regression.py.

The script is not a package module, so it is imported by file path. The
cases that matter: matching artifacts pass (0), a slower ratio fails (1),
a cell *removed* from the current grid is a comparability error (2), and
a cell newly *added* to the current grid is an informational note that
must not gate the PR introducing it (0).
"""

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parent.parent / "benchmarks" / "check_regression.py"

spec = importlib.util.spec_from_file_location("check_regression", SCRIPT)
check_regression = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_regression)


def grid_row(n, c, lam, ratio):
    return {"n": n, "c": c, "lam": lam, "fused_over_legacy": ratio}


def artifact(rows, kernel_speedup=3.0):
    return {
        "grid": rows,
        "kernel_phase": {"speedup": kernel_speedup},
        "general_c": {"speedup": kernel_speedup},
    }


def run(tmp_path, baseline, current, threshold=0.85):
    base_path = tmp_path / "baseline.json"
    cur_path = tmp_path / "current.json"
    base_path.write_text(json.dumps(baseline))
    cur_path.write_text(json.dumps(current))
    return check_regression.main(
        [str(cur_path), "--baseline", str(base_path), "--threshold", str(threshold)]
    )


BASE_ROWS = [grid_row(1024, 1, 0.5, 4.0), grid_row(1024, 2, 0.75, 3.0)]


class TestExitStatus:
    def test_matching_artifacts_pass(self, tmp_path):
        assert run(tmp_path, artifact(BASE_ROWS), artifact(BASE_ROWS)) == 0

    def test_regression_fails(self, tmp_path):
        slower = [grid_row(1024, 1, 0.5, 2.0), grid_row(1024, 2, 0.75, 3.0)]
        assert run(tmp_path, artifact(BASE_ROWS), artifact(slower)) == 1

    def test_threshold_is_respected(self, tmp_path):
        slightly_slower = [grid_row(1024, 1, 0.5, 3.6), grid_row(1024, 2, 0.75, 3.0)]
        assert run(tmp_path, artifact(BASE_ROWS), artifact(slightly_slower)) == 0
        assert (
            run(tmp_path, artifact(BASE_ROWS), artifact(slightly_slower), threshold=0.95) == 1
        )

    def test_cell_missing_from_current_is_error(self, tmp_path):
        assert run(tmp_path, artifact(BASE_ROWS), artifact(BASE_ROWS[:1])) == 2

    def test_new_cell_in_current_is_note_not_gate(self, tmp_path, capsys):
        current = artifact(BASE_ROWS + [grid_row(2048, 4, 0.9, 3.5)])
        assert run(tmp_path, artifact(BASE_ROWS), current) == 0
        out = capsys.readouterr().out
        assert "no baseline for cell" in out
        assert "n=2048" in out
        assert "1 new cell(s) without a baseline" in out

    def test_new_cell_alone_cannot_carry_the_gate(self, tmp_path):
        # Only-notes artifacts have no comparable ratios at the grid level,
        # but the section speedups still gate, so this passes...
        baseline = {"grid": [], "kernel_phase": {"speedup": 3.0}}
        current = {"grid": [grid_row(64, 1, 0.5, 4.0)], "kernel_phase": {"speedup": 3.0}}
        assert run(tmp_path, baseline, current) == 0
        # ...while artifacts with nothing comparable at all are rejected.
        assert run(tmp_path, {"grid": []}, {"grid": [grid_row(64, 1, 0.5, 4.0)]}) == 2

    def test_unreadable_artifact(self, tmp_path):
        base_path = tmp_path / "baseline.json"
        base_path.write_text("{not json")
        cur_path = tmp_path / "current.json"
        cur_path.write_text("{}")
        assert (
            check_regression.main([str(cur_path), "--baseline", str(base_path)]) == 2
        )

    def test_missing_section_in_current_is_error(self, tmp_path):
        baseline = artifact(BASE_ROWS)
        current = {"grid": BASE_ROWS, "kernel_phase": {"speedup": 3.0}}
        assert run(tmp_path, baseline, current) == 2

    def test_baseline_predating_section_is_tolerated(self, tmp_path):
        baseline = {"grid": BASE_ROWS}
        assert run(tmp_path, baseline, artifact(BASE_ROWS)) == 0


def sweep_artifact(speedup_2w=2.0, speedup_4w=4.0):
    return {
        "fabric": {
            "speedup_2w_over_1w": speedup_2w,
            "speedup_4w_over_1w": speedup_4w,
        },
        "compute": {"cpus": 1, "serial": 20.0, "broker_4w": 14.0},
    }


class TestSweepArtifact:
    """BENCH_sweep.json vs baseline_sweep.json through the same script."""

    def test_matching_sweep_artifacts_pass(self, tmp_path):
        assert run(tmp_path, sweep_artifact(), sweep_artifact()) == 0

    def test_fabric_regression_fails(self, tmp_path):
        assert run(tmp_path, sweep_artifact(), sweep_artifact(speedup_4w=2.5)) == 1

    def test_fabric_ratio_missing_from_current_is_error(self, tmp_path):
        current = sweep_artifact()
        del current["fabric"]["speedup_4w_over_1w"]
        assert run(tmp_path, sweep_artifact(), current) == 2

    def test_compute_modes_never_gate(self, tmp_path):
        # The compute section is core-count dependent, like the engine
        # artifact's scaling rows: a slower broker-4w must not fail.
        current = sweep_artifact()
        current["compute"]["broker_4w"] = 0.1
        assert run(tmp_path, sweep_artifact(), current) == 0

    def test_engine_baseline_ignores_sweep_sections(self, tmp_path):
        # The engine baseline has no fabric section, so an engine artifact
        # never picks up sweep gates (and vice versa: the sweep baseline's
        # empty grid yields no grid checks).
        assert run(tmp_path, artifact(BASE_ROWS), artifact(BASE_ROWS)) == 0
        checks = check_regression.collect_checks(sweep_artifact(), sweep_artifact())
        assert [c["name"] for c in checks] == [
            "fabric.speedup_2w_over_1w",
            "fabric.speedup_4w_over_1w",
        ]


class TestCollectChecks:
    def test_ratio_records(self):
        checks = check_regression.collect_checks(
            artifact([grid_row(64, 1, 0.5, 4.0)]), artifact([grid_row(64, 1, 0.5, 2.0)])
        )
        grid = [c for c in checks if c["name"].startswith("grid")]
        assert grid[0]["ratio"] == pytest.approx(0.5)

    def test_note_records_have_no_ratio(self):
        checks = check_regression.collect_checks(
            {"grid": []}, {"grid": [grid_row(64, 1, 0.5, 4.0)]}
        )
        assert checks == [{"name": "grid n=64 c=1 lam=0.5", "note": "no baseline for cell"}]
