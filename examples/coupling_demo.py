#!/usr/bin/env python3
"""Watching the paper's coupling at work (Lemmas 1 and 6).

Runs CAPPED(c, λ) and MODCAPPED(c, λ) in lockstep under the coupling from
the proof of Lemma 6: shared bin choices for the first ν^C balls per round.
Prints the two pool trajectories side by side — the CAPPED pool is bounded
by the MODCAPPED pool in *every single round*, not just on average — plus
the Eq. (5) buffer-capacity schedule that makes MODCAPPED analysable.

Run:  python examples/coupling_demo.py
"""

from repro.analysis.plots import ascii_plot
from repro.core.coupling import CoupledRun
from repro.core.modcapped import buffer_capacity
from repro.core.theory import m_star

N = 1024
C = 3
LAM = 0.75
ROUNDS = 150


def show_buffer_schedule() -> None:
    print(f"Eq. (5) buffer capacities for c = {C} (rows: buffer j, cols: round t)")
    header = "      " + " ".join(f"{t:2d}" for t in range(0, 4 * C + 1))
    print(header)
    for j in range(0, 5):
        caps = " ".join(f"{buffer_capacity(j, t, C):2d}" for t in range(0, 4 * C + 1))
        print(f"  j={j} {caps}")
    print("  (each buffer ramps 0->c while filling, then c->0 while draining;")
    print("   active capacities in any round sum to c)")
    print()


def main() -> None:
    show_buffer_schedule()

    run = CoupledRun(n=N, c=C, lam=LAM, rng=2021)
    report = run.run(ROUNDS)

    print(f"coupled run: n={N}, c={C}, lambda={LAM}, m*={m_star(C, LAM, N):.0f}")
    print(f"  {report}")
    print()
    print(
        ascii_plot(
            {
                "CAPPED pool": [(r, p) for r, p in enumerate(run.capped_pools, 1)],
                "MODCAPPED pool": [(r, p) for r, p in enumerate(run.modcapped_pools, 1)],
            },
            title="pool sizes under the coupling (MODCAPPED dominates pointwise)",
            x_label="round",
            y_label="pool size",
            height=16,
        )
    )
    print()
    gap = min(m - c for c, m in zip(run.capped_pools, run.modcapped_pools))
    print(f"smallest MODCAPPED-minus-CAPPED gap over {ROUNDS} rounds: {gap} (never negative)")


if __name__ == "__main__":
    main()
