#!/usr/bin/env python3
"""Server-farm scenario: routing policies under steady and bursty load.

The workload the paper's introduction motivates: clients fire requests at a
farm of servers with *bounded* buffers, and rejected requests retry. We
compare three dispatchers on latency and buffer behaviour:

* ``random/capped``   — one uniform probe, bounded buffers (CAPPED(c, λ));
* ``least-loaded(2)`` — two probes, commit to the shorter queue
  (the classic power-of-two-choices, unbounded queues);
* ``round-robin``     — deterministic control.

Two workloads are run: the paper's steady λn-per-tick stream and an on/off
bursty stream with the same long-run rate, showing how the bounded-buffer
pool absorbs bursts.

Run:  python examples/server_farm.py
"""

from repro.analysis.tables import format_table
from repro.cluster import LeastLoadedPolicy, RandomPolicy, RoundRobinPolicy, ServerFarm
from repro.workloads import BurstyArrivals, DeterministicArrivals

SERVERS = 256
CAPACITY = 3
RATE = 0.75  # long-run utilisation
TICKS = 1500


def run_policy(name, policy_factory, workload, capacity):
    farm = ServerFarm(
        num_servers=SERVERS,
        capacity=capacity,
        policy=policy_factory(),
        workload=workload,
        rng=11,
    )
    stats = farm.run(TICKS)
    farm.check_invariants()
    return {
        "policy": name,
        "mean_latency": round(stats.mean_latency, 3),
        "p99_latency": stats.p99_latency,
        "max_latency": stats.max_latency,
        "mean_pending": round(stats.mean_pending, 1),
        "peak_queue": stats.peak_queue,
        "throughput": round(stats.throughput, 1),
    }


def main() -> None:
    steady = DeterministicArrivals(n=SERVERS, lam=RATE)
    bursty = BurstyArrivals(
        n=SERVERS,
        lam_high=1.0,
        lam_low=0.5,  # same long-run average as `steady` (mean of 1.0 and 0.5)
        on_rounds=32,
        off_rounds=32,
    )

    for label, workload in (("steady", steady), ("bursty", bursty)):
        rows = [
            run_policy("random/capped", RandomPolicy, workload, CAPACITY),
            run_policy("least-loaded(2)", lambda: LeastLoadedPolicy(2), workload, None),
            run_policy("round-robin", RoundRobinPolicy, workload, CAPACITY),
        ]
        print(
            format_table(
                rows,
                title=(
                    f"{label} workload: {SERVERS} servers, capacity {CAPACITY}, "
                    f"rate {RATE:.4f}, {TICKS} ticks"
                ),
            )
        )
        print()

    print(
        "Reading the results: random routing into bounded buffers (CAPPED)\n"
        "keeps per-server queues at the capacity bound and shifts overload\n"
        "into the retry pool, while unbounded two-choice trades pool for\n"
        "longer queues; round-robin is only competitive on perfectly smooth\n"
        "arrivals."
    )


if __name__ == "__main__":
    main()
