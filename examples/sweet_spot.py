#!/usr/bin/env python3
"""Find the sweet-spot capacity for a given injection rate.

The paper's abstract predicts a sweet spot at ``c = Θ(√ln(1/(1−λ)))``:
larger buffers drain the pool faster (the ``ln(1/(1−λ))/c`` term) but add
in-buffer delay (the ``O(c)`` term). This example sweeps c, plots both the
average and the maximum waiting time as ASCII charts, and reports where
the minimum falls relative to the theoretical prediction.

Run:  python examples/sweet_spot.py [lambda_exponent]
"""

import sys

from repro.analysis.plots import ascii_plot
from repro.analysis.sweep import measure_capped
from repro.analysis.tables import format_table
from repro.core import theory

N = 4096
MEASURE = 600
CAPACITIES = range(1, 9)


def main(lambda_exponent: int = 10) -> None:
    lam = 1 - 2**-lambda_exponent
    rows = []
    for c in CAPACITIES:
        point = measure_capped(n=N, c=c, lam=lam, measure=MEASURE, seed=7 + c)
        rows.append(
            {
                "c": c,
                "avg_wait": round(point.avg_wait, 3),
                "max_wait": point.max_wait,
                "pool/n": round(point.normalized_pool, 4),
                "reference": round(theory.empirical_wait_curve(c, lam, N), 3),
            }
        )

    print(
        format_table(
            rows,
            title=f"waiting time vs capacity (lambda = 1 - 2^-{lambda_exponent}, n = {N})",
        )
    )
    print()
    print(
        ascii_plot(
            {
                "avg wait": [(row["c"], row["avg_wait"]) for row in rows],
                "max wait": [(row["c"], float(row["max_wait"])) for row in rows],
            },
            title="waiting time vs capacity",
            x_label="c",
            y_label="rounds",
            height=14,
        )
    )
    print()
    best = min(rows, key=lambda row: row["avg_wait"])
    print(f"measured optimum: c = {best['c']} (avg wait {best['avg_wait']})")
    print(f"theory sweet spot: c* = {theory.sweet_spot_c(lam)} "
          f"(continuous {theory.sweet_spot_c(lam, integer=False):.2f})")


if __name__ == "__main__":
    exponent = int(sys.argv[1]) if len(sys.argv) > 1 else 10
    main(exponent)
