#!/usr/bin/env python3
"""Why CAPPED(c, λ) is designed the way it is — three ablations.

The paper makes three design choices: bins *age-order* their admissions
(oldest first), balls make *one* random choice, and every bin gets the
*same* capacity. Each choice is flipped here in isolation:

1. ``ablation_aging``   — youngest-first admission keeps the pool identical
   but starves old balls: the waiting-time *tail* explodes.
2. ``ablation_dchoice`` — a second batch-semantics probe is pure noise at
   c = 1 (bins start rounds empty) and only mildly helpful at c ≥ 2;
   capacity dominates choices.
3. ``heterogeneous_capacity`` — concentrating a fixed slot budget in few
   bins is strictly worse than spreading it: the accept rate is concave
   in c.

Run:  python examples/design_ablations.py [quick|default]
"""

import sys

from repro.analysis.experiments import run_experiment

ABLATIONS = ("ablation_aging", "ablation_dchoice", "heterogeneous_capacity", "drain_stages")


def main(profile: str = "quick") -> None:
    for experiment_id in ABLATIONS:
        result = run_experiment(experiment_id, profile)
        print(result.table())
        print()
    print(
        "Take-aways: the aging rule buys the waiting-time *tail* (not the\n"
        "average); extra choices buy little that capacity hasn't already\n"
        "bought; uniform capacity is the right layout for a fixed budget;\n"
        "and the drain after a spike tracks the Lemma 3-5 schedule stage\n"
        "by stage."
    )


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "quick")
