#!/usr/bin/env python3
"""CAPPED vs the PODC'16 leaky-bins GREEDY[1] and GREEDY[2].

Regenerates the paper's headline comparison: as λ → 1 the waiting time of
GREEDY[1] blows up like 1/(1−λ)·log n, GREEDY[2] like log n, while
CAPPED(c, λ) at the sweet-spot capacity stays near
``ln(1/(1−λ))/c + log log n + c``.

Run:  python examples/baseline_comparison.py
"""

from repro.analysis.sweep import measure_capped, measure_greedy
from repro.analysis.tables import format_table
from repro.core import theory

N = 4096
MEASURE = 600
EXPONENTS = (2, 4, 6, 8, 10)


def main() -> None:
    rows = []
    for exponent in EXPONENTS:
        lam = 1 - 2**-exponent
        sweet = theory.sweet_spot_c(lam)
        capped = measure_capped(n=N, c=sweet, lam=lam, measure=MEASURE, seed=exponent)
        greedy1 = measure_greedy(n=N, d=1, lam=lam, measure=MEASURE, seed=exponent)
        greedy2 = measure_greedy(n=N, d=2, lam=lam, measure=MEASURE, seed=exponent)
        rows.append(
            {
                "lambda": f"1-2^-{exponent}",
                "capped_c": sweet,
                "capped_avg": round(capped.avg_wait, 2),
                "capped_max": capped.max_wait,
                "greedy1_avg": round(greedy1.avg_wait, 2),
                "greedy1_max": greedy1.max_wait,
                "greedy2_avg": round(greedy2.avg_wait, 2),
                "greedy2_max": greedy2.max_wait,
            }
        )

    print(format_table(rows, title=f"waiting times, n = {N}, {MEASURE} measured rounds"))
    print()
    last = rows[-1]
    print(
        f"at lambda = {last['lambda']}: CAPPED max wait {last['capped_max']} vs "
        f"GREEDY[1] {last['greedy1_max']} ({last['greedy1_max'] / last['capped_max']:.1f}x) "
        f"and GREEDY[2] {last['greedy2_max']} ({last['greedy2_max'] / last['capped_max']:.1f}x)"
    )


if __name__ == "__main__":
    main()
