#!/usr/bin/env python3
"""The fluid limit in action: cold-start transient vs live simulation.

Integrates the deterministic fluid dynamics of CAPPED(c, λ) from the
paper's empty start and overlays a stochastic simulation at n = 4096 —
the two trajectories coincide to within finite-n noise, round for round.
Also prints the relaxation times the fluid limit predicts, exhibiting the
``Θ(1/(1−λ))`` cold-start cost that motivates this library's mean-field
warm starts.

Run:  python examples/fluid_vs_simulation.py
"""

from repro.analysis.plots import ascii_plot
from repro.core import fluid
from repro.core.capped import CappedProcess
from repro.core.meanfield import equilibrium

N = 4096
C = 2
LAM = 1 - 2**-6  # 0.984375
ROUNDS = 250


def main() -> None:
    trajectory = fluid.integrate(c=C, lam=LAM, rounds=ROUNDS)
    process = CappedProcess(n=N, capacity=C, lam=LAM, rng=99)
    simulated = [process.step().pool_size / N for _ in range(ROUNDS)]

    print(
        ascii_plot(
            {
                "simulation": list(enumerate(simulated, start=1)),
                "fluid limit": list(enumerate(trajectory.pool[1:], start=1)),
            },
            title=f"cold-start pool fill, c={C}, lambda={LAM:.4f} (n={N})",
            x_label="round",
            y_label="pool/n",
            height=16,
        )
    )
    print()
    worst = max(abs(s - f) for s, f in zip(simulated, trajectory.pool[1:]))
    print(f"worst |simulation - fluid| over {ROUNDS} rounds: {worst:.4f}")
    print(f"equilibrium pool/n: {equilibrium(C, LAM).normalized_pool:.4f}")
    print()
    print("cold-start relaxation to 95% of equilibrium (fluid limit):")
    for exponent in (4, 6, 8, 10):
        lam = 1 - 2**-exponent
        rounds = fluid.relaxation_rounds(C, lam)
        print(
            f"  lambda = 1-2^-{exponent:<2d}: {rounds:5d} rounds   (1/(1-lambda) = {2**exponent})"
        )
    print()
    print(
        "The linear scaling in 1/(1-lambda) is why the library warm-starts\n"
        "measurements at the mean-field equilibrium instead of burning in\n"
        "from the paper's empty system."
    )


if __name__ == "__main__":
    main()
