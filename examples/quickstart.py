#!/usr/bin/env python3
"""Quickstart: simulate CAPPED(c, λ) and compare with the paper's bounds.

Runs the paper's process at a laptop-friendly scale, prints the measured
normalized pool size and waiting times, and puts them side by side with

* the empirical reference curves of Section V,
* the rigorous bounds of Theorem 2, and
* this library's mean-field equilibrium prediction.

Run:  python examples/quickstart.py
"""

from repro import CappedProcess, SimulationDriver
from repro.core import meanfield, theory
from repro.engine.stability import default_burn_in

N = 4096  # bins (the paper uses 2**15; normalized results match, see EXPERIMENTS.md)
C = 2  # buffer capacity per bin
LAM = 1 - 2**-6  # injection rate: 0.984375, lambda*n integral


def main() -> None:
    equilibrium = meanfield.equilibrium(C, LAM)
    process = CappedProcess(
        n=N,
        capacity=C,
        lam=LAM,
        rng=42,
        initial_pool=equilibrium.pool_size(N),  # warm start at the fluid limit
    )
    burn_in = default_burn_in(N, C, LAM, warm_start=True)
    driver = SimulationDriver(burn_in=burn_in, measure=1000)
    result = driver.run(process)

    print(f"CAPPED(c={C}, lambda={LAM}) with n={N} bins")
    print(f"  burn-in rounds        {burn_in}")
    print(f"  measured rounds       {result.measured}")
    print(f"  stationary diagnostic {result.stationary}")
    print()
    print("pool size (normalized by n)")
    print(f"  measured mean         {result.normalized_pool:.4f}")
    print(f"  mean-field prediction {equilibrium.normalized_pool:.4f}")
    print(f"  Fig. 4 reference      {theory.empirical_pool_curve(C, LAM):.4f}")
    print(f"  Theorem 2 bound       {theory.thm2_pool_bound(C, LAM, N) / N:.4f}")
    print()
    print("waiting time (rounds)")
    print(f"  measured average      {result.avg_wait:.3f}")
    print(f"  mean-field prediction {equilibrium.mean_wait:.3f}")
    print(f"  measured maximum      {result.max_wait}")
    print(f"  Fig. 5 reference      {theory.empirical_wait_curve(C, LAM, N):.3f}")
    print(f"  Theorem 2 bound       {theory.thm2_wait_bound(C, LAM, N):.2f}")
    print()
    print(f"sweet-spot capacity for this lambda: c* = {theory.sweet_spot_c(LAM)}")


if __name__ == "__main__":
    main()
