"""Dependency-free ASCII line plots.

The reproduction environment has no plotting stack, so experiment results
are visualised as monospace scatter/line charts — enough to eyeball the
*shapes* the paper's Figures 4 and 5 show (growth in λ, the 1/c decay, the
sweet-spot minimum). CSV export (:mod:`repro.analysis.tables`) covers any
downstream real plotting.
"""

from __future__ import annotations

import math
from collections.abc import Mapping, Sequence

__all__ = ["ascii_plot"]

_MARKERS = "ox+*#@%&"


def ascii_plot(
    series: Mapping[str, Sequence[tuple[float, float]]],
    width: int = 72,
    height: int = 20,
    title: str | None = None,
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Plot one or more ``(x, y)`` series on a shared monospace canvas.

    Each series gets a distinct marker; a legend, axis ranges, and labels
    are appended below the canvas.
    """
    if not series or all(len(points) == 0 for points in series.values()):
        return (title + "\n" if title else "") + "(no data)"
    if width < 8 or height < 4:
        raise ValueError("canvas must be at least 8x4")

    finite = [
        (x, y)
        for points in series.values()
        for x, y in points
        if math.isfinite(x) and math.isfinite(y)
    ]
    if not finite:
        return (title + "\n" if title else "") + "(no data)"
    xs = [x for x, _ in finite]
    ys = [y for _, y in finite]
    x_min, x_max = min(xs), max(xs)
    y_min, y_max = min(ys), max(ys)
    x_span = (x_max - x_min) or 1.0
    y_span = (y_max - y_min) or 1.0

    canvas = [[" "] * width for _ in range(height)]
    for index, (name, points) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for x, y in points:
            if not (math.isfinite(x) and math.isfinite(y)):
                continue
            col = int(round((x - x_min) / x_span * (width - 1)))
            row = height - 1 - int(round((y - y_min) / y_span * (height - 1)))
            canvas[row][col] = marker

    lines: list[str] = []
    if title:
        lines.append(title)
    for row in canvas:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(f"  {x_label}: [{x_min:.4g}, {x_max:.4g}]   {y_label}: [{y_min:.4g}, {y_max:.4g}]")
    legend = "   ".join(f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series))
    lines.append("  " + legend)
    return "\n".join(lines)
