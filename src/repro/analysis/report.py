"""Markdown report generation.

Renders a set of :class:`~repro.analysis.experiments.ExperimentResult`
objects into a single self-contained markdown document: a verdict summary,
then one section per experiment with its table (as a markdown table), its
notes, and optionally an ASCII plot in a code fence. Used by the CLI's
``experiments --markdown`` flag to produce shareable reproduction reports.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

from repro.analysis.experiments import ExperimentResult
from repro.analysis.plots import ascii_plot

__all__ = ["render_markdown", "write_report"]


def _markdown_table(result: ExperimentResult) -> str:
    header = "| " + " | ".join(result.columns) + " |"
    separator = "|" + "|".join("---" for _ in result.columns) + "|"
    lines = [header, separator]
    for row in result.rows:
        cells = []
        for column in result.columns:
            value = row.get(column, "")
            cells.append(f"{value:.4g}" if isinstance(value, float) else str(value))
        lines.append("| " + " | ".join(cells) + " |")
    return "\n".join(lines)


def _plot_block(result: ExperimentResult) -> str | None:
    numeric = [
        col
        for col in result.columns
        if result.rows and isinstance(result.rows[0].get(col), (int, float))
    ]
    if len(numeric) < 2:
        return None
    x_col, y_col = numeric[0], numeric[1]
    group_col = next((c for c in result.columns if c not in (x_col, y_col)), None)
    series: dict[str, list[tuple[float, float]]] = {}
    for row in result.rows:
        label = f"{group_col}={row[group_col]}" if group_col else "data"
        series.setdefault(label, []).append((float(row[x_col]), float(row[y_col])))
    plot = ascii_plot(series, x_label=x_col, y_label=y_col, height=14)
    return f"```\n{plot}\n```"


def render_markdown(
    results: Sequence[ExperimentResult],
    title: str = "Reproduction report",
    include_plots: bool = True,
) -> str:
    """Render experiment results as one markdown document."""
    if not results:
        raise ValueError("need at least one result to report")
    lines: list[str] = [f"# {title}", ""]

    lines.append("## Verdicts")
    lines.append("")
    lines.append("| experiment | profile | checks |")
    lines.append("|---|---|---|")
    for result in results:
        if result.verdicts:
            passed = sum(result.verdicts.values())
            status = f"{passed}/{len(result.verdicts)} pass"
            if passed < len(result.verdicts):
                status = f"**{status}**"
        else:
            status = "—"
        lines.append(f"| {result.experiment_id} | {result.profile} | {status} |")
    lines.append("")

    for result in results:
        lines.append(f"## {result.experiment_id} — {result.title}")
        lines.append("")
        lines.append(_markdown_table(result))
        lines.append("")
        for note in result.notes:
            lines.append(f"> note: {note}")
        for name, ok in result.verdicts.items():
            lines.append(f"> check **{name}**: {'PASS' if ok else 'FAIL'}")
        if result.notes or result.verdicts:
            lines.append("")
        if include_plots:
            block = _plot_block(result)
            if block:
                lines.append(block)
                lines.append("")
    return "\n".join(lines).rstrip() + "\n"


def write_report(
    results: Sequence[ExperimentResult],
    path: Path | str,
    title: str = "Reproduction report",
    include_plots: bool = True,
) -> Path:
    """Write :func:`render_markdown` output to ``path`` (parents created)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        render_markdown(results, title=title, include_plots=include_plots), encoding="utf-8"
    )
    return path
