"""Registry of the paper's evaluation experiments.

Every figure and in-text empirical claim of the paper's Section V (plus the
claim-level checks listed in DESIGN.md Section 2) has a generator function
here. Each returns an :class:`ExperimentResult` whose rows are exactly the
series the corresponding paper artifact plots, alongside the paper's
reference curves and, where available, this library's mean-field
predictions.

Scale profiles
--------------
``paper`` uses the paper's n = 2¹⁵ with 1000 measured rounds; ``default``
(n = 2¹²) and ``quick`` (n = 2¹⁰) shrink the system for laptop/CI budgets.
Normalized quantities are n-invariant (experiment ``n_invariance``
verifies this), so the figure *shapes* are preserved at reduced n; the
``log log n`` term in waiting times shifts by < 1 between profiles. When a
profile's n cannot realise a figure's λ (λn must be integral and
λ ≤ 1 − 1/n), the nearest feasible λ = 1 − 2^{−log₂ n} is substituted and
recorded in the result's notes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable

from repro.analysis.sweep import PointResult, measure_capped, measure_greedy
from repro.analysis.tables import format_table, to_csv
from repro.core import theory
from repro.core.coupling import run_coupled
from repro.core.meanfield import equilibrium
from repro.errors import ExperimentError

__all__ = [
    "Profile",
    "PROFILES",
    "ExperimentResult",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
]


@dataclass(frozen=True, slots=True)
class Profile:
    """Scale parameters shared by all experiments.

    Attributes
    ----------
    name:
        Profile identifier.
    n:
        Number of bins (a power of two so that every λ = 1 − 2^{−i} with
        i ≤ log₂ n has integral λn).
    measure:
        Measurement-window length in rounds (the paper uses 1000).
    replicates:
        Independent repetitions per data point.
    seed:
        Root seed; every point derives its own stream from it.
    """

    name: str
    n: int
    measure: int
    replicates: int
    seed: int = 20210701  # ICDCS 2021

    @property
    def max_lambda_exponent(self) -> int:
        """Largest i with λ = 1 − 2^{−i} realisable at this n."""
        return int(math.log2(self.n))


PROFILES: dict[str, Profile] = {
    "quick": Profile(name="quick", n=2**10, measure=200, replicates=1),
    "default": Profile(name="default", n=2**12, measure=600, replicates=2),
    "paper": Profile(name="paper", n=2**15, measure=1000, replicates=1),
}


@dataclass
class ExperimentResult:
    """Rows regenerating one paper artifact, plus context.

    ``rows`` are dicts sharing the keys in ``columns``; ``notes`` records
    substitutions and interpretation hints; ``verdicts`` holds boolean
    claim checks (empty for pure figure regenerations).
    """

    experiment_id: str
    title: str
    profile: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    verdicts: dict[str, bool] = field(default_factory=dict)

    def table(self) -> str:
        """Aligned ASCII rendering (rows, then notes and verdicts)."""
        parts = [format_table(self.rows, self.columns, title=self.title)]
        for note in self.notes:
            parts.append(f"note: {note}")
        for name, ok in self.verdicts.items():
            parts.append(f"check {name}: {'PASS' if ok else 'FAIL'}")
        return "\n".join(parts)

    def csv(self) -> str:
        """CSV rendering of the rows."""
        return to_csv(self.rows, self.columns)

    @property
    def all_checks_pass(self) -> bool:
        """True when every recorded verdict holds (vacuously true)."""
        return all(self.verdicts.values())


def _lam_from_exponent(i: int, profile: Profile, notes: list[str]) -> tuple[float, int]:
    """λ = 1 − 2^{−i}, clamped to the profile's feasible range."""
    clamped = min(i, profile.max_lambda_exponent)
    if clamped != i:
        notes.append(f"lambda exponent {i} infeasible at n={profile.n}; substituted {clamped}")
    return 1.0 - 2.0**-clamped, clamped


def _point_seed(profile: Profile, *key: int) -> int:
    seed = profile.seed
    for part in key:
        seed = (seed * 1_000_003 + part + 17) % (2**31 - 1)
    return seed


# ---------------------------------------------------------------------------
# Figure 4 — normalized pool size
# ---------------------------------------------------------------------------

def fig4_left(profile: Profile) -> ExperimentResult:
    """Figure 4 (left): normalized pool size vs capacity c ∈ [1, 5].

    Two series, λ = 1 − 1/2² and λ = 1 − 1/2¹⁰; dashed reference
    ``1/c·ln(1/(1−λ)) + 1``.
    """
    result = ExperimentResult(
        experiment_id="fig4_left",
        title="Figure 4 (left): normalized pool size vs capacity",
        profile=profile.name,
        columns=["lambda_exp", "c", "pool/n", "reference", "meanfield"],
    )
    for series_index, exponent in enumerate((2, 10)):
        lam, used_exp = _lam_from_exponent(exponent, profile, result.notes)
        for c in range(1, 6):
            point = measure_capped(
                n=profile.n,
                c=c,
                lam=lam,
                measure=profile.measure,
                replicates=profile.replicates,
                seed=_point_seed(profile, 40, series_index, c),
            )
            result.rows.append(
                {
                    "lambda_exp": used_exp,
                    "c": c,
                    "pool/n": round(point.normalized_pool, 4),
                    "reference": round(theory.empirical_pool_curve(c, lam), 4),
                    "meanfield": round(equilibrium(c, lam).normalized_pool, 4),
                }
            )
    result.verdicts["pool below reference curve"] = all(
        row["pool/n"] <= row["reference"] for row in result.rows
    )
    return result


def fig4_right(profile: Profile) -> ExperimentResult:
    """Figure 4 (right): normalized pool size vs λ = 1 − 2^{−i}, i ∈ [1, 10].

    Two series, c = 1 and c = 3; same reference curve as the left plot.
    """
    result = ExperimentResult(
        experiment_id="fig4_right",
        title="Figure 4 (right): normalized pool size vs lambda",
        profile=profile.name,
        columns=["c", "lambda_exp", "pool/n", "reference", "meanfield"],
    )
    max_exp = min(10, profile.max_lambda_exponent)
    for c in (1, 3):
        for exponent in range(1, max_exp + 1):
            lam = 1.0 - 2.0**-exponent
            point = measure_capped(
                n=profile.n,
                c=c,
                lam=lam,
                measure=profile.measure,
                replicates=profile.replicates,
                seed=_point_seed(profile, 41, c, exponent),
            )
            result.rows.append(
                {
                    "c": c,
                    "lambda_exp": exponent,
                    "pool/n": round(point.normalized_pool, 4),
                    "reference": round(theory.empirical_pool_curve(c, lam), 4),
                    "meanfield": round(equilibrium(c, lam).normalized_pool, 4),
                }
            )
    if max_exp < 10:
        result.notes.append(f"lambda exponents truncated at {max_exp} for n={profile.n}")
    result.verdicts["pool below reference curve"] = all(
        row["pool/n"] <= row["reference"] for row in result.rows
    )
    return result


# ---------------------------------------------------------------------------
# Figure 5 — waiting times
# ---------------------------------------------------------------------------

def fig5_left(profile: Profile) -> ExperimentResult:
    """Figure 5 (left): average and maximum waiting time vs c ∈ [1, 5].

    Three series, λ = 1 − 1/2², 1 − 1/2¹⁰, 1 − 1/2¹³; dashed reference
    ``ln(1/(1−λ))/c + log log n + c``.
    """
    result = ExperimentResult(
        experiment_id="fig5_left",
        title="Figure 5 (left): waiting time vs capacity",
        profile=profile.name,
        columns=["lambda_exp", "c", "avg_wait", "max_wait", "reference", "meanfield_avg"],
    )
    exponents: list[int] = []
    for exponent in (2, 10, 13):
        _, used = _lam_from_exponent(exponent, profile, result.notes)
        if used not in exponents:
            exponents.append(used)
    for series_index, exponent in enumerate(exponents):
        lam = 1.0 - 2.0**-exponent
        for c in range(1, 6):
            point = measure_capped(
                n=profile.n,
                c=c,
                lam=lam,
                measure=profile.measure,
                replicates=profile.replicates,
                seed=_point_seed(profile, 50, series_index, c),
            )
            result.rows.append(
                {
                    "lambda_exp": exponent,
                    "c": c,
                    "avg_wait": round(point.avg_wait, 3),
                    "max_wait": point.max_wait,
                    "reference": round(theory.empirical_wait_curve(c, lam, profile.n), 3),
                    "meanfield_avg": round(equilibrium(c, lam).mean_wait, 3),
                }
            )
    result.verdicts["max wait below reference curve"] = all(
        row["max_wait"] <= row["reference"] for row in result.rows
    )
    return result


def fig5_right(profile: Profile) -> ExperimentResult:
    """Figure 5 (right): waiting times vs λ = 1 − 2^{−i}, i ∈ [1, 10].

    Two series, c = 1 and c = 3.
    """
    result = ExperimentResult(
        experiment_id="fig5_right",
        title="Figure 5 (right): waiting time vs lambda",
        profile=profile.name,
        columns=["c", "lambda_exp", "avg_wait", "max_wait", "reference", "meanfield_avg"],
    )
    max_exp = min(10, profile.max_lambda_exponent)
    for c in (1, 3):
        for exponent in range(1, max_exp + 1):
            lam = 1.0 - 2.0**-exponent
            point = measure_capped(
                n=profile.n,
                c=c,
                lam=lam,
                measure=profile.measure,
                replicates=profile.replicates,
                seed=_point_seed(profile, 51, c, exponent),
            )
            result.rows.append(
                {
                    "c": c,
                    "lambda_exp": exponent,
                    "avg_wait": round(point.avg_wait, 3),
                    "max_wait": point.max_wait,
                    "reference": round(theory.empirical_wait_curve(c, lam, profile.n), 3),
                    "meanfield_avg": round(equilibrium(c, lam).mean_wait, 3),
                }
            )
    if max_exp < 10:
        result.notes.append(f"lambda exponents truncated at {max_exp} for n={profile.n}")
    result.verdicts["max wait below reference curve"] = all(
        row["max_wait"] <= row["reference"] for row in result.rows
    )
    return result


# ---------------------------------------------------------------------------
# In-text claims
# ---------------------------------------------------------------------------

def sweet_spot(profile: Profile) -> ExperimentResult:
    """CLAIM-SWEET: the waiting time has a minimum around c = 2..3.

    Sweeps c ∈ [1, 8] at λ = 1 − 2^{−10} and reports where the average
    and maximum waiting times bottom out, against the theoretical
    ``c* ≈ √ln(1/(1−λ))``.
    """
    result = ExperimentResult(
        experiment_id="sweet_spot",
        title="Sweet spot: waiting time vs capacity",
        profile=profile.name,
        columns=["c", "avg_wait", "max_wait", "pool/n"],
    )
    lam, _ = _lam_from_exponent(10, profile, result.notes)
    points: list[PointResult] = []
    for c in range(1, 9):
        point = measure_capped(
            n=profile.n,
            c=c,
            lam=lam,
            measure=profile.measure,
            replicates=profile.replicates,
            seed=_point_seed(profile, 60, c),
        )
        points.append(point)
        result.rows.append(
            {
                "c": c,
                "avg_wait": round(point.avg_wait, 3),
                "max_wait": point.max_wait,
                "pool/n": round(point.normalized_pool, 4),
            }
        )
    best_avg = min(points, key=lambda p: p.avg_wait).c
    best_max = min(points, key=lambda p: (p.max_wait, p.avg_wait)).c
    theory_c = theory.sweet_spot_c(lam)
    result.notes.append(
        f"avg-wait minimum at c={best_avg}, max-wait minimum at c={best_max}, "
        f"theory sqrt(ln(1/(1-lambda)))≈{theory_c}"
    )
    result.verdicts["avg-wait minimum in paper's 2..3 window (±1)"] = 1 <= best_avg <= 4
    result.verdicts["interior minimum (not at c=1)"] = best_avg > 1 or best_max > 1
    return result


def theory_bounds(profile: Profile) -> ExperimentResult:
    """CLAIM-THM1/THM2: measured pool and waits respect the theorems.

    The theorems are high-probability *upper* bounds with unoptimised
    constants; the check is that measured peaks stay below them (the
    paper's Section V observes the bounds are ~4x pessimistic).
    """
    result = ExperimentResult(
        experiment_id="theory_bounds",
        title="Theorem 1/2 bounds vs measurement",
        profile=profile.name,
        columns=[
            "c",
            "lambda_exp",
            "peak_pool/n",
            "thm_pool/n",
            "pool_ratio",
            "max_wait",
            "thm_wait",
            "wait_ratio",
        ],
    )
    for c in (1, 2, 4):
        for exponent in (1, 4, 8):
            lam, used_exp = _lam_from_exponent(exponent, profile, result.notes)
            point = measure_capped(
                n=profile.n,
                c=c,
                lam=lam,
                measure=profile.measure,
                replicates=profile.replicates,
                seed=_point_seed(profile, 70, c, exponent),
            )
            if c == 1:
                pool_bound = theory.thm1_pool_bound(lam, profile.n) / profile.n
                wait_bound = theory.thm1_wait_bound(lam, profile.n)
            else:
                pool_bound = theory.thm2_pool_bound(c, lam, profile.n) / profile.n
                wait_bound = theory.thm2_wait_bound(c, lam, profile.n)
            peak_pool_norm = point.peak_pool / profile.n
            result.rows.append(
                {
                    "c": c,
                    "lambda_exp": used_exp,
                    "peak_pool/n": round(peak_pool_norm, 4),
                    "thm_pool/n": round(pool_bound, 4),
                    "pool_ratio": round(peak_pool_norm / pool_bound, 4),
                    "max_wait": point.max_wait,
                    "thm_wait": round(wait_bound, 2),
                    "wait_ratio": round(point.max_wait / wait_bound, 4),
                }
            )
    result.verdicts["peak pool within Theorem bound"] = all(
        row["pool_ratio"] <= 1.0 for row in result.rows
    )
    result.verdicts["max wait within Theorem bound"] = all(
        row["wait_ratio"] <= 1.0 for row in result.rows
    )
    return result


def dominance(profile: Profile) -> ExperimentResult:
    """CLAIM-DOM: coupled CAPPED/MODCAPPED pool dominance (Lemmas 1, 6).

    Under the paper's coupling the inequality is sure, so the expected
    violation count is exactly zero in every configuration.
    """
    result = ExperimentResult(
        experiment_id="dominance",
        title="Coupled pool-size dominance (Lemmas 1 and 6)",
        profile=profile.name,
        columns=["c", "lambda_exp", "rounds", "violations", "worst_gap"],
    )
    rounds = max(200, profile.measure)
    for c in (1, 2, 3):
        for exponent in (1, 4):
            lam, used_exp = _lam_from_exponent(exponent, profile, result.notes)
            report = run_coupled(
                n=profile.n,
                c=c,
                lam=lam,
                rounds=rounds,
                rng=_point_seed(profile, 80, c, exponent),
            )
            result.rows.append(
                {
                    "c": c,
                    "lambda_exp": used_exp,
                    "rounds": report.rounds,
                    "violations": report.violations,
                    "worst_gap": report.worst_gap,
                }
            )
    result.verdicts["dominance holds in every round"] = all(
        row["violations"] == 0 for row in result.rows
    )
    return result


def baseline_comparison(profile: Profile) -> ExperimentResult:
    """CLAIM-BASE: CAPPED vs the PODC'16 leaky-bins GREEDY[1]/GREEDY[2].

    The paper's headline: for constant λ the waiting time drops from
    Θ(log n) (GREEDY) to log log n + O(1) (CAPPED); GREEDY[1] degrades
    like 1/(1−λ) while CAPPED grows only logarithmically in 1/(1−λ).
    """
    result = ExperimentResult(
        experiment_id="baseline_comparison",
        title="CAPPED vs GREEDY[1]/GREEDY[2] (leaky bins) waiting times",
        profile=profile.name,
        columns=["lambda_exp", "process", "avg_wait", "max_wait", "pool/n"],
    )
    capped_max: dict[int, int] = {}
    greedy1_max: dict[int, int] = {}
    for exponent in (2, 6, 10):
        lam, used_exp = _lam_from_exponent(exponent, profile, result.notes)
        sweet = int(theory.sweet_spot_c(lam))
        capped = measure_capped(
            n=profile.n,
            c=sweet,
            lam=lam,
            measure=profile.measure,
            replicates=profile.replicates,
            seed=_point_seed(profile, 90, exponent, 0),
        )
        result.rows.append(
            {
                "lambda_exp": used_exp,
                "process": f"CAPPED(c={sweet})",
                "avg_wait": round(capped.avg_wait, 3),
                "max_wait": capped.max_wait,
                "pool/n": round(capped.normalized_pool, 4),
            }
        )
        capped_max[used_exp] = capped.max_wait
        for d in (1, 2):
            greedy = measure_greedy(
                n=profile.n,
                d=d,
                lam=lam,
                measure=profile.measure,
                replicates=profile.replicates,
                seed=_point_seed(profile, 90, exponent, d),
            )
            result.rows.append(
                {
                    "lambda_exp": used_exp,
                    "process": f"GREEDY[{d}]",
                    "avg_wait": round(greedy.avg_wait, 3),
                    "max_wait": greedy.max_wait,
                    "pool/n": 0.0,
                }
            )
            if d == 1:
                greedy1_max[used_exp] = greedy.max_wait
    result.verdicts["CAPPED max wait beats GREEDY[1] at every lambda"] = all(
        capped_max[e] < greedy1_max[e] for e in capped_max
    )
    high = max(capped_max)
    result.verdicts["gap widens with lambda (factor >= 2 at largest)"] = (
        greedy1_max[high] >= 2 * capped_max[high]
    )
    return result


def n_invariance(profile: Profile) -> ExperimentResult:
    """CLAIM-NSTAB: normalized metrics are essentially independent of n.

    The paper: "Extensive simulations have shown that the actual number of
    n has negligible impact on the (normalized) simulation results."
    """
    result = ExperimentResult(
        experiment_id="n_invariance",
        title="n-invariance of normalized pool size (c=2, lambda=3/4)",
        profile=profile.name,
        columns=["n", "pool/n", "avg_wait", "max_wait"],
    )
    lam = 0.75
    sizes = [2**k for k in (8, 9, 10, 11, 12) if 2**k <= profile.n]
    pools = []
    for size in sizes:
        point = measure_capped(
            n=size,
            c=2,
            lam=lam,
            measure=profile.measure,
            replicates=profile.replicates,
            seed=_point_seed(profile, 100, size),
        )
        pools.append(point.normalized_pool)
        result.rows.append(
            {
                "n": size,
                "pool/n": round(point.normalized_pool, 4),
                "avg_wait": round(point.avg_wait, 3),
                "max_wait": point.max_wait,
            }
        )
    spread = (max(pools) - min(pools)) / max(max(pools), 1e-9)
    result.notes.append(f"relative spread of pool/n across n: {spread:.2%}")
    result.verdicts["pool/n spread below 15%"] = spread < 0.15
    return result


def meanfield_validation(profile: Profile) -> ExperimentResult:
    """Ablation: mean-field equilibrium vs simulation.

    Not a paper artifact — validates this library's fluid-limit solver
    (used for warm starts and reference curves) against the simulator.
    """
    result = ExperimentResult(
        experiment_id="meanfield_validation",
        title="Mean-field equilibrium vs simulation",
        profile=profile.name,
        columns=["c", "lambda_exp", "sim_pool/n", "mf_pool/n", "rel_err"],
    )
    for c in (1, 2, 4):
        for exponent in (2, 6):
            lam, used_exp = _lam_from_exponent(exponent, profile, result.notes)
            point = measure_capped(
                n=profile.n,
                c=c,
                lam=lam,
                measure=profile.measure,
                replicates=profile.replicates,
                seed=_point_seed(profile, 110, c, exponent),
            )
            predicted = equilibrium(c, lam).normalized_pool
            rel_err = abs(point.normalized_pool - predicted) / max(predicted, 1e-9)
            result.rows.append(
                {
                    "c": c,
                    "lambda_exp": used_exp,
                    "sim_pool/n": round(point.normalized_pool, 4),
                    "mf_pool/n": round(predicted, 4),
                    "rel_err": round(rel_err, 4),
                }
            )
    result.verdicts["mean-field within 15% of simulation"] = all(
        row["rel_err"] < 0.15 for row in result.rows
    )
    return result


def ablation_dchoice(profile: Profile) -> ExperimentResult:
    """Ablation: buffer capacity vs number of choices.

    The paper uses one random choice per ball and buys its improvement
    with capacity. Adding a second *batch-semantics* probe (commit to the
    emptier of two probed bins, loads read at the start of the round)
    exposes the parallel d-choice weakness the introduction cites from
    [Berenbrink et al., APPROX'12]: at c = 1 every round starts with empty
    bins, so the probe carries **no signal** and d = 2 changes nothing;
    only at c ≥ 2, where loads persist across rounds, does the second
    probe help. Capacity alone still dominates choices alone.
    """
    from repro.processes.capped_dchoice import CappedDChoiceProcess
    from repro.core.meanfield import equilibrium as mf_equilibrium
    from repro.engine.driver import SimulationDriver
    from repro.engine.stability import default_burn_in

    result = ExperimentResult(
        experiment_id="ablation_dchoice",
        title="Ablation: capacity vs choices (CAPPED with d probes)",
        profile=profile.name,
        columns=["c", "d", "avg_wait", "max_wait", "pool/n"],
    )
    lam, _ = _lam_from_exponent(10, profile, result.notes)
    for c in (1, 2, 3):
        warm = mf_equilibrium(c, lam).pool_size(profile.n)
        burn = default_burn_in(profile.n, c, lam, warm_start=True)
        for d in (1, 2):
            process = CappedDChoiceProcess(
                n=profile.n,
                capacity=c,
                lam=lam,
                d=d,
                rng=_point_seed(profile, 120, c, d),
                initial_pool=warm,
            )
            run = SimulationDriver(burn_in=burn, measure=profile.measure).run(process)
            result.rows.append(
                {
                    "c": c,
                    "d": d,
                    "avg_wait": round(run.avg_wait, 3),
                    "max_wait": run.max_wait,
                    "pool/n": round(run.normalized_pool, 4),
                }
            )

    def avg(c, d):
        return next(r["avg_wait"] for r in result.rows if r["c"] == c and r["d"] == d)

    gain_c1 = avg(1, 1) - avg(1, 2)
    gain_c3 = avg(3, 1) - avg(3, 2)
    result.notes.append(f"second-choice gain: {gain_c1:.2f} rounds at c=1, {gain_c3:.2f} at c=3")
    # At c=1 bins start every round empty, so the probe sees no load
    # signal: the gain is pure noise around zero (the APPROX'12 effect).
    result.verdicts["second choice is signal-free at c=1"] = abs(gain_c1) < 0.3
    # With persistent loads (c >= 2) the probe has something to read.
    result.verdicts["second choice helps once loads persist (c=3)"] = gain_c3 > 0.3
    return result


def ablation_aging(profile: Profile) -> ExperimentResult:
    """Ablation: the oldest-first acceptance rule.

    Algorithm 1 has bins accept "the oldest balls among its requests" —
    the aging mechanism Observation 1 leans on ("a bin will never assign
    a ball created later than t while rejecting a ball of M(t)").
    Flipping the preference to youngest-first leaves the pool-size
    *dynamics* untouched (per-bin acceptance counts depend only on
    request counts) but removes the FIFO fairness: old balls starve and
    the waiting-time tail explodes while the average barely moves. This
    isolates exactly which paper guarantee the aging rule buys.
    """
    from repro.core.capped import CappedProcess
    from repro.core.meanfield import equilibrium as mf_equilibrium
    from repro.engine.driver import SimulationDriver
    from repro.engine.observers import AgeProfiler
    from repro.engine.stability import default_burn_in

    result = ExperimentResult(
        experiment_id="ablation_aging",
        title="Ablation: oldest-first vs youngest-first acceptance",
        profile=profile.name,
        columns=[
            "order", "lambda_exp", "avg_wait", "p99_wait", "max_wait", "peak_pool_age", "pool/n"
        ],
    )
    stats: dict[tuple[str, int], dict] = {}
    for exponent in (4, 8):
        lam, used_exp = _lam_from_exponent(exponent, profile, result.notes)
        c = int(theory.sweet_spot_c(lam))
        warm = mf_equilibrium(c, lam).pool_size(profile.n)
        burn = default_burn_in(profile.n, c, lam, warm_start=True)
        for order in ("oldest", "youngest"):
            profiler = AgeProfiler()
            process = CappedProcess(
                n=profile.n,
                capacity=c,
                lam=lam,
                rng=_point_seed(profile, 130, used_exp, hash(order) % 97),
                initial_pool=warm,
                acceptance_order=order,
            )
            run = SimulationDriver(
                burn_in=burn, measure=profile.measure, observers=[profiler]
            ).run(process)
            row = {
                "order": order,
                "lambda_exp": used_exp,
                "avg_wait": round(run.avg_wait, 3),
                "p99_wait": run.summary.wait_p99,
                "max_wait": run.max_wait,
                "peak_pool_age": profiler.peak_age,
                "pool/n": round(run.normalized_pool, 4),
            }
            result.rows.append(row)
            stats[(order, used_exp)] = row
    exps = sorted({e for _, e in stats})
    result.verdicts["pool dynamics unchanged by the flip"] = all(
        abs(stats[("oldest", e)]["pool/n"] - stats[("youngest", e)]["pool/n"])
        <= 0.1 * max(stats[("oldest", e)]["pool/n"], 0.05)
        for e in exps
    )
    result.verdicts["youngest-first starves the tail (max wait >= 3x)"] = all(
        stats[("youngest", e)]["max_wait"] >= 3 * stats[("oldest", e)]["max_wait"] for e in exps
    )
    return result


def heterogeneous_capacity(profile: Profile) -> ExperimentResult:
    """Extension: how should a fixed buffer budget be laid out?

    The paper assumes identical bins; the non-uniform-bins line of work it
    cites ([Berenbrink et al., JPDC'14]) asks what heterogeneity does.
    Here a fixed total budget of 2n buffer slots is distributed three
    ways — uniform (every bin c = 2), split (half c = 1, half c = 3), and
    skewed (1/8 of bins c = 9, the rest c = 1) — and the pool and waits
    are measured at λ = 1 − 2⁻⁸. The fluid limit predicts uniform wins:
    the accept rate is concave in c, so spreading capacity maximises it.
    """
    import numpy as np

    from repro.core.capped import CappedProcess
    from repro.core.meanfield import mixture_equilibrium_pool
    from repro.engine.driver import SimulationDriver
    from repro.engine.stability import default_burn_in

    result = ExperimentResult(
        experiment_id="heterogeneous_capacity",
        title="Extension: layouts of a fixed buffer budget (2n slots)",
        profile=profile.name,
        columns=["layout", "pool/n", "mf_pool/n", "avg_wait", "max_wait"],
    )
    lam, _ = _lam_from_exponent(8, profile, result.notes)
    n = profile.n
    eighth = n // 8
    layouts: dict[str, tuple[np.ndarray, dict[int, float]]] = {
        "uniform c=2": (np.full(n, 2, dtype=np.int64), {2: 1.0}),
        "split 1/3": (
            np.concatenate([np.full(n // 2, 1), np.full(n - n // 2, 3)]).astype(np.int64),
            {1: 0.5, 3: 0.5},
        ),
        "skewed 1/9": (
            np.concatenate([np.full(eighth, 9), np.full(n - eighth, 1)]).astype(np.int64),
            {9: 1 / 8, 1: 7 / 8},
        ),
    }
    burn = default_burn_in(n, 2, lam, warm_start=False)
    measured: dict[str, dict] = {}
    for name, (capacities, shares) in layouts.items():
        predicted = mixture_equilibrium_pool(shares, lam)
        process = CappedProcess(
            n=n,
            capacity=capacities,
            lam=lam,
            rng=_point_seed(profile, 140, _stable_label(name)),
            initial_pool=int(predicted * n),
        )
        run = SimulationDriver(burn_in=burn, measure=profile.measure).run(process)
        row = {
            "layout": name,
            "pool/n": round(run.normalized_pool, 4),
            "mf_pool/n": round(predicted, 4),
            "avg_wait": round(run.avg_wait, 3),
            "max_wait": run.max_wait,
        }
        result.rows.append(row)
        measured[name] = row
    result.verdicts["uniform layout minimises the pool"] = (
        measured["uniform c=2"]["pool/n"]
        <= min(measured["split 1/3"]["pool/n"], measured["skewed 1/9"]["pool/n"]) + 1e-9
    )
    result.verdicts["mixture mean-field within 15% everywhere"] = all(
        abs(row["pool/n"] - row["mf_pool/n"]) <= 0.15 * max(row["mf_pool/n"], 0.05)
        for row in result.rows
    )
    return result


def _stable_label(name: str) -> int:
    import zlib

    return zlib.crc32(name.encode()) % 1000


def drain_stages(profile: Profile) -> ExperimentResult:
    """Validation of the Lemma 3–5 drain pipeline.

    The waiting-time proof splits the clearing of a pool ``M(t)`` into
    three stages: Lemma 3 drains it to ``2n`` within
    ``Δ = m(t)/(n − n/e)`` rounds (≥ n − n/e deletions per round), Lemma 4
    takes it from ``2n`` to ``n/(2e)`` in 19 more rounds (≥ n/10 per
    round), and Lemma 5 clears the stragglers in ``log log n + O(1)``
    layered-induction rounds. This experiment realises the setting
    directly — a spike of 6n balls, arrivals switched off — and clocks
    each stage against its bound.
    """
    from repro.core.capped import CappedProcess

    result = ExperimentResult(
        experiment_id="drain_stages",
        title="Lemma 3-5 drain stages (spike of 6n balls, no arrivals)",
        profile=profile.name,
        columns=[
            "c",
            "stage1_rounds",
            "lemma3_bound",
            "stage2_rounds",
            "lemma4_bound",
            "stage3_rounds",
            "lemma5_scale",
            "flush_rounds",
        ],
    )
    n = profile.n
    spike = 6 * n
    lemma3_bound = theory.drain_stage_rounds(spike, n)
    lemma5_scale = theory.loglog(n)
    for c in (1, 2, 3):
        process = CappedProcess(
            n=n, capacity=c, lam=0.0, rng=_point_seed(profile, 150, c), initial_pool=spike
        )
        stage1 = stage2 = stage3 = flush = 0
        for _ in range(10_000):
            record = process.step()
            if record.pool_size > 2 * n:
                stage1 += 1
            elif record.pool_size > n / (2 * math.e):
                stage2 += 1
            elif record.pool_size > 0:
                stage3 += 1
            elif record.total_load > 0:
                flush += 1
            else:
                break
        result.rows.append(
            {
                "c": c,
                "stage1_rounds": stage1 + 1,  # +1: the round crossing 2n
                "lemma3_bound": round(lemma3_bound, 2),
                "stage2_rounds": stage2,
                "lemma4_bound": theory.LEMMA4_ROUNDS,
                "stage3_rounds": stage3,
                "lemma5_scale": round(lemma5_scale, 2),
                "flush_rounds": flush,
            }
        )
    result.verdicts["stage 1 within the Lemma 3 bound"] = all(
        row["stage1_rounds"] <= row["lemma3_bound"] for row in result.rows
    )
    result.verdicts["stage 2 within the Lemma 4 bound"] = all(
        row["stage2_rounds"] <= theory.LEMMA4_ROUNDS for row in result.rows
    )
    result.verdicts["stage 3 within loglog n + O(1)"] = all(
        row["stage3_rounds"] <= lemma5_scale + 6 for row in result.rows
    )
    result.verdicts["buffer flush within c rounds"] = all(
        row["flush_rounds"] <= row["c"] for row in result.rows
    )
    return result


def robustness_workloads(profile: Profile) -> ExperimentResult:
    """Extension: CAPPED under non-constant arrival models.

    The theorems assume exactly λn arrivals per round; footnote 2 claims
    the results survive probabilistic generation. This experiment runs
    the same mean rate through four arrival models — deterministic
    (paper), Bernoulli (footnote 2), Poisson (Mitzenmacher), and a
    diurnal sine wave — and compares pool and waits. Deterministic,
    Bernoulli and Poisson should be statistically indistinguishable; the
    diurnal load pays for its peaks with a larger pool but stays stable.
    """
    from repro.core.capped import CappedProcess
    from repro.core.meanfield import equilibrium as mf_equilibrium
    from repro.engine.driver import SimulationDriver
    from repro.engine.stability import default_burn_in
    from repro.workloads.arrivals import (
        BernoulliArrivals,
        DiurnalArrivals,
        PoissonArrivals,
    )

    result = ExperimentResult(
        experiment_id="robustness_workloads",
        title="Extension: CAPPED under non-constant arrivals (same mean rate)",
        profile=profile.name,
        columns=["workload", "pool/n", "peak_pool/n", "avg_wait", "max_wait"],
    )
    lam, _ = _lam_from_exponent(6, profile, result.notes)
    n, c = profile.n, 2
    workloads = {
        "deterministic": None,
        "bernoulli": BernoulliArrivals(n=n, lam=lam),
        "poisson": PoissonArrivals(n=n, lam=lam),
        "diurnal": DiurnalArrivals(n=n, base=lam, amplitude=1.0 - lam, period=64),
    }
    warm = mf_equilibrium(c, lam).pool_size(n)
    burn = default_burn_in(n, c, lam, warm_start=True)
    measured: dict[str, dict] = {}
    for name, workload in workloads.items():
        process = CappedProcess(
            n=n,
            capacity=c,
            lam=lam,
            rng=_point_seed(profile, 160, _stable_label(name)),
            arrivals=workload,
            initial_pool=warm,
        )
        run = SimulationDriver(burn_in=burn, measure=profile.measure).run(process)
        row = {
            "workload": name,
            "pool/n": round(run.normalized_pool, 4),
            "peak_pool/n": round(run.summary.peak_pool / n, 4),
            "avg_wait": round(run.avg_wait, 3),
            "max_wait": run.max_wait,
        }
        result.rows.append(row)
        measured[name] = row
    base = measured["deterministic"]["pool/n"]
    result.verdicts["probabilistic generation matches (footnote 2)"] = all(
        abs(measured[name]["pool/n"] - base) <= 0.15 * max(base, 0.05)
        for name in ("bernoulli", "poisson")
    )
    result.verdicts["diurnal load remains stable"] = (
        measured["diurnal"]["peak_pool/n"] < 10 * max(base, 0.1)
    )
    return result


def fault_recovery(profile: Profile) -> ExperimentResult:
    """Robustness: recovery time after injected faults (self-stabilization).

    The theorems describe the fault-free stationary regime; the practical
    question (and the one the self-stabilizing balls-into-bins literature
    asks) is how fast CAPPED returns to it after a perturbation. Two fault
    shapes are injected into a warmed-up CAPPED(2, λ) run at two loads:

    * **crash burst** — 25% of bins go down for 20 rounds with preserved
      buffers (an AZ outage);
    * **capacity degradation** — every bin drops from c=2 to c=1 for 40
      rounds (a rolling config push gone wrong).

    A stationary band (mean ± 4σ over the 120 pre-fault rounds) is fitted
    to the pool-size and per-round-p99-wait series, and recovery time is
    the first post-fault round from which each series stays in band for 10
    consecutive rounds. Expected scaling: the fault builds an excess
    backlog of ≈ max(λ − (1 − f), 0)·f-ish·n·D balls which drains at
    ≈ (1 − λ)·n per round, so recovery stretches like 1/(1 − λ) as λ → 1 —
    the λ-exponent-6 rows should recover much more slowly than exponent-2.
    """
    from repro.core.capped import CappedProcess
    from repro.core.meanfield import equilibrium as mf_equilibrium
    from repro.engine.driver import SimulationDriver
    from repro.engine.observers import InvariantChecker, TraceRecorder
    from repro.engine.stability import default_burn_in
    from repro.faults import (
        CapacityDegradation,
        CrashBurst,
        FaultInjector,
        FaultSchedule,
        measure_recovery,
        per_round_p99,
    )

    result = ExperimentResult(
        experiment_id="fault_recovery",
        title="Fault injection: recovery of pool size and p99 wait (CAPPED, c=2)",
        profile=profile.name,
        columns=[
            "fault",
            "lambda_exp",
            "c",
            "duration",
            "peak_pool/n",
            "pool_recovery",
            "p99_recovery",
        ],
    )
    n, c = profile.n, 2
    pre, sustain = 120, 10
    result.notes.append(
        "band = pre-fault mean ± max(4σ, 5%); recovery = first round staying "
        f"in band for {sustain} rounds, counted from fault clearance (-1 = never)"
    )
    result.notes.append(
        "waits recorded during an outage window are lower bounds: the positional "
        "wait identity assumes uninterrupted unit service"
    )
    recoveries: dict[tuple[str, int], dict] = {}
    for exponent in (2, 6):
        lam, used_exp = _lam_from_exponent(exponent, profile, result.notes)
        warm = mf_equilibrium(c, lam).pool_size(n)
        burn = default_burn_in(n, c, lam, warm_start=True)
        drain = max(1.0 - lam, 1e-6)
        eq_gap = mf_equilibrium(1, lam).normalized_pool - mf_equilibrium(c, lam).normalized_pool
        faults = {
            "crash_burst": (
                20,
                lambda at: CrashBurst(
                    at_round=at, fraction=0.25, duration=20, buffer_policy="preserved"
                ),
                max(0.5, (lam - 0.75) * 20),
            ),
            "capacity_degradation": (
                40,
                lambda at: CapacityDegradation(at_round=at, duration=40, capacity=1, fraction=1.0),
                max(0.5, min(1.0, 40 * drain) * eq_gap),
            ),
        }
        for fault_index, (fault_name, (duration, make_event, backlog)) in enumerate(faults.items()):
            fault_round = burn + pre
            post = max(300, int(4.0 * backlog / drain) + 150)
            schedule = FaultSchedule(
                events=(make_event(fault_round),),
                seed=_point_seed(profile, 171, used_exp, fault_index),
            )
            injector = FaultInjector(schedule)
            trace = TraceRecorder()
            process = CappedProcess(
                n=n,
                capacity=c,
                lam=lam,
                rng=_point_seed(profile, 170, used_exp, fault_index),
                initial_pool=warm,
            )
            SimulationDriver(
                burn_in=burn,
                measure=pre + duration + post,
                observers=[trace, injector, InvariantChecker(every=50)],
            ).run(process)
            pool_series = trace.pool_sizes()
            pool_rec = measure_recovery(
                pool_series,
                fault_index=fault_round,
                fault_end_index=fault_round + duration,
                pre_window=pre,
                sustain=sustain,
            )
            p99_rec = measure_recovery(
                per_round_p99(trace.records),
                fault_index=fault_round,
                fault_end_index=fault_round + duration,
                pre_window=pre,
                sustain=sustain,
                abs_floor=2.0,
            )
            row = {
                "fault": fault_name,
                "lambda_exp": used_exp,
                "c": c,
                "duration": duration,
                "peak_pool/n": round(pool_rec.peak_value / n, 4),
                "pool_recovery": (pool_rec.recovery_rounds if pool_rec.recovered else -1),
                "p99_recovery": (p99_rec.recovery_rounds if p99_rec.recovered else -1),
            }
            result.rows.append(row)
            recoveries[(fault_name, used_exp)] = row
    result.verdicts["pool recovers from a crash burst"] = all(
        row["pool_recovery"] >= 0 for row in result.rows if row["fault"] == "crash_burst"
    )
    result.verdicts["pool recovers from capacity degradation"] = all(
        row["pool_recovery"] >= 0 for row in result.rows if row["fault"] == "capacity_degradation"
    )
    result.verdicts["p99 wait recovers"] = all(row["p99_recovery"] >= 0 for row in result.rows)
    exps = sorted({row["lambda_exp"] for row in result.rows})
    if len(exps) == 2:
        low, high = exps
        result.verdicts["crash recovery slows as lambda -> 1"] = (
            recoveries[("crash_burst", high)]["pool_recovery"]
            >= recoveries[("crash_burst", low)]["pool_recovery"]
        )
    return result


def churn_recovery(profile: Profile) -> ExperimentResult:
    """Robustness: settling time after elastic membership changes.

    The paper's bin set is immutable; real pools scale. This experiment
    perturbs a warmed-up CAPPED(2, λ=1/2) run with one membership burst at
    a time — a 25% leave burst under each re-hash policy (``rehash``
    relabels the displaced balls' bins, ``drop`` destroys their buffered
    balls) and a 25% join burst — and measures how long the pool-size
    series takes to reach its *new* equilibrium.

    Unlike a fault, churn moves the stationary point permanently (arrivals
    stay pinned to the original n₀, so losing bins raises the effective
    load). The band is therefore fitted to the final quarter of the run via
    :func:`repro.faults.measure_post_churn_recovery` and the settling time
    counts rounds from the burst to the first sustained entry into that
    band. With λ = 1/2 a 25% leave burst leaves effective λ = 2/3 < 1, so
    every scenario must settle in finite time.
    """
    from repro.churn import ChurnInjector, ChurnSchedule, JoinBurst, LeaveBurst
    from repro.core.capped import CappedProcess
    from repro.core.meanfield import equilibrium as mf_equilibrium
    from repro.engine.driver import SimulationDriver
    from repro.engine.observers import InvariantChecker, TraceRecorder
    from repro.engine.stability import default_burn_in
    from repro.faults import measure_post_churn_recovery

    result = ExperimentResult(
        experiment_id="churn_recovery",
        title="Elastic churn: settling after membership bursts (CAPPED, c=2, lambda=1/2)",
        profile=profile.name,
        columns=[
            "scenario",
            "policy",
            "n_before",
            "n_after",
            "balls_rehashed",
            "peak_pool/n0",
            "settle_rounds",
        ],
    )
    n, c, lam = profile.n, 2, 0.5
    pre, sustain = 120, 10
    post = max(400, profile.measure)
    result.notes.append(
        "band = final-quarter mean ± max(4σ, 5%); settle_rounds counted from the "
        f"burst to the first {sustain}-round stay in band (-1 = never); arrivals "
        "stay pinned to the original n0"
    )
    warm = mf_equilibrium(c, lam).pool_size(n)
    burn = default_burn_in(n, c, lam, warm_start=True)
    churn_round = burn + pre
    scenarios = [
        (
            "leave_25pct",
            "rehash",
            LeaveBurst(at_round=churn_round, fraction=0.25, policy="rehash"),
        ),
        (
            "leave_25pct",
            "drop",
            LeaveBurst(at_round=churn_round, fraction=0.25, policy="drop"),
        ),
        ("join_25pct", "n/a", JoinBurst(at_round=churn_round, count=n // 4)),
    ]
    for index, (name, policy, event) in enumerate(scenarios):
        injector = ChurnInjector(
            ChurnSchedule(events=(event,), seed=_point_seed(profile, 181, index))
        )
        trace = TraceRecorder()
        process = CappedProcess(
            n=n,
            capacity=c,
            lam=lam,
            rng=_point_seed(profile, 180, index),
            initial_pool=warm,
        )
        SimulationDriver(
            burn_in=burn,
            measure=pre + post,
            observers=[trace, injector, InvariantChecker(every=50)],
        ).run(process)
        report = measure_post_churn_recovery(
            trace.pool_sizes(),
            churn_index=churn_round,
            tail_window=post // 4,
            sustain=sustain,
        )
        result.rows.append(
            {
                "scenario": name,
                "policy": policy,
                "n_before": n,
                "n_after": process.n,
                "balls_rehashed": injector.balls_rehashed,
                "peak_pool/n0": round(report.peak_value / n, 4),
                "settle_rounds": (report.recovery_rounds if report.recovered else -1),
            }
        )
    expected_n = {"leave_25pct": n - int(round(0.25 * n)), "join_25pct": n + n // 4}
    result.verdicts["membership changed as scheduled"] = all(
        row["n_after"] == expected_n[row["scenario"]] for row in result.rows
    )
    result.verdicts["pool settles after 25% leave burst (rehash)"] = all(
        row["settle_rounds"] >= 0
        for row in result.rows
        if row["scenario"] == "leave_25pct" and row["policy"] == "rehash"
    )
    result.verdicts["pool settles after 25% leave burst (drop)"] = all(
        row["settle_rounds"] >= 0
        for row in result.rows
        if row["scenario"] == "leave_25pct" and row["policy"] == "drop"
    )
    result.verdicts["pool settles after 25% join burst"] = all(
        row["settle_rounds"] >= 0 for row in result.rows if row["scenario"] == "join_25pct"
    )
    return result


EXPERIMENTS: dict[str, Callable[[Profile], ExperimentResult]] = {
    "fig4_left": fig4_left,
    "fig4_right": fig4_right,
    "fig5_left": fig5_left,
    "fig5_right": fig5_right,
    "sweet_spot": sweet_spot,
    "theory_bounds": theory_bounds,
    "dominance": dominance,
    "baseline_comparison": baseline_comparison,
    "n_invariance": n_invariance,
    "meanfield_validation": meanfield_validation,
    "ablation_dchoice": ablation_dchoice,
    "ablation_aging": ablation_aging,
    "heterogeneous_capacity": heterogeneous_capacity,
    "drain_stages": drain_stages,
    "fault_recovery": fault_recovery,
    "robustness_workloads": robustness_workloads,
    "churn_recovery": churn_recovery,
}


def get_experiment(experiment_id: str) -> Callable[[Profile], ExperimentResult]:
    """Look up an experiment generator by id."""
    if experiment_id not in EXPERIMENTS:
        raise ExperimentError(
            f"unknown experiment {experiment_id!r}; available: {sorted(EXPERIMENTS)}"
        )
    return EXPERIMENTS[experiment_id]


def run_experiment(experiment_id: str, profile: str | Profile = "default") -> ExperimentResult:
    """Run one experiment under a named or explicit profile."""
    if isinstance(profile, str):
        if profile not in PROFILES:
            raise ExperimentError(f"unknown profile {profile!r}; available: {sorted(PROFILES)}")
        profile = PROFILES[profile]
    return get_experiment(experiment_id)(profile)
