"""JSON export of experiment results.

CSV (in :mod:`repro.analysis.tables`) covers spreadsheet workflows; JSON
preserves the full result — rows, notes, verdicts, profile — for archival
and programmatic comparison of runs (e.g. diffing a paper-profile run
against a quick-profile run).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.analysis.experiments import ExperimentResult

__all__ = ["result_to_json", "result_from_json", "save_result", "load_result"]


def result_to_json(result: ExperimentResult) -> str:
    """Serialise an :class:`ExperimentResult` to a JSON string."""
    payload = {
        "experiment_id": result.experiment_id,
        "title": result.title,
        "profile": result.profile,
        "columns": result.columns,
        "rows": result.rows,
        "notes": result.notes,
        "verdicts": result.verdicts,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def result_from_json(text: str) -> ExperimentResult:
    """Reconstruct an :class:`ExperimentResult` from :func:`result_to_json`.

    Raises
    ------
    KeyError
        If a required field is missing (truncated or foreign JSON).
    """
    payload = json.loads(text)
    return ExperimentResult(
        experiment_id=payload["experiment_id"],
        title=payload["title"],
        profile=payload["profile"],
        columns=list(payload["columns"]),
        rows=list(payload["rows"]),
        notes=list(payload.get("notes", [])),
        verdicts=dict(payload.get("verdicts", {})),
    )


def save_result(result: ExperimentResult, directory: Path | str) -> Path:
    """Write ``<experiment_id>.json`` into ``directory`` (created if needed)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"{result.experiment_id}.json"
    path.write_text(result_to_json(result) + "\n", encoding="utf-8")
    return path


def load_result(path: Path | str) -> ExperimentResult:
    """Read a result previously written by :func:`save_result`."""
    return result_from_json(Path(path).read_text(encoding="utf-8"))
