"""Experiment harness.

* :mod:`repro.analysis.sweep` — replicated measurement of single
  parameter points for CAPPED and the baselines.
* :mod:`repro.analysis.tables` — aligned ASCII tables and CSV export.
* :mod:`repro.analysis.plots` — dependency-free ASCII line plots.
* :mod:`repro.analysis.experiments` — the registry regenerating every
  figure and claim of the paper's evaluation (see DESIGN.md Section 2).
"""

from repro.analysis.experiments import (
    EXPERIMENTS,
    ExperimentResult,
    Profile,
    PROFILES,
    get_experiment,
    run_experiment,
)
from repro.analysis.compare import ComparisonReport, compare_results
from repro.analysis.export import load_result, result_from_json, result_to_json, save_result
from repro.analysis.sweep import PointResult, measure_capped, measure_greedy
from repro.analysis.tables import format_table, to_csv
from repro.analysis.plots import ascii_plot

__all__ = [
    "PointResult",
    "measure_capped",
    "measure_greedy",
    "format_table",
    "to_csv",
    "ascii_plot",
    "result_to_json",
    "result_from_json",
    "save_result",
    "load_result",
    "compare_results",
    "ComparisonReport",
    "ExperimentResult",
    "Profile",
    "PROFILES",
    "EXPERIMENTS",
    "get_experiment",
    "run_experiment",
]
