"""Replicated measurement of single parameter points.

The paper's data points are long-run averages of a stabilised system. Each
helper here builds the process, warm-starts it at the mean-field
equilibrium where applicable, burns in, measures, and aggregates over
independent replicates (each with its own derived random stream).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.capped import CappedProcess
from repro.core.meanfield import equilibrium
from repro.engine.driver import SimulationDriver
from repro.engine.stability import default_burn_in
from repro.processes.greedy import GreedyBatchProcess
from repro.rng import RngFactory
from repro.stats.intervals import ConfidenceInterval, normal_ci

__all__ = ["PointResult", "measure_capped", "measure_greedy"]


@dataclass(frozen=True)
class PointResult:
    """Aggregated statistics for one parameter point.

    Means are averaged over replicates; ``max_wait`` and ``peak_pool`` are
    the maxima across all replicates (the paper's "maximum waiting time"
    is a max over the whole measurement, so maxima aggregate by max).
    """

    n: int
    c: int | None
    lam: float
    replicates: int
    measure_rounds: int
    burn_in: int
    normalized_pool: float
    pool_ci: ConfidenceInterval
    avg_wait: float
    wait_ci: ConfidenceInterval
    max_wait: int
    wait_p99: int
    peak_pool: int
    peak_max_load: int
    stationary_fraction: float

    def row(self) -> dict[str, float | int | str]:
        """Flat representation for table/CSV output."""
        return {
            "n": self.n,
            "c": "inf" if self.c is None else self.c,
            "lambda": round(self.lam, 8),
            "pool/n": round(self.normalized_pool, 4),
            "avg_wait": round(self.avg_wait, 3),
            "max_wait": self.max_wait,
            "p99_wait": self.wait_p99,
        }


def _aggregate(
    n: int,
    c: int | None,
    lam: float,
    burn_in: int,
    measure: int,
    results,
) -> PointResult:
    pools = [r.normalized_pool for r in results]
    waits = [r.avg_wait for r in results]
    stationary_flags = [r.stationary for r in results if r.stationary is not None]
    return PointResult(
        n=n,
        c=c,
        lam=lam,
        replicates=len(results),
        measure_rounds=measure,
        burn_in=burn_in,
        normalized_pool=float(np.mean(pools)),
        pool_ci=normal_ci(pools),
        avg_wait=float(np.mean(waits)),
        wait_ci=normal_ci(waits),
        max_wait=max(r.max_wait for r in results),
        wait_p99=max(r.summary.wait_p99 for r in results),
        peak_pool=max(r.summary.peak_pool for r in results),
        peak_max_load=max(r.summary.peak_max_load for r in results),
        stationary_fraction=(
            float(np.mean(stationary_flags)) if stationary_flags else 1.0
        ),
    )


def measure_capped(
    n: int,
    c: int | None,
    lam: float,
    measure: int,
    replicates: int = 1,
    seed: int = 0,
    warm_start: bool = True,
    burn_in: int | None = None,
) -> PointResult:
    """Measure CAPPED(c, λ) at one parameter point.

    ``warm_start=True`` (default) initialises the pool at the mean-field
    equilibrium and shortens the burn-in accordingly; pass ``False`` for a
    faithful cold start from the paper's empty system (much longer burn-in
    for λ close to 1). Infinite capacity (``c=None``) cannot be
    warm-started through the mean-field solver and always cold-starts.
    """
    factory = RngFactory(seed=seed)
    effective_warm = warm_start and c is not None and lam > 0
    initial_pool = equilibrium(c, lam).pool_size(n) if effective_warm else 0
    if burn_in is None:
        burn_in = default_burn_in(n, c if c is not None else 1, lam, warm_start=effective_warm)
    driver = SimulationDriver(burn_in=burn_in, measure=measure)
    results = []
    for replicate in range(replicates):
        process = CappedProcess(
            n=n,
            capacity=c,
            lam=lam,
            rng=factory.child(replicate).generator("capped"),
            initial_pool=initial_pool,
        )
        results.append(driver.run(process))
    return _aggregate(n, c, lam, burn_in, measure, results)


def measure_greedy(
    n: int,
    d: int,
    lam: float,
    measure: int,
    replicates: int = 1,
    seed: int = 0,
    burn_in: int | None = None,
) -> PointResult:
    """Measure batch GREEDY[d] (leaky bins) at one parameter point.

    GREEDY has no pool, so there is no warm start; its queues fill within
    the waiting-time scale, which for d = 1 is ``Θ(log n/(1−λ))`` — the
    default burn-in covers it via the relaxation term.
    """
    factory = RngFactory(seed=seed)
    if burn_in is None:
        burn_in = default_burn_in(n, 1, lam, warm_start=False)
    driver = SimulationDriver(burn_in=burn_in, measure=measure)
    results = []
    for replicate in range(replicates):
        process = GreedyBatchProcess(
            n=n, d=d, lam=lam, rng=factory.child(replicate).generator("greedy")
        )
        results.append(driver.run(process))
    return _aggregate(n, None, lam, burn_in, measure, results)
