"""Replicated measurement of single parameter points.

The paper's data points are long-run averages of a stabilised system. Each
helper here builds the process, warm-starts it at the mean-field
equilibrium where applicable, burns in, measures, and aggregates over
independent replicates (each with its own derived random stream).

Parallel execution
------------------
:func:`measure_capped` and :func:`measure_greedy` are the seam the parallel
runner (:mod:`repro.parallel`) hooks into: when a measurement context is
active they delegate to it instead of simulating inline. Each replicate is
an independently executable unit — :func:`run_replicate` — whose random
stream derives only from ``(seed, replicate)`` via
:class:`~repro.rng.RngFactory`, so replicates computed in any order, in any
process, produce bit-identical results to the serial loop. Aggregation over
replicates (:func:`aggregate_point`) is shared between the serial path and
the parallel replay, which is what makes ``--jobs N`` output byte-identical
to ``--jobs 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.core.capped import CappedProcess
from repro.core.meanfield import equilibrium
from repro.engine.driver import SimulationDriver, SimulationResult
from repro.engine.stability import default_burn_in
from repro.errors import ConfigurationError, ParallelExecutionError
from repro.kernels.batched import BatchedCappedProcess
from repro.parallel.context import active_context
from repro.processes.greedy import GreedyBatchProcess
from repro.rng import RngFactory
from repro.stats.intervals import ConfidenceInterval, normal_ci

__all__ = [
    "PointResult",
    "ReplicateOutcome",
    "measure_capped",
    "measure_greedy",
    "run_replicate",
    "run_capped_replicate",
    "run_capped_replicates_batched",
    "run_greedy_replicate",
    "aggregate_point",
    "assemble_point",
    "placeholder_point",
]


@dataclass(frozen=True)
class PointResult:
    """Aggregated statistics for one parameter point.

    Means are averaged over replicates; ``max_wait`` and ``peak_pool`` are
    the maxima across all replicates (the paper's "maximum waiting time" is
    a max over the whole measurement, so maxima aggregate by max).
    """

    n: int
    c: int | None
    lam: float
    replicates: int
    measure_rounds: int
    burn_in: int
    normalized_pool: float
    pool_ci: ConfidenceInterval
    avg_wait: float
    wait_ci: ConfidenceInterval
    max_wait: int
    wait_p99: int
    peak_pool: int
    peak_max_load: int
    stationary_fraction: float

    def row(self) -> dict[str, float | int | str]:
        """Flat representation for table/CSV output."""
        return {
            "n": self.n,
            "c": "inf" if self.c is None else self.c,
            "lambda": round(self.lam, 8),
            "pool/n": round(self.normalized_pool, 4),
            "avg_wait": round(self.avg_wait, 3),
            "max_wait": self.max_wait,
            "p99_wait": self.wait_p99,
        }


@dataclass(frozen=True)
class ReplicateOutcome:
    """The serialisable slice of one replicate's :class:`SimulationResult`.

    Exactly the fields point aggregation consumes — small enough to journal
    and cache as JSON, and JSON round-trips every value exactly (Python
    floats serialise with shortest-round-trip repr), so an outcome replayed
    from disk aggregates bit-identically to one computed in process.
    """

    normalized_pool: float
    avg_wait: float
    max_wait: int
    wait_p99: int
    peak_pool: int
    peak_max_load: int
    stationary: bool | None

    @staticmethod
    def from_result(result: SimulationResult) -> "ReplicateOutcome":
        return ReplicateOutcome(
            normalized_pool=result.normalized_pool,
            avg_wait=result.avg_wait,
            max_wait=result.max_wait,
            wait_p99=result.summary.wait_p99,
            peak_pool=result.summary.peak_pool,
            peak_max_load=result.summary.peak_max_load,
            stationary=result.stationary,
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "normalized_pool": self.normalized_pool,
            "avg_wait": self.avg_wait,
            "max_wait": self.max_wait,
            "wait_p99": self.wait_p99,
            "peak_pool": self.peak_pool,
            "peak_max_load": self.peak_max_load,
            "stationary": self.stationary,
        }

    @staticmethod
    def from_dict(payload: dict[str, Any]) -> "ReplicateOutcome":
        stationary = payload["stationary"]
        return ReplicateOutcome(
            normalized_pool=float(payload["normalized_pool"]),
            avg_wait=float(payload["avg_wait"]),
            max_wait=int(payload["max_wait"]),
            wait_p99=int(payload["wait_p99"]),
            peak_pool=int(payload["peak_pool"]),
            peak_max_load=int(payload["peak_max_load"]),
            stationary=None if stationary is None else bool(stationary),
        )


def aggregate_point(
    n: int,
    c: int | None,
    lam: float,
    burn_in: int,
    measure: int,
    outcomes: list[ReplicateOutcome],
) -> PointResult:
    """Fold replicate outcomes into a :class:`PointResult`."""
    pools = [o.normalized_pool for o in outcomes]
    waits = [o.avg_wait for o in outcomes]
    stationary_flags = [o.stationary for o in outcomes if o.stationary is not None]
    return PointResult(
        n=n,
        c=c,
        lam=lam,
        replicates=len(outcomes),
        measure_rounds=measure,
        burn_in=burn_in,
        normalized_pool=float(np.mean(pools)),
        pool_ci=normal_ci(pools),
        avg_wait=float(np.mean(waits)),
        wait_ci=normal_ci(waits),
        max_wait=max(o.max_wait for o in outcomes),
        wait_p99=max(o.wait_p99 for o in outcomes),
        peak_pool=max(o.peak_pool for o in outcomes),
        peak_max_load=max(o.peak_max_load for o in outcomes),
        stationary_fraction=(float(np.mean(stationary_flags)) if stationary_flags else 1.0),
    )


def run_capped_replicate(
    n: int,
    c: int | None,
    lam: float,
    measure: int,
    seed: int,
    replicate: int,
    warm_start: bool,
    burn_in: int,
    checkpoint_dir=None,
    checkpoint_every: int | None = None,
    shards: int = 1,
    scenario: dict[str, Any] | None = None,
) -> ReplicateOutcome:
    """Run one CAPPED replicate (independently of every other replicate).

    The random stream is ``RngFactory(seed).child(replicate)`` — a pure
    function of ``(seed, replicate)`` — so this call returns the same
    outcome whether it runs in the serial loop or on a worker process.
    Checkpoint configuration never changes the outcome (resume is
    bit-identical) and is deliberately *not* part of the measurement
    parameters the parallel runner hashes.

    ``shards > 1`` simulates the replicate on a
    :class:`~repro.kernels.sharded.ShardedCappedProcess` with persistent
    worker processes — one simulation spread over the machine's cores.
    Shard ``s`` then draws from ``factory.child(replicate).child(s)``, so
    the trajectory is a different (equally valid) sample of the same
    process than the unsharded stream; ``shards`` is therefore part of
    the measurement parameters, unlike checkpoint placement.

    ``scenario`` is a chaos-scenario dict (see
    :func:`repro.churn.scenario_from_dict`); its observers — churn,
    faults, autoscaling — are built fresh for every replicate, so each
    replicate perturbs its own process. Like ``shards``, a scenario
    changes outcomes and is part of the measurement parameters.
    """
    factory = RngFactory(seed=seed)
    effective_warm = warm_start and c is not None and lam > 0
    initial_pool = equilibrium(c, lam).pool_size(n) if effective_warm else 0
    observers: list = []
    if scenario:
        from repro.churn import scenario_from_dict

        if shards > 1:
            raise ConfigurationError(
                "chaos scenarios are not supported on the sharded engine; "
                "membership changes would invalidate the shard partition"
            )
        observers = scenario_from_dict(scenario).build_observers()
    driver = SimulationDriver(
        burn_in=burn_in,
        measure=measure,
        observers=observers,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
    )
    if shards > 1:
        if c is None:
            raise ConfigurationError("shards > 1 requires a finite capacity c")
        from repro.kernels.sharded import ShardedCappedProcess

        with ShardedCappedProcess(
            n=n,
            capacity=c,
            lam=lam,
            seed=factory.child(replicate),
            shards=shards,
            backend="process",
            initial_pool=initial_pool,
        ) as process:
            return ReplicateOutcome.from_result(driver.run(process))
    process = CappedProcess(
        n=n,
        capacity=c,
        lam=lam,
        rng=factory.child(replicate).generator("capped"),
        initial_pool=initial_pool,
    )
    return ReplicateOutcome.from_result(driver.run(process))


def run_capped_replicates_batched(
    n: int,
    c: int | None,
    lam: float,
    measure: int,
    seed: int,
    replicates: int,
    warm_start: bool,
    burn_in: int,
    checkpoint_dir=None,
    checkpoint_every: int | None = None,
) -> list[ReplicateOutcome]:
    """Run all CAPPED replicates of one point in a single batched engine.

    Replicate ``r`` consumes the same derived stream
    ``RngFactory(seed).child(r)`` as :func:`run_capped_replicate`, and the
    batched engine reproduces each replicate's trajectory bit-identically
    (see :mod:`repro.kernels.batched`), so the returned outcomes equal the
    serial per-replicate loop's — just computed with one kernel invocation
    per round instead of one per replicate.
    """
    factory = RngFactory(seed=seed)
    effective_warm = warm_start and c is not None and lam > 0
    initial_pool = equilibrium(c, lam).pool_size(n) if effective_warm else 0
    driver = SimulationDriver(
        burn_in=burn_in,
        measure=measure,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
    )
    process = BatchedCappedProcess(
        n=n,
        capacity=c,
        lam=lam,
        rngs=[factory.child(r).generator("capped") for r in range(replicates)],
        initial_pool=initial_pool,
    )
    return [ReplicateOutcome.from_result(result) for result in driver.run_batched(process)]


def run_greedy_replicate(
    n: int,
    d: int,
    lam: float,
    measure: int,
    seed: int,
    replicate: int,
    burn_in: int,
    checkpoint_dir=None,
    checkpoint_every: int | None = None,
) -> ReplicateOutcome:
    """Run one GREEDY[d] replicate (see :func:`run_capped_replicate`)."""
    factory = RngFactory(seed=seed)
    driver = SimulationDriver(
        burn_in=burn_in,
        measure=measure,
        checkpoint_dir=checkpoint_dir,
        checkpoint_every=checkpoint_every,
    )
    process = GreedyBatchProcess(
        n=n, d=d, lam=lam, rng=factory.child(replicate).generator("greedy")
    )
    return ReplicateOutcome.from_result(driver.run(process))


def run_replicate(
    kind: str,
    params: dict[str, Any],
    replicate: int,
    checkpoint_dir=None,
    checkpoint_every: int | None = None,
) -> ReplicateOutcome:
    """Dispatch one replicate task by kind (the worker entry point).

    ``checkpoint_dir``/``checkpoint_every`` ride alongside ``params``
    rather than inside it: the params dict is what task digests hash, and
    checkpoint placement must never change a task's cache identity.
    """
    if kind == "capped":
        return run_capped_replicate(
            replicate=replicate,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            **params,
        )
    if kind == "greedy":
        return run_greedy_replicate(
            replicate=replicate,
            checkpoint_dir=checkpoint_dir,
            checkpoint_every=checkpoint_every,
            **params,
        )
    raise ParallelExecutionError(f"unknown measurement kind {kind!r}")


def assemble_point(
    kind: str, params: dict[str, Any], outcomes: list[ReplicateOutcome]
) -> PointResult:
    """Aggregate outcomes of a recorded point exactly as the serial path."""
    return aggregate_point(
        n=params["n"],
        c=params["c"] if kind == "capped" else None,
        lam=params["lam"],
        burn_in=params["burn_in"],
        measure=params["measure"],
        outcomes=outcomes,
    )


def placeholder_point(kind: str, params: dict[str, Any], replicates: int) -> PointResult:
    """A structurally valid, all-zero :class:`PointResult`.

    Returned by the recording context so experiment generators run to
    completion during plan discovery; everything derived from it is
    discarded before the replay pass.
    """
    zero_ci = ConfidenceInterval(0.0, 0.0, 0.0, 0.95)
    return PointResult(
        n=params["n"],
        c=params["c"] if kind == "capped" else None,
        lam=params["lam"],
        replicates=replicates,
        measure_rounds=params["measure"],
        burn_in=params["burn_in"],
        normalized_pool=0.0,
        pool_ci=zero_ci,
        avg_wait=0.0,
        wait_ci=zero_ci,
        max_wait=0,
        wait_p99=0,
        peak_pool=0,
        peak_max_load=0,
        stationary_fraction=1.0,
    )


def measure_capped(
    n: int,
    c: int | None,
    lam: float,
    measure: int,
    replicates: int = 1,
    seed: int = 0,
    warm_start: bool = True,
    burn_in: int | None = None,
    batch_replicates: bool = False,
    checkpoint_dir=None,
    checkpoint_every: int | None = None,
    shards: int = 1,
    scenario: dict[str, Any] | None = None,
) -> PointResult:
    """Measure CAPPED(c, λ) at one parameter point.

    ``warm_start=True`` (default) initialises the pool at the mean-field
    equilibrium and shortens the burn-in accordingly; pass ``False`` for a
    faithful cold start from the paper's empty system (much longer burn-in
    for λ close to 1). Infinite capacity (``c=None``) cannot be
    warm-started through the mean-field solver and always cold-starts.

    ``batch_replicates=True`` runs all replicates in one
    :class:`~repro.kernels.batched.BatchedCappedProcess` — one kernel
    invocation per round for the whole point, with outcomes bit-identical
    to the serial loop (per-replicate streams still derive from
    ``(seed, replicate)``).

    When a :mod:`repro.parallel` measurement context is active the call is
    delegated to it (recorded, or replayed from precomputed outcomes)
    instead of simulating inline; the context distributes whole replicates,
    so ``batch_replicates`` applies only to the inline path.

    With ``checkpoint_dir`` set the inline path snapshots/resumes each
    replicate (subdirectory ``rep-<r>``; the batched engine uses
    ``batched``) every ``checkpoint_every`` rounds. Checkpoint settings
    never alter results and are not part of the measurement parameters.

    ``shards > 1`` runs every replicate on the multicore sharded engine
    (see :func:`run_capped_replicate`); incompatible with
    ``batch_replicates``. Because the shard substreams realise a
    different sample than the unsharded stream, ``shards`` *is* a
    measurement parameter — it joins the params dict (and hence the
    parallel runner's task digests) whenever it differs from 1, while
    ``shards=1`` keeps historical digests unchanged.

    ``scenario`` — a chaos-scenario dict of fault/churn/autoscaling
    schedules (see :func:`repro.churn.scenario_from_dict`) — perturbs
    every replicate. It changes outcomes, so like ``shards`` it joins the
    measurement parameters when set; incompatible with ``shards > 1``
    (the shard partition cannot follow membership changes) and with
    ``batch_replicates`` (the batched path takes no observers).
    """
    effective_warm = warm_start and c is not None and lam > 0
    if burn_in is None:
        burn_in = default_burn_in(n, c if c is not None else 1, lam, warm_start=effective_warm)
    if shards > 1 and batch_replicates:
        raise ConfigurationError(
            "shards and batch_replicates both fuse work per round; pick one "
            "(shards parallelises one simulation, batch_replicates fuses many)"
        )
    if scenario:
        if shards > 1:
            raise ConfigurationError(
                "chaos scenarios are not supported on the sharded engine; "
                "membership changes would invalidate the shard partition"
            )
        if batch_replicates:
            raise ConfigurationError(
                "chaos scenarios need per-replicate observers; the batched "
                "path takes none — drop batch_replicates"
            )
    params = {
        "n": n,
        "c": c,
        "lam": lam,
        "measure": measure,
        "seed": seed,
        "warm_start": warm_start,
        "burn_in": burn_in,
    }
    if shards != 1:
        params["shards"] = shards
    if scenario:
        params["scenario"] = scenario
    context = active_context()
    if context is not None:
        return context.measure("capped", params, replicates)
    base = None if checkpoint_dir is None else Path(checkpoint_dir)
    if batch_replicates:
        outcomes = run_capped_replicates_batched(
            n=n,
            c=c,
            lam=lam,
            measure=measure,
            seed=seed,
            replicates=replicates,
            warm_start=warm_start,
            burn_in=burn_in,
            checkpoint_dir=None if base is None else base / "batched",
            checkpoint_every=checkpoint_every,
        )
    else:
        outcomes = [
            run_replicate(
                "capped",
                params,
                replicate,
                checkpoint_dir=None if base is None else base / f"rep-{replicate}",
                checkpoint_every=checkpoint_every,
            )
            for replicate in range(replicates)
        ]
    return aggregate_point(n, c, lam, burn_in, measure, outcomes)


def measure_greedy(
    n: int,
    d: int,
    lam: float,
    measure: int,
    replicates: int = 1,
    seed: int = 0,
    burn_in: int | None = None,
    checkpoint_dir=None,
    checkpoint_every: int | None = None,
) -> PointResult:
    """Measure batch GREEDY[d] (leaky bins) at one parameter point.

    GREEDY has no pool, so there is no warm start; its queues fill within
    the waiting-time scale, which for d = 1 is ``Θ(log n/(1−λ))`` — the
    default burn-in covers it via the relaxation term. Delegates to an
    active measurement context like :func:`measure_capped`.
    """
    if burn_in is None:
        burn_in = default_burn_in(n, 1, lam, warm_start=False)
    params = {
        "n": n,
        "d": d,
        "lam": lam,
        "measure": measure,
        "seed": seed,
        "burn_in": burn_in,
    }
    context = active_context()
    if context is not None:
        return context.measure("greedy", params, replicates)
    base = None if checkpoint_dir is None else Path(checkpoint_dir)
    outcomes = [
        run_replicate(
            "greedy",
            params,
            replicate,
            checkpoint_dir=None if base is None else base / f"rep-{replicate}",
            checkpoint_every=checkpoint_every,
        )
        for replicate in range(replicates)
    ]
    return aggregate_point(n, None, lam, burn_in, measure, outcomes)
