"""Comparison of two experiment runs (e.g. quick vs paper profile).

Reproduction work constantly asks "did the numbers move?" — across scale
profiles, seeds, or code revisions. :func:`compare_results` aligns two
:class:`~repro.analysis.experiments.ExperimentResult` objects row by row
(on their non-numeric key columns) and reports per-column relative
deltas, flagging rows whose deviation exceeds a tolerance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.experiments import ExperimentResult

__all__ = ["RowDelta", "ComparisonReport", "compare_results"]


@dataclass(frozen=True, slots=True)
class RowDelta:
    """Per-row comparison outcome.

    ``deltas`` maps column → relative difference ``(b − a)/max(|a|, ε)``.
    """

    key: tuple
    deltas: dict[str, float]
    worst_column: str
    worst_delta: float


@dataclass
class ComparisonReport:
    """Outcome of comparing two runs of the same experiment."""

    experiment_id: str
    profile_a: str
    profile_b: str
    rows: list[RowDelta] = field(default_factory=list)
    missing_in_b: list[tuple] = field(default_factory=list)
    missing_in_a: list[tuple] = field(default_factory=list)
    tolerance: float = 0.0

    @property
    def worst_delta(self) -> float:
        """Largest absolute relative delta across all rows (0 if empty)."""
        return max((abs(r.worst_delta) for r in self.rows), default=0.0)

    @property
    def within_tolerance(self) -> bool:
        """True when all aligned rows deviate by at most the tolerance."""
        return not self.missing_in_a and not self.missing_in_b and (
            self.worst_delta <= self.tolerance
        )

    def outliers(self) -> list[RowDelta]:
        """Rows whose worst delta exceeds the tolerance."""
        return [r for r in self.rows if abs(r.worst_delta) > self.tolerance]

    def __str__(self) -> str:
        status = "OK" if self.within_tolerance else f"{len(self.outliers())} outlier rows"
        return (
            f"{self.experiment_id}: {self.profile_a} vs {self.profile_b} — "
            f"worst delta {self.worst_delta:.1%} ({status})"
        )


def _key_columns(result: ExperimentResult) -> list[str]:
    if not result.rows:
        return []
    sample = result.rows[0]
    return [
        col
        for col in result.columns
        if isinstance(sample.get(col), (str, int)) and not isinstance(sample.get(col), float)
    ]


def compare_results(
    a: ExperimentResult,
    b: ExperimentResult,
    tolerance: float = 0.25,
    epsilon: float = 1e-9,
) -> ComparisonReport:
    """Align the rows of two results and report relative deltas.

    Rows are keyed on the shared non-float columns (the sweep parameters:
    c, lambda_exp, layout, ...); numeric value columns are compared as
    relative differences. Rows present in only one side are reported as
    missing rather than failing silently.
    """
    if a.experiment_id != b.experiment_id:
        raise ValueError(
            f"cannot compare different experiments: {a.experiment_id} vs {b.experiment_id}"
        )
    keys = [col for col in _key_columns(a) if col in _key_columns(b)]
    value_columns = [col for col in a.columns if col in b.columns and col not in keys]

    def key_of(row: dict) -> tuple:
        return tuple(row.get(col) for col in keys)

    b_index = {key_of(row): row for row in b.rows}
    report = ComparisonReport(
        experiment_id=a.experiment_id,
        profile_a=a.profile,
        profile_b=b.profile,
        tolerance=tolerance,
    )
    seen = set()
    for row in a.rows:
        key = key_of(row)
        other = b_index.get(key)
        if other is None:
            report.missing_in_b.append(key)
            continue
        seen.add(key)
        deltas: dict[str, float] = {}
        for column in value_columns:
            left, right = row.get(column), other.get(column)
            if isinstance(left, (int, float)) and isinstance(right, (int, float)):
                deltas[column] = (right - left) / max(abs(left), epsilon)
        if deltas:
            worst = max(deltas, key=lambda col: abs(deltas[col]))
            report.rows.append(
                RowDelta(key=key, deltas=deltas, worst_column=worst, worst_delta=deltas[worst])
            )
    report.missing_in_a = [key for key in b_index if key not in seen]
    return report
