"""Aligned ASCII tables and CSV export for experiment results."""

from __future__ import annotations

import io
from collections.abc import Mapping, Sequence

__all__ = ["format_table", "to_csv"]


def _render(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render rows of dicts as an aligned monospace table.

    Parameters
    ----------
    rows:
        Sequence of mappings; missing keys render as empty cells.
    columns:
        Column order; defaults to the keys of the first row.
    title:
        Optional heading line.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_render(row.get(col, "")) for col in columns] for row in rows]
    widths = [max(len(col), *(len(r[i]) for r in rendered)) for i, col in enumerate(columns)]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    header = "  ".join(col.ljust(widths[i]) for i, col in enumerate(columns))
    out.write(header + "\n")
    out.write("  ".join("-" * w for w in widths) + "\n")
    for r in rendered:
        out.write("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(r)) + "\n")
    return out.getvalue().rstrip("\n")


def to_csv(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
) -> str:
    """Render rows as CSV text (comma-separated, header line first)."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())

    def cell(value) -> str:
        text = _render(value)
        if "," in text or '"' in text:
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(cell(row.get(col, "")) for col in columns))
    return "\n".join(lines)
