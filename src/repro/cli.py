"""Command-line interface.

Usage examples::

    repro list
    repro simulate --n 4096 --c 2 --lam 0.75 --rounds 1000
    repro experiments --id fig4_left --profile default
    repro experiments --all --profile quick --csv-dir out/
    repro experiments --all --profile default --jobs 8 --cache-dir .repro-cache
    repro experiments --all --profile paper --jobs 8 --cache-dir .repro-cache --resume
    repro experiments --all --profile quick --jobs 4 --live-status --telemetry-dir out/tel
    repro broker --port 7070 --cache-dir .repro-cache --state-dir out/sweep
    repro worker 127.0.0.1:7070 --exit-when-idle
    repro experiments --all --profile quick --broker 127.0.0.1:7070 --cache-dir .repro-cache
    repro dashboard out/sweep --bench BENCH_sweep.json
    repro dashboard out/sweep --watch --interval 2
    repro telemetry report out/tel
    repro trace out/tel
    repro theory --c 2 --lam 0.96875 --n 4096
    repro meanfield --c 3 --lam 0.999

``repro`` is also runnable as ``python -m repro``.
"""

from __future__ import annotations

import argparse
import sys
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterator

from repro.analysis.experiments import EXPERIMENTS, PROFILES, run_experiment
from repro.analysis.plots import ascii_plot
from repro.analysis.sweep import measure_capped, measure_greedy
from repro.core import meanfield, theory

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'Infinite Balanced Allocation via Finite Capacities' "
            "(ICDCS 2021)."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list experiments and profiles")

    sim = sub.add_parser("simulate", help="measure one parameter point")
    sim.add_argument("--n", type=int, default=4096, help="number of bins")
    sim.add_argument("--c", type=int, default=None, help="capacity (omit for infinite)")
    sim.add_argument("--lam", type=float, required=True, help="injection rate")
    sim.add_argument("--rounds", type=int, default=600, help="measured rounds")
    sim.add_argument("--burn-in", type=int, default=None, help="override burn-in")
    sim.add_argument("--replicates", type=int, default=1)
    sim.add_argument("--seed", type=int, default=0)
    sim.add_argument("--cold-start", action="store_true", help="start from an empty system")
    sim.add_argument(
        "--batch-replicates",
        action="store_true",
        help="run all replicates in one batched kernel (capped only; "
        "bit-identical outcomes, one kernel pass per round)",
    )
    sim.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition each simulation's bins across this many worker "
        "processes (capped with finite --c only; one simulation uses "
        "the whole machine)",
    )
    sim.add_argument(
        "--process",
        choices=("capped", "greedy"),
        default="capped",
        help="process to simulate",
    )
    sim.add_argument("--d", type=int, default=1, help="choices per ball (greedy only)")
    sim.add_argument(
        "--scenario",
        type=str,
        default=None,
        help="chaos scenario: a JSON file path or inline JSON with "
        "'faults', 'churn', and/or 'autoscaling' schedules "
        "(capped only; incompatible with --shards/--batch-replicates)",
    )
    sim.add_argument(
        "--telemetry-dir",
        type=Path,
        default=None,
        help="capture telemetry here (events.jsonl, metrics.prom, manifest.json)",
    )
    sim.add_argument(
        "--cprofile",
        action="store_true",
        help="run under cProfile and print the top hotspots (folded into the "
        "telemetry manifest when --telemetry-dir is set); named --cprofile "
        "because --profile is the experiments profile selector",
    )
    sim.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help="snapshot/resume directory; an interrupted run restarted with "
        "the same arguments resumes from the newest valid snapshot and "
        "produces bit-identical output",
    )
    sim.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help="snapshot cadence in rounds (needs --checkpoint-dir)",
    )

    exp = sub.add_parser("experiments", help="regenerate paper artifacts")
    group = exp.add_mutually_exclusive_group(required=True)
    group.add_argument("--id", choices=sorted(EXPERIMENTS), help="one experiment")
    group.add_argument("--all", action="store_true", help="every experiment")
    exp.add_argument("--profile", choices=sorted(PROFILES), default="default")
    exp.add_argument("--csv-dir", type=Path, default=None, help="also write CSV files here")
    exp.add_argument("--json-dir", type=Path, default=None, help="also write JSON files here")
    exp.add_argument(
        "--markdown", type=Path, default=None, help="write a combined markdown report here"
    )
    exp.add_argument("--plot", action="store_true", help="append an ASCII plot")
    exp.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (results are bit-identical to --jobs 1)",
    )
    exp.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="content-addressed result cache; also hosts the resume journal",
    )
    exp.add_argument(
        "--resume",
        action="store_true",
        help="skip cells already journaled in --cache-dir from an interrupted run",
    )
    exp.add_argument("--timing", action="store_true", help="print per-task timing statistics")
    exp.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress the per-task progress/ETA lines on stderr",
    )
    exp.add_argument(
        "--live-status",
        action="store_true",
        help="richer progress line: per-worker throughput, retry/quarantine "
        "counts, and running pool-size-vs-theory error",
    )
    exp.add_argument(
        "--telemetry-dir",
        type=Path,
        default=None,
        help="capture telemetry here (events.jsonl, metrics.prom, manifest.json; "
        "plus trace.jsonl when the runner records task spans)",
    )
    exp.add_argument(
        "--cprofile",
        action="store_true",
        help="profile each computed task under cProfile; merged hotspots are "
        "printed and folded into the telemetry manifest",
    )
    exp.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        help="seconds per task before its worker is killed and the task retried "
        "(parallel runs only)",
    )
    exp.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="retries per failing task before it is quarantined",
    )
    exp.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help="per-task snapshot directories (default: <cache-dir>/checkpoints)",
    )
    exp.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help="snapshot each task's simulation every N rounds so retried or "
        "resumed tasks restart from their latest snapshot",
    )
    exp.add_argument(
        "--broker",
        default=None,
        metavar="HOST:PORT",
        help="run the measure phase on a broker's worker fleet instead of "
        "local processes (results stay bit-identical; see `repro broker`)",
    )
    exp.add_argument(
        "--auth-token",
        default=None,
        help="shared secret for a broker running with --auth-token",
    )
    exp.add_argument(
        "--tls-ca",
        type=Path,
        default=None,
        help="PEM certificate that signed the broker's --tls-cert "
        "(enables TLS on the broker connection)",
    )
    halt = exp.add_mutually_exclusive_group()
    halt.add_argument(
        "--keep-going",
        action="store_true",
        help="report failing experiments and continue (the default)",
    )
    halt.add_argument(
        "--fail-fast",
        action="store_true",
        help="stop at the first experiment that errors",
    )

    thy = sub.add_parser("theory", help="print the paper's bounds for (c, lam, n)")
    thy.add_argument("--c", type=int, required=True)
    thy.add_argument("--lam", type=float, required=True)
    thy.add_argument("--n", type=int, required=True)

    mf = sub.add_parser("meanfield", help="mean-field equilibrium for (c, lam)")
    mf.add_argument("--c", type=int, required=True)
    mf.add_argument("--lam", type=float, required=True)

    fl = sub.add_parser("fluid", help="fluid-limit cold-start trajectory for (c, lam)")
    fl.add_argument("--c", type=int, required=True)
    fl.add_argument("--lam", type=float, required=True)
    fl.add_argument("--rounds", type=int, default=0, help="rounds to print (0 = auto)")
    fl.add_argument("--initial-pool", type=float, default=0.0, help="normalised starting pool")

    cmp_parser = sub.add_parser("compare", help="diff two saved experiment JSON files")
    cmp_parser.add_argument("json_a", type=Path)
    cmp_parser.add_argument("json_b", type=Path)
    cmp_parser.add_argument("--tolerance", type=float, default=0.25)

    tr = sub.add_parser(
        "trace",
        help="record a run to JSONL, summarise a trace, or render task "
        "timelines from a telemetry run directory (`repro trace <run-dir>`)",
    )
    tr_sub = tr.add_subparsers(dest="trace_command", required=True)
    tr_timeline = tr_sub.add_parser(
        "timeline",
        help="per-task span timelines + critical path from a run dir's "
        "trace.jsonl (implied when the first argument is a path: "
        "`repro trace out/tel`)",
    )
    tr_timeline.add_argument(
        "run_dir",
        type=Path,
        help="a --telemetry-dir run directory (or a trace/events .jsonl file)",
    )
    tr_timeline.add_argument(
        "--limit", type=int, default=10, help="timelines shown for the N slowest tasks"
    )
    tr_record = tr_sub.add_parser("record", help="simulate and stream rounds to JSONL")
    tr_record.add_argument("path", type=Path)
    tr_record.add_argument("--n", type=int, default=1024)
    tr_record.add_argument("--c", type=int, default=None)
    tr_record.add_argument("--lam", type=float, required=True)
    tr_record.add_argument("--rounds", type=int, default=500)
    tr_record.add_argument("--burn-in", type=int, default=0)
    tr_record.add_argument("--seed", type=int, default=0)
    tr_summary = tr_sub.add_parser("summarize", help="recompute statistics from a trace")
    tr_summary.add_argument("path", type=Path)
    tr_summary.add_argument("--n", type=int, required=True, help="bins the trace was recorded with")

    tele = sub.add_parser("telemetry", help="inspect telemetry captured via --telemetry-dir")
    tele_sub = tele.add_subparsers(dest="telemetry_command", required=True)
    tele_report = tele_sub.add_parser(
        "report", help="phase-attribution table from a run directory's manifest"
    )
    tele_report.add_argument("run_dir", type=Path)

    ckpt = sub.add_parser("checkpoint", help="inspect on-disk checkpoints")
    ckpt_sub = ckpt.add_subparsers(dest="checkpoint_command", required=True)
    ckpt_inspect = ckpt_sub.add_parser(
        "inspect", help="verify a snapshot's digest and print its metadata"
    )
    ckpt_inspect.add_argument("path", type=Path)

    brk = sub.add_parser("broker", help="run the distributed sweep broker")
    brk.add_argument("--host", default="127.0.0.1", help="bind address")
    brk.add_argument("--port", type=int, default=0, help="bind port (0 = ephemeral)")
    brk.add_argument(
        "--port-file",
        type=Path,
        default=None,
        help="write the bound port here once listening (for scripts)",
    )
    brk.add_argument(
        "--cache-dir",
        type=Path,
        default=None,
        help="shared content-addressed result cache (same format as the runner's)",
    )
    brk.add_argument(
        "--state-dir",
        type=Path,
        default=None,
        help="durable results store: state.json + events.jsonl (+ manifest)",
    )
    brk.add_argument(
        "--checkpoint-dir",
        type=Path,
        default=None,
        help="attach per-task snapshot dirs to leases so re-leased tasks resume",
    )
    brk.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        help="snapshot cadence in rounds for leased tasks (needs --checkpoint-dir)",
    )
    brk.add_argument(
        "--lease-timeout",
        type=float,
        default=15.0,
        help="seconds without a heartbeat before a lease is taken back",
    )
    brk.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="error-frame retries per task before it fails terminally",
    )
    brk.add_argument(
        "--max-releases",
        type=int,
        default=20,
        help="lease losses per task before it is poisoned (fails terminally)",
    )
    brk.add_argument(
        "--auth-token",
        default=None,
        help="require every peer to answer an HMAC challenge with this "
        "shared secret (wrong/missing token: connection refused)",
    )
    brk.add_argument(
        "--tls-cert",
        type=Path,
        default=None,
        help="serve TLS with this PEM certificate (requires --tls-key; "
        "peers connect with --tls-ca pointing at the signing cert)",
    )
    brk.add_argument(
        "--tls-key",
        type=Path,
        default=None,
        help="private key for --tls-cert",
    )
    brk.add_argument(
        "--compact-events-bytes",
        type=int,
        default=None,
        help="rotate events.jsonl into an archive segment once it exceeds "
        "this size, keeping restart recovery O(state)",
    )

    wrk = sub.add_parser("worker", help="run one preemptible sweep worker")
    wrk.add_argument("broker", metavar="HOST:PORT", help="broker address")
    wrk.add_argument("--id", default=None, help="worker id (default: <hostname>-<pid>)")
    wrk.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="concurrent task slots this worker drives (one lease each)",
    )
    wrk.add_argument(
        "--auth-token",
        default=None,
        help="shared secret for a broker running with --auth-token",
    )
    wrk.add_argument(
        "--tls-ca",
        type=Path,
        default=None,
        help="PEM certificate that signed the broker's --tls-cert",
    )
    wrk.add_argument(
        "--max-reconnects",
        type=int,
        default=5,
        help="consecutive failed connection attempts (jittered exponential "
        "backoff between them) before the worker gives up",
    )
    wrk.add_argument(
        "--exit-when-idle",
        action="store_true",
        help="exit once the broker's queue has drained (after doing work)",
    )
    wrk.add_argument(
        "--quiet", action="store_true", help="suppress per-task log lines on stderr"
    )
    wrk.add_argument(
        "--telemetry",
        action="store_true",
        help="piggyback compressed metrics snapshots on heartbeats for the "
        "broker's fleet registry (fleet.prom)",
    )

    dash = sub.add_parser("dashboard", help="sweep progress + perf trajectory")
    dash.add_argument(
        "state_dir",
        type=Path,
        nargs="?",
        default=None,
        help="a broker --state-dir (live or finished)",
    )
    dash.add_argument(
        "--bench",
        type=Path,
        action="append",
        default=None,
        metavar="BENCH_JSON",
        help="BENCH_*.json artifact(s) for the perf panel (repeatable, or a glob "
        "expanded by the shell)",
    )
    dash.add_argument(
        "--watch",
        action="store_true",
        help="auto-refresh in place until interrupted (adds per-worker fleet "
        "panels and, with --bench, a committed-BENCH history sparkline)",
    )
    dash.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="refresh cadence in seconds for --watch",
    )
    dash.add_argument(
        "--iterations",
        type=int,
        default=0,
        help="stop --watch after N refreshes (0 = until interrupted)",
    )

    return parser


def _args_config(args: argparse.Namespace) -> dict[str, Any]:
    """JSON-safe manifest config from parsed CLI args (paths become strings)."""
    config: dict[str, Any] = {}
    for key, value in sorted(vars(args).items()):
        if key == "telemetry_dir":
            continue
        if key == "auth_token" and value is not None:
            # The shared secret must never land in a manifest on disk;
            # record only that authentication was in use.
            config[key] = "<redacted>"
            continue
        config[key] = str(value) if isinstance(value, Path) else value
    return config


@contextmanager
def _telemetry_capture(
    directory: Path,
    config: dict[str, Any],
    seeds: list[int],
    extras: dict[str, Any] | None = None,
) -> Iterator[None]:
    """Run the body under a telemetry session, then export the run artifacts.

    Writes ``events.jsonl`` (streamed during the run), ``metrics.prom``, and
    ``manifest.json`` into ``directory`` — plus ``trace.jsonl`` when the
    body records task spans (the tracer only creates the file on first
    write, so untraced runs leave nothing behind). ``extras`` (e.g. a
    cProfile ``profile`` section filled in by the body) is merged into the
    manifest top level. If the body raises, the partial events/trace files
    survive for debugging but no snapshot/manifest is written.
    """
    from repro import telemetry

    directory.mkdir(parents=True, exist_ok=True)
    sink = telemetry.JsonlEventSink(directory / "events.jsonl")
    tracer = telemetry.Tracer(directory / telemetry.TRACE_FILENAME)
    with telemetry.session(sinks=[sink], tracer=tracer) as tel:
        yield
        snapshot = tel.registry.snapshot()
    telemetry.write_prometheus(snapshot, directory / "metrics.prom")
    manifest = telemetry.build_manifest(config, seeds, metrics=snapshot)
    if extras:
        manifest.update(extras)
    telemetry.write_manifest(manifest, directory)


def _cmd_list(out) -> int:
    out.write("experiments:\n")
    for name, fn in sorted(EXPERIMENTS.items()):
        doc = (fn.__doc__ or "").strip().splitlines()[0]
        out.write(f"  {name:22s} {doc}\n")
    out.write("profiles:\n")
    for name, profile in sorted(PROFILES.items()):
        out.write(
            f"  {name:22s} n={profile.n} measure={profile.measure} "
            f"replicates={profile.replicates}\n"
        )
    return 0


def _cmd_simulate(args, out) -> int:
    if args.process == "greedy" and args.batch_replicates:
        out.write("error: --batch-replicates only applies to --process capped\n")
        return 2
    if args.shards < 1:
        out.write("error: --shards must be at least 1\n")
        return 2
    if args.shards > 1:
        if args.process != "capped" or args.c is None:
            out.write("error: --shards needs --process capped with a finite --c\n")
            return 2
        if args.batch_replicates:
            out.write("error: --shards and --batch-replicates are mutually exclusive\n")
            return 2
    if args.checkpoint_every is not None and args.checkpoint_dir is None:
        out.write("error: --checkpoint-every needs --checkpoint-dir\n")
        return 2
    if args.scenario is not None:
        if args.process != "capped":
            out.write("error: --scenario only applies to --process capped\n")
            return 2
        if args.shards > 1:
            out.write("error: --scenario and --shards are mutually exclusive\n")
            return 2
        if args.batch_replicates:
            out.write("error: --scenario and --batch-replicates are mutually exclusive\n")
            return 2
        try:
            # Parse and validate eagerly so a typo'd scenario is a clean
            # configuration error, not a traceback mid-run.
            from repro.churn import scenario_from_dict
            from repro.errors import ConfigurationError

            scenario_from_dict(_load_scenario(args.scenario))
        except (OSError, ValueError, ConfigurationError) as err:
            out.write(f"error: {err}\n")
            return 2
    if args.telemetry_dir is None:
        return _run_simulate(args, out)
    extras: dict[str, Any] = {}
    with _telemetry_capture(args.telemetry_dir, _args_config(args), [args.seed], extras):
        status = _run_simulate(args, out, extras)
    out.write(f"telemetry written to {args.telemetry_dir}\n")
    return status


def _load_scenario(spec: str) -> dict[str, Any]:
    """Parse a ``--scenario`` value: inline JSON or a path to a JSON file."""
    import json

    text = spec if spec.lstrip().startswith("{") else Path(spec).read_text(encoding="utf-8")
    payload = json.loads(text)
    if not isinstance(payload, dict):
        from repro.errors import ConfigurationError

        raise ConfigurationError(f"scenario must be a JSON object, got {type(payload).__name__}")
    return payload


def _run_simulate(args, out, extras: dict[str, Any] | None = None) -> int:
    if args.cprofile:
        from repro.telemetry.profiling import profile_call, profile_section

        status, hotspots = profile_call(_measure_simulate, args, out)
        if extras is not None:
            extras["profile"] = profile_section(hotspots, tasks_profiled=1)
        out.write("cProfile hotspots (by cumulative time):\n")
        for entry in hotspots[:5]:
            out.write(
                f"  {entry['function']}  cum {entry['cumtime']:.3f}s "
                f"tot {entry['tottime']:.3f}s calls {entry['ncalls']}\n"
            )
        return status
    return _measure_simulate(args, out)


def _measure_simulate(args, out) -> int:
    if args.process == "greedy":
        point = measure_greedy(
            n=args.n,
            d=args.d,
            lam=args.lam,
            measure=args.rounds,
            replicates=args.replicates,
            seed=args.seed,
            burn_in=args.burn_in,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
        )
    else:
        point = measure_capped(
            n=args.n,
            c=args.c,
            lam=args.lam,
            measure=args.rounds,
            replicates=args.replicates,
            seed=args.seed,
            warm_start=not args.cold_start,
            burn_in=args.burn_in,
            batch_replicates=args.batch_replicates,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_every=args.checkpoint_every,
            shards=args.shards,
            scenario=None if args.scenario is None else _load_scenario(args.scenario),
        )
    for key, value in point.row().items():
        out.write(f"{key:12s} {value}\n")
    out.write(f"{'pool_ci':12s} {point.pool_ci}\n")
    out.write(f"{'wait_ci':12s} {point.wait_ci}\n")
    return 0


def _plot_result(result, out) -> None:
    # Build one series per leading key value, (last numeric x, first numeric y).
    numeric_cols = [
        col
        for col in result.columns
        if result.rows and isinstance(result.rows[0].get(col), (int, float))
    ]
    if len(numeric_cols) < 2:
        return
    x_col, y_col = numeric_cols[0], numeric_cols[1]
    series: dict[str, list[tuple[float, float]]] = {}
    group_col = next((c for c in result.columns if c not in (x_col, y_col)), None)
    for row in result.rows:
        label = f"{group_col}={row[group_col]}" if group_col else "data"
        series.setdefault(label, []).append((float(row[x_col]), float(row[y_col])))
    out.write(ascii_plot(series, title=result.title, x_label=x_col, y_label=y_col))
    out.write("\n")


def _cmd_experiments(args, out) -> int:
    if args.jobs < 1:
        out.write(f"error: --jobs must be >= 1, got {args.jobs}\n")
        return 2
    if args.resume and args.cache_dir is None:
        out.write("error: --resume needs --cache-dir (the journal lives there)\n")
        return 2
    if args.task_timeout is not None and args.task_timeout <= 0:
        out.write(f"error: --task-timeout must be positive, got {args.task_timeout}\n")
        return 2
    if args.max_retries < 0:
        out.write(f"error: --max-retries must be >= 0, got {args.max_retries}\n")
        return 2
    if args.live_status and args.no_progress:
        out.write("error: --live-status needs the progress line; drop --no-progress\n")
        return 2
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        out.write(f"error: --checkpoint-every must be >= 1, got {args.checkpoint_every}\n")
        return 2
    if (
        args.checkpoint_every is not None
        and args.checkpoint_dir is None
        and args.cache_dir is None
    ):
        out.write("error: --checkpoint-every needs --checkpoint-dir or --cache-dir\n")
        return 2
    if args.broker is not None and args.checkpoint_every is not None:
        out.write(
            "error: --checkpoint-every is a broker-side knob in --broker mode "
            "(pass it to `repro broker`)\n"
        )
        return 2
    if args.broker is None and (args.auth_token is not None or args.tls_ca is not None):
        out.write("error: --auth-token/--tls-ca only apply with --broker\n")
        return 2
    if args.broker is not None:
        from repro.distributed import resolve_address
        from repro.errors import DistributedError

        try:
            resolve_address(args.broker)
        except DistributedError as err:
            out.write(f"error: {err}\n")
            return 2
    if args.telemetry_dir is None:
        return _run_experiments_cmd(args, out)
    seeds = [PROFILES[args.profile].seed]
    extras: dict[str, Any] = {}
    with _telemetry_capture(args.telemetry_dir, _args_config(args), seeds, extras):
        status = _run_experiments_cmd(args, out, extras)
    out.write(f"telemetry written to {args.telemetry_dir}\n")
    return status


def _run_experiments_cmd(args, out, extras: dict[str, Any] | None = None) -> int:
    from repro.analysis.export import save_result
    from repro.analysis.report import write_report

    ids = sorted(EXPERIMENTS) if args.all else [args.id]
    # --live-status rides on the parallel runner's progress reporter, so it
    # engages the runner even for a plain serial run (--cprofile likewise:
    # per-task profiling happens inside the runner's task wrapper).
    use_runner = (
        args.jobs != 1
        or args.resume
        or args.cache_dir is not None
        or args.live_status
        or args.checkpoint_every is not None
        or args.broker is not None
        or args.cprofile
    )
    report = None
    errors: dict[str, str] = {}
    if use_runner:
        from repro.errors import DistributedError
        from repro.parallel import run_experiments

        try:
            report = run_experiments(
                ids,
                profile=args.profile,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                resume=args.resume,
                progress_stream=None if args.no_progress else sys.stderr,
                task_timeout=args.task_timeout,
                max_retries=args.max_retries,
                live_status=args.live_status,
                checkpoint_every=args.checkpoint_every,
                checkpoint_dir=args.checkpoint_dir,
                broker=args.broker,
                broker_auth_token=args.auth_token,
                broker_tls_ca=args.tls_ca,
                cprofile=args.cprofile,
            )
        except DistributedError as err:
            # Unreachable broker, auth rejection, or a fleet lost for good:
            # an operator-actionable configuration error, not a crash.
            out.write(f"error: {err}\n")
            return 2
        if extras is not None and report.hotspots:
            from repro.telemetry.profiling import profile_section

            extras["profile"] = profile_section(
                report.hotspots, tasks_profiled=report.tasks_profiled
            )
        produced = {result.experiment_id: result for result in report.results}
        errors.update(report.failures)
    failed_checks: list[str] = []
    results = []
    for experiment_id in ids:
        if use_runner:
            result = produced.get(experiment_id)
            if result is None:
                message = errors.get(experiment_id, "no result produced")
                errors[experiment_id] = message
                out.write(f"ERROR {experiment_id}: {message}\n\n")
                if args.fail_fast:
                    break
                continue
        else:
            try:
                result = run_experiment(experiment_id, args.profile)
            except Exception as err:
                errors[experiment_id] = f"{type(err).__name__}: {err}"
                out.write(f"ERROR {experiment_id}: {errors[experiment_id]}\n\n")
                if args.fail_fast:
                    break
                continue
        results.append(result)
        out.write(result.table() + "\n\n")
        if args.plot:
            _plot_result(result, out)
        if args.csv_dir is not None:
            args.csv_dir.mkdir(parents=True, exist_ok=True)
            path = args.csv_dir / f"{experiment_id}.csv"
            path.write_text(result.csv() + "\n", encoding="utf-8")
            out.write(f"wrote {path}\n")
        if args.json_dir is not None:
            out.write(f"wrote {save_result(result, args.json_dir)}\n")
        if not result.all_checks_pass:
            failed_checks.append(experiment_id)
    if args.markdown is not None:
        path = write_report(results, args.markdown, title=f"Reproduction report ({args.profile})")
        out.write(f"wrote {path}\n")
    if report is not None:
        for line in report.summary_lines():
            out.write(line + "\n")
        if args.timing:
            for line in report.timings.summary_lines():
                out.write(line + "\n")
    if failed_checks:
        out.write(f"checks failed: {', '.join(failed_checks)}\n")
    if errors:
        out.write(f"errors: {len(errors)} experiment(s) failed: {', '.join(sorted(errors))}\n")
        return 3
    return 1 if failed_checks else 0


def _cmd_theory(args, out) -> int:
    c, lam, n = args.c, args.lam, args.n
    out.write(f"ln(1/(1-lambda))      {theory.log_inverse_gap(lam):.4f}\n")
    out.write(f"m* (coupling)         {theory.m_star(c, lam, n):.1f}\n")
    if c == 1:
        out.write(f"Thm1 pool bound       {theory.thm1_pool_bound(lam, n):.1f}\n")
        out.write(f"Thm1 wait bound       {theory.thm1_wait_bound(lam, n):.2f}\n")
    out.write(f"Thm2 pool bound       {theory.thm2_pool_bound(c, lam, n):.1f}\n")
    out.write(f"Thm2 wait bound       {theory.thm2_wait_bound(c, lam, n):.2f}\n")
    out.write(f"Fig4 reference        {theory.empirical_pool_curve(c, lam):.3f}\n")
    out.write(f"Fig5 reference        {theory.empirical_wait_curve(c, lam, n):.3f}\n")
    out.write(f"sweet spot c*         {theory.sweet_spot_c(lam)}\n")
    return 0


def _cmd_meanfield(args, out) -> int:
    eq = meanfield.equilibrium(args.c, args.lam)
    out.write(f"throw intensity nu/n  {eq.throw_intensity:.4f}\n")
    out.write(f"normalized pool       {eq.normalized_pool:.4f}\n")
    out.write(f"mean bin load         {eq.mean_load:.4f}\n")
    out.write(f"mean waiting time     {eq.mean_wait:.4f}\n")
    dist = ", ".join(f"{p:.4f}" for p in eq.load_distribution)
    out.write(f"load distribution     [{dist}]\n")
    return 0


def _cmd_fluid(args, out) -> int:
    from repro.core import fluid as fluid_module

    rounds = args.rounds or max(20, 2 * fluid_module.relaxation_rounds(args.c, args.lam))
    trajectory = fluid_module.integrate(
        args.c, args.lam, rounds=rounds, initial_pool=args.initial_pool
    )
    out.write("round  pool/n   mean_load\n")
    step = max(1, rounds // 25)
    for t_index in range(0, rounds + 1, step):
        out.write(
            f"{t_index:5d}  {trajectory.pool[t_index]:.4f}   {trajectory.mean_load[t_index]:.4f}\n"
        )
    if args.initial_pool == 0.0 and args.lam > 0:
        out.write(
            f"relaxation to 95% of equilibrium: "
            f"{fluid_module.relaxation_rounds(args.c, args.lam)} rounds\n"
        )
    return 0


def _cmd_compare(args, out) -> int:
    from repro.analysis.compare import compare_results
    from repro.analysis.export import load_result

    report = compare_results(
        load_result(args.json_a), load_result(args.json_b), tolerance=args.tolerance
    )
    out.write(str(report) + "\n")
    for delta in report.outliers():
        out.write(f"  outlier {delta.key}: {delta.worst_column} {delta.worst_delta:+.1%}\n")
    for key in report.missing_in_b:
        out.write(f"  missing in B: {key}\n")
    for key in report.missing_in_a:
        out.write(f"  missing in A: {key}\n")
    return 0 if report.within_tolerance else 1


def _cmd_trace(args, out) -> int:
    from repro.core.capped import CappedProcess
    from repro.engine.driver import SimulationDriver
    from repro.engine.metrics import MetricsCollector
    from repro.engine.trace import TraceWriter, read_trace

    if args.trace_command == "timeline":
        return _cmd_trace_timeline(args, out)
    if args.trace_command == "record":
        process = CappedProcess(n=args.n, capacity=args.c, lam=args.lam, rng=args.seed)
        with TraceWriter(args.path) as writer:
            SimulationDriver(
                burn_in=args.burn_in, measure=args.rounds, observers=[writer]
            ).run(process)
        out.write(f"wrote {writer.records_written} rounds to {args.path}\n")
        return 0
    collector = MetricsCollector(n=args.n)
    for record in read_trace(args.path):
        collector.observe(record)
    summary = collector.summary()
    out.write(f"rounds       {summary.rounds}\n")
    out.write(f"pool/n       {summary.normalized_pool:.4f}\n")
    out.write(f"avg_wait     {summary.avg_wait:.4f}\n")
    out.write(f"max_wait     {summary.max_wait}\n")
    out.write(f"p99_wait     {summary.wait_p99}\n")
    out.write(f"peak_load    {summary.peak_max_load}\n")
    return 0


def _cmd_trace_timeline(args, out) -> int:
    """Render per-task span timelines from a telemetry run directory."""
    from repro.errors import ConfigurationError
    from repro.telemetry.tracing import (
        TRACE_FILENAME,
        assemble_traces,
        read_spans,
        render_trace_report,
    )

    path = args.run_dir
    if path.is_dir():
        path = path / TRACE_FILENAME
    try:
        spans = read_spans(path)
    except ConfigurationError as err:
        out.write(f"error: {err}\n")
        return 2
    except OSError as err:
        out.write(f"error: cannot read trace at {path}: {err}\n")
        return 2
    traces = assemble_traces(spans)
    out.write(render_trace_report(traces, limit=args.limit))
    return 0


def _cmd_checkpoint(args, out) -> int:
    from repro.checkpoint import CHECKPOINT_FORMAT, checkpoint_fingerprint, read_checkpoint_header
    from repro.errors import CheckpointCorrupt

    try:
        document = read_checkpoint_header(args.path)
    except CheckpointCorrupt as err:
        out.write(f"CORRUPT: {err}\n")
        return 2
    meta = document.get("meta") or {}
    fingerprint = document["fingerprint"]
    compatible = (
        document["format"] == CHECKPOINT_FORMAT
        and fingerprint == checkpoint_fingerprint()
    )
    out.write(f"path         {args.path}\n")
    out.write(f"format       {document['format']}\n")
    out.write(f"digest       ok (sha256 {document['sha256'][:16]})\n")
    out.write(
        f"fingerprint  {fingerprint[:16]} ({'matches' if compatible else 'DIFFERENT code'})\n"
    )
    for key in sorted(meta):
        out.write(f"{key:12s} {meta[key]}\n")
    payload = document["payload"]
    if isinstance(payload, dict):
        out.write(f"payload      keys: {', '.join(sorted(payload))}\n")
    return 0


def _cmd_telemetry(args, out) -> int:
    from repro.errors import ConfigurationError
    from repro.telemetry import report_run_dir

    try:
        lines = report_run_dir(args.run_dir)
    except ConfigurationError as err:
        out.write(f"error: {err}\n")
        return 2
    for line in lines:
        out.write(line + "\n")
    return 0


def _cmd_broker(args, out) -> int:
    from repro.distributed import BrokerConfig, run_broker
    from repro.errors import ConfigurationError

    if args.checkpoint_every is not None and args.checkpoint_dir is None:
        out.write("error: --checkpoint-every needs --checkpoint-dir\n")
        return 2
    if args.lease_timeout <= 0:
        out.write(f"error: --lease-timeout must be positive, got {args.lease_timeout}\n")
        return 2
    if (args.tls_cert is None) != (args.tls_key is None):
        out.write("error: --tls-cert and --tls-key must be given together\n")
        return 2
    if args.compact_events_bytes is not None and args.compact_events_bytes <= 0:
        out.write(
            f"error: --compact-events-bytes must be positive, got {args.compact_events_bytes}\n"
        )
        return 2
    config = BrokerConfig(
        host=args.host,
        port=args.port,
        cache_dir=args.cache_dir,
        state_dir=args.state_dir,
        checkpoint_dir=args.checkpoint_dir,
        checkpoint_every=args.checkpoint_every,
        lease_timeout=args.lease_timeout,
        max_retries=args.max_retries,
        max_releases=args.max_releases,
        auth_token=args.auth_token,
        tls_cert=args.tls_cert,
        tls_key=args.tls_key,
        compact_events_bytes=args.compact_events_bytes,
        port_file=args.port_file,
    )

    def announce(port: int) -> None:
        out.write(f"broker listening on {args.host}:{port}\n")
        try:
            out.flush()
        except (AttributeError, OSError):  # pragma: no cover - exotic streams
            pass

    try:
        run_broker(config, announce=announce)
    except ConfigurationError as err:
        out.write(f"error: {err}\n")
        return 2
    return 0


def _cmd_worker(args, out) -> int:
    from repro.distributed import Worker
    from repro.errors import DistributedError

    if args.jobs < 1:
        out.write(f"error: --jobs must be >= 1, got {args.jobs}\n")
        return 2
    try:
        worker = Worker(
            args.broker,
            worker_id=args.id,
            jobs=args.jobs,
            exit_when_idle=args.exit_when_idle,
            max_reconnects=args.max_reconnects,
            auth_token=args.auth_token,
            tls_ca=args.tls_ca,
            log=None if args.quiet else sys.stderr,
            telemetry=args.telemetry,
        )
        worker.install_signal_handlers()
        return worker.run()
    except DistributedError as err:
        # Covers both construction (bad address) and a broker that
        # rejected the session outright (auth/protocol mismatch).
        out.write(f"error: {err}\n")
        return 2


def _cmd_dashboard(args, out) -> int:
    import time

    from repro.distributed import render_dashboard
    from repro.errors import ConfigurationError

    def render_once() -> tuple[int, list[str]]:
        try:
            return 0, render_dashboard(
                args.state_dir, args.bench or [], history=args.watch
            )
        except ConfigurationError as err:
            return 2, [f"error: {err}"]

    if not args.watch:
        status, lines = render_once()
        for line in lines:
            out.write(line + "\n")
        return status

    # --watch: re-render on an interval. On a TTY each frame repaints the
    # screen in place; elsewhere frames are separated by a stamp line so
    # logs stay greppable. A vanished/incomplete state dir renders as the
    # error line and keeps watching — brokers often start after the
    # dashboard does.
    from repro.parallel.progress import stream_is_tty

    is_tty = stream_is_tty(out)
    iteration = 0
    status = 0
    try:
        while True:
            iteration += 1
            status, lines = render_once()
            stamp = time.strftime("%H:%M:%S")
            if is_tty:
                out.write("\x1b[2J\x1b[H")
            out.write(f"--- repro dashboard  {stamp}  (refresh {iteration}) ---\n")
            for line in lines:
                out.write(line + "\n")
            try:
                out.flush()
            except (AttributeError, OSError):  # pragma: no cover - exotic streams
                pass
            if args.iterations and iteration >= args.iterations:
                return status
            time.sleep(max(0.1, args.interval))
    except KeyboardInterrupt:
        return status


def _normalize_argv(argv: list[str]) -> list[str]:
    """Shorthand expansion: ``repro trace <run-dir>`` → ``trace timeline``.

    ``trace`` predates span tracing with required ``record``/``summarize``
    subcommands; a first argument that is none of the subcommand names
    (and not a help flag) is a run-dir/trace-file path, so the ``timeline``
    subcommand is implied.
    """
    if len(argv) >= 2 and argv[0] == "trace":
        if argv[1] not in ("record", "summarize", "timeline", "-h", "--help"):
            return ["trace", "timeline", *argv[1:]]
    return argv


def main(argv: list[str] | None = None, out=None) -> int:
    """CLI entry point; returns the process exit code.

    A run stopped by SIGINT/SIGTERM (see
    :class:`~repro.errors.GracefulShutdown`) exits with the distinct
    :data:`~repro.errors.SHUTDOWN_EXIT_CODE` after flushing its journal and
    checkpoints, so wrappers can tell "interrupted but resumable" from
    failure.
    """
    from repro.errors import SHUTDOWN_EXIT_CODE, GracefulShutdown

    out = out if out is not None else sys.stdout
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    args = build_parser().parse_args(_normalize_argv(argv))
    try:
        if args.command == "list":
            return _cmd_list(out)
        if args.command == "simulate":
            return _cmd_simulate(args, out)
        if args.command == "experiments":
            return _cmd_experiments(args, out)
        if args.command == "theory":
            return _cmd_theory(args, out)
        if args.command == "meanfield":
            return _cmd_meanfield(args, out)
        if args.command == "fluid":
            return _cmd_fluid(args, out)
        if args.command == "compare":
            return _cmd_compare(args, out)
        if args.command == "trace":
            return _cmd_trace(args, out)
        if args.command == "telemetry":
            return _cmd_telemetry(args, out)
        if args.command == "checkpoint":
            return _cmd_checkpoint(args, out)
        if args.command == "broker":
            return _cmd_broker(args, out)
        if args.command == "worker":
            return _cmd_worker(args, out)
        if args.command == "dashboard":
            return _cmd_dashboard(args, out)
    except GracefulShutdown as err:
        out.write(f"interrupted: {err}\n")
        return SHUTDOWN_EXIT_CODE
    raise AssertionError(f"unhandled command {args.command}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
