"""Broker-backed distributed sweep execution (stdlib only).

The package splits along the three processes of a distributed sweep:

* :mod:`repro.distributed.broker` — the asyncio TCP work queue
  (lease / heartbeat / complete / fail, at-least-once over idempotent
  task digests, shared result-cache sync, lease reaping);
* :mod:`repro.distributed.worker` — the preemptible single-slot worker
  (``repro worker``), executing tasks through the same
  :func:`repro.parallel.tasks.execute_task` path as the local pool;
* :mod:`repro.distributed.client` — the runner-side submit/stream
  session used by ``repro experiments --broker``.

Plus the persistence/observability pair:

* :mod:`repro.distributed.store` — the broker's durable results store
  (``events.jsonl`` provenance log + atomic ``state.json`` snapshots);
* :mod:`repro.distributed.dashboard` — the ``repro dashboard`` text view
  of sweep progress and the ``BENCH_*.json`` perf trajectory.

See ``docs/distributed.md`` for the protocol and the failure matrix.
"""

from repro.distributed.broker import Broker, BrokerConfig, resolve_address, run_broker
from repro.distributed.client import BrokerClient, RemoteTaskFailure
from repro.distributed.dashboard import render_dashboard
from repro.distributed.protocol import PROTOCOL, encode_frame, recv_frame, send_frame
from repro.distributed.store import SweepState, SweepStateStore, read_events
from repro.distributed.worker import Worker, default_worker_id

__all__ = [
    "Broker",
    "BrokerConfig",
    "BrokerClient",
    "RemoteTaskFailure",
    "PROTOCOL",
    "SweepState",
    "SweepStateStore",
    "Worker",
    "default_worker_id",
    "encode_frame",
    "read_events",
    "recv_frame",
    "render_dashboard",
    "resolve_address",
    "run_broker",
    "send_frame",
]
