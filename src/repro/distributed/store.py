"""Persistent results store behind the broker (and the dashboard's input).

Files in a broker's ``--state-dir``:

``events.jsonl``
    Append-only provenance log: worker joins/leaves, leases, re-leases,
    completions (with worker identity and source), failures, run
    boundaries. Each line carries a monotonically increasing ``seq`` and
    is flushed before the broker moves on, so the log survives a
    SIGKILLed broker with at most the in-flight line torn (readers skip
    torn tails, same contract as the runner journal).

``state.json`` (+ ``state.json.prev``)
    Atomically replaced snapshot of the live sweep: per-run task counts
    by status, the **durable task table** (payloads, lease ownership,
    release/retry counters, queue order) a restarted broker recovers
    from, and the ``seq`` of the last event folded in. The previous
    snapshot generation is kept as ``state.json.prev`` so a snapshot
    torn by a crash falls back to the newest *valid* one; the event tail
    past its ``seq`` is then replayed on top.

``events.jsonl.NNN``
    Compacted segments of the event log. Once a snapshot has folded a
    segment in, :meth:`SweepStateStore.compact` rotates the live log so
    recovery stays O(state) instead of O(history); bounded retention
    (``keep_archives``) deletes the oldest segments, which provenance
    readers must tolerate (the dashboard renders a note, not a crash).

On clean run completion the broker also writes the standard telemetry
run manifest (``manifest.json``) next to these, stamping the sweep with
code fingerprints, host info, and final broker metrics.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

__all__ = [
    "SweepState",
    "SweepStateStore",
    "read_events",
    "read_live_events",
    "replay_events",
]

STATE_FILENAME = "state.json"
PREV_STATE_SUFFIX = ".prev"
EVENTS_FILENAME = "events.jsonl"
_ARCHIVE_RE = re.compile(r"^events\.jsonl\.(\d+)$")


@dataclass
class SweepState:
    """Aggregated view of one broker lifetime (possibly several runs).

    Beyond the dashboard counters, the snapshot carries everything a
    restarted broker needs to re-adopt the sweep:

    ``generation``
        1 for a fresh state dir, +1 for every broker that recovers it.
    ``seq``
        The last event ``seq`` folded into this snapshot; recovery
        replays only live-log events with a larger ``seq``.
    ``tasks``
        The durable task table keyed by content digest. Non-terminal
        entries keep the full payload (so a re-queued task can be
        leased without its submitting client); terminal entries keep
        the poison/dedup bookkeeping (``releases``, ``attempts``,
        ``error``) so the guards survive a restart.
    ``queue``
        Queued keys in dispatch order (re-leased priority tasks first,
        then original submit order).
    """

    started_unix: float = 0.0
    updated_unix: float = 0.0
    generation: int = 1
    seq: int = 0
    tasks_total: int = 0
    tasks_done: int = 0
    tasks_failed: int = 0
    tasks_queued: int = 0
    tasks_leased: int = 0
    releases_total: int = 0
    retries_total: int = 0
    by_source: dict[str, int] = field(default_factory=dict)
    workers: dict[str, dict[str, Any]] = field(default_factory=dict)
    runs: dict[str, dict[str, Any]] = field(default_factory=dict)
    tasks: dict[str, dict[str, Any]] = field(default_factory=dict)
    queue: list[str] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "started_unix": self.started_unix,
            "updated_unix": self.updated_unix,
            "generation": self.generation,
            "seq": self.seq,
            "tasks_total": self.tasks_total,
            "tasks_done": self.tasks_done,
            "tasks_failed": self.tasks_failed,
            "tasks_queued": self.tasks_queued,
            "tasks_leased": self.tasks_leased,
            "releases_total": self.releases_total,
            "retries_total": self.retries_total,
            "by_source": dict(self.by_source),
            "workers": dict(self.workers),
            "runs": dict(self.runs),
            "tasks": dict(self.tasks),
            "queue": list(self.queue),
        }

    @staticmethod
    def from_dict(payload: dict[str, Any]) -> "SweepState":
        state = SweepState()
        for key in (
            "started_unix",
            "updated_unix",
            "generation",
            "seq",
            "tasks_total",
            "tasks_done",
            "tasks_failed",
            "tasks_queued",
            "tasks_leased",
            "releases_total",
            "retries_total",
        ):
            if key in payload:
                setattr(state, key, payload[key])
        state.by_source = dict(payload.get("by_source", {}))
        state.workers = dict(payload.get("workers", {}))
        state.runs = dict(payload.get("runs", {}))
        state.tasks = dict(payload.get("tasks", {}))
        state.queue = list(payload.get("queue", []))
        return state


class SweepStateStore:
    """Event log + state snapshot for one broker's ``--state-dir``."""

    def __init__(self, directory: Path | str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.state = SweepState(started_unix=round(time.time(), 3))
        self._seq = _last_seq(self.directory)
        self._events_fh = open(self.directory / EVENTS_FILENAME, "ab")

    def record(self, kind: str, sync: bool = True, **fields: Any) -> int:
        """Durably append one provenance event; returns its ``seq``.

        ``sync=False`` defers the fsync for batch writers (e.g. one
        ``task`` event per entry of a large submit) — the caller must
        follow up with :meth:`sync` (or any sync'd ``record``) before
        acknowledging the batch.
        """
        if self._events_fh.closed:
            # Sessions unwinding after shutdown closed the store race this
            # path; their leave/disconnect events are droppable by design.
            return self._seq
        self._seq += 1
        event = {"ts": round(time.time(), 3), "seq": self._seq, "event": kind, **fields}
        line = json.dumps(event, sort_keys=True) + "\n"
        self._events_fh.write(line.encode("utf-8"))
        self._events_fh.flush()
        if sync:
            os.fsync(self._events_fh.fileno())
        return self._seq

    def sync(self) -> None:
        """Flush any ``record(..., sync=False)`` tail to stable storage."""
        if not self._events_fh.closed:
            self._events_fh.flush()
            os.fsync(self._events_fh.fileno())

    def write_state(self) -> None:
        """Atomically replace ``state.json``, keeping the previous snapshot.

        The displaced snapshot becomes ``state.json.prev`` *before* the
        new one lands, so at every instant at least one complete
        snapshot exists on disk (a crash between the two renames leaves
        ``state.json`` missing but ``.prev`` valid — the loader's
        newest-valid fallback).
        """
        self.state.updated_unix = round(time.time(), 3)
        self.state.seq = self._seq
        path = self.directory / STATE_FILENAME
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        with open(tmp, "w", encoding="utf-8") as fh:
            fh.write(json.dumps(self.state.to_dict(), indent=2, sort_keys=True) + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        if path.exists():
            os.replace(path, path.with_name(path.name + PREV_STATE_SUFFIX))
        os.replace(tmp, path)

    def compact(self, keep_archives: int = 1) -> Path | None:
        """Fold the live event log into ``state.json`` and rotate it.

        The current snapshot (which carries ``seq``) is written first,
        then ``events.jsonl`` is renamed to the next ``events.jsonl.NNN``
        segment and a fresh live log is started with a ``compact``
        marker event. Old segments beyond ``keep_archives`` are deleted
        — provenance readers see a truncated (but never torn) history.
        Returns the archive path, or None when the live log is empty.
        """
        live = self.directory / EVENTS_FILENAME
        self.write_state()
        if self._events_fh.closed or live.stat().st_size == 0:
            return None
        archives = _archive_paths(self.directory)
        next_index = (
            max(int(_ARCHIVE_RE.match(p.name).group(1)) for p in archives) + 1
            if archives
            else 1
        )
        archive = self.directory / f"{EVENTS_FILENAME}.{next_index}"
        self._events_fh.close()
        os.replace(live, archive)
        self._events_fh = open(live, "ab")
        self.record("compact", archive=archive.name, folded_seq=self._seq)
        archives = _archive_paths(self.directory)
        excess = archives if keep_archives <= 0 else archives[:-keep_archives]
        for stale in excess:
            stale.unlink(missing_ok=True)
        return archive

    def events_bytes(self) -> int:
        """Size of the live event log (compaction trigger input)."""
        try:
            return (self.directory / EVENTS_FILENAME).stat().st_size
        except OSError:
            return 0

    def close(self) -> None:
        self.write_state()
        if not self._events_fh.closed:
            self._events_fh.close()

    @staticmethod
    def load_state(directory: Path | str) -> SweepState | None:
        """Newest *valid* snapshot: ``state.json``, else ``state.json.prev``.

        A snapshot torn by a crash mid-replace (or truncated by a full
        disk) parses as garbage and falls through to the previous
        generation; None only when no readable snapshot exists at all.
        """
        base = Path(directory) / STATE_FILENAME
        for path in (base, base.with_name(base.name + PREV_STATE_SUFFIX)):
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                continue
            if isinstance(payload, dict):
                return SweepState.from_dict(payload)
        return None


def _archive_paths(directory: Path) -> list[Path]:
    """Compacted event segments, oldest first."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    paths = [p for p in directory.iterdir() if _ARCHIVE_RE.match(p.name)]
    return sorted(paths, key=lambda p: int(_ARCHIVE_RE.match(p.name).group(1)))


def _iter_event_lines(path: Path) -> Iterator[dict[str, Any]]:
    if not path.exists():
        return
    with open(path, "rb") as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                event = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue
            if isinstance(event, dict) and "event" in event:
                yield event


def read_live_events(directory: Path | str) -> Iterator[dict[str, Any]]:
    """Replay the live ``events.jsonl`` only, skipping torn/malformed lines."""
    yield from _iter_event_lines(Path(directory) / EVENTS_FILENAME)


def read_events(directory: Path | str) -> Iterator[dict[str, Any]]:
    """Replay the full event history: archived segments, then the live log.

    Segments deleted by compaction retention are silently absent — the
    history readers see is contiguous from the oldest *surviving*
    segment. Torn or malformed lines are skipped, as ever.
    """
    directory = Path(directory)
    for archive in _archive_paths(directory):
        yield from _iter_event_lines(archive)
    yield from read_live_events(directory)


def replay_events(directory: Path | str, after_seq: int = 0) -> Iterator[dict[str, Any]]:
    """Live-log events newer than ``after_seq``, for snapshot catch-up.

    This is the O(state) recovery read: compaction keeps the live log
    short, and the snapshot's ``seq`` skips everything already folded
    in. Events from logs that predate seq-stamping (no ``seq`` key) are
    replayed only when no snapshot progress exists (``after_seq == 0``).
    """
    for event in read_live_events(directory):
        seq = event.get("seq")
        if seq is None:
            if after_seq == 0:
                yield event
            continue
        if int(seq) > after_seq:
            yield event


def _last_seq(directory: Path) -> int:
    """Highest seq visible anywhere in the state dir (snapshot or logs).

    A reopened store must continue the sequence, not restart it — seq
    ordering is what lets recovery align snapshots with the event tail.
    """
    best = 0
    state = SweepStateStore.load_state(directory)
    if state is not None:
        best = int(state.seq or 0)
    for event in read_live_events(directory):
        seq = event.get("seq")
        if seq is not None:
            best = max(best, int(seq))
    return best
