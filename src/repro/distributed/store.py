"""Persistent results store behind the broker (and the dashboard's input).

Two files live in a broker's ``--state-dir``:

``events.jsonl``
    Append-only provenance log: worker joins/leaves, leases, re-leases,
    completions (with worker identity and source), failures, run
    boundaries. Each line is flushed before the broker moves on, so the
    log survives a SIGKILLed broker with at most the in-flight line torn
    (readers skip torn tails, same contract as the runner journal).

``state.json``
    Atomically replaced snapshot of the live sweep: per-run task counts
    by status, per-worker tallies, re-lease totals. This is what
    ``repro dashboard`` renders; it is a *view* over the event log, so a
    stale or missing snapshot is an inconvenience, never data loss.

On clean run completion the broker also writes the standard telemetry
run manifest (``manifest.json``) next to these, stamping the sweep with
code fingerprints, host info, and final broker metrics.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

__all__ = ["SweepState", "SweepStateStore", "read_events"]

STATE_FILENAME = "state.json"
EVENTS_FILENAME = "events.jsonl"


@dataclass
class SweepState:
    """Aggregated view of one broker lifetime (possibly several runs)."""

    started_unix: float = 0.0
    updated_unix: float = 0.0
    tasks_total: int = 0
    tasks_done: int = 0
    tasks_failed: int = 0
    tasks_queued: int = 0
    tasks_leased: int = 0
    releases_total: int = 0
    retries_total: int = 0
    by_source: dict[str, int] = field(default_factory=dict)
    workers: dict[str, dict[str, Any]] = field(default_factory=dict)
    runs: dict[str, dict[str, Any]] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "started_unix": self.started_unix,
            "updated_unix": self.updated_unix,
            "tasks_total": self.tasks_total,
            "tasks_done": self.tasks_done,
            "tasks_failed": self.tasks_failed,
            "tasks_queued": self.tasks_queued,
            "tasks_leased": self.tasks_leased,
            "releases_total": self.releases_total,
            "retries_total": self.retries_total,
            "by_source": dict(self.by_source),
            "workers": dict(self.workers),
            "runs": dict(self.runs),
        }

    @staticmethod
    def from_dict(payload: dict[str, Any]) -> "SweepState":
        state = SweepState()
        for key in (
            "started_unix",
            "updated_unix",
            "tasks_total",
            "tasks_done",
            "tasks_failed",
            "tasks_queued",
            "tasks_leased",
            "releases_total",
            "retries_total",
        ):
            if key in payload:
                setattr(state, key, payload[key])
        state.by_source = dict(payload.get("by_source", {}))
        state.workers = dict(payload.get("workers", {}))
        state.runs = dict(payload.get("runs", {}))
        return state


class SweepStateStore:
    """Event log + state snapshot for one broker's ``--state-dir``."""

    def __init__(self, directory: Path | str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.state = SweepState(started_unix=round(time.time(), 3))
        self._events_fh = open(self.directory / EVENTS_FILENAME, "ab")

    def record(self, kind: str, **fields: Any) -> None:
        """Durably append one provenance event and refresh the snapshot."""
        if self._events_fh.closed:
            # Sessions unwinding after shutdown closed the store race this
            # path; their leave/disconnect events are droppable by design.
            return
        event = {"ts": round(time.time(), 3), "event": kind, **fields}
        line = json.dumps(event, sort_keys=True) + "\n"
        self._events_fh.write(line.encode("utf-8"))
        self._events_fh.flush()
        os.fsync(self._events_fh.fileno())

    def write_state(self) -> None:
        """Atomically replace ``state.json`` with the current snapshot."""
        self.state.updated_unix = round(time.time(), 3)
        path = self.directory / STATE_FILENAME
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(self.state.to_dict(), indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, path)

    def close(self) -> None:
        self.write_state()
        if not self._events_fh.closed:
            self._events_fh.close()

    @staticmethod
    def load_state(directory: Path | str) -> SweepState | None:
        """Read ``state.json`` from a state dir; None when absent/torn."""
        path = Path(directory) / STATE_FILENAME
        try:
            return SweepState.from_dict(json.loads(path.read_text(encoding="utf-8")))
        except (OSError, ValueError):
            return None


def read_events(directory: Path | str) -> Iterator[dict[str, Any]]:
    """Replay ``events.jsonl``, skipping torn or malformed lines."""
    path = Path(directory) / EVENTS_FILENAME
    if not path.exists():
        return
    with open(path, "rb") as fh:
        for raw in fh:
            raw = raw.strip()
            if not raw:
                continue
            try:
                event = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                continue
            if isinstance(event, dict) and "event" in event:
                yield event
