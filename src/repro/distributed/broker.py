"""Asyncio TCP broker: at-least-once work queue over idempotent task digests.

One broker process coordinates any number of *workers* (which lease,
execute, and complete tasks) and *clients* (sweep runners which submit
task batches and stream results back). The broker itself never executes
simulation code — it is pure bookkeeping, so a single asyncio loop
handles a whole fleet.

Delivery semantics
------------------
* **At-least-once.** A task is either queued, leased (to exactly one
  worker, with a deadline), or resolved. A worker that stops
  heartbeating past its lease deadline — SIGKILLed, wedged, unplugged —
  has its task **re-leased** to the next worker that asks. Nothing is
  lost; at worst a task runs twice.
* **Idempotent keys.** Task keys are content-addressed digests of
  (kind, params, replicate, code fingerprint), so duplicate executions
  produce identical outcomes and the first ``complete`` wins; later
  duplicates are acknowledged and dropped.
* **Shared result cache.** With ``cache_dir`` set, every completion is
  written to the same content-addressed cache the local runner uses
  (tagged with an ``origin`` recording which worker computed it), and
  every submitted key is first checked against it — a task computed
  *anywhere* is never recomputed, and later local runs see the upload as
  a ``remote-cache`` hit.
* **Preemption-friendly.** With ``checkpoint_dir`` set, each lease
  carries a per-key snapshot directory; a re-leased task resumes from
  its predecessor's newest checkpoint instead of restarting at round
  zero, so killing a worker loses bounded work.

Code-fingerprint safety: a worker whose measurement fingerprint differs
from the submitting client's is never leased that client's tasks —
mixed-version fleets go idle rather than silently producing results from
different code.
"""

from __future__ import annotations

import asyncio
import contextlib
import hmac
import secrets
import shutil
import socket
import time
import uuid
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

from repro.distributed.protocol import (
    PROTOCOL,
    auth_response,
    read_frame_async,
    write_frame_async,
)
from repro.distributed.store import SweepStateStore, read_events, replay_events
from repro.errors import ProtocolError
from repro.parallel.cache import ResultCache
from repro.telemetry.fleet import decompress_snapshot, merge_fleet_snapshots
from repro.telemetry.registry import HISTOGRAM_QUANTILES, MetricsRegistry, quantile_key
from repro.telemetry.runtime import current as _telemetry_current
from repro.telemetry.sinks import write_prometheus
from repro.telemetry.tracing import SpanBuffer, build_span

__all__ = [
    "Broker",
    "BrokerConfig",
    "FLEET_PROM_FILENAME",
    "resolve_address",
    "run_broker",
]

#: Prometheus textfile of the merged fleet registry, inside ``--state-dir``.
FLEET_PROM_FILENAME = "fleet.prom"

#: Statuses a task moves through; "done"/"failed" are terminal.
QUEUED, LEASED, DONE, FAILED = "queued", "leased", "done", "failed"


@dataclass
class BrokerConfig:
    """Tunable knobs for one broker process."""

    host: str = "127.0.0.1"
    port: int = 0
    cache_dir: Path | str | None = None
    state_dir: Path | str | None = None
    checkpoint_dir: Path | str | None = None
    checkpoint_every: int | None = None
    lease_timeout: float = 15.0
    heartbeat_interval: float | None = None  # default: lease_timeout / 3
    max_retries: int = 2
    max_releases: int = 20
    port_file: Path | str | None = None
    # Shared-secret HMAC challenge/response on connect (see _authenticate);
    # None disables the handshake entirely.
    auth_token: str | None = None
    # PEM cert/key pair for a TLS listener; both or neither.
    tls_cert: Path | str | None = None
    tls_key: Path | str | None = None
    # Rotate events.jsonl once the live log exceeds this many bytes (the
    # snapshot already carries everything rotated away); None = only the
    # mandatory compaction after a restart recovery.
    compact_events_bytes: int | None = None
    compact_keep: int = 1

    def resolved_heartbeat(self) -> float:
        if self.heartbeat_interval is not None:
            return self.heartbeat_interval
        return max(0.05, self.lease_timeout / 3.0)

    def tls_context(self):
        """Server-side SSLContext from the cert/key pair, or None."""
        if self.tls_cert is None and self.tls_key is None:
            return None
        if self.tls_cert is None or self.tls_key is None:
            from repro.errors import ConfigurationError

            raise ConfigurationError("TLS needs both --tls-cert and --tls-key")
        import ssl

        context = ssl.SSLContext(ssl.PROTOCOL_TLS_SERVER)
        context.load_cert_chain(str(self.tls_cert), str(self.tls_key))
        return context


@dataclass
class _Task:
    """Broker-side state of one submitted task."""

    key: str
    payload: dict[str, Any]
    run_id: str
    fingerprint: str
    status: str = QUEUED
    worker: str | None = None
    deadline: float = 0.0
    attempts: int = 0  # executions that *failed* with an error frame
    releases: int = 0  # lease lapses / worker deaths survived
    result: dict[str, Any] | None = None
    error: str | None = None
    # Tracing context from the submitting client ({"trace", "parent"});
    # None when the run is untraced — every span site guards on it.
    trace: dict[str, Any] | None = None
    queued_since: float = 0.0  # wall-clock start of the current queue wait
    lease_span: str | None = None  # open span id of the current lease
    lease_started: float = 0.0
    lease_seq: int = 0  # 1-based lease attempt counter (re-lease chains)
    order: int = 0  # submit sequence; breaks cost-ordering ties FIFO
    priority: bool = False  # re-leased work jumps the cost ordering
    # Lease carried over from a previous broker generation: the worker is
    # expected to reattach (frame or heartbeat) before the reaper fires.
    adopted: bool = False
    group: str = ""  # cost-estimation bucket (the task's point key)
    # Every lifecycle span emitted for this task, replayed to clients
    # that (re)subscribe after the fact — e.g. across a broker restart.
    span_log: list[dict[str, Any]] = field(default_factory=list)


def _task_group(payload: dict[str, Any]) -> str:
    """Cost-estimation bucket for a payload: its parameter point.

    Replicates of one sweep point share a group (and, empirically, a
    runtime), which is what makes the per-group mean a usable expected
    cost. Payloads without kind/params (whole-experiment tasks) fall
    back to their experiment id.
    """
    try:
        if "kind" in payload and "params" in payload:
            from repro.parallel.keys import point_key

            return point_key(str(payload["kind"]), dict(payload["params"]))
    except (TypeError, ValueError):
        pass
    return str(payload.get("experiment_id", "") or "")


@dataclass
class _WorkerConn:
    worker_id: str
    fingerprint: str
    writer: asyncio.StreamWriter
    leased: set[str] = field(default_factory=set)
    completed: int = 0
    slots: int = 1


@dataclass
class _ClientConn:
    run_id: str
    fingerprint: str
    writer: asyncio.StreamWriter
    outstanding: set[str] = field(default_factory=set)
    submitted: int = 0


class Broker:
    """The in-process broker engine (see module docstring).

    :meth:`serve` binds and runs forever (until :meth:`shutdown`); tests
    may also drive an instance in a background event loop via
    :func:`asyncio.run_coroutine_threadsafe`.
    """

    def __init__(self, config: BrokerConfig | None = None, **kwargs: Any) -> None:
        self.config = config if config is not None else BrokerConfig(**kwargs)
        self.broker_id = f"broker-{uuid.uuid4().hex[:8]}"
        self.cache = (
            ResultCache(self.config.cache_dir) if self.config.cache_dir is not None else None
        )
        self.store = (
            SweepStateStore(self.config.state_dir) if self.config.state_dir is not None else None
        )
        self.tasks: dict[str, _Task] = {}
        self.queue: list[str] = []  # queued task keys; dispatch order via _lease_for
        self.workers: dict[str, _WorkerConn] = {}
        self.clients: list[_ClientConn] = []
        # Fleet telemetry: the broker's own registry (lease latency, queue
        # depth, release/retry counters — independent of any process-wide
        # telemetry session) plus the latest piggybacked snapshot per
        # worker, merged into fleet.prom and the fleet-stats broadcast.
        self.metrics = MetricsRegistry()
        self.worker_metrics: dict[str, dict[str, Any]] = {}
        self.generation = 1  # +1 per broker that recovers this state dir
        self._order = 0  # monotonically increasing submit sequence
        # Per-group elapsed history feeding the cost-aware lease order;
        # rebuilt from completion events on recovery.
        from repro.parallel.progress import TimingStats

        self.cost_history = TimingStats()
        self._recovered = self._recover() if self.store is not None else False
        # Broker span ids must not collide across restarts of the same
        # state dir: later generations mint under a suffixed origin.
        origin = "b" if self.generation == 1 else f"b{self.generation}"
        self._spans = SpanBuffer(origin)  # span-id minter for broker spans
        self.port: int | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stopping = asyncio.Event()
        self._wake_reaper = asyncio.Event()
        self._sessions: set[asyncio.Task] = set()

    # ------------------------------------------------------------------
    # restart recovery
    # ------------------------------------------------------------------

    def _recover(self) -> bool:
        """Re-adopt a pre-existing state dir: rebuild the queue and leases.

        The newest valid snapshot supplies the durable task table; the
        live event-log tail past its ``seq`` is replayed on top (crash
        between snapshot writes loses nothing). Pending tasks re-queue in
        their original submit order, in-flight leases stay leased —
        bound to their old worker ids with ``releases``/``attempts``
        counters and checkpoint-dir bindings intact — for one
        ``lease_timeout`` of reattach grace before the reaper treats the
        silence as a worker death. Completed/failed keys are kept as the
        cross-client dedup set and the poison guard's memory.
        """
        assert self.store is not None
        directory = self.store.directory
        snapshot = SweepStateStore.load_state(directory)
        table: dict[str, dict[str, Any]] = {}
        order_hint = 0
        if snapshot is not None:
            for key, entry in snapshot.tasks.items():
                table[key] = dict(entry)
                order_hint = max(order_hint, int(entry.get("order", 0)))
        tail_seq = snapshot.seq if snapshot is not None else 0
        saw_events = False
        for event in replay_events(directory, after_seq=tail_seq):
            saw_events = True
            order_hint = self._apply_event(table, event, order_hint)
        if snapshot is None and not table and not saw_events:
            return False  # genuinely fresh state dir
        self.generation = (snapshot.generation if snapshot is not None else 1) + 1
        now = time.time()
        grace_deadline = time.monotonic() + self.config.lease_timeout
        adopted = requeued = 0
        queued: list[_Task] = []
        for key, entry in table.items():
            status = entry.get("status", QUEUED)
            task = _Task(
                key=key,
                payload=dict(entry.get("payload") or {}),
                run_id=str(entry.get("run", "")),
                fingerprint=str(entry.get("code", "")),
                status=status,
                worker=entry.get("worker"),
                attempts=int(entry.get("attempts", 0)),
                releases=int(entry.get("releases", 0)),
                error=entry.get("error"),
                trace=entry.get("trace") or None,
                queued_since=now,
                lease_span=entry.get("lease_span"),
                lease_started=float(entry.get("lease_started") or 0.0),
                lease_seq=int(entry.get("lease_seq", 0)),
                order=int(entry.get("order", 0)),
                priority=bool(entry.get("priority", False)),
                group=str(entry.get("group", "")),
            )
            if status == LEASED:
                task.adopted = True
                task.deadline = grace_deadline
                adopted += 1
            elif status == QUEUED:
                queued.append(task)
                requeued += 1
            self.tasks[key] = task
        # Original submit order (priority re-leases first) — the cost-aware
        # dispatch reorders at lease time, but the durable queue is stable.
        queued.sort(key=lambda t: (not t.priority, t.order))
        self.queue = [t.key for t in queued]
        self._order = order_hint
        self._replay_history(directory)
        self.store.state.generation = self.generation
        self.store.state.started_unix = (
            snapshot.started_unix if snapshot is not None and snapshot.started_unix else now
        )
        self._record(
            "broker-recover",
            broker=self.broker_id,
            generation=self.generation,
            requeued=requeued,
            adopted_leases=adopted,
            done=sum(1 for t in self.tasks.values() if t.status == DONE),
            failed=sum(1 for t in self.tasks.values() if t.status == FAILED),
        )
        self._snapshot_state()
        # Fold everything replayed into the fresh snapshot and rotate the
        # log: the *next* recovery replays only the new segment (O(state)).
        self.store.compact(keep_archives=self.config.compact_keep)
        return True

    def _apply_event(
        self, table: dict[str, dict[str, Any]], event: dict[str, Any], order_hint: int
    ) -> int:
        """Fold one replayed event into the recovery task table."""
        kind = event.get("event")
        key = event.get("key")
        if kind == "task" and isinstance(key, str):
            entry = table.setdefault(key, {})
            order_hint = max(order_hint, int(event.get("order", order_hint + 1)))
            entry.update(
                status=QUEUED,
                payload=event.get("payload") or {},
                run=event.get("run", ""),
                code=event.get("code", ""),
                order=int(event.get("order", order_hint)),
                trace=event.get("trace"),
                group=event.get("group", ""),
            )
            entry.setdefault("releases", 0)
            entry.setdefault("attempts", 0)
            return order_hint
        if not isinstance(key, str) or key not in table:
            return order_hint
        entry = table[key]
        if kind == "lease":
            entry["status"] = LEASED
            entry["worker"] = event.get("worker")
            entry["lease_seq"] = int(event.get("lease_seq", entry.get("lease_seq", 0) + 1))
            entry["lease_span"] = event.get("span")
            entry["lease_started"] = event.get("ts", 0.0)
        elif kind == "reattach":
            entry["status"] = LEASED
            entry["worker"] = event.get("worker")
        elif kind == "re-lease":
            entry["status"] = QUEUED
            entry["worker"] = None
            entry["releases"] = int(event.get("releases", entry.get("releases", 0) + 1))
            entry["priority"] = True
            entry["lease_span"] = None
        elif kind == "fail":
            entry["status"] = QUEUED
            entry["worker"] = None
            entry["attempts"] = int(event.get("attempts", entry.get("attempts", 0) + 1))
            entry["lease_span"] = None
        elif kind in ("complete", "cache-hit"):
            entry["status"] = DONE
            if event.get("worker"):
                entry["worker"] = event.get("worker")
        elif kind == "task-failed":
            entry["status"] = FAILED
            entry["error"] = event.get("error")
        return order_hint

    def _replay_history(self, directory: Path) -> None:
        """Rebuild cost history and live tasks' span logs from the event log.

        Reads the surviving history (archives + live log). Cost samples
        come from ``complete`` events' ``group``/``elapsed``; span
        records are re-attached to still-live tasks so a client that
        (re)subscribes after the restart receives the full chain.
        """
        by_trace: dict[str, str] = {}
        for key, task in self.tasks.items():
            if task.trace is not None:
                by_trace[task.trace["trace"]] = key
        for event in read_events(directory):
            kind = event.get("event")
            if kind == "complete" and event.get("group"):
                self.cost_history.add(
                    str(event.get("key", "")),
                    float(event.get("elapsed", 0.0) or 0.0),
                    group=str(event["group"]),
                )
            elif kind == "span":
                key = by_trace.get(str(event.get("trace", "")))
                if key is None:
                    continue
                task = self.tasks[key]
                if task.status in (DONE, FAILED):
                    continue
                # Back to the build_span shape clients expect in event frames.
                span = {k: v for k, v in event.items() if k not in ("ts", "seq", "event")}
                task.span_log.append(span)

    # ------------------------------------------------------------------
    # bookkeeping helpers
    # ------------------------------------------------------------------

    def _record(self, kind: str, sync: bool = True, **fields: Any) -> None:
        if self.store is not None:
            self.store.record(kind, sync=sync, **fields)

    def _durable_entry(self, task: _Task) -> dict[str, Any]:
        """One task's row in the snapshot's durable task table.

        Non-terminal rows keep the payload (a recovered broker can lease
        them without the submitting client); terminal rows shrink to the
        dedup/poison bookkeeping (``releases``/``attempts``/``error``)
        so the guards survive a restart without hoarding payloads.
        """
        entry: dict[str, Any] = {
            "status": task.status,
            "order": task.order,
            "releases": task.releases,
            "attempts": task.attempts,
            "run": task.run_id,
            "code": task.fingerprint,
        }
        if task.group:
            entry["group"] = task.group
        if task.worker:
            entry["worker"] = task.worker
        if task.error:
            entry["error"] = task.error
        if task.status in (QUEUED, LEASED):
            entry["payload"] = task.payload
            if task.trace is not None:
                entry["trace"] = task.trace
            if task.priority:
                entry["priority"] = True
        if task.status == LEASED:
            entry["lease_seq"] = task.lease_seq
            entry["lease_span"] = task.lease_span
            entry["lease_started"] = task.lease_started
        return entry

    def _snapshot_state(self) -> None:
        if self.store is None:
            return
        state = self.store.state
        state.generation = self.generation
        state.tasks_total = len(self.tasks)
        state.tasks_done = sum(1 for t in self.tasks.values() if t.status == DONE)
        state.tasks_failed = sum(1 for t in self.tasks.values() if t.status == FAILED)
        state.tasks_queued = len(self.queue)
        state.tasks_leased = sum(1 for t in self.tasks.values() if t.status == LEASED)
        state.releases_total = sum(t.releases for t in self.tasks.values())
        state.retries_total = sum(t.attempts for t in self.tasks.values())
        state.tasks = {key: self._durable_entry(task) for key, task in self.tasks.items()}
        state.queue = list(self.queue)
        self.store.write_state()

    def _gauges(self) -> None:
        tel = _telemetry_current()
        if tel is None:
            return
        tel.set_gauge("broker_queue_depth", len(self.queue))
        tel.set_gauge(
            "broker_leased", sum(1 for t in self.tasks.values() if t.status == LEASED)
        )
        tel.set_gauge("broker_workers", len(self.workers))

    def _count(self, metric: str, **labels: Any) -> None:
        tel = _telemetry_current()
        if tel is not None:
            tel.inc(metric, **labels)

    async def _broadcast_event(self, kind: str, **fields: Any) -> None:
        """Forward one fleet event to every connected client (best effort)."""
        frame = {"type": "event", "kind": kind, **fields}
        for client in list(self.clients):
            try:
                await write_frame_async(client.writer, frame)
            except (ConnectionError, ProtocolError, OSError):
                pass  # the client-reader loop owns disconnect handling

    # ------------------------------------------------------------------
    # fleet tracing + telemetry
    # ------------------------------------------------------------------

    def _make_span(
        self,
        task: _Task,
        name: str,
        start: float,
        end: float | None = None,
        *,
        parent: str | None = None,
        **attrs: Any,
    ) -> dict[str, Any]:
        """Mint a broker-origin span in this task's trace.

        Parent defaults to the client's root ``task`` span so every hop
        hangs off the same tree even when leases interleave.
        """
        assert task.trace is not None
        return build_span(
            task.trace["trace"],
            self._spans.mint_id(),
            name,
            start,
            end,
            parent=parent if parent is not None else task.trace.get("parent"),
            **attrs,
        )

    async def _emit_span(self, span: dict[str, Any], task: _Task | None = None) -> None:
        """Persist one lifecycle span durably and stream it to clients.

        The span lands in the broker's ``events.jsonl`` (tailable with
        :func:`repro.telemetry.tracing.read_spans`) and is broadcast as an
        event frame so the submitting client can append it to the run's
        ``trace.jsonl``. When ``task`` is given the span is also retained
        on its ``span_log`` so a client that (re)subscribes later — e.g.
        across a broker restart — can be replayed the full chain.
        """
        self._record("span", **{k: v for k, v in span.items() if k != "event"})
        if task is not None and task.status not in (DONE, FAILED):
            task.span_log.append(span)
        await self._broadcast_event("span", span=span)

    def _note_worker_metrics(self, worker_id: str, frame: dict[str, Any]) -> None:
        """Absorb a piggybacked registry snapshot from a worker frame."""
        blob = frame.get("metrics")
        if not blob:
            return
        snapshot = decompress_snapshot(blob)
        if snapshot is not None:
            self.worker_metrics[worker_id] = snapshot

    def _fleet_stats(self) -> dict[str, Any]:
        """Queue/latency digest broadcast to clients after each resolve."""
        stats: dict[str, Any] = {
            "queue_depth": len(self.queue),
            "leased": sum(1 for t in self.tasks.values() if t.status == LEASED),
            "workers": len(self.workers),
            "releases": sum(t.releases for t in self.tasks.values()),
            "retries": sum(t.attempts for t in self.tasks.values()),
            "tasks_done": sum(1 for t in self.tasks.values() if t.status == DONE),
            "tasks_total": len(self.tasks),
        }
        histogram = self.metrics.get("fleet_task_seconds")
        stream = histogram.stream() if histogram is not None else None
        if stream is not None and stream.count:
            for q in HISTOGRAM_QUANTILES:
                stats[quantile_key(q)] = round(stream.quantile(q), 6)
        return stats

    def _write_fleet_prom(self) -> None:
        """Render the merged fleet registry as a Prometheus textfile.

        Worker snapshots arrive compressed on heartbeat/complete frames;
        the merge labels each worker's series with ``worker=...`` while the
        broker's own series stay unlabelled.
        """
        if self.store is None:
            return
        self.metrics.gauge(
            "fleet_queue_depth", "Tasks waiting for a lease."
        ).set(len(self.queue))
        self.metrics.gauge("fleet_workers", "Connected workers.").set(len(self.workers))
        snapshot = merge_fleet_snapshots(self.worker_metrics, base=self.metrics.snapshot())
        write_prometheus(snapshot, self.store.directory / FLEET_PROM_FILENAME)

    # ------------------------------------------------------------------
    # task lifecycle
    # ------------------------------------------------------------------

    def _checkpoint_plumbing(self, key: str) -> dict[str, Any] | None:
        if self.config.checkpoint_dir is None:
            return None
        return {
            "dir": str(Path(self.config.checkpoint_dir) / key),
            "every": self.config.checkpoint_every,
        }

    def _cached_result(self, task: _Task) -> tuple[dict[str, Any], str] | None:
        """(result bundle, source) served from the shared cache, if any."""
        if self.cache is None:
            return None
        cached = self.cache.get(task.key)
        if cached is None or "outcome" not in cached:
            return None
        origin = cached.get("origin")
        source = "remote-cache" if origin else "cache"
        bundle = {
            "outcome": cached["outcome"],
            "elapsed": 0.0,
            "pid": None,
            "resumed_round": None,
        }
        if origin:
            bundle["origin"] = origin
        return bundle, source

    def _result_frame(self, task: _Task, source: str) -> dict[str, Any]:
        assert task.result is not None
        return {
            "type": "result",
            "key": task.key,
            "result": task.result,
            "source": source,
            "worker": task.worker,
            "releases": task.releases,
            "attempts": task.attempts,
        }

    async def _resolve(self, task: _Task, source: str) -> None:
        """Deliver a finished task to every client waiting on its key."""
        self._count("broker_tasks_total", source=source)
        for client in list(self.clients):
            if task.key not in client.outstanding:
                continue
            client.outstanding.discard(task.key)
            try:
                if task.status == DONE:
                    await write_frame_async(client.writer, self._result_frame(task, source))
                else:
                    await write_frame_async(
                        client.writer,
                        {
                            "type": "task_failed",
                            "key": task.key,
                            "error": task.error or "unknown failure",
                            "attempts": task.attempts,
                            "releases": task.releases,
                        },
                    )
                if not client.outstanding:
                    await write_frame_async(client.writer, {"type": "done"})
                    self._record("run-done", run=client.run_id, submitted=client.submitted)
            except (ConnectionError, ProtocolError, OSError):
                pass
        self._gauges()
        self._snapshot_state()
        if (
            self.store is not None
            and self.config.compact_events_bytes is not None
            and self.store.events_bytes() >= self.config.compact_events_bytes
        ):
            # The snapshot just written carries everything in the live log.
            self.store.compact(keep_archives=self.config.compact_keep)
        self._write_fleet_prom()
        await self._broadcast_event("fleet-stats", **self._fleet_stats())

    async def _complete_task(self, task: _Task, result: dict[str, Any], worker_id: str) -> None:
        # Transient telemetry riders: worker-minted spans and the upload
        # start stamp travel on the result but are not part of the outcome
        # — strip them before the bundle is cached or forwarded to clients
        # (span events reach clients separately, via _emit_span).
        worker_spans = result.pop("spans", None)
        upload_start = result.pop("upload_start", None)
        task.status = DONE
        task.worker = worker_id
        task.adopted = False
        task.result = result
        elapsed = float(result.get("elapsed", 0.0) or 0.0)
        if task.group and elapsed > 0.0:
            # Feed the cost-aware lease order (longest-expected-first).
            self.cost_history.add(task.key, elapsed, group=task.group)
        fleet_seconds = self.metrics.histogram(
            "fleet_task_seconds", "Per-task compute seconds across the fleet."
        )
        fleet_seconds.observe(elapsed)
        fleet_seconds.observe(elapsed, worker=worker_id)
        if task.trace is not None:
            now = time.time()
            for span in worker_spans or []:
                if isinstance(span, dict):
                    await self._emit_span(span)
            if upload_start is not None:
                await self._emit_span(
                    self._make_span(
                        task,
                        "upload",
                        float(upload_start),
                        now,
                        parent=task.lease_span,
                        worker=worker_id,
                    )
                )
            if task.lease_span is not None:
                await self._emit_span(
                    build_span(
                        task.trace["trace"],
                        task.lease_span,
                        "leased",
                        task.lease_started,
                        now,
                        parent=task.trace.get("parent"),
                        worker=worker_id,
                        seq=task.lease_seq,
                        status="ok",
                    )
                )
                task.lease_span = None
        if self.cache is not None:
            entry: dict[str, Any] = {
                "spec": {
                    k: v
                    for k, v in task.payload.items()
                    if k not in ("checkpoint", "trace", "cprofile")
                },
                "outcome": result["outcome"],
                "origin": {"worker": worker_id, "broker": self.broker_id},
            }
            if result.get("resumed_round") is not None:
                entry["origin"]["resumed_round"] = result["resumed_round"]
            self.cache.put(task.key, entry)
        if self.config.checkpoint_dir is not None:
            # The outcome is durable; its snapshots have served their purpose.
            shutil.rmtree(Path(self.config.checkpoint_dir) / task.key, ignore_errors=True)
        self._record(
            "complete",
            key=task.key,
            worker=worker_id,
            releases=task.releases,
            resumed_round=result.get("resumed_round"),
            elapsed=round(float(result.get("elapsed", 0.0)), 6),
            group=task.group or None,
        )
        await self._resolve(task, source="computed")

    def _requeue(self, task: _Task, *, front: bool = False) -> None:
        task.status = QUEUED
        task.worker = None
        task.deadline = 0.0
        task.adopted = False
        if front:
            # Re-leased casualties also outrank the cost ordering, so a
            # preempted task resumes from its checkpoint immediately.
            task.priority = True
            self.queue.insert(0, task.key)
        else:
            self.queue.append(task.key)

    async def _release_lease(self, task: _Task, reason: str) -> None:
        """A leased task's worker is gone or silent: take the lease back."""
        worker_id = task.worker
        task.releases += 1
        self._count("broker_releases_total")
        self.metrics.counter(
            "fleet_releases_total", "Leases taken back from silent workers."
        ).inc()
        self._record("re-lease", key=task.key, worker=worker_id, reason=reason)
        await self._broadcast_event(
            "re-lease", key=task.key, worker=worker_id, reason=reason, releases=task.releases
        )
        if task.trace is not None and task.lease_span is not None:
            # Close the dead lease attempt; the re-lease chain shows up in
            # the trace as queued → leased(released) → queued → leased(ok).
            await self._emit_span(
                build_span(
                    task.trace["trace"],
                    task.lease_span,
                    "leased",
                    task.lease_started,
                    time.time(),
                    parent=task.trace.get("parent"),
                    worker=worker_id,
                    seq=task.lease_seq,
                    status="released",
                    reason=reason,
                )
            )
            task.lease_span = None
        task.queued_since = time.time()
        if task.releases > self.config.max_releases:
            task.status = FAILED
            task.error = (
                f"re-leased {task.releases} times (> max_releases="
                f"{self.config.max_releases}); last worker {worker_id}: {reason}"
            )
            self._record(
                "task-failed",
                key=task.key,
                error=task.error,
                attempts=task.attempts,
                releases=task.releases,
            )
            await self._resolve(task, source="failed")
            return
        # Front of the queue: a preempted task resumes from its checkpoint
        # immediately instead of waiting behind fresh work.
        self._requeue(task, front=True)
        self._gauges()

    async def _fail_task(self, task: _Task, error: str, worker_id: str) -> None:
        task.attempts += 1
        self._record("fail", key=task.key, worker=worker_id, error=error, attempts=task.attempts)
        if task.trace is not None and task.lease_span is not None:
            await self._emit_span(
                build_span(
                    task.trace["trace"],
                    task.lease_span,
                    "leased",
                    task.lease_started,
                    time.time(),
                    parent=task.trace.get("parent"),
                    worker=worker_id,
                    seq=task.lease_seq,
                    status="failed",
                    error=error,
                )
            )
            task.lease_span = None
        task.queued_since = time.time()
        if task.attempts > self.config.max_retries:
            task.status = FAILED
            task.worker = worker_id
            task.error = error
            self._record(
                "task-failed",
                key=task.key,
                error=error,
                attempts=task.attempts,
                releases=task.releases,
            )
            await self._resolve(task, source="failed")
            return
        # Only an actual requeue is a retry — the terminal failure above
        # surfaces as task_failed, mirroring the local pool's accounting.
        self._count("broker_retries_total")
        self.metrics.counter(
            "fleet_retries_total", "Tasks requeued after a worker-side error."
        ).inc()
        await self._broadcast_event(
            "retry", key=task.key, worker=worker_id, error=error, attempts=task.attempts
        )
        self._requeue(task)
        self._gauges()

    def _expected_cost(self, task: _Task) -> float | None:
        """Mean observed compute seconds for this task's group, if any."""
        samples = self.cost_history.by_group.get(task.group) if task.group else None
        if not samples:
            return None
        return sum(samples) / len(samples)

    def _lease_for(self, worker: _WorkerConn) -> _Task | None:
        """Pop the best queued task whose fingerprint matches this worker.

        Cost-aware dispatch order: re-leased casualties first (they hold
        checkpoints), then never-measured groups (exploration — the long
        paper-profile cells get sampled before the sweep's tail), then
        longest-expected-first so stragglers don't land last, with the
        original submit order breaking ties.
        """
        best_index: int | None = None
        best_rank: tuple[int, int, float, int] | None = None
        for index, key in enumerate(self.queue):
            task = self.tasks[key]
            if task.fingerprint != worker.fingerprint:
                continue
            cost = self._expected_cost(task)
            rank = (
                0 if task.priority else 1,
                0 if cost is None else 1,
                -(cost or 0.0),
                task.order,
            )
            if best_rank is None or rank < best_rank:
                best_rank, best_index = rank, index
        if best_index is None:
            return None
        task = self.tasks[self.queue.pop(best_index)]
        task.status = LEASED
        task.worker = worker.worker_id
        task.deadline = time.monotonic() + self.config.lease_timeout
        task.adopted = False
        worker.leased.add(task.key)
        return task

    async def _adopt_lease(self, worker: _WorkerConn, task: _Task, via: str) -> None:
        """Re-bind an orphaned lease to the worker still computing it.

        Reached from an explicit ``reattach`` frame or from the first
        heartbeat naming a key this connection doesn't hold — both happen
        when the worker (or the broker) survived a link death. The lease
        continues where it left off: ``releases`` and checkpoint bindings
        untouched, deadline refreshed.
        """
        if task.status == QUEUED and task.key in self.queue:
            self.queue.remove(task.key)
        task.status = LEASED
        task.worker = worker.worker_id
        task.deadline = time.monotonic() + self.config.lease_timeout
        task.adopted = False
        worker.leased.add(task.key)
        self._record(
            "reattach",
            key=task.key,
            worker=worker.worker_id,
            via=via,
            generation=self.generation,
        )
        await self._broadcast_event(
            "reattach", key=task.key, worker=worker.worker_id, via=via
        )
        if task.trace is not None:
            now = time.time()
            if task.lease_span is None:
                task.lease_seq += 1
                task.lease_span = self._spans.mint_id()
                task.lease_started = now
            await self._emit_span(
                self._make_span(
                    task,
                    "reattach",
                    now,
                    now,
                    parent=task.lease_span,
                    worker=worker.worker_id,
                    via=via,
                    generation=self.generation,
                ),
                task,
            )
        self._gauges()

    @property
    def _drained(self) -> bool:
        """True when work was submitted and all of it has been resolved."""
        return bool(self.tasks) and not self.queue and not any(
            t.status == LEASED for t in self.tasks.values()
        )

    # ------------------------------------------------------------------
    # connection handlers
    # ------------------------------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Track the session so shutdown can cancel it instead of leaving
        # the coroutine to die on a closed event loop.
        session = asyncio.current_task()
        if session is not None:
            self._sessions.add(session)
        try:
            await self._dispatch_connection(reader, writer)
        finally:
            if session is not None:
                self._sessions.discard(session)

    async def _dispatch_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            hello = await read_frame_async(reader)
        except ProtocolError:
            writer.close()
            return
        if hello is None or hello.get("type") != "hello":
            writer.close()
            return
        if hello.get("protocol") != PROTOCOL:
            with contextlib.suppress(ConnectionError, OSError):
                await write_frame_async(
                    writer,
                    {
                        "type": "error",
                        "error": f"protocol mismatch: broker speaks {PROTOCOL}, "
                        f"peer sent {hello.get('protocol')!r}",
                    },
                )
            writer.close()
            return
        role = hello.get("role")
        if role not in ("worker", "client"):
            writer.close()
            return
        if not await self._authenticate(str(role), reader, writer):
            return
        if role == "worker":
            await self._worker_session(hello, reader, writer)
        else:
            await self._client_session(hello, reader, writer)

    async def _authenticate(
        self, role: str, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Shared-secret challenge/response; True when the peer may proceed.

        Without a configured token this is a no-op (no extra frames on
        the wire). Otherwise the peer's next frame after the challenge
        must be a valid ``auth`` — rejected peers never reach the lease
        queue or the submit path, and get a diagnosable ``error`` frame
        before the close.
        """
        token = self.config.auth_token
        if not token:
            return True
        nonce = secrets.token_hex(16)
        try:
            await write_frame_async(writer, {"type": "challenge", "nonce": nonce})
            reply = await asyncio.wait_for(read_frame_async(reader), timeout=30.0)
        except (ProtocolError, ConnectionError, OSError, asyncio.TimeoutError):
            writer.close()
            return False
        mac = str(reply.get("mac", "")) if isinstance(reply, dict) else ""
        ok = (
            isinstance(reply, dict)
            and reply.get("type") == "auth"
            and hmac.compare_digest(mac, auth_response(token, nonce, role))
        )
        if not ok:
            self._record("auth-reject", role=role)
            self._count("broker_auth_rejects_total")
            with contextlib.suppress(ConnectionError, ProtocolError, OSError):
                await write_frame_async(
                    writer,
                    {
                        "type": "error",
                        "error": "authentication failed: this broker requires a "
                        "matching --auth-token",
                    },
                )
            writer.close()
            return False
        return True

    async def _worker_session(
        self, hello: dict[str, Any], reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        worker = _WorkerConn(
            worker_id=str(hello.get("worker", f"worker-{uuid.uuid4().hex[:8]}")),
            fingerprint=str(hello.get("code", "")),
            writer=writer,
            slots=max(1, int(hello.get("slots", 1) or 1)),
        )
        self.workers[worker.worker_id] = worker
        self._record("worker-join", worker=worker.worker_id, slots=worker.slots)
        await self._broadcast_event("worker-join", worker=worker.worker_id, slots=worker.slots)
        self._gauges()
        await write_frame_async(
            writer,
            {
                "type": "welcome",
                "protocol": PROTOCOL,
                "broker": self.broker_id,
                "heartbeat": self.config.resolved_heartbeat(),
                "lease_timeout": self.config.lease_timeout,
                "generation": self.generation,
            },
        )
        try:
            while True:
                frame = await read_frame_async(reader)
                if frame is None or frame.get("type") == "bye":
                    break
                await self._worker_frame(worker, frame)
        except (ProtocolError, ConnectionError, OSError):
            pass  # torn frame / dead socket: treated exactly like a lapse
        finally:
            # A reconnecting worker reuses its id: if a fresh connection
            # already replaced this one in the registry, this stale
            # session must not evict it or release its adopted leases.
            if self.workers.get(worker.worker_id) is worker:
                self.workers.pop(worker.worker_id, None)
            self._record("worker-leave", worker=worker.worker_id, completed=worker.completed)
            await self._broadcast_event("worker-leave", worker=worker.worker_id)
            # Don't wait for the lease deadline: the connection death *is*
            # the signal that any in-flight task needs a new home.
            for key in list(worker.leased):
                task = self.tasks.get(key)
                if task is None or task.status != LEASED or task.worker != worker.worker_id:
                    continue
                successor = self.workers.get(worker.worker_id)
                if successor is not None and successor is not worker and key in successor.leased:
                    continue  # the lease lives on over the new connection
                await self._release_lease(task, reason="worker disconnected")
            self._gauges()
            self._snapshot_state()
            writer.close()

    async def _worker_frame(self, worker: _WorkerConn, frame: dict[str, Any]) -> None:
        kind = frame.get("type")
        if kind == "lease":
            task = self._lease_for(worker)
            if task is None:
                await write_frame_async(
                    worker.writer, {"type": "idle", "drain": self._drained}
                )
                return
            task.lease_seq += 1
            message = {"type": "task", "key": task.key, "payload": task.payload}
            checkpoint = self._checkpoint_plumbing(task.key)
            if checkpoint is not None:
                message["checkpoint"] = checkpoint
            if task.trace is not None:
                now = time.time()
                await self._emit_span(
                    self._make_span(task, "queued", task.queued_since or now, now), task
                )
                queue_seconds = now - task.queued_since if task.queued_since else 0.0
                self.metrics.histogram(
                    "fleet_queue_seconds", "Seconds a task waited for a lease."
                ).observe(max(0.0, queue_seconds))
                task.lease_span = self._spans.mint_id()
                task.lease_started = now
                # The worker parents its running span under this lease span
                # and mints its own ids, prefixed by its worker id.
                message["trace"] = {
                    "trace": task.trace["trace"],
                    "parent": task.lease_span,
                    "origin": worker.worker_id,
                }
            # Recorded after the span mint so a recovering broker restores
            # the open lease span id along with the lease itself.
            self._record(
                "lease",
                key=task.key,
                worker=worker.worker_id,
                releases=task.releases,
                lease_seq=task.lease_seq,
                span=task.lease_span,
            )
            self._gauges()
            await write_frame_async(worker.writer, message)
            return
        key = frame.get("key")
        task = self.tasks.get(key) if isinstance(key, str) else None
        if kind == "heartbeat":
            self._note_worker_metrics(worker.worker_id, frame)
            keys = frame.get("keys")
            if not isinstance(keys, list):
                keys = [key] if isinstance(key, str) else []
            for each in keys:
                held = self.tasks.get(each) if isinstance(each, str) else None
                if held is None:
                    continue
                if held.status == LEASED and held.worker == worker.worker_id:
                    held.deadline = time.monotonic() + self.config.lease_timeout
                    if each not in worker.leased or held.adopted:
                        # First pulse over a fresh connection for a lease
                        # granted before the old one (or the broker) died.
                        await self._adopt_lease(worker, held, via="heartbeat")
                elif (
                    held.status == QUEUED
                    and held.fingerprint == worker.fingerprint
                    and each not in worker.leased
                ):
                    # The lease lapsed (reaped, or recovery grace expired)
                    # but the worker is demonstrably still computing it —
                    # re-adopting beats double-executing.
                    await self._adopt_lease(worker, held, via="heartbeat")
            return
        if kind == "reattach":
            adopted: list[str] = []
            rejected: list[str] = []
            for each in frame.get("keys") or []:
                held = self.tasks.get(each) if isinstance(each, str) else None
                if held is not None and (
                    (held.status == LEASED and held.worker == worker.worker_id)
                    or (held.status == QUEUED and held.fingerprint == worker.fingerprint)
                ):
                    await self._adopt_lease(worker, held, via="reattach")
                    adopted.append(each)
                else:
                    # Already resolved, or re-leased to a live worker —
                    # the reattaching worker must drop the slot.
                    rejected.append(each)
            await write_frame_async(
                worker.writer, {"type": "reattach-ok", "adopted": adopted, "rejected": rejected}
            )
            self._snapshot_state()
            return
        if kind == "complete":
            self._note_worker_metrics(worker.worker_id, frame)
            worker.leased.discard(key)
            if task is None or task.status in (DONE, FAILED):
                # Duplicate completion of a re-leased task: idempotent keys
                # make this safe to acknowledge and drop.
                self._record("duplicate-complete", key=key, worker=worker.worker_id)
                return
            worker.completed += 1
            await self._complete_task(task, dict(frame.get("result") or {}), worker.worker_id)
            return
        if kind == "fail":
            worker.leased.discard(key)
            if task is None or task.status in (DONE, FAILED):
                return
            await self._fail_task(task, str(frame.get("error", "worker error")), worker.worker_id)
            return
        raise ProtocolError(f"unexpected worker frame type {kind!r}")

    async def _client_session(
        self, hello: dict[str, Any], reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        client = _ClientConn(
            run_id=str(hello.get("run", f"run-{uuid.uuid4().hex[:8]}")),
            fingerprint=str(hello.get("code", "")),
            writer=writer,
        )
        self.clients.append(client)
        self._record("run-start", run=client.run_id)
        await write_frame_async(
            writer,
            {
                "type": "welcome",
                "protocol": PROTOCOL,
                "broker": self.broker_id,
                "generation": self.generation,
            },
        )
        try:
            while True:
                frame = await read_frame_async(reader)
                if frame is None or frame.get("type") == "bye":
                    break
                if frame.get("type") != "submit":
                    raise ProtocolError(f"unexpected client frame type {frame.get('type')!r}")
                await self._submit(client, frame)
        except (ProtocolError, ConnectionError, OSError):
            pass
        finally:
            # An abandoned run's queued tasks still execute (their results
            # land in the shared cache for the retry), so no cleanup here
            # beyond forgetting the result subscriptions.
            if client in self.clients:
                self.clients.remove(client)
            self._record("run-leave", run=client.run_id)
            writer.close()

    async def _submit(self, client: _ClientConn, frame: dict[str, Any]) -> None:
        entries = frame.get("tasks") or []
        client.submitted += len(entries)
        self._record("submit", run=client.run_id, tasks=len(entries))
        for entry in entries:
            key = entry["key"]
            trace_ctx = entry.get("trace")
            if not (isinstance(trace_ctx, dict) and trace_ctx.get("trace")):
                trace_ctx = None
            task = self.tasks.get(key)
            if task is None:
                self._order += 1
                task = _Task(
                    key=key,
                    payload=dict(entry["payload"]),
                    run_id=client.run_id,
                    fingerprint=client.fingerprint,
                    trace=trace_ctx,
                    queued_since=time.time(),
                    order=self._order,
                    group=_task_group(entry["payload"]),
                )
                if task.trace is not None:
                    await self._emit_span(
                        self._make_span(task, "submitted", time.time(), run=client.run_id),
                        task,
                    )
                cached = self._cached_result(task)
                if cached is not None:
                    bundle, source = cached
                    task.status = DONE
                    origin = bundle.get("origin") or {}
                    task.worker = origin.get("worker")
                    task.result = bundle
                    self.tasks[key] = task
                    client.outstanding.add(key)
                    self._record("cache-hit", key=key, source=source, run=client.run_id)
                    if task.trace is not None:
                        # Zero-length queue wait: the chain stays complete
                        # (submitted → queued) even when nothing ran.
                        now = time.time()
                        await self._emit_span(
                            self._make_span(task, "queued", now, now, source=source)
                        )
                    await self._resolve(task, source=source)
                    continue
                self.tasks[key] = task
                self.queue.append(key)
                client.outstanding.add(key)
                # Durable birth record (payload included) so a restarted
                # broker can requeue this task without its client. fsync
                # is batched: one sync below covers the whole submit.
                self._record(
                    "task",
                    sync=False,
                    key=key,
                    run=client.run_id,
                    code=client.fingerprint,
                    order=task.order,
                    group=task.group or None,
                    payload=task.payload,
                    trace=task.trace,
                )
            elif task.status == DONE:
                if task.result is None and not await self._reserve_recovered(client, task, entry):
                    continue
                # Another run already computed this key (content-addressed
                # dedup across clients): serve it straight from memory.
                client.outstanding.add(key)
                self._record("cache-hit", key=key, source="memory", run=client.run_id)
                await self._resolve(task, source="remote-cache")
            elif task.status == FAILED:
                client.outstanding.add(key)
                await self._resolve(task, source="failed")
            else:
                # Already queued or leased (submitted by another client, or
                # re-adopted across a broker restart): subscribe, and replay
                # the span chain so the resumed run's trace stays complete.
                client.outstanding.add(key)
                if task.trace is None and trace_ctx is not None:
                    task.trace = trace_ctx
                if trace_ctx is not None:
                    for span in task.span_log:
                        with contextlib.suppress(ConnectionError, ProtocolError, OSError):
                            await write_frame_async(
                                client.writer,
                                {"type": "event", "kind": "span", "span": span},
                            )
        if self.store is not None:
            self.store.sync()
        if not client.outstanding:
            await write_frame_async(client.writer, {"type": "done"})
        self._gauges()
        self._snapshot_state()
        self._wake_reaper.set()

    async def _reserve_recovered(
        self, client: _ClientConn, task: _Task, entry: dict[str, Any]
    ) -> bool:
        """Restore a recovered DONE task's result; False = requeued instead.

        A restart keeps terminal rows only as bookkeeping — the bundle
        itself lives in the shared cache. Cache hit: rehydrate and serve.
        Cache miss (no ``--cache-dir``, or the entry was pruned):
        recompute from the resubmitted payload — at-least-once over
        idempotent keys makes that safe.
        """
        cached = self._cached_result(task)
        if cached is not None:
            bundle, _source = cached
            origin = bundle.get("origin") or {}
            task.worker = origin.get("worker") or task.worker
            task.result = bundle
            return True
        task.payload = dict(entry["payload"])
        task.fingerprint = client.fingerprint
        task.status = QUEUED
        task.queued_since = time.time()
        task.trace = task.trace or (
            entry.get("trace") if isinstance(entry.get("trace"), dict) else None
        )
        self.queue.append(task.key)
        client.outstanding.add(task.key)
        self._record(
            "task",
            key=task.key,
            run=client.run_id,
            code=client.fingerprint,
            order=task.order,
            group=task.group or None,
            payload=task.payload,
            trace=task.trace,
            recomputed=True,
        )
        return False

    # ------------------------------------------------------------------
    # lease reaper + server lifecycle
    # ------------------------------------------------------------------

    async def _reap_leases(self) -> None:
        """Re-lease tasks whose workers stopped heartbeating."""
        interval = max(0.02, self.config.lease_timeout / 4.0)
        while not self._stopping.is_set():
            with contextlib.suppress(asyncio.TimeoutError):
                await asyncio.wait_for(self._wake_reaper.wait(), timeout=interval)
            self._wake_reaper.clear()
            now = time.monotonic()
            for task in list(self.tasks.values()):
                if task.status == LEASED and now > task.deadline:
                    worker = self.workers.get(task.worker or "")
                    if worker is not None:
                        worker.leased.discard(task.key)
                    await self._release_lease(task, reason="lease expired (heartbeat lapse)")
            self._snapshot_state()

    async def serve(self) -> None:
        """Bind, announce the port, and run until :meth:`shutdown`."""
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            ssl=self.config.tls_context(),
        )
        sockets = self._server.sockets or []
        self.port = sockets[0].getsockname()[1] if sockets else self.config.port
        if self.config.port_file is not None:
            port_path = Path(self.config.port_file)
            port_path.parent.mkdir(parents=True, exist_ok=True)
            port_path.write_text(f"{self.port}\n", encoding="utf-8")
        self._record(
            "broker-start",
            broker=self.broker_id,
            port=self.port,
            generation=self.generation,
            recovered=self._recovered,
        )
        reaper = asyncio.ensure_future(self._reap_leases())
        try:
            await self._stopping.wait()
        finally:
            reaper.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await reaper
            self._server.close()
            await self._server.wait_closed()
            for session in list(self._sessions):
                session.cancel()
            if self._sessions:
                await asyncio.gather(*self._sessions, return_exceptions=True)
            self._record("broker-stop", broker=self.broker_id)
            self._write_fleet_prom()
            self._write_manifest()
            if self.store is not None:
                self.store.close()

    def shutdown(self) -> None:
        """Request an orderly stop (signal-handler and test safe)."""
        self._stopping.set()
        self._wake_reaper.set()

    def _write_manifest(self) -> None:
        """Stamp the state dir with the standard telemetry run manifest."""
        if self.store is None:
            return
        from repro.telemetry.manifest import build_manifest, write_manifest

        tel = _telemetry_current()
        # Without a process-wide telemetry session the broker still has its
        # own fleet registry — the manifest is never metrics-blind.
        metrics = tel.registry.snapshot() if tel is not None else self.metrics.snapshot()
        config = {
            "role": "broker",
            "broker": self.broker_id,
            "generation": self.generation,
            "auth": self.config.auth_token is not None,
            "tls": self.config.tls_cert is not None,
            "host": self.config.host,
            "port": self.port,
            "lease_timeout": self.config.lease_timeout,
            "max_retries": self.config.max_retries,
            "max_releases": self.config.max_releases,
            "cache_dir": str(self.config.cache_dir) if self.config.cache_dir else None,
            "workers_seen": sorted(
                {e.get("worker") for e in self._worker_events()} - {None}
            ),
            "tasks_total": len(self.tasks),
            "releases_total": sum(t.releases for t in self.tasks.values()),
        }
        write_manifest(build_manifest(config, seeds=[], metrics=metrics), self.store.directory)

    def _worker_events(self) -> list[dict[str, Any]]:
        from repro.distributed.store import read_events

        if self.store is None:
            return []
        return [e for e in read_events(self.store.directory) if e["event"] == "worker-join"]


def run_broker(config: BrokerConfig, announce=None) -> None:
    """Blocking broker entry point with SIGINT/SIGTERM orderly shutdown."""
    import signal

    async def _main() -> None:
        broker = Broker(config)
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError, ValueError):
                loop.add_signal_handler(sig, broker.shutdown)
        serve = asyncio.ensure_future(broker.serve())
        # Wait for the bind so the announcement carries the real port.
        while broker.port is None and not serve.done():
            await asyncio.sleep(0.01)
        if announce is not None and broker.port is not None:
            announce(broker.port)
        await serve

    asyncio.run(_main())


def resolve_address(address: str) -> tuple[str, int]:
    """Parse ``host:port`` (or ``:port`` / bare port) into a socket address."""
    from repro.errors import DistributedError

    text = address.strip()
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "", text
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError as err:
        raise DistributedError(f"invalid broker address {address!r}: {err}") from err
    if not (0 < port < 65536):
        raise DistributedError(f"invalid broker port {port} in {address!r}")
    try:
        socket.getaddrinfo(host, port)
    except socket.gaierror as err:
        raise DistributedError(f"unresolvable broker host {host!r}: {err}") from err
    return host, port
