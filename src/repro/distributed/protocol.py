"""Wire protocol for the broker-backed distributed runner.

Every message on a broker connection is one **frame**: a 4-byte unsigned
big-endian length prefix followed by that many bytes of UTF-8 JSON (one
object per frame). The prefix makes torn writes self-evident — a peer
that dies mid-frame leaves a short read, never a half-parsed message —
which is what lets the broker treat *any* malformed tail as "this peer is
gone" and re-lease its work.

Frame vocabulary (the ``type`` key), by direction:

worker → broker
    ``hello``      role="worker", worker id, protocol + code fingerprint;
                   optional ``slots`` = concurrent leases this process
                   drives (``repro worker --jobs``)
    ``auth``       HMAC answer to a ``challenge`` (see :func:`auth_response`)
    ``lease``      request one task
    ``heartbeat``  the leased task ``key`` is still making progress;
                   optional ``keys`` = every key a multi-slot worker
                   holds (legacy single ``key`` kept for one-slot peers);
                   optional ``metrics`` = compressed registry snapshot
    ``reattach``   after a reconnect: ``keys`` the worker is still
                   computing from leases granted before the link (or the
                   broker) went down; broker answers ``reattach-ok``
    ``complete``   finished task: ``key`` + the execute_task result bundle
                   (which may carry transient ``spans``/``upload_start``
                   telemetry riders); optional ``metrics`` as above
    ``fail``       task raised: ``key`` + error string
    ``bye``        clean disconnect

broker → worker
    ``challenge``  auth nonce, sent before ``welcome`` when the broker
                   runs with ``--auth-token``; the peer's next frame must
                   be a valid ``auth``
    ``welcome``    protocol echo, heartbeat interval, lease timeout,
                   broker ``generation`` (increments per restart recovery)
    ``task``       a leased payload (with any checkpoint plumbing attached;
                   optional ``trace`` = per-lease span context
                   ``{"trace", "parent", "origin"}``)
    ``idle``       no work right now (``drain`` tells the worker a
                   ``--exit-when-idle`` fleet may stand down)
    ``reattach-ok`` which reattach ``keys`` were ``adopted`` (lease
                   continues, heartbeats resume) vs ``rejected`` (already
                   resolved or re-leased elsewhere; drop the slot)
    ``error``      protocol/auth/fingerprint rejection (connection closes)

client → broker
    ``hello``      role="client", run id, code fingerprint
    ``auth``       as for workers
    ``submit``     batch of ``{"key", "payload"}`` tasks to execute; each
                   entry may carry an optional ``trace`` context
                   (``{"trace", "parent"}``) minted by the submitting run

broker → client
    ``challenge``  as for workers
    ``result``     one finished task: key, outcome bundle, provenance
                   (worker identity, source, releases, resumed_round)
    ``task_failed`` a task that exhausted its retry/release budget
    ``event``      forwarded fleet telemetry (worker join/leave, lease,
                   re-lease, reattach, ``span`` lifecycle records,
                   aggregated ``fleet-stats``) for live progress
                   aggregation
    ``done``       every submitted task is resolved

Version policy: :data:`PROTOCOL` is a strict-equality handshake, so it is
bumped only on *incompatible* changes. The telemetry fields above
(``metrics``, ``trace``, ``span``/``fleet-stats`` events) are **additive
and optional** — every peer ignores them when absent and emits them only
when the other side can tolerate extra keys — so ``repro-broker/v1``
still names this dialect; see ``docs/distributed.md`` for the field-level
compatibility notes. The crash-recovery frames follow the same rule:
``challenge``/``auth`` only appear when both sides opt into a token,
``reattach`` is only sent by workers that survived a disconnect, and
``slots``/``keys``/``generation`` are ignorable extras — an old peer and
a new broker still interoperate (minus the new behaviours).

Delivery contract: **at-least-once**. Task keys are content-addressed
digests (:func:`repro.parallel.keys.task_digest`), so re-executing a
re-leased task is idempotent — the first ``complete`` for a key wins and
any later duplicate is acknowledged and discarded.

Both a blocking (socket) and an asyncio (stream) codec are provided; the
broker is asyncio, while workers and the runner client use plain sockets.
"""

from __future__ import annotations

import asyncio
import hashlib
import hmac
import json
import socket
import struct
from typing import Any

from repro.errors import ProtocolError

__all__ = [
    "PROTOCOL",
    "MAX_FRAME_BYTES",
    "auth_response",
    "connect_broker",
    "encode_frame",
    "send_frame",
    "recv_frame",
    "open_hello",
    "read_frame_async",
    "write_frame_async",
]

#: Version tag exchanged in hello/welcome; bumped on incompatible changes.
PROTOCOL = "repro-broker/v1"


def auth_response(token: str, nonce: str, role: str) -> str:
    """The expected ``auth`` frame MAC for a ``challenge`` nonce.

    HMAC-SHA256 keyed by the shared ``--auth-token``, over the broker's
    one-time nonce bound to the peer's declared role (so a worker MAC
    can't be replayed as a client one). The token itself never crosses
    the wire; pair with TLS when the network can read traffic.
    """
    message = f"{nonce}:{role}".encode("utf-8")
    return hmac.new(token.encode("utf-8"), message, hashlib.sha256).hexdigest()

#: Upper bound on one frame's JSON body. Outcome payloads are a few KiB;
#: anything near this limit indicates a corrupt length prefix, not data.
MAX_FRAME_BYTES = 64 * 1024 * 1024

_HEADER = struct.Struct(">I")


def encode_frame(message: dict[str, Any]) -> bytes:
    """Length-prefixed JSON encoding of one message."""
    body = json.dumps(message, sort_keys=True, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:  # pragma: no cover - would need a huge payload
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME_BYTES}")
    return _HEADER.pack(len(body)) + body


def _decode_body(body: bytes) -> dict[str, Any]:
    try:
        message = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as err:
        raise ProtocolError(f"undecodable frame body: {err}") from err
    if not isinstance(message, dict) or "type" not in message:
        raise ProtocolError("frame must be a JSON object with a 'type'")
    return message


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(f"frame length {length} exceeds {MAX_FRAME_BYTES} (corrupt prefix?)")


# ----------------------------------------------------------------------
# blocking codec (workers, runner client)
# ----------------------------------------------------------------------


def send_frame(sock: socket.socket, message: dict[str, Any]) -> None:
    """Write one frame to a connected socket (blocking)."""
    sock.sendall(encode_frame(message))


def _recv_exact(sock: socket.socket, count: int) -> bytes | None:
    """Read exactly ``count`` bytes; None on clean EOF at a frame boundary.

    EOF *inside* a frame raises :class:`ProtocolError` — that is a torn
    write from a dead peer, not a clean goodbye.
    """
    chunks: list[bytes] = []
    got = 0
    while got < count:
        chunk = sock.recv(min(65536, count - got))
        if not chunk:
            if got == 0:
                return None
            raise ProtocolError(f"connection closed mid-frame ({got}/{count} bytes)")
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> dict[str, Any] | None:
    """Read one frame (blocking); None when the peer closed cleanly."""
    header = _recv_exact(sock, _HEADER.size)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    body = _recv_exact(sock, length)
    if body is None:
        raise ProtocolError("connection closed between header and body")
    return _decode_body(body)


def connect_broker(
    host: str, port: int, tls_ca: Any = None, timeout: float = 30.0
) -> socket.socket:
    """Open a (possibly TLS-wrapped) blocking connection to the broker.

    ``tls_ca`` is the path of the PEM certificate (or CA bundle) that
    signed the broker's ``--tls-cert``. Chain verification stays on;
    hostname checking is off — fleets address brokers by IP/port from a
    port file, and the shared CA (plus ``--auth-token``) is the identity
    claim, not a DNS name.
    """
    sock = socket.create_connection((host, port), timeout=timeout)
    if tls_ca is not None:
        import ssl

        context = ssl.create_default_context(cafile=str(tls_ca))
        context.check_hostname = False
        sock = context.wrap_socket(sock)
    sock.settimeout(None)
    return sock


def open_hello(
    sock: socket.socket, hello: dict[str, Any], auth_token: str | None = None
) -> dict[str, Any] | None:
    """Send the session-opening ``hello`` and clear any auth challenge.

    Returns the broker's next substantive frame (``welcome`` or
    ``error``); the caller keeps its existing handling for those. Raises
    when the broker demands authentication and no token was configured
    — the actionable half of the exit-2 diagnostic.
    """
    from repro.errors import DistributedError

    send_frame(sock, hello)
    frame = recv_frame(sock)
    if frame is not None and frame.get("type") == "challenge":
        if not auth_token:
            raise DistributedError(
                "broker requires authentication: pass the fleet's shared --auth-token"
            )
        role = str(hello.get("role", ""))
        mac = auth_response(auth_token, str(frame.get("nonce", "")), role)
        send_frame(sock, {"type": "auth", "mac": mac})
        frame = recv_frame(sock)
    return frame


# ----------------------------------------------------------------------
# asyncio codec (broker)
# ----------------------------------------------------------------------


async def read_frame_async(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame from a stream; None when the peer closed cleanly."""
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as err:
        if not err.partial:
            return None
        raise ProtocolError("connection closed mid-header") from err
    (length,) = _HEADER.unpack(header)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as err:
        raise ProtocolError(f"connection closed mid-frame ({len(err.partial)}/{length})") from err
    return _decode_body(body)


async def write_frame_async(writer: asyncio.StreamWriter, message: dict[str, Any]) -> None:
    """Write one frame to a stream and drain the transport buffer."""
    writer.write(encode_frame(message))
    await writer.drain()
