"""Preemptible worker: lease → execute → heartbeat → complete, forever.

A worker is one process driving ``jobs`` concurrent execution slots
(``repro worker --jobs K``). Parallelism beyond one host comes from
running several workers; preemption-tolerance comes from the broker's
lease/heartbeat machinery, not from anything the worker promises — a
worker may be SIGKILLed at *any* instruction and the sweep still
completes:

* killed mid-task: heartbeats stop, the lease lapses (or the connection
  drop is noticed sooner), the broker re-leases; with checkpointing
  configured the next worker resumes from the newest snapshot.
* killed mid-result-upload: the torn frame is detected by the length
  prefix, the broker drops the connection and re-leases; the recompute
  is idempotent by task-digest construction.

A worker that merely loses its *connection* (broker restart, network
blip) is gentler than a dead one: compute slots keep running, the main
loop reconnects with jittered exponential backoff, re-announces the
leases it still holds via a ``reattach`` frame, and uploads any results
that finished while the link was down. SIGTERM is gentler still — a
bounded final-upload window drains finished results before exit instead
of abandoning them to re-lease.

Tasks execute through the exact same entry point as the process-pool
runner (:func:`repro.parallel.tasks.execute_task`), so a distributed
sweep's outcome payloads are byte-identical to a local run's.

Thread layout: the main thread owns the socket (all receives, all
sends); slot threads only compute and hand finished frames to an outbox
queue; one heartbeat thread pulses the full set of held keys. Frame
writes are serialized by a lock so a heartbeat never interleaves inside
a ``complete`` frame.
"""

from __future__ import annotations

import os
import platform
import queue
import random
import signal
import socket
import threading
import time
from typing import Any, Callable

from repro.distributed.protocol import (
    PROTOCOL,
    connect_broker,
    open_hello,
    recv_frame,
    send_frame,
)
from repro.errors import DistributedError, ProtocolError

__all__ = ["Worker", "WorkerStats", "default_worker_id"]


def default_worker_id() -> str:
    return f"{platform.node() or 'host'}-{os.getpid()}"


class _Rejected(DistributedError):
    """The broker explicitly refused this session (auth token mismatch,
    protocol skew) — a configuration error, not a transient outage, so
    reconnect attempts would only repeat the rejection."""


class WorkerStats:
    """Counters one worker accumulates over its lifetime."""

    def __init__(self) -> None:
        self.completed = 0
        self.failed = 0
        self.resumed = 0
        self.idle_polls = 0
        self.reconnects = 0
        self.reattached = 0

    def summary(self) -> str:
        return (
            f"completed {self.completed}, failed {self.failed}, "
            f"resumed-from-checkpoint {self.resumed}, idle polls {self.idle_polls}, "
            f"reconnects {self.reconnects}, reattached leases {self.reattached}"
        )


class _Heartbeat:
    """Daemon thread pulsing ``heartbeat`` frames for every held key.

    One thread serves all slots: each pulse carries the full ``keys``
    list (plus the legacy single ``key`` for older brokers) so one frame
    refreshes every lease this process holds — and, over a fresh
    connection after a broker restart, doubles as the re-adoption
    signal. With ``metrics_fn`` set, pulses piggyback a compressed
    :class:`~repro.telemetry.registry.MetricsRegistry` snapshot; the
    callable runs on the heartbeat thread and must not raise — a
    snapshot failure silently degrades to a plain heartbeat.
    """

    def __init__(
        self,
        sock: socket.socket,
        lock: threading.Lock,
        keys_fn: Callable[[], list[str]],
        interval: float,
        metrics_fn: Callable[[], str | None] | None = None,
    ):
        self._sock = sock
        self._lock = lock
        self._keys_fn = keys_fn
        self._interval = interval
        self._metrics_fn = metrics_fn
        self._stop = threading.Event()
        #: Set when a pulse hit a dead socket. The main loop polls this
        #: while every slot is busy (its only moment with no socket I/O of
        #: its own), so a broker that died mid-computation triggers an
        #: immediate reconnect-and-reattach instead of waiting for the
        #: next task to finish.
        self.lost = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            keys = self._keys_fn()
            if not keys:
                continue  # nothing leased, nothing to refresh
            frame: dict[str, Any] = {"type": "heartbeat", "key": keys[0], "keys": keys}
            if self._metrics_fn is not None:
                try:
                    blob = self._metrics_fn()
                except Exception:  # noqa: BLE001 - telemetry must not kill the pulse
                    blob = None
                if blob:
                    frame["metrics"] = blob
            try:
                with self._lock:
                    send_frame(self._sock, frame)
            except OSError:
                self.lost.set()
                return  # socket is gone; the main loop reconnects

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


class Worker:
    """One worker process with ``jobs`` execution slots (see module docstring).

    Parameters
    ----------
    address:
        ``host:port`` of the broker.
    worker_id:
        Fleet-visible identity; defaults to ``<hostname>-<pid>``.
    jobs:
        Concurrent leases this process drives. Each slot gets its own
        checkpoint directory (keyed by task digest, broker-side) and its
        own trace-span origin.
    exit_when_idle:
        Leave once the broker reports its queue drained (work was
        submitted and everything resolved) — the benchmark/CI mode.
        Without it the worker polls forever, spot-fleet style.
    poll:
        Idle backoff between lease requests with an empty queue.
    max_reconnects:
        Consecutive connection failures tolerated before giving up.
        Reconnect delays are jittered exponential backoff, so a fleet
        doesn't stampede a freshly restarted broker.
    auth_token:
        Shared secret answering the broker's ``challenge`` (see
        :func:`repro.distributed.protocol.auth_response`).
    tls_ca:
        PEM certificate that signed the broker's ``--tls-cert``;
        enables TLS on the connection.
    final_upload_window:
        Seconds SIGTERM waits for finished results to upload before the
        process exits (still-running slots are abandoned to re-lease).
    task_fn:
        Execution hook (tests override it); defaults to
        :func:`repro.parallel.tasks.execute_task`.
    telemetry:
        Keep a private :class:`~repro.telemetry.registry.MetricsRegistry`
        of task counts/latencies and piggyback compressed snapshots on
        heartbeat and complete frames for fleet aggregation. Off by
        default; never touches the process-wide telemetry session or any
        simulation RNG.
    """

    def __init__(
        self,
        address: str,
        worker_id: str | None = None,
        jobs: int = 1,
        exit_when_idle: bool = False,
        poll: float = 0.2,
        max_reconnects: int = 5,
        reconnect_backoff: float = 0.25,
        auth_token: str | None = None,
        tls_ca: Any = None,
        final_upload_window: float = 2.0,
        task_fn: Callable[[dict[str, Any]], dict[str, Any]] | None = None,
        log=None,
        telemetry: bool = False,
    ) -> None:
        from repro.distributed.broker import resolve_address

        self.host, self.port = resolve_address(address)
        self.worker_id = worker_id if worker_id is not None else default_worker_id()
        self.jobs = max(1, int(jobs))
        self.exit_when_idle = exit_when_idle
        self.poll = poll
        self.max_reconnects = max_reconnects
        self.reconnect_backoff = reconnect_backoff
        self.auth_token = auth_token
        self.tls_ca = tls_ca
        self.final_upload_window = final_upload_window
        self.task_fn = task_fn
        self.log = log
        self.stats = WorkerStats()
        self._stop = False
        # Cross-thread state: slot threads finish into the outbox; the
        # held map (key -> label) feeds heartbeats and reattach frames.
        self._outbox: queue.Queue = queue.Queue()
        self._backlog: list[tuple[dict[str, Any], dict[str, Any]]] = []
        self._held: dict[str, str] = {}
        self._held_lock = threading.Lock()
        self._abandoned: set[str] = set()
        self._slot_serial = 0
        self.registry = None
        if telemetry:
            from repro.telemetry.registry import MetricsRegistry

            self.registry = MetricsRegistry()

    def _snapshot_blob(self) -> str | None:
        """Compressed registry snapshot for frame piggybacking (or None)."""
        if self.registry is None or not len(self.registry):
            return None
        from repro.telemetry.fleet import compress_snapshot

        return compress_snapshot(self.registry.snapshot())

    def _observe_task(self, kind: str, elapsed: float | None, *, failed: bool = False) -> None:
        if self.registry is None:
            return
        self.registry.counter(
            "worker_tasks_total", "Tasks finished by this worker."
        ).inc(status="failed" if failed else "ok")
        if elapsed is not None:
            self.registry.histogram(
                "worker_task_seconds", "Per-task compute seconds on this worker."
            ).observe(float(elapsed), kind=kind)

    def _say(self, message: str) -> None:
        if self.log is not None:
            self.log.write(f"[{self.worker_id}] {message}\n")
            self.log.flush()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT drain finished results (bounded), then exit."""

        def handle(signum: int, frame: Any) -> None:
            self._stop = True

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                signal.signal(sig, handle)
            except ValueError:  # not the main thread (tests)
                return

    # ------------------------------------------------------------------
    # slot threads
    # ------------------------------------------------------------------

    def _held_keys(self) -> list[str]:
        with self._held_lock:
            return list(self._held)

    def _execute(self, payload: dict[str, Any]) -> dict[str, Any]:
        if self.task_fn is not None:
            return self.task_fn(payload)
        from repro.parallel.tasks import execute_task

        return execute_task(payload)

    def _start_slot(self, frame: dict[str, Any]) -> None:
        """Launch one compute thread for a freshly leased task."""
        from repro.parallel.tasks import TaskSpec

        key = frame["key"]
        payload = dict(frame["payload"])
        if frame.get("checkpoint"):
            payload["checkpoint"] = frame["checkpoint"]
        self._slot_serial += 1
        if frame.get("trace"):
            # Per-lease trace context, minted by the broker: the running
            # span parents under *this* lease attempt, and the slot's
            # span ids are prefixed by worker identity + slot serial so
            # concurrent slots (or a re-execution of the same task) never
            # collide.
            payload["trace"] = dict(
                frame["trace"], origin=f"{self.worker_id}/s{self._slot_serial}"
            )
        spec = TaskSpec.from_payload(payload)
        label = spec.label
        with self._held_lock:
            self._held[key] = label
            self._abandoned.discard(key)
        self._say(f"leased {label}")
        threading.Thread(
            target=self._slot_main, args=(key, payload, label, spec.kind), daemon=True
        ).start()

    def _slot_main(self, key: str, payload: dict[str, Any], label: str, kind: str) -> None:
        """Compute one task and queue its result frame for the main loop."""
        from repro.faults.chaos import maybe_chaos

        try:
            result = self._execute(payload)
        except Exception as err:  # noqa: BLE001 - forwarded to the broker
            frame: dict[str, Any] = {
                "type": "fail",
                "key": key,
                "error": f"{type(err).__name__}: {err}",
            }
            meta = {"label": label, "kind": kind, "failed": True, "elapsed": None}
        else:
            # Stamped before the chaos window below so the broker-closed
            # upload span covers serialization, the wire, and any stall.
            result["upload_start"] = time.time()
            # Chaos hook for the preemption tests: lets CI kill a worker in
            # the window between computing a result and uploading it, to
            # prove a torn upload is re-leased and recomputed losslessly.
            maybe_chaos(f"upload {label}")
            result["worker"] = self.worker_id
            frame = {"type": "complete", "key": key, "result": result}
            meta = {
                "label": label,
                "kind": kind,
                "failed": False,
                "elapsed": result.get("elapsed"),
                "resumed": result.get("resumed_round") is not None,
            }
        with self._held_lock:
            self._held.pop(key, None)
            dropped = key in self._abandoned
            self._abandoned.discard(key)
        if dropped:
            # The broker rejected our reattach for this key (it was
            # re-leased elsewhere or already resolved) — the result would
            # only be recorded as a duplicate, so don't upload it.
            self._say(f"dropped {label} (lease lost while disconnected)")
            return
        self._outbox.put((frame, meta))

    # ------------------------------------------------------------------
    # main loop: the only thread touching the socket besides heartbeats
    # ------------------------------------------------------------------

    def _collect(self, timeout: float | None = None) -> None:
        """Move finished-slot frames from the outbox into the send backlog."""
        try:
            first = self._outbox.get(timeout=timeout) if timeout else self._outbox.get_nowait()
        except queue.Empty:
            return
        self._backlog.append(first)
        while True:
            try:
                self._backlog.append(self._outbox.get_nowait())
            except queue.Empty:
                return

    def _flush(self, sock: socket.socket, send_lock: threading.Lock) -> None:
        """Upload the backlog; a frame survives in it until its send returns.

        The backlog is what makes results durable across reconnects: a
        send that dies mid-frame leaves the frame queued for the next
        connection (the broker tolerates the duplicate).
        """
        while self._backlog:
            frame, meta = self._backlog[0]
            if frame["type"] == "complete":
                blob = self._snapshot_blob()
                if blob:
                    frame["metrics"] = blob
            with send_lock:
                send_frame(sock, frame)
            self._backlog.pop(0)
            if meta["failed"]:
                self.stats.failed += 1
                self._say(f"failed {meta['label']}")
            else:
                self.stats.completed += 1
                if meta.get("resumed"):
                    self.stats.resumed += 1
                self._say(f"completed {meta['label']}")
            self._observe_task(meta["kind"], meta["elapsed"], failed=meta["failed"])

    def _drained(self) -> bool:
        with self._held_lock:
            busy = bool(self._held)
        return not busy and not self._backlog and self._outbox.empty()

    def _free_slots(self) -> int:
        with self._held_lock:
            return self.jobs - len(self._held)

    def _reattach(self, sock: socket.socket, send_lock: threading.Lock) -> None:
        """Re-announce held leases over a fresh connection.

        Rejected keys (re-leased elsewhere, or resolved while we were
        gone) are marked abandoned: their slots finish but their results
        are dropped instead of uploaded.
        """
        keys = self._held_keys()
        if not keys:
            return
        with send_lock:
            send_frame(sock, {"type": "reattach", "keys": keys})
        reply = recv_frame(sock)
        if reply is None:
            raise DistributedError("broker closed during reattach")
        if reply.get("type") != "reattach-ok":
            raise ProtocolError(f"expected reattach-ok, got {reply.get('type')!r}")
        adopted = [k for k in reply.get("adopted") or [] if isinstance(k, str)]
        rejected = [k for k in reply.get("rejected") or [] if isinstance(k, str)]
        self.stats.reattached += len(adopted)
        with self._held_lock:
            for key in rejected:
                if key in self._held:
                    self._abandoned.add(key)
        if rejected:
            self._say(f"reattach: {len(adopted)} adopted, {len(rejected)} rejected")
        elif adopted:
            self._say(f"reattached {len(adopted)} lease(s)")

    def _connect(self) -> tuple[socket.socket, dict[str, Any]]:
        from repro.parallel.keys import measurement_fingerprint

        sock = connect_broker(self.host, self.port, tls_ca=self.tls_ca)
        try:
            welcome = open_hello(
                sock,
                {
                    "type": "hello",
                    "role": "worker",
                    "protocol": PROTOCOL,
                    "worker": self.worker_id,
                    "code": measurement_fingerprint(),
                    "pid": os.getpid(),
                    "slots": self.jobs,
                },
                auth_token=self.auth_token,
            )
        except DistributedError as err:
            sock.close()
            raise _Rejected(str(err)) from err
        except ProtocolError:
            sock.close()
            raise
        if welcome is None:
            sock.close()
            raise DistributedError("connection closed during handshake")
        if welcome.get("type") == "error":
            error = welcome.get("error")
            sock.close()
            raise _Rejected(f"broker rejected worker: {error}")
        if welcome.get("type") != "welcome":
            sock.close()
            raise ProtocolError(f"expected welcome, got {welcome.get('type')!r}")
        return sock, welcome

    def _serve_connection(self, sock: socket.socket, welcome: dict[str, Any]) -> bool:
        """Lease/execute until drained or stopped. True = exit the worker."""
        heartbeat_interval = float(welcome.get("heartbeat", 5.0))
        send_lock = threading.Lock()
        self._reattach(sock, send_lock)
        with _Heartbeat(
            sock, send_lock, self._held_keys, heartbeat_interval, metrics_fn=self._snapshot_blob
        ) as pulse:
            while True:
                self._collect()
                self._flush(sock, send_lock)
                if self._stop:
                    return self._final_upload(sock, send_lock)
                if self._free_slots() <= 0:
                    # All slots busy: wait for a result, not for the broker
                    # — unless a heartbeat found the broker gone, in which
                    # case reconnect now so the leases reattach in time.
                    if pulse.lost.is_set():
                        raise DistributedError("broker connection lost (heartbeat failed)")
                    self._collect(timeout=self.poll)
                    continue
                with send_lock:
                    send_frame(sock, {"type": "lease"})
                frame = recv_frame(sock)
                if frame is None:
                    raise DistributedError("broker closed the connection")
                kind = frame.get("type")
                if kind == "task":
                    self._start_slot(frame)
                    continue
                if kind == "idle":
                    self.stats.idle_polls += 1
                    if self.exit_when_idle and frame.get("drain") and self._drained():
                        with send_lock:
                            send_frame(sock, {"type": "bye"})
                        return True
                    self._collect(timeout=self.poll)
                    continue
                raise ProtocolError(f"expected task/idle, got {kind!r}")

    def _final_upload(self, sock: socket.socket, send_lock: threading.Lock) -> bool:
        """Bounded SIGTERM drain: ship what finished, abandon what didn't.

        Results already computed (or finishing within the window) are
        uploaded instead of being thrown back for a full re-lease; slots
        still running at the deadline die with the process and re-lease
        as usual.
        """
        deadline = time.monotonic() + self.final_upload_window
        self._say(f"stopping: draining results for up to {self.final_upload_window:.1f}s")
        while time.monotonic() < deadline:
            self._collect(timeout=0.05)
            self._flush(sock, send_lock)
            if self._drained():
                break
        with send_lock:
            send_frame(sock, {"type": "bye"})
        return True

    def _backoff_delay(self, failures: int) -> float:
        """Jittered exponential backoff so fleets don't stampede a restart."""
        base = self.reconnect_backoff * (2 ** max(0, failures - 1))
        return min(10.0, base) * (0.5 + random.random())

    def run(self) -> int:
        """Main loop with bounded reconnects; returns a process exit code."""
        failures = 0
        connected_once = False
        while True:
            try:
                sock, welcome = self._connect()
            except _Rejected as err:
                # Retrying a rejection only repeats it; surface the
                # configuration problem immediately.
                self._say(f"{err}")
                raise DistributedError(str(err)) from err
            except (OSError, DistributedError, ProtocolError) as err:
                failures += 1
                if self._stop or failures > self.max_reconnects:
                    self._say(f"giving up after {failures} connection failures: {err}")
                    return 1
                time.sleep(self._backoff_delay(failures))
                continue
            failures = 0
            if connected_once:
                self.stats.reconnects += 1
            connected_once = True
            self._say(f"connected to {self.host}:{self.port}")
            try:
                if self._serve_connection(sock, welcome):
                    self._say(f"done: {self.stats.summary()}")
                    return 0
            except (OSError, DistributedError, ProtocolError) as err:
                self._say(f"connection lost: {err}")
                failures += 1
                if self._stop:
                    # The final-upload window shouldn't fight a dead link
                    # for long: one quick retry, then exit.
                    if failures > 1:
                        return 0
                elif failures > self.max_reconnects:
                    return 1
                time.sleep(min(self._backoff_delay(failures), 1.0 if self._stop else 60.0))
            finally:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - close races
                    pass
