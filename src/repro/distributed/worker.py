"""Preemptible worker: lease → execute → heartbeat → complete, forever.

A worker is one process with one execution slot. Parallelism comes from
running several workers (on one host or many); preemption-tolerance
comes from the broker's lease/heartbeat machinery, not from anything the
worker promises — a worker may be SIGKILLed at *any* instruction and the
sweep still completes:

* killed mid-task: heartbeats stop, the lease lapses (or the connection
  drop is noticed sooner), the broker re-leases; with checkpointing
  configured the next worker resumes from the newest snapshot.
* killed mid-result-upload: the torn frame is detected by the length
  prefix, the broker drops the connection and re-leases; the recompute
  is idempotent by task-digest construction.

Tasks execute through the exact same entry point as the process-pool
runner (:func:`repro.parallel.tasks.execute_task`), so a distributed
sweep's outcome payloads are byte-identical to a local run's.

Heartbeats are sent from a daemon thread while the main thread computes;
frame writes are serialized by a lock so a heartbeat never interleaves
inside a ``complete`` frame.
"""

from __future__ import annotations

import os
import platform
import signal
import socket
import threading
import time
from typing import Any, Callable

from repro.distributed.protocol import PROTOCOL, recv_frame, send_frame
from repro.errors import DistributedError, ProtocolError

__all__ = ["Worker", "WorkerStats", "default_worker_id"]


def default_worker_id() -> str:
    return f"{platform.node() or 'host'}-{os.getpid()}"


class WorkerStats:
    """Counters one worker accumulates over its lifetime."""

    def __init__(self) -> None:
        self.completed = 0
        self.failed = 0
        self.resumed = 0
        self.idle_polls = 0

    def summary(self) -> str:
        return (
            f"completed {self.completed}, failed {self.failed}, "
            f"resumed-from-checkpoint {self.resumed}, idle polls {self.idle_polls}"
        )


class _Heartbeat:
    """Daemon thread pulsing ``heartbeat`` frames for the leased key.

    With ``metrics_fn`` set, each pulse piggybacks a compressed
    :class:`~repro.telemetry.registry.MetricsRegistry` snapshot in the
    frame's ``metrics`` field — the broker merges these into the fleet
    registry. ``metrics_fn`` runs on the heartbeat thread and must not
    raise; a snapshot failure silently degrades to a plain heartbeat.
    """

    def __init__(
        self,
        sock: socket.socket,
        lock: threading.Lock,
        key: str,
        interval: float,
        metrics_fn: Callable[[], str | None] | None = None,
    ):
        self._sock = sock
        self._lock = lock
        self._key = key
        self._interval = interval
        self._metrics_fn = metrics_fn
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            frame: dict[str, Any] = {"type": "heartbeat", "key": self._key}
            if self._metrics_fn is not None:
                try:
                    blob = self._metrics_fn()
                except Exception:  # noqa: BLE001 - telemetry must not kill the pulse
                    blob = None
                if blob:
                    frame["metrics"] = blob
            try:
                with self._lock:
                    send_frame(self._sock, frame)
            except OSError:
                return  # socket is gone; the main loop will notice on send

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self._stop.set()
        self._thread.join(timeout=2.0)


class Worker:
    """One single-slot worker process (see module docstring).

    Parameters
    ----------
    address:
        ``host:port`` of the broker.
    worker_id:
        Fleet-visible identity; defaults to ``<hostname>-<pid>``.
    exit_when_idle:
        Leave once the broker reports its queue drained (work was
        submitted and everything resolved) — the benchmark/CI mode.
        Without it the worker polls forever, spot-fleet style.
    poll:
        Idle backoff between lease requests with an empty queue.
    max_reconnects:
        Consecutive connection failures tolerated before giving up.
    task_fn:
        Execution hook (tests override it); defaults to
        :func:`repro.parallel.tasks.execute_task`.
    telemetry:
        Keep a private :class:`~repro.telemetry.registry.MetricsRegistry`
        of task counts/latencies and piggyback compressed snapshots on
        heartbeat and complete frames for fleet aggregation. Off by
        default; never touches the process-wide telemetry session or any
        simulation RNG.
    """

    def __init__(
        self,
        address: str,
        worker_id: str | None = None,
        exit_when_idle: bool = False,
        poll: float = 0.2,
        max_reconnects: int = 5,
        reconnect_backoff: float = 0.25,
        task_fn: Callable[[dict[str, Any]], dict[str, Any]] | None = None,
        log=None,
        telemetry: bool = False,
    ) -> None:
        from repro.distributed.broker import resolve_address

        self.host, self.port = resolve_address(address)
        self.worker_id = worker_id if worker_id is not None else default_worker_id()
        self.exit_when_idle = exit_when_idle
        self.poll = poll
        self.max_reconnects = max_reconnects
        self.reconnect_backoff = reconnect_backoff
        self.task_fn = task_fn
        self.log = log
        self.stats = WorkerStats()
        self._stop = False
        self.registry = None
        if telemetry:
            from repro.telemetry.registry import MetricsRegistry

            self.registry = MetricsRegistry()

    def _snapshot_blob(self) -> str | None:
        """Compressed registry snapshot for frame piggybacking (or None)."""
        if self.registry is None or not len(self.registry):
            return None
        from repro.telemetry.fleet import compress_snapshot

        return compress_snapshot(self.registry.snapshot())

    def _observe_task(self, kind: str, elapsed: float | None, *, failed: bool = False) -> None:
        if self.registry is None:
            return
        self.registry.counter(
            "worker_tasks_total", "Tasks finished by this worker."
        ).inc(status="failed" if failed else "ok")
        if elapsed is not None:
            self.registry.histogram(
                "worker_task_seconds", "Per-task compute seconds on this worker."
            ).observe(float(elapsed), kind=kind)

    def _say(self, message: str) -> None:
        if self.log is not None:
            self.log.write(f"[{self.worker_id}] {message}\n")
            self.log.flush()

    def install_signal_handlers(self) -> None:
        """SIGTERM/SIGINT finish the current task, then exit cleanly."""

        def handle(signum: int, frame: Any) -> None:
            self._stop = True

        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                signal.signal(sig, handle)
            except ValueError:  # not the main thread (tests)
                return

    # ------------------------------------------------------------------

    def _connect(self) -> tuple[socket.socket, dict[str, Any]]:
        from repro.parallel.keys import measurement_fingerprint

        sock = socket.create_connection((self.host, self.port), timeout=30.0)
        sock.settimeout(None)
        send_frame(
            sock,
            {
                "type": "hello",
                "role": "worker",
                "protocol": PROTOCOL,
                "worker": self.worker_id,
                "code": measurement_fingerprint(),
                "pid": os.getpid(),
            },
        )
        welcome = recv_frame(sock)
        if welcome is None or welcome.get("type") == "error":
            error = "connection closed" if welcome is None else welcome.get("error")
            sock.close()
            raise DistributedError(f"broker rejected worker: {error}")
        if welcome.get("type") != "welcome":
            sock.close()
            raise ProtocolError(f"expected welcome, got {welcome.get('type')!r}")
        return sock, welcome

    def _execute(self, payload: dict[str, Any]) -> dict[str, Any]:
        if self.task_fn is not None:
            return self.task_fn(payload)
        from repro.parallel.tasks import execute_task

        return execute_task(payload)

    def _serve_connection(self, sock: socket.socket, welcome: dict[str, Any]) -> bool:
        """Lease/execute until drained or stopped. True = exit the worker."""
        from repro.faults.chaos import maybe_chaos
        from repro.parallel.tasks import TaskSpec

        heartbeat_interval = float(welcome.get("heartbeat", 5.0))
        send_lock = threading.Lock()
        while not self._stop:
            with send_lock:
                send_frame(sock, {"type": "lease"})
            frame = recv_frame(sock)
            if frame is None:
                raise DistributedError("broker closed the connection")
            kind = frame.get("type")
            if kind == "idle":
                self.stats.idle_polls += 1
                if self.exit_when_idle and frame.get("drain"):
                    with send_lock:
                        send_frame(sock, {"type": "bye"})
                    return True
                time.sleep(self.poll)
                continue
            if kind != "task":
                raise ProtocolError(f"expected task/idle, got {kind!r}")
            key = frame["key"]
            payload = dict(frame["payload"])
            if frame.get("checkpoint"):
                payload["checkpoint"] = frame["checkpoint"]
            if frame.get("trace"):
                # Per-lease trace context, minted by the broker: the
                # running span parents under *this* lease attempt, and the
                # worker's span ids are prefixed by its fleet identity.
                payload["trace"] = dict(frame["trace"], origin=self.worker_id)
            spec = TaskSpec.from_payload(payload)
            label = spec.label
            self._say(f"leased {label}")
            with _Heartbeat(
                sock, send_lock, key, heartbeat_interval, metrics_fn=self._snapshot_blob
            ):
                try:
                    result = self._execute(payload)
                except Exception as err:  # noqa: BLE001 - forwarded to the broker
                    self._observe_task(spec.kind, None, failed=True)
                    with send_lock:
                        send_frame(
                            sock,
                            {
                                "type": "fail",
                                "key": key,
                                "error": f"{type(err).__name__}: {err}",
                            },
                        )
                    self.stats.failed += 1
                    self._say(f"failed {label}: {err}")
                    continue
            self._observe_task(spec.kind, result.get("elapsed"))
            # Stamped before the chaos window below so the broker-closed
            # upload span covers serialization, the wire, and any stall.
            result["upload_start"] = time.time()
            # Chaos hook for the preemption tests: lets CI kill a worker in
            # the window between computing a result and uploading it, to
            # prove a torn upload is re-leased and recomputed losslessly.
            maybe_chaos(f"upload {label}")
            result["worker"] = self.worker_id
            complete: dict[str, Any] = {"type": "complete", "key": key, "result": result}
            blob = self._snapshot_blob()
            if blob:
                complete["metrics"] = blob
            with send_lock:
                send_frame(sock, complete)
            self.stats.completed += 1
            if result.get("resumed_round") is not None:
                self.stats.resumed += 1
            self._say(f"completed {label}")
        with send_lock:
            send_frame(sock, {"type": "bye"})
        return True

    def run(self) -> int:
        """Main loop with bounded reconnects; returns a process exit code."""
        failures = 0
        while True:
            try:
                sock, welcome = self._connect()
            except (OSError, DistributedError, ProtocolError) as err:
                failures += 1
                if failures > self.max_reconnects:
                    self._say(f"giving up after {failures} connection failures: {err}")
                    return 1
                time.sleep(self.reconnect_backoff * failures)
                continue
            failures = 0
            self._say(f"connected to {self.host}:{self.port}")
            try:
                if self._serve_connection(sock, welcome):
                    self._say(f"done: {self.stats.summary()}")
                    return 0
            except (OSError, DistributedError, ProtocolError) as err:
                self._say(f"connection lost: {err}")
                failures += 1
                if failures > self.max_reconnects:
                    return 1
                time.sleep(self.reconnect_backoff * failures)
            finally:
                try:
                    sock.close()
                except OSError:  # pragma: no cover - close races
                    pass
