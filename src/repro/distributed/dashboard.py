"""``repro dashboard``: sweep progress + perf trajectory, in plain text.

Two panels:

* **Sweep** — rendered from a broker ``--state-dir`` (``state.json`` +
  ``events.jsonl``): task progress bar, per-worker completion tallies,
  re-lease/retry counts, and cache-hit provenance. Works on a live dir
  (the broker atomically replaces ``state.json`` as it goes) and on a
  finished one.
* **Perf** — the ``BENCH_*.json`` trajectory: one row per benchmark
  artifact with its headline speedups, so the performance record across
  commits is readable at a glance next to the sweep it gates.

Everything is stdlib text rendering; the CLI writes the lines to stdout.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.distributed.store import SweepStateStore, read_events
from repro.errors import ConfigurationError

__all__ = ["render_dashboard", "render_sweep_panel", "render_bench_panel"]

_BAR_WIDTH = 40


def _bar(done: int, failed: int, total: int) -> str:
    if total <= 0:
        return "[" + " " * _BAR_WIDTH + "]"
    ok = int(_BAR_WIDTH * done / total)
    bad = int(_BAR_WIDTH * failed / total)
    if failed and bad == 0:
        bad = 1
    ok = min(ok, _BAR_WIDTH - bad)
    return "[" + "#" * ok + "x" * bad + "." * (_BAR_WIDTH - ok - bad) + "]"


def render_sweep_panel(state_dir: Path | str) -> list[str]:
    """Progress/fleet/provenance lines for one broker state directory."""
    state = SweepStateStore.load_state(state_dir)
    if state is None:
        raise ConfigurationError(f"no readable state.json under {state_dir}")
    resolved = state.tasks_done + state.tasks_failed
    lines = [
        f"sweep state: {Path(state_dir)}",
        f"tasks {_bar(state.tasks_done, state.tasks_failed, state.tasks_total)} "
        f"{resolved}/{state.tasks_total}"
        + (f"  ({state.tasks_failed} failed)" if state.tasks_failed else ""),
        f"queue depth {state.tasks_queued}  leased {state.tasks_leased}  "
        f"re-leases {state.releases_total}  retries {state.retries_total}",
    ]
    completions: dict[str, int] = {}
    releases: dict[str, int] = {}
    resumes: dict[str, int] = {}
    cache_hits: dict[str, int] = {}
    for event in read_events(state_dir):
        kind = event["event"]
        worker = event.get("worker")
        if kind == "complete" and worker:
            completions[worker] = completions.get(worker, 0) + 1
            if event.get("resumed_round") is not None:
                resumes[worker] = resumes.get(worker, 0) + 1
        elif kind == "re-lease" and worker:
            releases[worker] = releases.get(worker, 0) + 1
        elif kind == "cache-hit":
            source = event.get("source", "cache")
            cache_hits[source] = cache_hits.get(source, 0) + 1
    if completions or releases:
        lines.append("workers:")
        for worker in sorted(set(completions) | set(releases)):
            extra = ""
            if releases.get(worker):
                extra += f"  re-leased {releases[worker]}"
            if resumes.get(worker):
                extra += f"  resumed-from-checkpoint {resumes[worker]}"
            lines.append(f"  {worker:28s} completed {completions.get(worker, 0):4d}{extra}")
    if cache_hits:
        hits = "  ".join(f"{source} {count}" for source, count in sorted(cache_hits.items()))
        lines.append(f"cache hits: {hits}")
    return lines


def _headline(payload: dict[str, Any]) -> str:
    """One-line summary of a BENCH_*.json artifact's key ratios."""
    parts: list[str] = []
    kernel = payload.get("kernel_phase") or {}
    if isinstance(kernel, dict) and "speedup" in kernel:
        parts.append(f"kernel-phase {kernel['speedup']:.2f}x")
    general = payload.get("general_c") or {}
    if isinstance(general, dict) and "speedup" in general:
        parts.append(f"general-c {general['speedup']:.2f}x")
    grid = payload.get("grid") or []
    if grid:
        ratios = [row["fused_over_legacy"] for row in grid if "fused_over_legacy" in row]
        if ratios:
            parts.append(f"grid {min(ratios):.2f}-{max(ratios):.2f}x over {len(ratios)} cells")
    fabric = payload.get("fabric") or {}
    if isinstance(fabric, dict) and "speedup_4w_over_1w" in fabric:
        parts.append(f"fabric 4w/1w {fabric['speedup_4w_over_1w']:.2f}x")
    compute = payload.get("compute") or {}
    if isinstance(compute, dict) and "broker_4w" in compute:
        modes = compute
        parts.append(
            f"compute serial {modes.get('serial', 0):.2f} -> broker-4w "
            f"{modes.get('broker_4w', 0):.2f} task/s"
        )
    return "  ".join(parts) if parts else "(no recognised sections)"


def render_bench_panel(bench_paths: list[Path | str]) -> list[str]:
    """Perf-trajectory lines, one per readable benchmark artifact."""
    lines = ["perf trajectory:"]
    rendered = 0
    for path in bench_paths:
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            lines.append(f"  {path.name:24s} (unreadable)")
            continue
        profile = payload.get("profile", "?")
        lines.append(f"  {path.name:24s} profile={profile:8s} {_headline(payload)}")
        rendered += 1
    if rendered == 0 and len(lines) == 1:
        lines.append("  (no benchmark artifacts found)")
    return lines


def render_dashboard(
    state_dir: Path | str | None, bench_paths: list[Path | str] | None = None
) -> list[str]:
    """Assemble the full dashboard. At least one panel must have input."""
    if state_dir is None and not bench_paths:
        raise ConfigurationError("dashboard needs a state dir and/or --bench artifacts")
    lines: list[str] = []
    if state_dir is not None:
        lines.extend(render_sweep_panel(state_dir))
    if bench_paths:
        if lines:
            lines.append("")
        lines.extend(render_bench_panel(bench_paths))
    return lines
