"""``repro dashboard``: sweep progress + perf trajectory, in plain text.

Two panels:

* **Sweep** — rendered from a broker ``--state-dir`` (``state.json`` +
  ``events.jsonl``): task progress bar, per-worker completion tallies,
  re-lease/retry counts, and cache-hit provenance. Works on a live dir
  (the broker atomically replaces ``state.json`` as it goes) and on a
  finished one.
* **Perf** — the ``BENCH_*.json`` trajectory: one row per benchmark
  artifact with its headline speedups, so the performance record across
  commits is readable at a glance next to the sweep it gates.

Plus two optional panels:

* **Fleet** — per-worker latency quantiles and counters parsed back out
  of the broker's ``fleet.prom`` textfile (written beside ``state.json``
  when workers piggyback telemetry snapshots);
* **History** — a sparkline of each benchmark artifact's headline metric
  across its committed versions (``git log``/``git show``), so a perf
  regression is visible as a dip without opening any JSON.

Everything is stdlib text rendering; the CLI writes the lines to stdout
(``--watch`` re-renders on an interval).
"""

from __future__ import annotations

import json
import subprocess
from pathlib import Path
from typing import Any

from repro.distributed.store import SweepStateStore, _archive_paths, read_events
from repro.errors import ConfigurationError

__all__ = [
    "render_dashboard",
    "render_sweep_panel",
    "render_bench_panel",
    "render_fleet_panel",
    "render_bench_history",
]

_BAR_WIDTH = 40
_SPARK_CHARS = "▁▂▃▄▅▆▇█"
_HISTORY_DEPTH = 20  # committed versions per artifact in the sparkline


def _bar(done: int, failed: int, total: int) -> str:
    if total <= 0:
        return "[" + " " * _BAR_WIDTH + "]"
    ok = int(_BAR_WIDTH * done / total)
    bad = int(_BAR_WIDTH * failed / total)
    if failed and bad == 0:
        bad = 1
    ok = min(ok, _BAR_WIDTH - bad)
    return "[" + "#" * ok + "x" * bad + "." * (_BAR_WIDTH - ok - bad) + "]"


def render_sweep_panel(state_dir: Path | str) -> list[str]:
    """Progress/fleet/provenance lines for one broker state directory."""
    state = SweepStateStore.load_state(state_dir)
    if state is None:
        raise ConfigurationError(f"no readable state.json under {state_dir}")
    resolved = state.tasks_done + state.tasks_failed
    lines = [
        f"sweep state: {Path(state_dir)}",
        f"tasks {_bar(state.tasks_done, state.tasks_failed, state.tasks_total)} "
        f"{resolved}/{state.tasks_total}"
        + (f"  ({state.tasks_failed} failed)" if state.tasks_failed else ""),
        f"queue depth {state.tasks_queued}  leased {state.tasks_leased}  "
        f"re-leases {state.releases_total}  retries {state.retries_total}",
    ]
    completions: dict[str, int] = {}
    releases: dict[str, int] = {}
    resumes: dict[str, int] = {}
    cache_hits: dict[str, int] = {}
    slots: dict[str, int] = {}
    reattached: dict[str, int] = {}
    recoveries: list[dict[str, Any]] = []
    missing_archives = 0
    for event in read_events(state_dir):
        kind = event["event"]
        worker = event.get("worker")
        if kind == "complete" and worker:
            completions[worker] = completions.get(worker, 0) + 1
            if event.get("resumed_round") is not None:
                resumes[worker] = resumes.get(worker, 0) + 1
        elif kind == "re-lease" and worker:
            releases[worker] = releases.get(worker, 0) + 1
        elif kind == "cache-hit":
            source = event.get("source", "cache")
            cache_hits[source] = cache_hits.get(source, 0) + 1
        elif kind == "worker-join" and worker:
            slots[worker] = int(event.get("slots", 1) or 1)
        elif kind == "reattach" and worker:
            reattached[worker] = reattached.get(worker, 0) + 1
        elif kind == "broker-recover":
            recoveries.append(event)
        elif kind == "compact":
            archive = event.get("archive")
            if archive and not (Path(state_dir) / str(archive)).exists():
                missing_archives += 1
    if state.generation > 1 or recoveries:
        requeued = sum(int(e.get("requeued", 0)) for e in recoveries)
        adopted = sum(int(e.get("adopted_leases", 0)) for e in recoveries)
        lines.append(
            f"broker restarts: {state.generation - 1} (generation {state.generation}"
            + (
                f"; requeued {requeued}, re-adopted leases {adopted})"
                if recoveries
                else ")"
            )
        )
    if completions or releases or slots:
        lines.append("workers:")
        for worker in sorted(set(completions) | set(releases) | set(slots)):
            extra = ""
            if slots.get(worker, 1) > 1:
                extra += f"  slots {slots[worker]}"
            if releases.get(worker):
                extra += f"  re-leased {releases[worker]}"
            if reattached.get(worker):
                extra += f"  re-attached {reattached[worker]}"
            if resumes.get(worker):
                extra += f"  resumed-from-checkpoint {resumes[worker]}"
            lines.append(f"  {worker:28s} completed {completions.get(worker, 0):4d}{extra}")
    if cache_hits:
        hits = "  ".join(f"{source} {count}" for source, count in sorted(cache_hits.items()))
        lines.append(f"cache hits: {hits}")
    surviving = [int(p.name.rsplit(".", 1)[1]) for p in _archive_paths(Path(state_dir))]
    deleted = max(missing_archives, (min(surviving) - 1) if surviving else 0)
    if deleted:
        lines.append(
            f"note: event history truncated by compaction ({deleted} archived "
            "segment(s) deleted; worker tallies reflect surviving provenance only)"
        )
    return lines


def render_fleet_panel(state_dir: Path | str) -> list[str]:
    """Per-worker telemetry lines from the broker's ``fleet.prom``.

    Empty list (not an error) when the file is absent — fleet telemetry
    is opt-in per worker, so most sweeps have no panel here.
    """
    from repro.telemetry.sinks import parse_prometheus

    prom_path = Path(state_dir) / "fleet.prom"
    try:
        text = prom_path.read_text(encoding="utf-8")
    except OSError:
        return []
    try:
        families = parse_prometheus(text)
    except (ValueError, IndexError):
        return [f"fleet telemetry: {prom_path} is unparseable; skipping panel"]
    lines = ["fleet telemetry:"]
    fleet = families.get("fleet_task_seconds", {"samples": []})
    quantiles: dict[str, dict[str, float]] = {}  # worker ("" = fleet) -> q -> value
    counts: dict[str, float] = {}
    for sample in fleet["samples"]:
        labels = sample.get("labels", {})
        worker = labels.get("worker", "")
        if sample["name"].endswith("_count"):
            counts[worker] = sample["value"]
        elif "quantile" in labels:
            quantiles.setdefault(worker, {})[labels["quantile"]] = sample["value"]
    if "" in quantiles or "" in counts:
        q = quantiles.get("", {})
        lines.append(
            f"  fleet    tasks {int(counts.get('', 0)):4d}  "
            f"p50 {q.get('0.5', float('nan')):.2f}s  "
            f"p95 {q.get('0.95', float('nan')):.2f}s  "
            f"p99 {q.get('0.99', float('nan')):.2f}s"
        )
    per_worker: dict[str, list[str]] = {}
    for family_name, family in sorted(families.items()):
        if not family_name.startswith("worker_"):
            continue
        for sample in family["samples"]:
            labels = sample.get("labels", {})
            worker = labels.get("worker")
            if not worker:
                continue
            rest = {k: v for k, v in labels.items() if k != "worker"}
            tag = "".join(f" {k}={v}" for k, v in sorted(rest.items()))
            per_worker.setdefault(worker, []).append(
                f"{sample['name']}{tag} {sample['value']:g}"
            )
    for worker in sorted(per_worker):
        lines.append(f"  {worker}:")
        for entry in per_worker[worker]:
            lines.append(f"    {entry}")
    return lines if len(lines) > 1 else []


def _headline(payload: dict[str, Any]) -> str:
    """One-line summary of a BENCH_*.json artifact's key ratios."""
    parts: list[str] = []
    kernel = payload.get("kernel_phase") or {}
    if isinstance(kernel, dict) and "speedup" in kernel:
        parts.append(f"kernel-phase {kernel['speedup']:.2f}x")
    general = payload.get("general_c") or {}
    if isinstance(general, dict) and "speedup" in general:
        parts.append(f"general-c {general['speedup']:.2f}x")
    grid = payload.get("grid") or []
    if grid:
        ratios = [row["fused_over_legacy"] for row in grid if "fused_over_legacy" in row]
        if ratios:
            parts.append(f"grid {min(ratios):.2f}-{max(ratios):.2f}x over {len(ratios)} cells")
    fabric = payload.get("fabric") or {}
    if isinstance(fabric, dict) and "speedup_4w_over_1w" in fabric:
        parts.append(f"fabric 4w/1w {fabric['speedup_4w_over_1w']:.2f}x")
    compute = payload.get("compute") or {}
    if isinstance(compute, dict) and "broker_4w" in compute:
        modes = compute
        parts.append(
            f"compute serial {modes.get('serial', 0):.2f} -> broker-4w "
            f"{modes.get('broker_4w', 0):.2f} task/s"
        )
    return "  ".join(parts) if parts else "(no recognised sections)"


def render_bench_panel(bench_paths: list[Path | str]) -> list[str]:
    """Perf-trajectory lines, one per readable benchmark artifact.

    Malformed artifacts (unreadable, non-JSON, or not a JSON object) are
    skipped with an explanatory note rather than aborting the panel.
    """
    lines = ["perf trajectory:"]
    rendered = 0
    for path in bench_paths:
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            lines.append(f"  {path.name:24s} (unreadable; skipped)")
            continue
        if not isinstance(payload, dict):
            lines.append(f"  {path.name:24s} (malformed: not a JSON object; skipped)")
            continue
        profile = payload.get("profile", "?")
        lines.append(f"  {path.name:24s} profile={profile:8s} {_headline(payload)}")
        rendered += 1
    if rendered == 0 and len(lines) == 1:
        lines.append("  (no benchmark artifacts found)")
    return lines


def _headline_scalar(payload: dict[str, Any]) -> float | None:
    """The single number a benchmark artifact trends on, if any."""
    if not isinstance(payload, dict):
        return None
    for section, key in (
        ("kernel_phase", "speedup"),
        ("general_c", "speedup"),
        ("fabric", "speedup_4w_over_1w"),
        ("compute", "broker_4w"),
    ):
        value = (payload.get(section) or {}) if isinstance(payload.get(section), dict) else {}
        if isinstance(value.get(key), (int, float)):
            return float(value[key])
    return None


def _sparkline(values: list[float]) -> str:
    """Unicode block sparkline, scaled to the sample's own min/max."""
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi <= lo:
        return _SPARK_CHARS[0] * len(values)
    span = hi - lo
    top = len(_SPARK_CHARS) - 1
    return "".join(_SPARK_CHARS[round((v - lo) / span * top)] for v in values)


def _git(repo: Path, *argv: str) -> str | None:
    try:
        proc = subprocess.run(
            ["git", "-C", str(repo), *argv],
            capture_output=True,
            text=True,
            timeout=30,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    return proc.stdout if proc.returncode == 0 else None


def render_bench_history(bench_paths: list[Path | str]) -> list[str]:
    """Sparkline of each artifact's headline metric across git history.

    Walks the committed versions of each ``BENCH_*.json`` (oldest →
    newest, capped at the most recent 20) plus the working-tree copy.
    Degrades to a note — never an error — when git or the history is
    unavailable, since the dashboard must also work on exported dirs.
    """
    lines = ["perf history (committed BENCH artifacts):"]
    rendered = 0
    for path in bench_paths:
        path = Path(path).resolve()
        root_text = _git(path.parent, "rev-parse", "--show-toplevel")
        if root_text is None:
            continue
        repo = Path(root_text.strip())
        try:
            rel = path.relative_to(repo)
        except ValueError:
            continue
        log = _git(repo, "log", "--format=%H", "--reverse", "--", str(rel))
        shas = [s for s in (log or "").split() if s][-_HISTORY_DEPTH:]
        values: list[float] = []
        for sha in shas:
            shown = _git(repo, "show", f"{sha}:{rel.as_posix()}")
            if shown is None:
                continue
            try:
                scalar = _headline_scalar(json.loads(shown))
            except ValueError:
                continue  # malformed committed version: skip that point
            if scalar is not None:
                values.append(scalar)
        try:
            current = _headline_scalar(json.loads(path.read_text(encoding="utf-8")))
        except (OSError, ValueError):
            current = None
        if current is not None and (not values or values[-1] != current):
            values.append(current)
        if not values:
            continue
        lines.append(
            f"  {path.name:24s} {_sparkline(values)}  "
            f"{values[0]:.2f} -> {values[-1]:.2f} over {len(values)} point(s)"
        )
        rendered += 1
    if rendered == 0:
        lines.append("  (no git history for benchmark artifacts)")
    return lines


def render_dashboard(
    state_dir: Path | str | None,
    bench_paths: list[Path | str] | None = None,
    history: bool = False,
) -> list[str]:
    """Assemble the full dashboard. At least one panel must have input."""
    if state_dir is None and not bench_paths:
        raise ConfigurationError("dashboard needs a state dir and/or --bench artifacts")
    lines: list[str] = []
    if state_dir is not None:
        lines.extend(render_sweep_panel(state_dir))
        fleet = render_fleet_panel(state_dir)
        if fleet:
            lines.append("")
            lines.extend(fleet)
    if bench_paths:
        if lines:
            lines.append("")
        lines.extend(render_bench_panel(bench_paths))
        if history:
            lines.append("")
            lines.extend(render_bench_history(bench_paths))
    return lines
