"""Routing policies for the server farm.

A policy maps each pending request to the index of the server it probes
this tick. The farm then lets each probed server admit the oldest requests
up to capacity; rejected requests stay pending (the pool). The three
policies correspond to the processes studied in the paper and its
baselines:

* :class:`RandomPolicy` — one uniform probe; with bounded servers this is
  exactly CAPPED(c, λ).
* :class:`LeastLoadedPolicy` — d uniform probes, commit to the currently
  least loaded; with unbounded servers this is batch GREEDY[d].
* :class:`RoundRobinPolicy` — deterministic cyclic assignment, the
  zero-information control.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from repro.cluster.server import Request, Server
from repro.errors import ConfigurationError

__all__ = ["RoutingPolicy", "RandomPolicy", "LeastLoadedPolicy", "RoundRobinPolicy"]


@runtime_checkable
class RoutingPolicy(Protocol):
    """Chooses one probed server per pending request."""

    def route(
        self,
        pending: Sequence[Request],
        servers: Sequence[Server],
        rng: np.random.Generator,
    ) -> np.ndarray:
        """Return one server index per request in ``pending``."""
        ...  # pragma: no cover - protocol


class RandomPolicy:
    """One independent uniform probe per request (the CAPPED rule)."""

    def route(
        self,
        pending: Sequence[Request],
        servers: Sequence[Server],
        rng: np.random.Generator,
    ) -> np.ndarray:
        return rng.integers(0, len(servers), size=len(pending))


class LeastLoadedPolicy:
    """Probe ``d`` uniform servers, commit to the least loaded.

    Queue lengths are read once at the start of the tick (batch
    semantics, as in the PODC'16 GREEDY[d] model); ties go to the
    first-sampled probe.
    """

    def __init__(self, d: int) -> None:
        if d < 1:
            raise ConfigurationError(f"need at least one probe, got d={d}")
        self.d = d

    def route(
        self,
        pending: Sequence[Request],
        servers: Sequence[Server],
        rng: np.random.Generator,
    ) -> np.ndarray:
        count = len(pending)
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        loads = np.array([s.queue_length for s in servers], dtype=np.int64)
        probes = rng.integers(0, len(servers), size=(count, self.d))
        best = np.argmin(loads[probes], axis=1)
        return probes[np.arange(count), best]


class RoundRobinPolicy:
    """Deterministic cyclic assignment (ignores randomness and load)."""

    def __init__(self) -> None:
        self._cursor = 0

    def route(
        self,
        pending: Sequence[Request],
        servers: Sequence[Server],
        rng: np.random.Generator,
    ) -> np.ndarray:
        count = len(pending)
        indices = (self._cursor + np.arange(count)) % len(servers)
        self._cursor = int((self._cursor + count) % len(servers))
        return indices
