"""Server-farm application layer.

Maps the paper's abstraction onto concrete distributed-systems terms:
clients generate *requests* (balls), a *dispatcher* routes each pending
request to a server according to a pluggable policy (one random probe with
bounded buffers = CAPPED; d probes to the least loaded = GREEDY[d]; round
robin as a deterministic control), and *servers* (bins) hold bounded FIFO
queues and serve one request per tick.

This layer exists to demonstrate the library on realistic scenarios (see
``examples/server_farm.py``); the core simulators remain the measurement
instruments for the paper's figures.
"""

from repro.cluster.farm import FarmStats, ServerFarm
from repro.cluster.policies import (
    LeastLoadedPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    RoutingPolicy,
)
from repro.cluster.server import Request, Server

__all__ = [
    "Request",
    "Server",
    "ServerFarm",
    "FarmStats",
    "RoutingPolicy",
    "RandomPolicy",
    "LeastLoadedPolicy",
    "RoundRobinPolicy",
]
